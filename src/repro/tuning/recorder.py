"""Workload recording: ring-buffered query sketches for the index advisor.

The paper's pruning power is decided before the first query arrives: index
normals are sampled blindly from the query-parameter domains (Section 5.2),
and how well they match the *actual* workload determines every |II|.  The
first step towards workload-adaptive indexing is therefore simply to
remember what the workload was.

A :class:`QuerySketch` is the O(d') summary of one answered query — the
``(a, b, op)`` triple plus the query kind and, for top-k, ``k``.  The
:class:`WorkloadRecorder` keeps the most recent sketches in a bounded ring
buffer (old entries fall off; a drifted workload ages out naturally) and
round-trips them through a small ``.npz`` archive so a workload captured in
production can be replayed into an offline
:class:`~repro.tuning.advisor.Advisor` run.

Recording follows the observability layer's arming discipline: a module
global flag (:data:`RECORDING`), armed from the environment
(``REPRO_TUNE_RECORD=1``) or programmatically
(:func:`enable_recording`), read directly by the query facades::

    if _tnr.RECORDING:
        _tnr.record_query(...)

so the disabled path costs one attribute read and a branch.  This module is
deliberately dependency-free of the core index machinery — the facades
import it, never the other way around.
"""

from __future__ import annotations

import json
import os
import threading
import zipfile
import zlib
from collections import deque
from dataclasses import dataclass
from pathlib import Path
from typing import Iterable, Sequence

import numpy as np

from ..exceptions import TuningError
from ..obs import metrics as _om
from ..obs import runtime as _ort
from ..reliability.atomic import atomic_writer, checksum_manifest, verify_checksums

__all__ = [
    "DEFAULT_CAPACITY",
    "RECORDING",
    "WORKLOAD_FORMAT_VERSION",
    "QuerySketch",
    "WorkloadRecorder",
    "global_recorder",
    "recording_enabled",
    "enable_recording",
    "disable_recording",
    "record_query",
    "record_sketches",
    "save_workload",
    "load_workload",
]

#: On-disk workload archive format version (see ``docs/persistence.md``).
#: v2 adds a per-array SHA-256 checksum manifest and atomic writes
#: (``docs/reliability.md``); v1 archives still load.
WORKLOAD_FORMAT_VERSION = 2

_SUPPORTED_WORKLOAD_VERSIONS = (1, 2)

#: Default ring-buffer capacity of the global recorder.
DEFAULT_CAPACITY = 4096

_TRUTHY = {"1", "true", "yes", "on"}

#: Whether the query facades record sketches.  Mutated only through
#: :func:`enable_recording` / :func:`disable_recording`; hot paths read it
#: directly (same pattern as ``repro.obs.runtime.ENABLED``).
RECORDING: bool = (
    os.environ.get("REPRO_TUNE_RECORD", "").strip().lower() in _TRUTHY
)

_VALID_OPS = ("<=", "<", ">=", ">")
_VALID_KINDS = ("inequality", "range", "topk", "batch")


@dataclass(frozen=True)
class QuerySketch:
    """O(d') summary of one answered query.

    Attributes
    ----------
    normal / offset / op:
        The query triple ``(a, b, OP)`` exactly as the application issued
        it (original coordinates, op as its string value ``"<="`` etc.).
    kind:
        Which facade entry point answered it: ``inequality`` / ``range`` /
        ``topk`` / ``batch``.  Range queries record one sketch per bound.
    k:
        The top-k parameter; ``0`` for non-top-k kinds.
    """

    normal: np.ndarray
    offset: float
    op: str = "<="
    kind: str = "inequality"
    k: int = 0

    def __post_init__(self) -> None:
        normal = np.ascontiguousarray(self.normal, dtype=np.float64)
        if normal.ndim != 1 or normal.size == 0:
            raise TuningError(
                f"sketch normal must be a non-empty vector, got shape {normal.shape}"
            )
        normal.setflags(write=False)
        object.__setattr__(self, "normal", normal)
        object.__setattr__(self, "offset", float(self.offset))
        if self.op not in _VALID_OPS:
            raise TuningError(f"unknown sketch operator {self.op!r}")
        if self.kind not in _VALID_KINDS:
            raise TuningError(f"unknown sketch kind {self.kind!r}")
        object.__setattr__(self, "k", int(self.k))

    @property
    def dim(self) -> int:
        """Dimensionality ``d'`` of the sketched query normal."""
        return int(self.normal.size)


class WorkloadRecorder:
    """Bounded, thread-safe ring buffer of recent :class:`QuerySketch` es.

    Appending past ``capacity`` evicts the oldest sketch, so the recorder
    always describes the *recent* workload — exactly what a drift-adapting
    advisor should fit.  All mutation happens under one lock; recording is
    O(d') per query (one small array copy).
    """

    def __init__(self, capacity: int = DEFAULT_CAPACITY) -> None:
        if capacity <= 0:
            raise TuningError(f"recorder capacity must be positive, got {capacity}")
        self._capacity = int(capacity)
        self._buffer: deque[QuerySketch] = deque(maxlen=self._capacity)
        self._lock = threading.Lock()
        self._total = 0

    # ------------------------------------------------------------------ #
    # Recording
    # ------------------------------------------------------------------ #

    def record(self, sketch: QuerySketch) -> None:
        """Append one sketch (evicting the oldest at capacity)."""
        with self._lock:
            self._buffer.append(sketch)
            self._total += 1
        if _ort.ENABLED:
            tuning_recorded_total().inc(kind=sketch.kind)
            tuning_workload_size().set(len(self))

    def record_query(
        self,
        normal: np.ndarray,
        offset: float,
        op: str = "<=",
        kind: str = "inequality",
        k: int = 0,
    ) -> None:
        """Convenience: build and record a sketch from raw query parts."""
        self.record(QuerySketch(np.asarray(normal), offset, op, kind, k))

    # ------------------------------------------------------------------ #
    # Introspection
    # ------------------------------------------------------------------ #

    @property
    def capacity(self) -> int:
        """Maximum number of retained sketches."""
        return self._capacity

    @property
    def total_recorded(self) -> int:
        """Sketches ever recorded, including those evicted by the ring."""
        return self._total

    def __len__(self) -> int:
        return len(self._buffer)

    def sketches(self) -> tuple[QuerySketch, ...]:
        """Snapshot of the retained sketches, oldest first."""
        with self._lock:
            return tuple(self._buffer)

    def clear(self) -> None:
        """Drop every retained sketch (the total-recorded count survives)."""
        with self._lock:
            self._buffer.clear()
        if _ort.ENABLED:
            tuning_workload_size().set(0)

    # ------------------------------------------------------------------ #
    # Persistence (.npz round trip, see docs/persistence.md)
    # ------------------------------------------------------------------ #

    def save(self, path: str | Path) -> Path:
        """Persist the retained sketches to a ``.npz`` archive."""
        return save_workload(self.sketches(), path)

    @classmethod
    def load(
        cls, path: str | Path, capacity: int | None = None
    ) -> "WorkloadRecorder":
        """Rebuild a recorder from a :meth:`save` archive."""
        sketches = load_workload(path)
        out = cls(capacity or max(DEFAULT_CAPACITY, len(sketches)))
        for sketch in sketches:
            out.record(sketch)
        return out


def save_workload(
    sketches: Sequence[QuerySketch], path: str | Path
) -> Path:
    """Write sketches to ``path`` as a versioned ``.npz`` archive.

    The archive holds parallel arrays — ``normals (q, d')``, ``offsets
    (q,)``, ``ops``/``kinds`` (unicode), ``ks (q,)`` — plus the format
    version.  All sketches must share one dimensionality (they describe one
    index's workload).
    """
    path = Path(path)
    if not sketches:
        raise TuningError("cannot save an empty workload")
    dims = {sketch.dim for sketch in sketches}
    if len(dims) != 1:
        raise TuningError(
            f"workload mixes query dimensionalities {sorted(dims)}; "
            "record one index's workload per archive"
        )
    arrays = {
        "normals": np.vstack([sketch.normal for sketch in sketches]),
        "offsets": np.asarray([sketch.offset for sketch in sketches], dtype=np.float64),
        "ops": np.asarray([sketch.op for sketch in sketches]),
        "kinds": np.asarray([sketch.kind for sketch in sketches]),
        "ks": np.asarray([sketch.k for sketch in sketches], dtype=np.int64),
    }
    manifest = {"checksums": checksum_manifest(arrays)}
    target = path if path.suffix == ".npz" else path.with_suffix(path.suffix + ".npz")
    with atomic_writer(target, artifact="workload") as tmp:
        with open(tmp, "wb") as handle:
            np.savez_compressed(
                handle,
                format_version=np.asarray(WORKLOAD_FORMAT_VERSION, dtype=np.int64),
                manifest=np.frombuffer(
                    json.dumps(manifest).encode("utf-8"), dtype=np.uint8
                ),  # repro: noqa(REP002) — byte buffer for JSON manifest, not numeric keys
                **arrays,
            )
    return target


def load_workload(path: str | Path) -> tuple[QuerySketch, ...]:
    """Read sketches back from a :func:`save_workload` archive.

    v2 archives are verified against their checksum manifest (corruption
    raises :class:`~repro.exceptions.PersistenceError`); v1 archives load
    without verification.
    """
    path = Path(path)
    try:
        with np.load(path) as archive:
            version = int(archive["format_version"])
            if version not in _SUPPORTED_WORKLOAD_VERSIONS:
                raise TuningError(
                    f"unsupported workload archive version {version!r} "
                    f"(supported: {list(_SUPPORTED_WORKLOAD_VERSIONS)})"
                )
            arrays = {
                name: archive[name]
                for name in ("normals", "offsets", "ops", "kinds", "ks")
            }
            if version >= 2:
                manifest = json.loads(
                    bytes(archive["manifest"].tobytes()).decode("utf-8")
                )
                checksums = manifest.get("checksums")
                if not isinstance(checksums, dict) or not checksums:
                    raise TuningError(
                        f"workload archive {path} (format v{version}) is "
                        f"missing its checksum manifest"
                    )
                verify_checksums(
                    arrays, checksums, artifact="workload", path=path
                )
            normals = np.ascontiguousarray(arrays["normals"], dtype=np.float64)
            offsets = np.ascontiguousarray(arrays["offsets"], dtype=np.float64)
            ops = [str(op) for op in arrays["ops"]]
            kinds = [str(kind) for kind in arrays["kinds"]]
            ks = np.ascontiguousarray(arrays["ks"], dtype=np.int64)
    except (
        OSError,
        KeyError,
        ValueError,
        EOFError,
        json.JSONDecodeError,
        zipfile.BadZipFile,
        zlib.error,
    ) as exc:
        raise TuningError(f"cannot read workload archive {path}: {exc}") from exc
    rows = normals.shape[0] if normals.ndim == 2 else -1
    if rows < 0 or not (
        rows == offsets.size == len(ops) == len(kinds) == ks.size
    ):
        raise TuningError(f"workload archive {path} has inconsistent columns")
    return tuple(
        QuerySketch(normals[row], float(offsets[row]), ops[row], kinds[row], int(ks[row]))
        for row in range(rows)
    )


# --------------------------------------------------------------------- #
# Global recorder + arming (mirrors repro.obs.runtime)
# --------------------------------------------------------------------- #

_GLOBAL = WorkloadRecorder()


def global_recorder() -> WorkloadRecorder:
    """The process-wide recorder the query facades record into.

    Named ``global_recorder`` (not ``recorder``) so the accessor never
    shadows this module's name on the :mod:`repro.tuning` package —
    ``from repro.tuning import recorder`` must keep returning the module
    the facades' hot-path guard reads.
    """
    return _GLOBAL


def recording_enabled() -> bool:
    """Whether the query facades are currently recording sketches."""
    return RECORDING


def enable_recording() -> None:
    """Arm workload recording for this process."""
    global RECORDING
    RECORDING = True


def disable_recording() -> None:
    """Return recording to its zero-cost no-op mode."""
    global RECORDING
    RECORDING = False


def record_query(
    normal: np.ndarray,
    offset: float,
    op: str = "<=",
    kind: str = "inequality",
    k: int = 0,
) -> None:
    """Record one sketch into the global recorder when recording is armed.

    The facades guard the call themselves (``if _tnr.RECORDING``) so the
    disabled path never pays a function call; this re-check makes direct
    callers safe too.
    """
    if not RECORDING:
        return
    _GLOBAL.record_query(normal, offset, op, kind, k)


def record_sketches(sketches: Iterable[QuerySketch]) -> None:
    """Record prebuilt sketches into the global recorder (always records)."""
    for sketch in sketches:
        _GLOBAL.record(sketch)


# Imported lazily at the bottom to keep the metric factories next to their
# siblings while letting this module stay importable before repro.obs
# finishes initializing (it never does not — obs is dependency-free — but
# the late import also keeps the hot recording path free of attribute
# chains).
from ..obs.metrics import tuning_recorded_total, tuning_workload_size  # noqa: E402
