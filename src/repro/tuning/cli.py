"""CLI for the tuning loop: ``python -m repro tune <action>``.

Actions
-------
``record``
    Build a deterministic synthetic index, arm workload recording, answer a
    skewed Eq. 18 workload through the query facade, and save the captured
    sketches to a ``.npz`` workload archive.
``advise``
    Load a workload archive, rebuild the same index from the same seed
    arguments, run the :class:`~repro.tuning.advisor.Advisor`, print the
    resulting :class:`~repro.tuning.advisor.TuningPlan`, and optionally
    persist it as JSON.
``apply``
    Load a workload archive and a plan, rebuild the index, apply the plan
    (or ``--dry-run``), and report the measured mean |II| over the recorded
    workload before and after — closing the record -> advise -> apply loop.

All three actions rebuild the index deterministically from ``--n/--dim/
--rq/--indices/--seed``, so a plan advised in one process can be validated
and applied in another: the plan's baseline fingerprint matches because the
construction is bit-reproducible.  Against a live application the same
flow uses :func:`repro.tuning.enable_recording` and
:func:`repro.tuning.apply_plan` in process (see ``docs/tuning.md``).
"""

from __future__ import annotations

import argparse
import sys
from typing import Sequence, TextIO

import numpy as np

from ..exceptions import ReproError, TuningError

__all__ = ["configure_parser", "build_parser", "run_from_args", "main"]


def configure_parser(parser: argparse.ArgumentParser) -> None:
    """Attach the tune options to ``parser`` (shared with ``repro.cli``)."""
    parser.add_argument(
        "action",
        choices=["record", "advise", "apply"],
        help="record (capture a workload), advise (plan a portfolio), "
        "apply (execute a plan)",
    )
    parser.add_argument(
        "--workload",
        type=str,
        default=".repro-workload.npz",
        help="workload archive path (written by record, read by advise/apply)",
    )
    parser.add_argument(
        "--plan",
        type=str,
        default=".repro-plan.json",
        help="tuning plan path (written by advise, read by apply)",
    )
    parser.add_argument("--n", type=int, default=20_000, help="dataset size")
    parser.add_argument("--dim", type=int, default=6, help="dimensionality")
    parser.add_argument("--rq", type=int, default=4, help="randomness of query")
    parser.add_argument(
        "--indices", type=int, default=8, help="index budget r of the baseline"
    )
    parser.add_argument("--seed", type=int, default=0, help="random seed")
    parser.add_argument(
        "--queries", type=int, default=200, help="workload size (record action)"
    )
    parser.add_argument(
        "--concentration",
        type=float,
        default=0.9,
        help="workload skew in [0, 1]; 0 ~ uniform domain sampling (record)",
    )
    parser.add_argument(
        "--budget",
        type=int,
        default=None,
        help="portfolio budget for advise (default: baseline index count)",
    )
    parser.add_argument(
        "--candidates",
        type=int,
        default=64,
        help="random candidate normals the advisor considers (advise)",
    )
    parser.add_argument(
        "--dry-run",
        action="store_true",
        help="validate and summarize the plan without mutating (apply)",
    )


def build_parser() -> argparse.ArgumentParser:
    """Standalone ``repro tune`` parser (the main CLI nests the same flags)."""
    parser = argparse.ArgumentParser(
        prog="repro tune",
        description="record a workload, advise an index portfolio, apply a plan",
    )
    configure_parser(parser)
    return parser


def _build_index(args: argparse.Namespace):
    """The deterministic synthetic index all three actions operate on.

    Returns ``(index, points, model)`` so callers can derive the Eq. 18
    maxima without re-materializing the dataset.
    """
    from ..core.domains import QueryModel
    from ..core.function_index import FunctionIndex
    from ..datasets import independent

    points = independent(args.n, args.dim, rng=args.seed).points
    model = QueryModel.uniform(dim=args.dim, low=1.0, high=5.0, rq=args.rq)
    index = FunctionIndex(points, model, n_indices=args.indices, rng=args.seed)
    return index, points, model


def _measured_ii_mean(index, sketches) -> float:
    """Mean executed |II| over the sketched workload (skips incompatible)."""
    sizes = []
    for sketch in sketches:
        try:
            answer = index.query(sketch.normal, sketch.offset, op=sketch.op)
        except ReproError:  # octant-incompatible sketches are not measurable
            continue
        if answer.stats is not None:
            sizes.append(answer.stats.ii_size)
    return float(np.mean(sizes)) if sizes else float("nan")


def _cmd_record(args: argparse.Namespace, stream: TextIO) -> int:
    from ..datasets.workloads import eq18_offset, skewed_normals
    from . import recorder as _tnr

    index, points, model = _build_index(args)
    maxima = points.max(axis=0)
    normals = skewed_normals(model, args.queries, args.concentration, rng=args.seed)
    local = _tnr.WorkloadRecorder(capacity=max(args.queries, 1))
    was_recording = _tnr.RECORDING
    _tnr.enable_recording()
    before = len(_tnr.global_recorder())
    try:
        for normal in normals:
            offset = eq18_offset(normal, maxima, 0.25)
            index.query(normal, offset)
    finally:
        if not was_recording:
            _tnr.disable_recording()
    captured = _tnr.global_recorder().sketches()[before:]
    for sketch in captured:
        local.record(sketch)
    path = local.save(args.workload)
    print(
        f"recorded {len(local)} sketches "
        f"(concentration {args.concentration:.2f}) -> {path}",
        file=stream,
    )
    return 0


def _cmd_advise(args: argparse.Namespace, stream: TextIO) -> int:
    from . import recorder as _tnr
    from .advisor import Advisor, save_plan

    sketches = _tnr.load_workload(args.workload)
    index, _, _ = _build_index(args)
    advisor = Advisor(index, sketches=sketches)
    plan = advisor.advise(
        budget=args.budget, n_candidates=args.candidates, seed=args.seed
    )
    print(plan.render(), file=stream)
    path = save_plan(plan, args.plan)
    print(f"\nplan written to {path}", file=stream)
    return 0


def _cmd_apply(args: argparse.Namespace, stream: TextIO) -> int:
    from . import recorder as _tnr
    from .advisor import apply_plan, load_plan

    sketches = _tnr.load_workload(args.workload)
    plan = load_plan(args.plan)
    index, _, _ = _build_index(args)
    before = _measured_ii_mean(index, sketches)
    summary = apply_plan(index, plan, dry_run=args.dry_run)
    verb = "dry-run (not applied)" if summary["dry_run"] else "applied"
    print(
        f"{verb}: +{summary['added']} / -{summary['dropped']} normals, "
        f"{summary['n_indices']} indices",
        file=stream,
    )
    if summary["dry_run"]:
        print(f"measured mean |II| (baseline): {before:.1f}", file=stream)
        print(
            f"predicted mean |II| after: {plan.predicted_ii_after:.1f} "
            f"({plan.predicted_reduction:.1%} reduction)",
            file=stream,
        )
        return 0
    after = _measured_ii_mean(index, sketches)
    reduction = (before - after) / before if before else float("nan")
    print(
        f"measured mean |II|: {before:.1f} -> {after:.1f} "
        f"({reduction:.1%} reduction)",
        file=stream,
    )
    return 0


def run_from_args(args: argparse.Namespace, stream: TextIO | None = None) -> int:
    """Execute a tune invocation from a parsed namespace; returns exit code."""
    stream = stream or sys.stdout
    try:
        if args.action == "record":
            return _cmd_record(args, stream)
        if args.action == "advise":
            return _cmd_advise(args, stream)
        return _cmd_apply(args, stream)
    except TuningError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1


def main(argv: Sequence[str] | None = None, stream: TextIO | None = None) -> int:
    """Standalone entry point (``python -m repro.tuning.cli``)."""
    try:
        args = build_parser().parse_args(argv)
    except SystemExit as exc:  # argparse uses 2 for usage errors already
        return int(exc.code or 0)
    return run_from_args(args, stream)


if __name__ == "__main__":  # pragma: no cover - exercised via repro.cli tests
    sys.exit(main())
