"""Workload-adaptive index advisor: fit the normals to the queries.

The paper samples index normals blindly from the query-parameter domains
(Section 5.2) and never revisits them, so pruning power is fixed before the
first query arrives.  This module closes the loop: given the *recorded*
workload (:mod:`repro.tuning.recorder`), the :class:`Advisor` predicts —
with the paper's own machinery — how large the intermediate interval |II|
of every candidate normal would be for every recorded query, greedily
assembles the best ``r``-normal portfolio under a budget, and emits a
:class:`TuningPlan` of add/drop actions with predicted |II| deltas.

Why the prediction is trustworthy
---------------------------------
The advisor does not invent a cost model.  For each (candidate, query)
pair it evaluates exactly the quantities the executor computes at query
time:

* stretch scores come from :func:`repro.core.selection.stretch_scores`,
  the *same* function the collection's min-stretch router calls, so the
  simulated routing decision is the executor's routing decision;
* predicted |II| replays :meth:`repro.core.planar.PlanarIndex._thresholds`
  / ``interval_ranks`` — thresholds ``c'' * b''/a''``, the translation key
  offset ``<c'', delta>``, the same ``1e-9``-scaled guard band, and the
  same ``searchsorted(side="right")`` rank probes — against keys
  ``<c, phi(x)>`` computed the way a freshly built index would store them.

Because an applied plan only calls the existing ``add_index`` /
``drop_index`` lifecycle, query *results* are unaffected by construction:
every Planar index answers exactly; tuning only changes how much work the
answer costs.

Candidates
----------
Three pools, in fixed order (order matters — redundancy dedupe and greedy
tie-breaks both prefer earlier rows, so existing normals survive ties and
plans churn minimally):

1. the collection's current normals (keeping one is free),
2. the distinct normals of the recorded queries themselves (a parallel
   index has |II| ~ 0 for its query — Corollary 1),
3. fresh normals sampled from the query model under a caller-fixed seed.

Determinism: a fixed recorded workload and a fixed seed produce the same
:class:`TuningPlan`, bit for bit — greedy argmin ties break on the lowest
candidate row, and all candidate pools are ordered.
"""

from __future__ import annotations

import json
import time
from dataclasses import dataclass
from pathlib import Path
from typing import Sequence

import numpy as np

from ..core.collection import PlanarIndexCollection, dedupe_parallel_normals
from ..core.planar import WorkingQuery
from ..core.query import ScalarProductQuery
from ..core.selection import stretch_scores
from ..exceptions import InvalidQueryError, TuningError
from ..obs import metrics as _om
from ..obs import runtime as _ort
from ..obs import spans as _osp
from .recorder import QuerySketch, global_recorder

__all__ = [
    "PLAN_FORMAT_VERSION",
    "PlanAction",
    "TuningPlan",
    "Advisor",
    "apply_plan",
    "save_plan",
    "load_plan",
]

#: On-disk tuning-plan format version (see ``docs/persistence.md``).
PLAN_FORMAT_VERSION = 1


@dataclass(frozen=True)
class PlanAction:
    """One add/drop step of a :class:`TuningPlan`.

    Attributes
    ----------
    action:
        ``"add"`` (append a new index) or ``"drop"`` (remove an existing
        one).
    normal:
        The index normal (original coordinates) the action concerns.
    position:
        For drops, the index position *in the plan's baseline*; ``-1``
        for adds (they append).
    predicted_ii_delta:
        Predicted change of the workload-mean |II| attributable to this
        action (negative = improvement), from the advisor's simulation.
    """

    action: str
    normal: tuple[float, ...]
    position: int = -1
    predicted_ii_delta: float = 0.0

    def __post_init__(self) -> None:
        if self.action not in ("add", "drop"):
            raise TuningError(f"unknown plan action {self.action!r}")
        object.__setattr__(
            self, "normal", tuple(float(c) for c in self.normal)
        )
        object.__setattr__(self, "position", int(self.position))
        object.__setattr__(
            self, "predicted_ii_delta", float(self.predicted_ii_delta)
        )


@dataclass(frozen=True)
class TuningPlan:
    """Advisor output: a validated, replayable portfolio change.

    The plan records the collection's normals at advise time
    (``baseline_normals``).  :func:`apply_plan` refuses to run against an
    index whose normals no longer match the baseline, so a stale plan can
    never scramble positions.  ``actions`` lists adds before drops; drops
    carry baseline positions and are applied in descending position order
    (adds append, so baseline positions stay valid throughout).
    """

    baseline_normals: tuple[tuple[float, ...], ...]
    portfolio_normals: tuple[tuple[float, ...], ...]
    actions: tuple[PlanAction, ...]
    predicted_ii_before: float
    predicted_ii_after: float
    n_queries: int
    n_points: int
    budget: int
    n_candidates: int
    seed: int

    def __post_init__(self) -> None:
        object.__setattr__(
            self,
            "baseline_normals",
            tuple(tuple(float(c) for c in row) for row in self.baseline_normals),
        )
        object.__setattr__(
            self,
            "portfolio_normals",
            tuple(tuple(float(c) for c in row) for row in self.portfolio_normals),
        )
        object.__setattr__(self, "actions", tuple(self.actions))

    # ------------------------------------------------------------------ #

    @property
    def adds(self) -> tuple[PlanAction, ...]:
        """The ``add`` actions, in application order."""
        return tuple(a for a in self.actions if a.action == "add")

    @property
    def drops(self) -> tuple[PlanAction, ...]:
        """The ``drop`` actions, in descending-position application order."""
        return tuple(a for a in self.actions if a.action == "drop")

    @property
    def predicted_reduction(self) -> float:
        """Predicted relative reduction of the workload-mean |II|."""
        if self.predicted_ii_before <= 0.0:
            return 0.0
        return 1.0 - self.predicted_ii_after / self.predicted_ii_before

    def is_noop(self) -> bool:
        """Whether applying this plan would change nothing."""
        return not self.actions

    def to_dict(self) -> dict:
        """JSON-ready representation (see :func:`save_plan`)."""
        return {
            "format_version": PLAN_FORMAT_VERSION,
            "baseline_normals": [list(row) for row in self.baseline_normals],
            "portfolio_normals": [list(row) for row in self.portfolio_normals],
            "actions": [
                {
                    "action": a.action,
                    "normal": list(a.normal),
                    "position": a.position,
                    "predicted_ii_delta": a.predicted_ii_delta,
                }
                for a in self.actions
            ],
            "predicted_ii_before": self.predicted_ii_before,
            "predicted_ii_after": self.predicted_ii_after,
            "n_queries": self.n_queries,
            "n_points": self.n_points,
            "budget": self.budget,
            "n_candidates": self.n_candidates,
            "seed": self.seed,
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "TuningPlan":
        """Rebuild a plan from :meth:`to_dict` output."""
        version = payload.get("format_version")
        if version != PLAN_FORMAT_VERSION:
            raise TuningError(f"unsupported tuning plan version {version!r}")
        try:
            return cls(
                baseline_normals=tuple(
                    tuple(row) for row in payload["baseline_normals"]
                ),
                portfolio_normals=tuple(
                    tuple(row) for row in payload["portfolio_normals"]
                ),
                actions=tuple(
                    PlanAction(
                        action=entry["action"],
                        normal=tuple(entry["normal"]),
                        position=entry.get("position", -1),
                        predicted_ii_delta=entry.get("predicted_ii_delta", 0.0),
                    )
                    for entry in payload["actions"]
                ),
                predicted_ii_before=float(payload["predicted_ii_before"]),
                predicted_ii_after=float(payload["predicted_ii_after"]),
                n_queries=int(payload["n_queries"]),
                n_points=int(payload["n_points"]),
                budget=int(payload["budget"]),
                n_candidates=int(payload["n_candidates"]),
                seed=int(payload["seed"]),
            )
        except (KeyError, TypeError, ValueError) as exc:
            raise TuningError(f"malformed tuning plan payload: {exc}") from exc

    def save(self, path: str | Path) -> Path:
        """Persist this plan as JSON (see :func:`save_plan`)."""
        return save_plan(self, path)

    @classmethod
    def load(cls, path: str | Path) -> "TuningPlan":
        """Read a plan back from a :meth:`save` file."""
        return load_plan(path)

    def render(self) -> str:
        """Human-readable summary for the CLI."""
        lines = [
            f"tuning plan: budget {self.budget}, "
            f"{len(self.baseline_normals)} -> {len(self.portfolio_normals)} indices, "
            f"{self.n_queries} workload queries over {self.n_points} points",
            f"predicted mean |II|: {self.predicted_ii_before:,.1f} -> "
            f"{self.predicted_ii_after:,.1f} "
            f"({self.predicted_reduction:+.1%} reduction)",
        ]
        for a in self.actions:
            where = "" if a.position < 0 else f" @ position {a.position}"
            lines.append(
                f"  {a.action}{where}: normal {list(a.normal)} "
                f"(predicted mean |II| delta {a.predicted_ii_delta:+,.1f})"
            )
        if not self.actions:
            lines.append("  (no changes — current portfolio already best)")
        return "\n".join(lines)


# --------------------------------------------------------------------- #
# Plan persistence (JSON; see docs/persistence.md)
# --------------------------------------------------------------------- #


def save_plan(plan: TuningPlan, path: str | Path) -> Path:
    """Write ``plan`` to ``path`` as versioned JSON.

    The write is crash-safe: temp file + atomic replace, so a crash
    mid-save never leaves a half-written plan (see ``docs/reliability.md``).
    """
    from ..reliability.atomic import atomic_write_text

    path = Path(path)
    atomic_write_text(
        path, json.dumps(plan.to_dict(), indent=2) + "\n", artifact="plan"
    )
    return path


def load_plan(path: str | Path) -> TuningPlan:
    """Read a :func:`save_plan` file back into a :class:`TuningPlan`."""
    path = Path(path)
    try:
        payload = json.loads(path.read_text())
    except (OSError, json.JSONDecodeError) as exc:
        raise TuningError(f"cannot read tuning plan {path}: {exc}") from exc
    if not isinstance(payload, dict):
        raise TuningError(f"tuning plan {path} is not a JSON object")
    return TuningPlan.from_dict(payload)


# --------------------------------------------------------------------- #
# Facade resolution (FunctionIndex and ShardedFunctionIndex duck-typed)
# --------------------------------------------------------------------- #


def _primary_collection(index) -> PlanarIndexCollection:
    """The (first-shard) collection behind a facade.

    Shards of a :class:`~repro.parallel.engine.ShardedFunctionIndex`
    share one translator and identical normals, so shard 0 describes the
    whole engine's portfolio.
    """
    if hasattr(index, "collections"):
        return index.collections[0]
    if hasattr(index, "collection"):
        return index.collection
    if isinstance(index, PlanarIndexCollection):
        raise TuningError(
            "advise against the FunctionIndex / ShardedFunctionIndex facade, "
            "not the raw collection (the facade owns the query model and "
            "feature store the advisor needs)"
        )
    raise TuningError(
        f"cannot tune {type(index).__name__}: expected a FunctionIndex or "
        "ShardedFunctionIndex"
    )


def _working_queries(
    sketches: Sequence[QuerySketch], translator, dim: int
) -> list[WorkingQuery]:
    """Canonicalized working queries for the octant-servable sketches.

    Octant-incompatible sketches are skipped: those queries bypass the
    Planar machinery entirely (scan fallback), so no normal choice can
    change their cost.  Dimension-mismatched sketches are skipped for the
    same reason (they belong to a different index's workload).
    """
    out: list[WorkingQuery] = []
    for sketch in sketches:
        if sketch.dim != dim:
            continue
        query = ScalarProductQuery(sketch.normal, sketch.offset, sketch.op)
        try:
            out.append(WorkingQuery.build(query, translator))
        except InvalidQueryError:
            continue
    return out


@dataclass(frozen=True)
class _Simulation:
    """Per-candidate, per-query cost matrices over the recorded workload.

    ``stretch[j, q]`` is candidate ``j``'s min-stretch routing score for
    query ``q`` (lower wins); ``ii[j, q]`` its predicted intermediate
    interval size.  ``n_points`` is the full-scan cost a query pays when
    no selected index exists (the empty-portfolio baseline).
    """

    stretch: np.ndarray
    ii: np.ndarray
    n_points: int

    def fold(self, order: Sequence[int]) -> np.ndarray:
        """Per-query cost of routing through candidates in ``order``.

        Folding with a strict ``<`` in portfolio order replicates the
        executor's ``argmin`` (first index wins ties), so the predicted
        cost of a portfolio equals what the min-stretch router would
        actually charge.
        """
        n_queries = self.stretch.shape[1]
        best_stretch = np.full(n_queries, np.inf)
        cost = np.full(n_queries, float(self.n_points))
        for j in order:
            better = self.stretch[j] < best_stretch
            best_stretch = np.where(better, self.stretch[j], best_stretch)
            cost = np.where(better, self.ii[j], cost)
        return cost


class Advisor:
    """Scores candidate normals against a recorded workload and plans.

    Parameters
    ----------
    index:
        A live :class:`~repro.core.function_index.FunctionIndex` or
        :class:`~repro.parallel.engine.ShardedFunctionIndex`.
    sketches:
        The workload to fit.  Defaults to the global
        :func:`~repro.tuning.recorder.global_recorder`'s retained
        sketches.
    max_points:
        Optional cap on the number of feature rows used in the
        simulation (a deterministic, seeded subsample).  ``None`` uses
        every live point.
    """

    def __init__(
        self,
        index,
        sketches: Sequence[QuerySketch] | None = None,
        max_points: int | None = None,
    ) -> None:
        self._index = index
        self._collection = _primary_collection(index)
        self._sketches = tuple(
            sketches if sketches is not None else global_recorder().sketches()
        )
        if not self._sketches:
            raise TuningError(
                "no recorded workload: arm REPRO_TUNE_RECORD=1 (or call "
                "repro.tuning.enable_recording()) and answer some queries, "
                "or pass sketches explicitly"
            )
        if max_points is not None and max_points <= 0:
            raise TuningError(f"max_points must be positive, got {max_points}")
        self._max_points = max_points

    @property
    def sketches(self) -> tuple[QuerySketch, ...]:
        """The workload sketches this advisor fits."""
        return self._sketches

    # ------------------------------------------------------------------ #
    # Candidate assembly
    # ------------------------------------------------------------------ #

    def _candidate_normals(
        self, queries: Sequence[WorkingQuery], n_candidates: int, seed: int
    ) -> tuple[np.ndarray, int]:
        """Deduped candidate matrix and the count of surviving existing rows.

        Existing normals occupy the leading rows; the collection already
        guarantees they are mutually non-parallel, so all of them survive
        :func:`dedupe_parallel_normals` (which keeps first occurrences)
        and later rows parallel to an existing normal are folded away.
        """
        existing = self._collection.normals
        n_existing = existing.shape[0]
        pools = [existing]
        if queries:
            # The canonicalized query normals themselves: for each, a
            # parallel index would have zero stretch and |II| ~ 0
            # (Corollary 1), so these are the strongest candidates a
            # concentrated workload can ask for.
            pools.append(np.vstack([wq.query.normal for wq in queries]))
        if n_candidates > 0:
            model = self._index.query_model
            pools.append(
                model.sample_normals(n_candidates, np.random.default_rng(seed))
            )
        stacked = np.vstack(pools)
        # Candidates must fit the indexed octant (existing ones do by
        # construction; recorded normals were canonicalized against the
        # same translator; model samples match by domain signs) — but a
        # caller-supplied sketch set can contain anything, so filter.
        octant = self._index.translator.octant
        compatible = np.all(stacked * octant > 0.0, axis=1) & np.all(
            np.isfinite(stacked), axis=1
        )
        stacked = stacked[compatible]
        keep = dedupe_parallel_normals(stacked)
        candidates = np.ascontiguousarray(stacked[keep])
        return candidates, n_existing

    # ------------------------------------------------------------------ #
    # Cost simulation (the paper's own estimators, vectorized)
    # ------------------------------------------------------------------ #

    def _simulate(
        self, candidates: np.ndarray, queries: Sequence[WorkingQuery]
    ) -> _Simulation:
        """Predict stretch and |II| of every candidate for every query.

        Keys, thresholds, guard band, and rank probes replicate
        :class:`~repro.core.planar.PlanarIndex` exactly (see the module
        docstring), evaluated as dense matrix expressions.
        """
        translator = self._index.translator
        octant = translator.octant
        delta = translator.delta
        working = candidates * octant  # vectorized reflect_normal
        row_min = working.min(axis=1)
        key_offsets = working @ delta  # vectorized key_offset

        ids = self._index.live_ids()
        if self._max_points is not None and ids.size > self._max_points:
            # Deterministic subsample: seeded by the cap so repeated
            # advise() calls see the same rows.
            picker = np.random.default_rng(self._max_points)
            ids = np.sort(
                picker.choice(ids, size=self._max_points, replace=False)
            )
        feats = self._index.get_features(ids)
        # Bulk candidate keying — the same <c, phi(x)> a fresh PlanarIndex
        # would store, all candidates at once.
        keys = feats @ candidates.T  # repro: noqa(REP001) — advisor bulk keying, one matmul by design
        keys = np.sort(keys, axis=0)
        n_points = feats.shape[0]

        n_candidates = candidates.shape[0]
        n_queries = len(queries)
        stretch = np.empty((n_candidates, n_queries))
        ii = np.empty((n_candidates, n_queries))
        # (q, d') threshold ratios b''/a''_i shared by every candidate.
        ratios = np.vstack([wq.offset_w / wq.normal_w for wq in queries])
        for position, wq in enumerate(queries):
            # Same scoring function the collection's router calls.
            stretch[:, position] = stretch_scores(working, row_min, wq)
        for j in range(n_candidates):
            thresholds = working[j] * ratios  # (q, d')
            t_min = thresholds.min(axis=1)
            t_max = thresholds.max(axis=1)
            scale = np.maximum(
                1.0,
                np.maximum(np.abs(thresholds).max(axis=1), abs(key_offsets[j])),
            )
            tol = 1e-9 * scale
            column = keys[:, j]
            lo = np.searchsorted(column, t_min - key_offsets[j] - tol, side="right")
            hi = np.searchsorted(column, t_max - key_offsets[j] + tol, side="right")
            ii[j] = hi - lo
        return _Simulation(stretch=stretch, ii=ii, n_points=n_points)

    # ------------------------------------------------------------------ #
    # Greedy portfolio selection
    # ------------------------------------------------------------------ #

    def advise(
        self,
        budget: int | None = None,
        n_candidates: int = 64,
        seed: int = 0,
    ) -> TuningPlan:
        """Plan the best ``budget``-normal portfolio for the workload.

        Greedy set selection: start from the empty portfolio (every query
        pays a full scan), and at each of ``budget`` steps admit the
        candidate whose admission minimizes the total routed |II| over
        the workload, simulating the min-stretch router exactly.  Ties
        break toward the lowest candidate row — existing normals first —
        so an already-optimal portfolio yields a no-op plan.

        Deterministic: same index normals + same sketches + same ``seed``
        (and ``n_candidates``) produce the identical plan.  Never mutates
        the index.
        """
        obs_on = _ort.ENABLED
        started = time.perf_counter() if obs_on else 0.0
        if budget is None:
            budget = self._collection.normals.shape[0]
        if budget <= 0:
            raise TuningError(f"index budget must be positive, got {budget}")
        if n_candidates < 0:
            raise TuningError(
                f"n_candidates must be nonnegative, got {n_candidates}"
            )
        translator = self._index.translator
        dim = self._collection.normals.shape[1]
        queries = _working_queries(self._sketches, translator, dim)
        if not queries:
            raise TuningError(
                "recorded workload contains no octant-servable queries of "
                f"dimension {dim}; nothing to fit"
            )

        candidates, n_existing = self._candidate_normals(
            queries, n_candidates, seed
        )
        sim = self._simulate(candidates, queries)
        n_queries = len(queries)

        # Baseline: the current portfolio routed exactly as the executor
        # routes it (existing candidates are rows [0, n_existing)).
        baseline_cost = sim.fold(range(n_existing))
        ii_before = float(baseline_cost.mean())

        # Greedy admission.
        n_total = candidates.shape[0]
        available = np.ones(n_total, dtype=bool)
        best_stretch = np.full(n_queries, np.inf)
        current_cost = np.full(n_queries, float(sim.n_points))
        selected: list[int] = []
        admission_delta: dict[int, float] = {}
        for _ in range(min(budget, n_total)):
            covered = sim.stretch < best_stretch[np.newaxis, :]
            totals = np.where(covered, sim.ii, current_cost[np.newaxis, :]).sum(
                axis=1
            )
            totals[~available] = np.inf
            j = int(np.argmin(totals))
            admission_delta[j] = (totals[j] - current_cost.sum()) / n_queries
            selected.append(j)
            available[j] = False
            better = sim.stretch[j] < best_stretch
            best_stretch = np.where(better, sim.stretch[j], best_stretch)
            current_cost = np.where(better, sim.ii[j], current_cost)

        # Final portfolio in *application* order: surviving existing
        # normals keep their baseline positions, adds append.
        kept_existing = sorted(j for j in selected if j < n_existing)
        added = [j for j in selected if j >= n_existing]
        order = kept_existing + added
        after_cost = sim.fold(order)
        ii_after = float(after_cost.mean())

        actions: list[PlanAction] = []
        for j in added:
            actions.append(
                PlanAction(
                    action="add",
                    normal=tuple(candidates[j]),
                    position=-1,
                    predicted_ii_delta=admission_delta[j],
                )
            )
        dropped = [j for j in range(n_existing) if j not in set(kept_existing)]
        for j in dropped:
            # Predicted cost of the drop: mean |II| with the final
            # portfolio minus mean |II| had this index been kept too
            # (>= 0: keeping an extra index can only help routing).
            with_it = sim.fold(sorted(kept_existing + [j]) + added)
            actions.append(
                PlanAction(
                    action="drop",
                    normal=tuple(candidates[j]),
                    position=j,
                    predicted_ii_delta=ii_after - float(with_it.mean()),
                )
            )

        plan = TuningPlan(
            baseline_normals=tuple(
                tuple(row) for row in self._collection.normals
            ),
            portfolio_normals=tuple(tuple(candidates[j]) for j in order),
            actions=tuple(actions),
            predicted_ii_before=ii_before,
            predicted_ii_after=ii_after,
            n_queries=n_queries,
            n_points=sim.n_points,
            budget=int(budget),
            n_candidates=int(n_candidates),
            seed=int(seed),
        )
        if obs_on:
            _osp.record(
                "tune.advise",
                started,
                n_queries=n_queries,
                n_actions=len(actions),
            )
            _om.tuning_plans_total().inc(action="advise")
            gauge = _om.tuning_predicted_ii_mean()
            gauge.set(ii_before, stage="baseline")
            gauge.set(ii_after, stage="proposed")
        return plan


# --------------------------------------------------------------------- #
# Plan application
# --------------------------------------------------------------------- #


def apply_plan(index, plan: TuningPlan, dry_run: bool = False) -> dict:
    """Apply (or dry-run) a :class:`TuningPlan` against a live facade.

    Validates that the facade's current normals still match the plan's
    recorded baseline — bit for bit — and raises :class:`TuningError`
    otherwise, so a plan advised yesterday cannot scramble an index that
    changed overnight.  Adds run first (appending keeps baseline
    positions stable), then drops in descending baseline position.

    For a :class:`~repro.parallel.engine.ShardedFunctionIndex` the
    facade's own ``add_index`` / ``drop_index`` fan each action out to
    every shard, so all shards stay normal-identical.

    ``dry_run`` never mutates: it only validates and summarizes.
    Returns a summary dict (``applied``, ``added``, ``dropped``,
    predicted |II| before/after).
    """
    obs_on = _ort.ENABLED
    started = time.perf_counter() if obs_on else 0.0
    collection = _primary_collection(index)
    baseline = np.asarray(plan.baseline_normals, dtype=np.float64)
    current = collection.normals
    if baseline.shape != current.shape or not np.array_equal(baseline, current):
        raise TuningError(
            "tuning plan is stale: the index's normals no longer match the "
            f"plan's baseline (baseline {baseline.shape[0]} normals, live "
            f"{current.shape[0]}); re-run advise against the live index"
        )
    adds = plan.adds
    drops = sorted(plan.drops, key=lambda a: a.position, reverse=True)
    if not dry_run:
        for action in adds:
            index.add_index(np.asarray(action.normal, dtype=np.float64))
        for action in drops:
            # Adds appended at the end, so baseline positions are intact;
            # descending order keeps later positions valid as we go.
            index.drop_index(action.position)
    summary = {
        "applied": not dry_run,
        "dry_run": bool(dry_run),
        "added": len(adds),
        "dropped": len(drops),
        "n_indices": (
            len(plan.portfolio_normals) if not dry_run else baseline.shape[0]
        ),
        "predicted_ii_before": plan.predicted_ii_before,
        "predicted_ii_after": plan.predicted_ii_after,
        "predicted_reduction": plan.predicted_reduction,
    }
    if obs_on:
        _osp.record(
            "tune.apply", started, dry_run=bool(dry_run), n_actions=len(plan.actions)
        )
        _om.tuning_plans_total().inc(
            action="dry_run" if dry_run else "apply"
        )
    return summary
