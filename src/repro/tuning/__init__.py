"""Workload-adaptive index tuning (recorder + advisor).

The paper fixes its index normals before the first query arrives
(Section 5.2); this subsystem closes the loop.  A
:class:`~repro.tuning.recorder.WorkloadRecorder` captures O(d') sketches
of answered queries (armed via ``REPRO_TUNE_RECORD=1``), and an
:class:`~repro.tuning.advisor.Advisor` replays them through the paper's
own selection and interval estimators to plan a better normal portfolio,
emitted as a dry-runnable, persistable
:class:`~repro.tuning.advisor.TuningPlan`.

See ``docs/tuning.md`` for the workflow and ``examples/tuning.py`` for a
record -> advise -> apply walkthrough.
"""

from .recorder import (
    DEFAULT_CAPACITY,
    WORKLOAD_FORMAT_VERSION,
    QuerySketch,
    WorkloadRecorder,
    disable_recording,
    enable_recording,
    global_recorder,
    load_workload,
    record_query,
    record_sketches,
    recording_enabled,
    save_workload,
)
from .advisor import (
    PLAN_FORMAT_VERSION,
    Advisor,
    PlanAction,
    TuningPlan,
    apply_plan,
    load_plan,
    save_plan,
)

__all__ = [
    "DEFAULT_CAPACITY",
    "PLAN_FORMAT_VERSION",
    "WORKLOAD_FORMAT_VERSION",
    "Advisor",
    "PlanAction",
    "QuerySketch",
    "TuningPlan",
    "WorkloadRecorder",
    "apply_plan",
    "disable_recording",
    "enable_recording",
    "global_recorder",
    "load_plan",
    "load_workload",
    "record_query",
    "record_sketches",
    "recording_enabled",
    "save_plan",
    "save_workload",
]
