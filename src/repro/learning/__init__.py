"""Pool-based active learning on top of Planar top-k queries (Section 7.5.2).

The acquisition step of uncertainty-sampling active learning — "find the
unlabeled points closest to the current decision hyperplane" — is exactly
the paper's top-k nearest neighbor query (Problem 2) with the identity
feature map.  This subpackage provides a from-scratch linear classifier and
an active learner whose acquisition can run either through a Planar index
(exact, sublinear) or a sequential scan (the baseline), mirroring the
paper's comparison with the approximate hashing methods of [14, 18].
"""

from .active import ActiveLearner, ActiveLearningReport
from .linear_model import LogisticRegression, make_linear_classification

__all__ = [
    "ActiveLearner",
    "ActiveLearningReport",
    "LogisticRegression",
    "make_linear_classification",
]
