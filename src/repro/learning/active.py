"""Pool-based active learning with Planar-index acquisition (Section 7.5.2).

Uncertainty sampling labels the unlabeled points closest to the current
decision hyperplane.  That acquisition is the paper's Problem 2 (top-k
nearest neighbor to a query hyperplane) with the identity feature map, and
this module runs it through either:

* ``backend="planar"`` — a :class:`~repro.core.FunctionIndex` per sign
  pattern (octant) of the evolving classifier normal.  The current normal
  is dynamically added as an index each round — the paper's "update the
  indices based on past queries" adaptation — and labeled points are
  deleted from the index, exercising the dynamic-maintenance path.
* ``backend="scan"`` — the sequential baseline.

Both backends are exact, so they label identical points and learn identical
models; only the number of scalar products evaluated differs (the Table 3
comparison).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

import numpy as np

from .._util import as_2d_float, as_rng
from ..core.query import ScalarProductQuery
from ..extensions.adaptive import AdaptiveOctantIndex
from ..scan.baseline import SequentialScan
from .linear_model import LogisticRegression

__all__ = ["ActiveLearner", "ActiveLearningReport"]


@dataclass(frozen=True)
class ActiveLearningReport:
    """Outcome of an active-learning run.

    ``accuracy_history[i]`` is the pool accuracy after round ``i``;
    ``n_checked_total`` counts scalar products evaluated by acquisitions
    (the efficiency metric that separates the backends).
    """

    labeled_ids: np.ndarray
    accuracy_history: tuple[float, ...]
    n_checked_total: int
    n_rounds: int
    backend: str
    model: LogisticRegression = field(repr=False)

    @property
    def final_accuracy(self) -> float:
        """Pool accuracy after the last round."""
        return self.accuracy_history[-1]


class ActiveLearner:
    """Uncertainty-sampling active learner over a fixed pool.

    Parameters
    ----------
    pool:
        ``(n, d)`` unlabeled points.
    oracle:
        Ground-truth labels: either an ``(n,)`` array in {-1, +1} or a
        callable mapping id arrays to label arrays.
    seed_size / batch_size:
        Initial random labels and per-round acquisition size.
    backend:
        ``"planar"`` or ``"scan"`` acquisition (identical results).
    """

    def __init__(
        self,
        pool: np.ndarray,
        oracle: np.ndarray | Callable[[np.ndarray], np.ndarray],
        seed_size: int = 10,
        batch_size: int = 10,
        backend: str = "planar",
        model_factory: Callable[[], LogisticRegression] | None = None,
        rng: np.random.Generator | int | None = None,
    ) -> None:
        self._pool = as_2d_float(pool, "pool")
        if callable(oracle):
            self._oracle = oracle
        else:
            labels = np.ascontiguousarray(oracle, dtype=np.int8)
            if labels.shape != (self._pool.shape[0],):
                raise ValueError(
                    f"labels have shape {labels.shape}, expected ({self._pool.shape[0]},)"
                )
            self._oracle = lambda ids: labels[ids]
        if backend not in ("planar", "scan"):
            raise ValueError(f"backend must be 'planar' or 'scan', got {backend!r}")
        if seed_size < 2:
            raise ValueError(f"seed_size must be >= 2, got {seed_size}")
        if batch_size < 1:
            raise ValueError(f"batch_size must be >= 1, got {batch_size}")
        self._seed_size = int(seed_size)
        self._batch_size = int(batch_size)
        self._backend = backend
        self._model_factory = model_factory or LogisticRegression
        self._rng = as_rng(rng)

        self._labeled_ids: list[int] = []
        self._labels: dict[int, int] = {}
        self._unlabeled = np.ones(self._pool.shape[0], dtype=bool)
        self._adaptive: AdaptiveOctantIndex | None = None
        self._n_checked = 0

    # ------------------------------------------------------------------ #

    @property
    def n_labeled(self) -> int:
        """Number of labeled points so far."""
        return len(self._labeled_ids)

    @property
    def n_checked_total(self) -> int:
        """Scalar products evaluated by acquisition queries so far."""
        return self._n_checked

    def _label(self, ids: np.ndarray) -> None:
        ids = np.asarray(ids, dtype=np.int64)
        fresh = ids[self._unlabeled[ids]]
        if fresh.size == 0:
            return
        labels = np.asarray(self._oracle(fresh), dtype=np.int64)
        for pid, lab in zip(fresh, labels):
            self._labeled_ids.append(int(pid))
            self._labels[int(pid)] = int(lab)
        self._unlabeled[fresh] = False
        if self._adaptive is not None:
            self._adaptive.delete_points(fresh)

    def _seed(self) -> None:
        """Label an initial random batch containing both classes."""
        ids = self._rng.permutation(self._pool.shape[0])
        self._label(ids[: self._seed_size])
        # Keep labeling one extra point at a time until both classes appear.
        position = self._seed_size
        while len(set(self._labels.values())) < 2 and position < ids.size:
            self._label(ids[position : position + 1])
            position += 1

    def _fit(self) -> LogisticRegression:
        labeled = np.asarray(self._labeled_ids, dtype=np.int64)
        labels = np.asarray([self._labels[int(i)] for i in labeled], dtype=np.float64)
        model = self._model_factory()
        model.fit(self._pool[labeled], labels)
        return model

    # ------------------------------------------------------------------ #
    # Acquisition backends
    # ------------------------------------------------------------------ #

    def _acquire(self, model: LogisticRegression) -> np.ndarray:
        """Ids of the closest unlabeled points to the decision hyperplane."""
        normal, offset = model.hyperplane()
        k = self._batch_size
        if self._backend == "scan":
            ids = np.nonzero(self._unlabeled)[0].astype(np.int64)
            scan = SequentialScan(self._pool[ids], ids)
            below = scan.topk(ScalarProductQuery(normal, offset, "<="), k)
            above = scan.topk(ScalarProductQuery(normal, offset, ">"), k)
        else:
            if self._adaptive is None:
                self._adaptive = AdaptiveOctantIndex(self._pool, rng=self._rng)
                labeled = np.nonzero(~self._unlabeled)[0].astype(np.int64)
                if labeled.size:
                    self._adaptive.delete_points(labeled)
            below = self._adaptive.topk(normal, offset, k, op="<=")
            above = self._adaptive.topk(normal, offset, k, op=">")
        self._n_checked += below.n_checked + above.n_checked
        candidates = np.concatenate([below.ids, above.ids])
        distances = np.concatenate([below.distances, above.distances])
        order = np.lexsort((candidates, distances))
        return candidates[order][:k]

    # ------------------------------------------------------------------ #

    def run(self, n_rounds: int, true_labels: np.ndarray | None = None) -> ActiveLearningReport:
        """Run seeding plus ``n_rounds`` of acquisition.

        ``true_labels`` (when given) scores pool accuracy after each round;
        otherwise accuracy is measured against the oracle on demand.
        """
        if n_rounds < 1:
            raise ValueError(f"n_rounds must be >= 1, got {n_rounds}")
        if true_labels is None:
            true_labels = np.asarray(
                self._oracle(np.arange(self._pool.shape[0], dtype=np.int64))
            )
        self._seed()
        history = []
        model = self._fit()
        for _ in range(n_rounds):
            if not np.any(self._unlabeled):
                break
            batch = self._acquire(model)
            if batch.size == 0:
                break
            self._label(batch)
            model = self._fit()
            history.append(model.accuracy(self._pool, true_labels))
        return ActiveLearningReport(
            labeled_ids=np.asarray(self._labeled_ids, dtype=np.int64),
            accuracy_history=tuple(history),
            n_checked_total=self._n_checked,
            n_rounds=len(history),
            backend=self._backend,
            model=model,
        )
