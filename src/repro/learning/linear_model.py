"""A from-scratch linear classifier (logistic regression by gradient descent).

No ML library is available offline, and the reproduction only needs a
reasonable linear decision hyperplane to drive the active-learning
application — full-batch gradient descent on the logistic loss with L2
regularisation is plenty.
"""

from __future__ import annotations

import numpy as np

from .._util import as_2d_float, as_rng
from ..exceptions import DimensionMismatchError

__all__ = ["LogisticRegression", "make_linear_classification"]


class LogisticRegression:
    """Binary linear classifier with labels in {-1, +1}.

    Parameters
    ----------
    learning_rate / epochs / l2:
        Full-batch gradient-descent hyperparameters.
    fit_intercept:
        Whether to learn a bias term.
    """

    def __init__(
        self,
        learning_rate: float = 0.5,
        epochs: int = 200,
        l2: float = 1e-3,
        fit_intercept: bool = True,
    ) -> None:
        if learning_rate <= 0:
            raise ValueError(f"learning_rate must be positive, got {learning_rate}")
        if epochs <= 0:
            raise ValueError(f"epochs must be positive, got {epochs}")
        if l2 < 0:
            raise ValueError(f"l2 must be nonnegative, got {l2}")
        self._lr = float(learning_rate)
        self._epochs = int(epochs)
        self._l2 = float(l2)
        self._fit_intercept = bool(fit_intercept)
        self.coef_: np.ndarray | None = None
        self.intercept_: float = 0.0

    # ------------------------------------------------------------------ #

    @property
    def is_fitted(self) -> bool:
        """Whether :meth:`fit` has run."""
        return self.coef_ is not None

    def fit(self, features: np.ndarray, labels: np.ndarray) -> "LogisticRegression":
        """Minimize the L2-regularised logistic loss by gradient descent."""
        x = as_2d_float(features, "features")
        y = np.ascontiguousarray(labels, dtype=np.float64)
        if y.ndim != 1 or y.size != x.shape[0]:
            raise DimensionMismatchError(
                f"labels have shape {y.shape}, expected ({x.shape[0]},)"
            )
        unique = set(np.unique(y).tolist())
        if not unique <= {-1.0, 1.0}:
            raise ValueError(f"labels must be in {{-1, +1}}, got values {sorted(unique)}")
        n, dim = x.shape
        weights = np.zeros(dim)
        bias = 0.0
        for _ in range(self._epochs):
            margins = y * (x @ weights + bias)
            # d/dw logistic loss = -y x * sigmoid(-margin)
            slope = -y / (1.0 + np.exp(np.clip(margins, -500, 500)))
            grad_w = (x.T @ slope) / n + self._l2 * weights
            weights -= self._lr * grad_w
            if self._fit_intercept:
                bias -= self._lr * float(slope.mean())
        self.coef_ = weights
        self.intercept_ = float(bias)
        return self

    def decision_function(self, features: np.ndarray) -> np.ndarray:
        """Signed distance-proportional scores ``<w, x> + b``."""
        if not self.is_fitted:
            raise RuntimeError("classifier is not fitted")
        x = as_2d_float(features, "features")
        return x @ self.coef_ + self.intercept_

    def predict(self, features: np.ndarray) -> np.ndarray:
        """Class labels in {-1, +1} (0 scores resolve to +1)."""
        scores = self.decision_function(features)
        return np.where(scores >= 0.0, 1, -1).astype(np.int8)

    def accuracy(self, features: np.ndarray, labels: np.ndarray) -> float:
        """Fraction of correct predictions."""
        return float(np.mean(self.predict(features) == np.asarray(labels)))

    def hyperplane(self) -> tuple[np.ndarray, float]:
        """The decision hyperplane as ``(normal, offset)``: ``<w, x> = -b``."""
        if not self.is_fitted:
            raise RuntimeError("classifier is not fitted")
        return self.coef_.copy(), -self.intercept_


def make_linear_classification(
    n: int,
    dim: int,
    noise: float = 0.05,
    rng: np.random.Generator | int | None = None,
) -> tuple[np.ndarray, np.ndarray, np.ndarray, float]:
    """A linearly separable pool with label noise.

    Returns ``(points, labels, true_normal, true_offset)`` where labels are
    ``sign(<true_normal, x> - true_offset)`` with a ``noise`` fraction
    flipped — the pool-based active learning testbed.
    """
    if not 0.0 <= noise < 0.5:
        raise ValueError(f"noise must be in [0, 0.5), got {noise}")
    generator = as_rng(rng)
    points = generator.normal(0.0, 1.0, size=(n, dim))
    normal = generator.normal(0.0, 1.0, size=dim)
    normal /= np.linalg.norm(normal)
    offset = 0.0
    labels = np.where(points @ normal - offset >= 0.0, 1, -1).astype(np.int8)
    flips = generator.random(n) < noise
    labels[flips] = -labels[flips]
    return points, labels, normal, offset
