"""Request resilience: deadlines, circuit breakers, jitter, health states.

This module is the serving layer's failure story, in four deterministic
pieces (guide: ``docs/reliability.md``; operator runbook:
``docs/operations.md``):

* :class:`Deadline` — one request's end-to-end time budget.  Created
  from the ``X-Repro-Deadline-Ms`` header (default
  ``REPRO_SERVE_DEADLINE_MS``), it is *decremented through the whole
  pipeline*: admission, batch linger (a batch never lingers past its
  tightest member's remaining budget), and the engine call (the
  remaining budget becomes ``query_timeout_s``).  An expired deadline is
  answered ``504`` with a per-stage elapsed/budget breakdown — never a
  partial answer dressed up as a complete one.
* :class:`CircuitBreaker` / :class:`BreakerBoard` — per ``(tenant, op)``
  closed → open → half-open state machines.  Consecutive engine
  errors/timeouts trip a breaker open; while open, requests shed with
  ``503`` + ``Retry-After``; after the cooldown one *probe* request is
  let through half-open, and its outcome closes or re-opens the
  breaker.  A sick tenant or op degrades alone instead of dragging the
  queue down for everyone.
* :class:`RetryJitter` — deterministic, seeded multiplicative jitter for
  ``Retry-After`` values, so synchronized clients do not stampede back
  on the same tick (thundering herd).
* :func:`health_state` — the ``/healthz`` lifecycle
  (``healthy`` / ``degraded`` / ``browned_out`` / ``draining``) computed
  from breaker states, queue depth, and the shutdown phase, so load
  balancers can steer on it.

Everything here takes an injectable monotonic clock (the token-bucket
idiom from :mod:`repro.serve.admission`), so every state transition is
fake-clock testable with no sleeps.
"""

from __future__ import annotations

import random
import time
from typing import Callable, Dict, Optional, Tuple

from ..obs import events as _oev
from ..obs import metrics as _om

__all__ = [
    "BREAKER_STATES",
    "HEALTH_STATES",
    "BreakerBoard",
    "CircuitBreaker",
    "Deadline",
    "RetryJitter",
    "health_state",
]

#: Breaker states in gauge-value order: ``repro_breaker_state`` exports
#: the index (0 = closed, 1 = open, 2 = half_open).
BREAKER_STATES = ("closed", "open", "half_open")

#: Health states in gauge-value order: ``repro_serve_health_state``
#: exports the index (0 = healthy ... 3 = draining).
HEALTH_STATES = ("healthy", "degraded", "browned_out", "draining")


class Deadline:
    """One request's end-to-end time budget, decremented through stages.

    ``mark(stage)`` charges the time since the previous mark to
    ``stage``; :meth:`breakdown` renders the running account for the
    ``504`` response body, so a client can see *where* its budget went
    (admission vs queue linger vs engine).
    """

    __slots__ = ("budget_s", "_clock", "_started", "_last_mark", "_stages")

    def __init__(
        self,
        budget_s: float,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        if not budget_s > 0:
            raise ValueError(f"deadline budget must be positive, got {budget_s}")
        self.budget_s = float(budget_s)
        self._clock = clock
        self._started = clock()
        self._last_mark = self._started
        self._stages: Dict[str, float] = {}

    def elapsed_s(self) -> float:
        """Seconds consumed since the request was accepted."""
        return max(0.0, self._clock() - self._started)

    def remaining_s(self) -> float:
        """Budget left, floored at zero."""
        return max(0.0, self.budget_s - self.elapsed_s())

    def expired(self) -> bool:
        """Whether the budget is fully consumed."""
        return self.elapsed_s() >= self.budget_s

    def mark(self, stage: str) -> None:
        """Charge the time since the previous mark to ``stage``."""
        now = self._clock()
        self._stages[stage] = self._stages.get(stage, 0.0) + max(
            0.0, now - self._last_mark
        )
        self._last_mark = now

    def breakdown(self) -> dict:
        """The elapsed/budget account for a ``504`` response body."""
        return {
            "budget_ms": round(self.budget_s * 1000.0, 3),
            "elapsed_ms": round(self.elapsed_s() * 1000.0, 3),
            "stages_ms": {
                stage: round(spent * 1000.0, 3)
                for stage, spent in self._stages.items()
            },
        }


class RetryJitter:
    """Deterministic multiplicative jitter for ``Retry-After`` values.

    ``apply(base)`` returns a value in ``[base, base * (1 + spread)]``
    drawn from a seeded RNG, so a burst of synchronized sheds disperses
    its retries instead of stampeding back on one tick — and a seeded
    test replays the exact sequence.  The result never undercuts
    ``base``: a quota shed's base names when the next token exists, and
    honoring the jittered header still finds it there.
    """

    __slots__ = ("_rng", "spread")

    def __init__(self, seed: int = 0, spread: float = 0.5) -> None:
        if spread < 0:
            raise ValueError(f"jitter spread must be >= 0, got {spread}")
        self._rng = random.Random(seed)
        self.spread = float(spread)

    def apply(self, base_s: float) -> float:
        """Jitter ``base_s`` upward by at most ``spread * base_s``."""
        if base_s <= 0 or self.spread == 0:
            return base_s
        return base_s * (1.0 + self.spread * self._rng.random())


class CircuitBreaker:
    """One closed → open → half-open state machine.

    * ``closed`` — requests flow; ``threshold`` *consecutive* failures
      trip it open (any success resets the streak).
    * ``open`` — requests shed with a ``Retry-After`` naming the cooldown
      remainder; once ``cooldown_s`` elapses the next :meth:`allow`
      transitions to half-open and admits that caller as the probe.
    * ``half_open`` — exactly one trial request is in flight; its
      success closes the breaker, its failure re-opens it (fresh
      cooldown).  Everyone else sheds with ``Retry-After = cooldown_s``.

    Outcomes reported while open (stragglers from before the trip) are
    ignored so the state machine stays a pure function of the
    (injectable) clock and the probe's outcome.
    """

    __slots__ = (
        "threshold",
        "cooldown_s",
        "state",
        "_clock",
        "_failures",
        "_opened_at",
        "_probing",
        "_on_transition",
    )

    def __init__(
        self,
        threshold: int = 5,
        cooldown_s: float = 1.0,
        clock: Callable[[], float] = time.monotonic,
        on_transition: Optional[Callable[[str, str], None]] = None,
    ) -> None:
        if threshold < 1:
            raise ValueError(f"breaker threshold must be >= 1, got {threshold}")
        if not cooldown_s > 0:
            raise ValueError(f"breaker cooldown must be positive, got {cooldown_s}")
        self.threshold = int(threshold)
        self.cooldown_s = float(cooldown_s)
        self.state = "closed"
        self._clock = clock
        self._failures = 0
        self._opened_at = 0.0
        self._probing = False
        self._on_transition = on_transition

    def _transition(self, state: str) -> None:
        previous, self.state = self.state, state
        if previous != state and self._on_transition is not None:
            self._on_transition(previous, state)

    def allow(self) -> Tuple[bool, float]:
        """``(admitted, retry_after_s)`` for one request, advancing state."""
        if self.state == "closed":
            return True, 0.0
        if self.state == "open":
            waited = self._clock() - self._opened_at
            if waited < self.cooldown_s:
                return False, max(0.001, self.cooldown_s - waited)
            self._transition("half_open")
            self._probing = True
            return True, 0.0
        # half_open: one probe at a time.
        if self._probing:
            return False, self.cooldown_s
        self._probing = True
        return True, 0.0

    def record_success(self) -> None:
        """Report one successful engine outcome for this key."""
        if self.state == "closed":
            self._failures = 0
        elif self.state == "half_open":
            self._failures = 0
            self._probing = False
            self._transition("closed")
        # open: a straggler from before the trip — ignored.

    def record_failure(self) -> None:
        """Report one engine error/timeout outcome for this key."""
        if self.state == "closed":
            self._failures += 1
            if self._failures >= self.threshold:
                self._opened_at = self._clock()
                self._transition("open")
        elif self.state == "half_open":
            self._probing = False
            self._opened_at = self._clock()
            self._transition("open")
        # open: already shedding; nothing to learn.


class BreakerBoard:
    """All of a service's breakers, keyed ``(tenant, op)``.

    Lazily creates one :class:`CircuitBreaker` per key and wires its
    transitions into telemetry: the ``repro_breaker_state`` gauge, the
    ``repro_breaker_transitions_total`` counter, and (when the query log
    is armed) one ``breaker`` record per transition — open → half-open →
    closed flips are visible in ``/metrics`` and replayable from the
    log.  Single-threaded under the service's event loop, so no lock.
    """

    def __init__(
        self,
        threshold: int = 5,
        cooldown_s: float = 1.0,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        self._threshold = threshold
        self._cooldown_s = cooldown_s
        self._clock = clock
        self._breakers: Dict[Tuple[str, str], CircuitBreaker] = {}

    def breaker(self, tenant: str, op: str) -> CircuitBreaker:
        """The breaker governing ``(tenant, op)``, created on first use."""
        key = (tenant, op)
        breaker = self._breakers.get(key)
        if breaker is None:
            breaker = CircuitBreaker(
                threshold=self._threshold,
                cooldown_s=self._cooldown_s,
                clock=self._clock,
                on_transition=lambda old, new, _key=key: self._note(_key, old, new),
            )
            self._breakers[key] = breaker
        return breaker

    def _note(self, key: Tuple[str, str], old: str, new: str) -> None:
        tenant, op = key
        _om.breaker_state().set(
            float(BREAKER_STATES.index(new)), tenant=tenant, op=op
        )
        _om.breaker_transitions_total().inc(tenant=tenant, op=op, state=new)
        if _oev.armed():
            _oev.emit(
                {
                    "event": "breaker",
                    "tenant": tenant,
                    "op": op,
                    "from": old,
                    "to": new,
                }
            )

    def allow(self, tenant: str, op: str) -> Tuple[bool, float]:
        """``(admitted, retry_after_s)`` from the ``(tenant, op)`` breaker."""
        return self.breaker(tenant, op).allow()

    def record(self, tenant: str, op: str, ok: bool) -> None:
        """Report one engine outcome to the ``(tenant, op)`` breaker."""
        breaker = self.breaker(tenant, op)
        if ok:
            breaker.record_success()
        else:
            breaker.record_failure()

    def count(self, state: str) -> int:
        """How many breakers are currently in ``state``."""
        return sum(1 for b in self._breakers.values() if b.state == state)

    def summary(self) -> dict:
        """Counts per state plus the keys currently not closed."""
        tripped = sorted(
            f"{tenant}:{op}"
            for (tenant, op), b in self._breakers.items()
            if b.state != "closed"
        )
        return {
            "closed": self.count("closed"),
            "open": self.count("open"),
            "half_open": self.count("half_open"),
            "tripped": tripped,
        }


def health_state(
    *,
    phase: str,
    open_breakers: int,
    half_open_breakers: int,
    queue_depth: int,
    brownout_depth: int,
) -> str:
    """The ``/healthz`` lifecycle state, most severe condition first.

    ``draining`` (shutdown in progress — load balancers must stop
    routing here) dominates ``browned_out`` (queue past the brownout
    band: best-effort traffic is shedding) dominates ``degraded`` (at
    least one breaker open or probing — some tenant/op is failing)
    dominates ``healthy``.
    """
    if phase != "running":
        return "draining"
    if queue_depth >= brownout_depth:
        return "browned_out"
    if open_breakers or half_open_breakers:
        return "degraded"
    return "healthy"
