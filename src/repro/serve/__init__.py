"""Serving layer: an asyncio HTTP front-end over the sharded engine.

Turns concurrent network requests into the batched engine calls the
parallel layer answers cheaply: a micro-batcher coalesces requests
within a small time/size window into single ``query_batch`` /
``topk_batch`` calls (answers bit-identical to direct library use), and
per-tenant admission control — token-bucket quotas, priority classes, a
bounded queue with brownout shedding — keeps overload at the front door
instead of inside the engine.  The resilience module closes the failure
story end-to-end: per-request deadline budgets propagated through every
hop (``X-Repro-Deadline-Ms`` → admission → linger → engine timeout),
per-(tenant, op) circuit breakers, deterministic retry jitter, and a
``/healthz`` health-state machine load balancers can act on.  See
``docs/serving.md`` for the guide and ``docs/operations.md`` for the
operator runbook.

Entry points: ``python -m repro serve`` (CLI),
:func:`~repro.serve.service.serve_in_thread` (embedded), and the classes
below for custom wiring.
"""

from .admission import AdmissionController, AdmissionDecision, TokenBucket
from .batcher import MicroBatcher, PendingRequest
from .config import ServiceConfig, TenantSpec, load_tenants
from .resilience import (
    BreakerBoard,
    CircuitBreaker,
    Deadline,
    RetryJitter,
    health_state,
)
from .service import QueryService, ServerHandle, serve_in_thread

__all__ = [
    "AdmissionController",
    "AdmissionDecision",
    "BreakerBoard",
    "CircuitBreaker",
    "Deadline",
    "MicroBatcher",
    "PendingRequest",
    "QueryService",
    "RetryJitter",
    "ServerHandle",
    "ServiceConfig",
    "TenantSpec",
    "TokenBucket",
    "health_state",
    "load_tenants",
    "serve_in_thread",
]
