"""Micro-batcher: coalesces concurrent requests into engine batch calls.

The service admits requests onto one asyncio queue; this module drains
that queue and turns *windows* of requests into single
``ShardedFunctionIndex.query_batch`` / ``topk_batch`` calls — the calls
PR 8 made cheap — so concurrency buys amortization instead of executor
contention.  Answers are **bit-identical** to direct library calls: the
batcher only regroups requests, the engine's batch facades already
guarantee batch ≡ loop-of-singles (property-tested on both sides).

Coalescing policy (``window > 0``):

* the first queued request opens a batch and drains whatever else is
  already queued (same event-loop tick bursts coalesce for free);
* the batch then *lingers* — up to the window deadline — only while
  other admitted requests are still unanswered somewhere (in flight on
  the engine, or mid-parse on another connection).  A lone request on an
  otherwise idle service flushes immediately, so the window adds **zero
  latency** to unconcurrent traffic;
* ``batch_max`` caps a batch; excess requests start the next one.

``window == 0`` is strict passthrough — every request becomes its own
engine call (still concurrent across executor threads).  That is the
baseline ``benchmarks/bench_serve.py`` measures the ≥3× amortization
gate against.

Requests in one batch may mix inequality and top-k ops (and operators
and ``k``); the batcher groups by ``(op, comparison, k)`` and issues one
engine call per group, concurrently.  Each group call runs on an
executor thread under **one serve-level trace**: the engine's own
``begin`` sees the active context and nests, so shard spans stitch under
the serve root and every member request of the group reports the same
``trace_id`` (see ``docs/serving.md``).
"""

from __future__ import annotations

import asyncio
from dataclasses import dataclass, field
from typing import Any, Optional

import numpy as np

from ..exceptions import DeadlineExceededError, DrainTimeoutError
from ..obs import metrics as _om
from ..obs import runtime as _ort
from ..obs import trace as _otr
from ..parallel.engine import ShardedFunctionIndex
from ..reliability import faults as _flt
from .resilience import Deadline

__all__ = ["MicroBatcher", "PendingRequest"]


@dataclass(eq=False)
class PendingRequest:
    """One admitted request waiting for its batch.

    ``eq=False`` keeps dataclass identity semantics: the batcher tracks
    unresolved requests in a set, and two requests with identical
    payloads are still two distinct requests.
    """

    op: str  #: "query" | "topk"
    normal: np.ndarray
    offset: float
    comparison: str  #: "<=", "<", ">=", ">"
    k: int  #: top-k size (0 for inequality requests)
    tenant: str
    deadline: Optional[Deadline] = None  #: end-to-end budget (None = unbounded)
    future: "asyncio.Future[tuple[Any, Optional[str]]]" = field(repr=False, default=None)  # type: ignore[assignment]


def _run_group(
    engine: ShardedFunctionIndex,
    op: str,
    normals: np.ndarray,
    offsets: np.ndarray,
    k: int,
    comparison: str,
    timeout_s: Optional[float],
) -> tuple[list, Optional[str]]:
    """Execute one coalesced engine call on an executor thread.

    Opens the serve-level trace *here*, on the thread the engine call
    runs on: the engine's facade ``begin`` then returns ``None`` (traces
    never nest) and its shard fan-out stitches under this root instead,
    so one coalesced call yields one trace.  Returns the positionally
    aligned answers plus the trace id the member responses share.

    ``timeout_s`` is the group's deadline-derived engine budget; a stall
    injected at ``serve.dispatch`` burns it on this thread, off the
    event loop.
    """
    if _flt.ARMED:
        _flt.check("serve.dispatch", op=op, n=len(offsets))
    ctx = _otr.begin("serve", shards=engine.n_shards, op=op, n_requests=len(offsets))
    try:
        if op == "query":
            answers: list = engine.query_batch(
                normals, offsets, comparison, timeout_s=timeout_s
            )
        else:
            answers = engine.topk_batch(
                normals, offsets, k, comparison, timeout_s=timeout_s
            )
    except BaseException as exc:  # repro: noqa(REP005) — trace-abort boundary; telemetry closes, exception re-raised unchanged
        if ctx is not None:
            _otr.abort(ctx, exc)
        raise
    if ctx is not None:
        degraded = next(
            (answer.degraded for answer in answers if answer.degraded is not None),
            None,
        )
        if _ort.ENABLED:  # repro: noqa(REP012) — thread-shared flag; serve runs in the parent process only
            _om.answer_completeness().observe(
                degraded.completeness if degraded is not None else 1.0,
                kind="serve",
            )
        _otr.finish(
            ctx,
            degraded=degraded,
            shards=engine.n_shards,
            n_queries=len(offsets),
            results=sum(int(np.asarray(answer.ids).size) for answer in answers),
        )
        return answers, ctx.trace_id
    return answers, None


class MicroBatcher:
    """Owns the request queue and the coalescing loop.

    Single-threaded under the event loop except for the engine calls,
    which run on the loop's default executor.  ``outstanding`` counts
    admitted requests whose futures are unresolved — the service uses it
    as the admission queue depth (it is the true backlog: queued, in a
    forming batch, or in flight on the engine).
    """

    def __init__(
        self,
        engine: ShardedFunctionIndex,
        *,
        window_s: float,
        batch_max: int,
    ) -> None:
        if window_s < 0:
            raise ValueError(f"window must be >= 0, got {window_s}")
        if batch_max < 1:
            raise ValueError(f"batch_max must be >= 1, got {batch_max}")
        self._engine = engine
        self._window_s = window_s
        self._batch_max = batch_max
        self._queue: "asyncio.Queue[PendingRequest]" = asyncio.Queue()
        self._outstanding = 0
        self._unresolved: set[PendingRequest] = set()
        self._task: Optional[asyncio.Task] = None
        self._stats = {"batches": 0, "batched_requests": 0, "max_batch": 0}

    @property
    def outstanding(self) -> int:
        """Admitted requests not yet answered (the live backlog)."""
        return self._outstanding

    def stats(self) -> dict:
        """Snapshot of batching counters (batches, members, max size)."""
        snapshot = dict(self._stats)
        mean = (
            snapshot["batched_requests"] / snapshot["batches"]
            if snapshot["batches"]
            else 0.0
        )
        snapshot["mean_batch"] = round(mean, 3)
        return snapshot

    def start(self) -> None:
        """Start the coalescing loop on the running event loop."""
        if self._task is None:
            self._task = asyncio.get_running_loop().create_task(self._run())

    async def stop(self, drain_timeout_s: float = 10.0) -> None:
        """Drain the backlog within the budget, then fail-fast leftovers.

        Callers must stop accepting new requests first (close the HTTP
        server).  Requests flushed inside ``drain_timeout_s`` resolve
        normally; anything still unanswered when the budget runs out gets
        :class:`DrainTimeoutError` set on its future — an explicit 503
        instead of a dead connection — so shutdown is bounded no matter
        what is stuck on the engine.
        """
        deadline = asyncio.get_running_loop().time() + drain_timeout_s
        while self._outstanding > 0 and asyncio.get_running_loop().time() < deadline:
            await asyncio.sleep(0.005)
        if self._task is not None:
            self._task.cancel()
            try:
                await self._task
            except asyncio.CancelledError:
                pass
            self._task = None
        if self._unresolved:
            error = DrainTimeoutError(
                f"{len(self._unresolved)} request(s) still unanswered when the "
                f"{drain_timeout_s}s drain budget ran out"
            )
            for member in list(self._unresolved):
                self._resolve(member, error=error)

    async def enqueue(self, request: PendingRequest) -> tuple[Any, Optional[str]]:
        """Queue one admitted request and await ``(answer, trace_id)``."""
        request.future = asyncio.get_running_loop().create_future()
        self._outstanding += 1
        self._unresolved.add(request)
        # Serve-layer families record unconditionally: running the service
        # is explicit opt-in, and /metrics must be useful without REPRO_OBS
        # (engine internals still arm separately).
        _om.serve_queue_depth().set(float(self._outstanding))
        self._queue.put_nowait(request)
        return await request.future

    async def _run(self) -> None:
        """The coalescing loop: form batches, dispatch engine groups."""
        while True:
            first = await self._queue.get()
            batch = [first]
            if self._window_s > 0 and self._batch_max > 1:
                await self._fill(batch)
            self._dispatch(batch)

    async def _fill(self, batch: list) -> None:
        """Grow ``batch`` up to the size cap / window deadline.

        Lingering is conditional: once the queue is drained, keep
        waiting only while other admitted requests are still unanswered
        (they may join this window); an idle service flushes at once.
        The linger is also capped by the *tightest member's* remaining
        deadline budget — a batch never idles a nearly-expired request
        past its 504 to wait for company.
        """
        loop = asyncio.get_running_loop()
        deadline = loop.time() + self._window_s
        while len(batch) < self._batch_max:
            while len(batch) < self._batch_max:
                try:
                    batch.append(self._queue.get_nowait())
                except asyncio.QueueEmpty:
                    break
            if len(batch) >= self._batch_max:
                return
            if self._outstanding <= len(batch):
                return
            remaining = deadline - loop.time()
            for member in batch:
                if member.deadline is not None:
                    remaining = min(remaining, member.deadline.remaining_s())
            if remaining <= 0:
                return
            try:
                batch.append(
                    await asyncio.wait_for(self._queue.get(), timeout=remaining)
                )
            except asyncio.TimeoutError:
                return

    def _dispatch(self, batch: list) -> None:
        """Group a batch by ``(op, comparison, k)`` and fire engine calls."""
        if _flt.ARMED:
            try:
                _flt.check("serve.flush", n=len(batch))
            except Exception as exc:  # repro: noqa(REP005) — injected flush fault fans out to every member future
                for request in batch:
                    self._resolve(request, error=exc)
                return
        self._stats["batches"] += 1
        self._stats["batched_requests"] += len(batch)
        if len(batch) > self._stats["max_batch"]:
            self._stats["max_batch"] = len(batch)
        groups: dict[tuple[str, str, int], list[PendingRequest]] = {}
        for request in batch:
            key = (request.op, request.comparison, request.k)
            groups.setdefault(key, []).append(request)
        loop = asyncio.get_running_loop()
        for (op, comparison, k), members in groups.items():
            loop.create_task(self._execute_group(op, comparison, k, members))

    async def _execute_group(
        self,
        op: str,
        comparison: str,
        k: int,
        members: list,
    ) -> None:
        """Run one grouped engine call and resolve its member futures.

        Members whose deadline already expired fail fast with ``504``
        material instead of burning an engine slot; the survivors' engine
        call gets a deadline-derived ``timeout_s`` (the *loosest* member's
        remaining budget, so a tight stranger coalesced into the group
        cannot shrink everyone else's engine time — per-request deadline
        enforcement stays at the service layer).
        """
        live: list[PendingRequest] = []
        for member in members:
            if member.deadline is not None:
                member.deadline.mark("linger")
                if member.deadline.expired():
                    _om.serve_deadline_expired_total().inc(stage="dispatch")
                    self._resolve(
                        member,
                        error=DeadlineExceededError(
                            "deadline budget exhausted before the engine call"
                        ),
                    )
                    continue
            live.append(member)
        if not live:
            return
        timeout_s: Optional[float] = None
        if all(member.deadline is not None for member in live):
            timeout_s = max(
                0.001, max(member.deadline.remaining_s() for member in live)
            )
        _om.serve_batch_size().observe(float(len(live)), op=op)
        normals = np.stack([member.normal for member in live])
        offsets = np.asarray(
            [member.offset for member in live], dtype=np.float64
        )
        loop = asyncio.get_running_loop()
        try:
            answers, trace_id = await loop.run_in_executor(
                None,
                _run_group,
                self._engine,
                op,
                normals,
                offsets,
                k,
                comparison,
                timeout_s,
            )
        except Exception as exc:  # repro: noqa(REP005) — fan the group failure out to every member future; the HTTP layer maps it to a status
            for member in live:
                self._resolve(member, error=exc)
            return
        for member, answer in zip(live, answers):
            self._resolve(member, result=(answer, trace_id))

    def _resolve(
        self,
        member: PendingRequest,
        *,
        result: Any = None,
        error: Optional[BaseException] = None,
    ) -> None:
        """Resolve one member future and retire it from the backlog.

        Guarded on set membership so a request can only be retired once —
        the drain fail-fast path and a late engine completion may both
        try to resolve the same member.
        """
        if member not in self._unresolved:
            return
        self._unresolved.discard(member)
        self._outstanding -= 1
        _om.serve_queue_depth().set(float(self._outstanding))
        if member.future.done():
            return
        if error is not None:
            member.future.set_exception(error)
        else:
            member.future.set_result(result)
