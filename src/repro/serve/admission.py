"""Per-tenant admission control: token buckets, priorities, load shedding.

Admission runs *before* a request enters the batching queue and decides
in O(1) whether to accept it or shed it with ``429 Too Many Requests``:

* **quota** — each tenant owns a token bucket (``rate`` tokens/second,
  ``burst`` capacity); an empty bucket sheds with a ``Retry-After``
  computed from the refill rate, so a well-behaved client that honors
  the header never sheds twice in a row;
* **queue_full** — the bounded queue protects the engine: once
  ``queue_depth`` requests are waiting, everyone sheds;
* **brownout** — the soft limit: once the queue passes
  ``brownout_fraction × queue_depth``, best-effort tenants
  (``priority > 0``) shed early so interactive traffic keeps its queue
  room.  This is the serving-layer analogue of the reliability layer's
  ``degrade`` policy — partial service before no service — and the two
  compose: brownout sheds load at the front door while degraded answers
  account for shard loss behind it (see ``docs/serving.md``).

Every shed's ``Retry-After`` is stretched by a deterministic seeded
jitter (:class:`~repro.serve.resilience.RetryJitter`): a burst of
synchronized clients that all shed on the same tick would otherwise all
retry on the same tick too, re-creating the overload they were shed to
relieve.  Jitter only ever *adds* (the base names when capacity actually
exists), so honoring the header still succeeds.

Everything here is synchronous and lock-free under the asyncio event
loop (one decision per request, no awaits); the monotonic clock is
injectable for deterministic tests.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Callable, Dict

from .config import ServiceConfig, TenantSpec
from .resilience import RetryJitter

__all__ = ["AdmissionController", "AdmissionDecision", "TokenBucket"]

#: Suggested client back-off when shedding on queue pressure: one batch
#: window is too optimistic, a full second too pessimistic.
_QUEUE_RETRY_S = 0.1


class TokenBucket:
    """Classic token bucket; ``rate <= 0`` means unlimited.

    Tokens refill continuously at ``rate`` per second up to ``burst``.
    :meth:`try_acquire` takes one token or reports the wait until the
    next one is available.
    """

    __slots__ = ("rate", "burst", "_tokens", "_updated", "_clock")

    def __init__(
        self,
        rate: float,
        burst: float,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        self.rate = float(rate)
        self.burst = max(1.0, float(burst))
        self._tokens = self.burst
        self._clock = clock
        self._updated = clock()

    def _refill(self, now: float) -> None:
        elapsed = now - self._updated
        if elapsed > 0:
            self._tokens = min(self.burst, self._tokens + elapsed * self.rate)
            self._updated = now

    def try_acquire(self) -> bool:
        """Take one token if available; never blocks."""
        if self.rate <= 0:
            return True
        self._refill(self._clock())
        if self._tokens >= 1.0:
            self._tokens -= 1.0
            return True
        return False

    def retry_after(self) -> float:
        """Seconds until the next token exists (0 when one is available)."""
        if self.rate <= 0:
            return 0.0
        self._refill(self._clock())
        if self._tokens >= 1.0:
            return 0.0
        return (1.0 - self._tokens) / self.rate


@dataclass(frozen=True)
class AdmissionDecision:
    """Outcome of one admission check."""

    admitted: bool
    tenant: TenantSpec
    reason: str = ""  #: "" | "quota" | "queue_full" | "brownout"
    retry_after_s: float = 0.0


class AdmissionController:
    """Applies the config's quotas and shedding rules to one request."""

    def __init__(
        self,
        config: ServiceConfig,
        clock: Callable[[], float] = time.monotonic,
        jitter: RetryJitter | None = None,
    ) -> None:
        self._config = config
        self._clock = clock
        self._jitter = jitter if jitter is not None else RetryJitter(seed=0)
        self._buckets: Dict[str, TokenBucket] = {}
        self._brownout_depth = max(
            1, int(config.brownout_fraction * config.queue_depth)
        )

    @property
    def brownout_depth(self) -> int:
        """Queue depth at which best-effort tenants start shedding."""
        return self._brownout_depth

    def _bucket(self, spec: TenantSpec) -> TokenBucket:
        bucket = self._buckets.get(spec.name)
        if bucket is None:
            bucket = self._buckets[spec.name] = TokenBucket(
                spec.rate, spec.burst, self._clock
            )
        return bucket

    def admit(self, tenant: str, queue_depth: int) -> AdmissionDecision:
        """Decide one request: quota first, then queue bound, then brownout.

        ``queue_depth`` is the number of admitted requests currently
        waiting (the service passes its live gauge).  Quota is checked
        first so a greedy tenant burns its own bucket, not the queue's
        headroom.
        """
        spec = self._config.resolve_tenant(tenant)
        bucket = self._bucket(spec)
        if not bucket.try_acquire():
            return AdmissionDecision(
                admitted=False,
                tenant=spec,
                reason="quota",
                retry_after_s=self._jitter.apply(max(bucket.retry_after(), 0.001)),
            )
        if queue_depth >= self._config.queue_depth:
            return AdmissionDecision(
                admitted=False,
                tenant=spec,
                reason="queue_full",
                retry_after_s=self._jitter.apply(_QUEUE_RETRY_S),
            )
        if spec.priority > 0 and queue_depth >= self._brownout_depth:
            return AdmissionDecision(
                admitted=False,
                tenant=spec,
                reason="brownout",
                retry_after_s=self._jitter.apply(_QUEUE_RETRY_S),
            )
        return AdmissionDecision(admitted=True, tenant=spec)
