"""``repro serve`` — run the HTTP query service from the command line.

Builds (or loads) an engine, binds the service, and runs until SIGTERM /
SIGINT, shutting down gracefully: the socket closes first, the batcher
drains every admitted request, then the engine closes.  ``--ready-file``
writes ``host:port`` once the socket is listening so scripts and CI can
wait for startup without polling (the serving smoke lane does).

Configuration is environment-first (``REPRO_SERVE_*`` — see
``docs/operations.md``); the CLI flags cover only what the environment
cannot: the listen address and the engine to front.
"""

from __future__ import annotations

import argparse
import asyncio
import contextlib
import signal
from pathlib import Path

__all__ = ["configure_parser", "run_from_args"]


def configure_parser(parser: argparse.ArgumentParser) -> None:
    """Attach the ``repro serve`` arguments."""
    parser.add_argument("--host", default="127.0.0.1", help="listen address")
    parser.add_argument(
        "--port", type=int, default=8080,
        help="listen port (0 = ephemeral; see --ready-file)",
    )
    parser.add_argument(
        "--index", default=None,
        help="serve a persisted index (save_index artifact) instead of "
        "building a synthetic one",
    )
    parser.add_argument("--n", type=int, default=50_000, help="synthetic dataset size")
    parser.add_argument("--dim", type=int, default=6, help="synthetic dimensionality")
    parser.add_argument("--indices", type=int, default=100, help="index budget")
    parser.add_argument("--seed", type=int, default=0, help="random seed")
    parser.add_argument(
        "--ready-file", default=None,
        help="write host:port to this file once the socket is listening",
    )


def _build_engine(args: argparse.Namespace):
    """The engine to serve: a persisted artifact or a synthetic build."""
    from repro.parallel.engine import ShardedFunctionIndex

    if args.index:
        from repro.core.persistence import load_index

        mono = load_index(args.index, mode="copy")
        # Re-wrap the artifact's points behind the sharded facade so the
        # service has one engine type to talk to.  Ids are re-assigned
        # densely (0..n-1), as for any fresh build.
        _ids, points = mono._points.get_all()
        return ShardedFunctionIndex(
            points,
            mono.query_model,
            feature_map=mono.feature_map,
            n_indices=mono.n_indices,
            rng=args.seed,
            n_shards=args.shards,
            max_workers=args.workers,
        )
    from repro import QueryModel
    from repro.datasets import independent

    points = independent(args.n, args.dim, rng=args.seed).points
    model = QueryModel.uniform(dim=args.dim, low=1.0, high=5.0, rq=4)
    return ShardedFunctionIndex(
        points,
        model,
        n_indices=args.indices,
        rng=args.seed,
        n_shards=args.shards,
        max_workers=args.workers,
    )


async def _serve(args: argparse.Namespace, engine) -> int:
    """Bind, announce, and run until a termination signal."""
    from repro.serve.config import ServiceConfig
    from repro.serve.service import QueryService

    config = ServiceConfig.from_env()
    service = QueryService(engine, config)
    port = await service.start(args.host, args.port)
    stop = asyncio.Event()
    loop = asyncio.get_running_loop()
    for signum in (signal.SIGTERM, signal.SIGINT):
        with contextlib.suppress(NotImplementedError):  # non-POSIX loops
            loop.add_signal_handler(signum, stop.set)
    print(
        f"repro serve: listening on http://{args.host}:{port} "
        f"({len(engine):,} points, {engine.n_shards} shard(s), "
        f"window {config.batch_window_s * 1000:g} ms, "
        f"queue {config.queue_depth})",
        flush=True,
    )
    if args.ready_file:
        Path(args.ready_file).write_text(f"{args.host}:{port}\n", encoding="utf-8")
    try:
        await stop.wait()
    finally:
        await service.stop()
        print("repro serve: drained and stopped", flush=True)
    return 0


def run_from_args(args: argparse.Namespace) -> int:
    """Entry point for ``repro serve``; returns the process exit code."""
    engine = _build_engine(args)
    try:
        return asyncio.run(_serve(args, engine))
    finally:
        engine.close()
