"""Minimal HTTP/1.1 plumbing over asyncio streams (stdlib only).

Just enough protocol for the query service: request-line + header
parsing, ``Content-Length`` bodies, keep-alive, and JSON/text response
rendering.  Deliberately not a framework — the endpoint surface is five
routes (``docs/serving.md``), and the reproduction's no-dependency rule
(README) applies to the serving layer too.

Limits: request line and headers are capped at 16 KiB, bodies at 8 MiB
(a batch of float64 normals is small); chunked transfer encoding is not
accepted.  Violations fail the connection with 400/413 rather than
buffering unbounded input.
"""

from __future__ import annotations

import asyncio
import json
from dataclasses import dataclass, field
from typing import Any, Dict, Mapping, Optional, Tuple

__all__ = ["HttpError", "HttpRequest", "read_request", "render_response"]

_MAX_HEADER_BYTES = 16 * 1024
_MAX_BODY_BYTES = 8 * 1024 * 1024

_REASONS = {
    200: "OK",
    400: "Bad Request",
    404: "Not Found",
    405: "Method Not Allowed",
    413: "Payload Too Large",
    429: "Too Many Requests",
    500: "Internal Server Error",
    503: "Service Unavailable",
    504: "Gateway Timeout",
}


class HttpError(Exception):
    """A protocol-level failure mapped to an error response."""

    def __init__(self, status: int, detail: str) -> None:
        super().__init__(detail)
        self.status = status
        self.detail = detail


@dataclass
class HttpRequest:
    """One parsed request."""

    method: str
    path: str
    headers: Dict[str, str] = field(default_factory=dict)
    body: bytes = b""

    @property
    def keep_alive(self) -> bool:
        """Whether the client asked to reuse the connection."""
        return self.headers.get("connection", "").lower() != "close"

    def json(self) -> Any:
        """Decode the body as JSON, raising :class:`HttpError` 400 on junk."""
        if not self.body:
            raise HttpError(400, "request body must be a JSON object")
        try:
            return json.loads(self.body)
        except (ValueError, UnicodeDecodeError) as exc:
            raise HttpError(400, f"malformed JSON body: {exc}") from exc


async def read_request(reader: asyncio.StreamReader) -> Optional[HttpRequest]:
    """Parse one request from the stream; ``None`` on clean EOF.

    Raises :class:`HttpError` on malformed input and
    ``asyncio.IncompleteReadError`` / ``ConnectionError`` on transport
    failures mid-request (the connection handler drops the connection
    either way).
    """
    try:
        head = await reader.readuntil(b"\r\n\r\n")
    except asyncio.IncompleteReadError as exc:
        if not exc.partial:
            return None
        raise HttpError(400, "truncated request head") from exc
    except asyncio.LimitOverrunError as exc:
        raise HttpError(413, "request head too large") from exc
    if len(head) > _MAX_HEADER_BYTES:
        raise HttpError(413, "request head too large")
    lines = head.decode("latin-1").split("\r\n")
    parts = lines[0].split(" ")
    if len(parts) != 3 or not parts[2].startswith("HTTP/1."):
        raise HttpError(400, f"malformed request line: {lines[0]!r}")
    method, target, _version = parts
    headers: Dict[str, str] = {}
    for line in lines[1:]:
        if not line:
            continue
        name, sep, value = line.partition(":")
        if not sep:
            raise HttpError(400, f"malformed header line: {line!r}")
        headers[name.strip().lower()] = value.strip()
    if headers.get("transfer-encoding"):
        raise HttpError(400, "chunked transfer encoding is not supported")
    body = b""
    raw_length = headers.get("content-length")
    if raw_length is not None:
        try:
            length = int(raw_length)
        except ValueError as exc:
            raise HttpError(400, f"bad Content-Length: {raw_length!r}") from exc
        if length < 0 or length > _MAX_BODY_BYTES:
            raise HttpError(413, f"body of {length} bytes exceeds the limit")
        if length:
            body = await reader.readexactly(length)
    path = target.split("?", 1)[0]
    return HttpRequest(method=method.upper(), path=path, headers=headers, body=body)


def render_response(
    status: int,
    body: Any,
    *,
    content_type: str = "application/json",
    extra_headers: Optional[Mapping[str, str]] = None,
    keep_alive: bool = True,
) -> bytes:
    """Serialize one response; dict/list bodies are JSON-encoded."""
    if isinstance(body, (dict, list)):
        payload = json.dumps(body).encode("utf-8")
    elif isinstance(body, str):
        payload = body.encode("utf-8")
    else:
        payload = bytes(body)
    reason = _REASONS.get(status, "Unknown")
    headers: list[Tuple[str, str]] = [
        ("Content-Type", content_type),
        ("Content-Length", str(len(payload))),
        ("Connection", "keep-alive" if keep_alive else "close"),
    ]
    if extra_headers:
        headers.extend(extra_headers.items())
    head = f"HTTP/1.1 {status} {reason}\r\n" + "".join(
        f"{name}: {value}\r\n" for name, value in headers
    )
    return head.encode("latin-1") + b"\r\n" + payload
