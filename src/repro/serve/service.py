"""The query service: endpoints, admission, lifecycle, thread runner.

``QueryService`` fronts one :class:`~repro.parallel.engine.ShardedFunctionIndex`
with five endpoints (full reference with JSON examples in
``docs/serving.md``):

* ``POST /query`` — one inequality query; coalesced by the micro-batcher
* ``POST /topk`` — one top-k query; likewise
* ``GET /metrics`` — Prometheus text over the in-process registry
* ``GET /healthz`` — the health-state machine (``healthy`` / ``degraded``
  / ``browned_out`` / ``draining``) plus engine shape
* ``GET /slo`` — declared objectives evaluated against recorded metrics
* ``GET /stats`` — serving counters (batching, shedding, breakers) as JSON

Request flow: parse (including the ``X-Repro-Deadline-Ms`` budget) →
drain gate → admission (:mod:`repro.serve.admission`; sheds answer
``429`` with jittered ``Retry-After``) → per-(tenant, op) circuit
breaker (:mod:`repro.serve.resilience`; sheds answer ``503``) →
micro-batcher (:mod:`repro.serve.batcher`) → engine, with the request's
remaining budget enforced at every hop and expiry answered ``504`` with
the per-stage breakdown.  Degraded answers pass their ``DegradedInfo``
through to the response JSON **unmodified** — the serving layer never
rounds completeness up; clients see exactly what a direct library call
would report.

For tests, examples, and notebooks, :func:`serve_in_thread` runs the
whole asyncio stack on a daemon thread and returns a
:class:`ServerHandle` once the socket is listening.
"""

from __future__ import annotations

import asyncio
import math
import threading
import time
from typing import Any, Optional, Tuple

import numpy as np

from ..exceptions import (
    DeadlineExceededError,
    DegradedAnswerError,
    DimensionMismatchError,
    DrainTimeoutError,
    InjectedFaultError,
    InvalidQueryError,
    ReproError,
    ShardFailureError,
)
from ..obs import exporters as _oexp
from ..obs import metrics as _om
from ..obs import slo as _oslo
from ..parallel.engine import ShardedFunctionIndex
from ..reliability import faults as _flt
from .admission import AdmissionController
from .batcher import MicroBatcher, PendingRequest
from .config import ServiceConfig
from .http import HttpError, HttpRequest, read_request, render_response
from .resilience import (
    HEALTH_STATES,
    BreakerBoard,
    Deadline,
    RetryJitter,
    health_state,
)

__all__ = ["QueryService", "ServerHandle", "serve_in_thread"]

_OPS = ("<=", "<", ">=", ">")

#: Request header carrying the end-to-end deadline budget, milliseconds.
DEADLINE_HEADER = "x-repro-deadline-ms"


class QueryService:
    """One engine, one admission controller, one micro-batcher, N sockets."""

    def __init__(
        self,
        engine: ShardedFunctionIndex,
        config: Optional[ServiceConfig] = None,
    ) -> None:
        self._engine = engine
        self._config = config if config is not None else ServiceConfig.from_env()
        self._admission = AdmissionController(self._config)
        self._batcher = MicroBatcher(
            engine,
            window_s=self._config.batch_window_s,
            batch_max=self._config.batch_max,
        )
        self._breakers = BreakerBoard(
            threshold=self._config.breaker_threshold,
            cooldown_s=self._config.breaker_cooldown_s,
        )
        # Separate jitter stream from admission's, so 503 and 429 headers
        # draw independent (still seeded, still replayable) sequences.
        self._jitter = RetryJitter(seed=1)
        self._server: Optional[asyncio.base_events.Server] = None
        self._phase = "idle"  #: "idle" | "running" | "draining" | "stopped"
        self._shed = {
            "quota": 0,
            "queue_full": 0,
            "brownout": 0,
            "breaker": 0,
            "draining": 0,
            "fault": 0,
        }
        self._deadline_expired = 0
        self._requests = 0
        self._errors = 0

    @property
    def config(self) -> ServiceConfig:
        """The resolved serving configuration."""
        return self._config

    @property
    def port(self) -> int:
        """The bound port (only meaningful after :meth:`start`)."""
        if self._server is None or not self._server.sockets:
            raise RuntimeError("service is not started")
        return int(self._server.sockets[0].getsockname()[1])

    def stats(self) -> dict:
        """Serving counters: requests, sheds, deadlines, breakers, batching."""
        return {
            "requests": self._requests,
            "errors": self._errors,
            "shed": dict(self._shed),
            "deadline_expired": self._deadline_expired,
            "phase": self._phase,
            "breakers": self._breakers.summary(),
            "outstanding": self._batcher.outstanding,
            "batching": self._batcher.stats(),
        }

    async def start(self, host: str = "127.0.0.1", port: int = 0) -> int:
        """Bind the socket and start the batcher; returns the bound port."""
        if self._server is not None:
            raise RuntimeError("service is already started")
        self._batcher.start()
        self._server = await asyncio.start_server(self._on_connection, host, port)
        self._phase = "running"
        return self.port

    async def stop(self) -> None:
        """Graceful shutdown: drain gate up, socket closed, backlog flushed.

        The phase flips to ``draining`` *before* the socket closes, so
        requests racing shutdown on kept-alive connections get an explicit
        ``503`` instead of depending on TCP teardown timing; the batcher
        then gets ``drain_timeout_s`` to flush the admitted backlog, after
        which stragglers fail fast (:class:`DrainTimeoutError` → 503).
        """
        self._phase = "draining"
        server, self._server = self._server, None
        if server is not None:
            server.close()
            await server.wait_closed()
        await self._batcher.stop(self._config.drain_timeout_s)
        self._phase = "stopped"

    # ------------------------------------------------------------------ #
    # Connection handling
    # ------------------------------------------------------------------ #

    async def _on_connection(
        self,
        reader: asyncio.StreamReader,
        writer: asyncio.StreamWriter,
    ) -> None:
        """Serve one keep-alive connection until EOF or protocol error."""
        try:
            while True:
                try:
                    request = await read_request(reader)
                except HttpError as exc:
                    writer.write(
                        render_response(
                            exc.status,
                            {"error": "bad_request", "detail": exc.detail},
                            keep_alive=False,
                        )
                    )
                    await writer.drain()
                    return
                if request is None:
                    return
                status, payload, headers, content_type = await self._route(request)
                writer.write(
                    render_response(
                        status,
                        payload,
                        content_type=content_type,
                        extra_headers=headers,
                        keep_alive=request.keep_alive,
                    )
                )
                await writer.drain()
                if not request.keep_alive:
                    return
        except (ConnectionError, asyncio.IncompleteReadError):
            return  # client went away mid-request; nothing to answer
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, OSError):  # pragma: no cover - platform-dependent teardown
                pass

    async def _route(
        self, request: HttpRequest
    ) -> Tuple[int, Any, Optional[dict], str]:
        """Dispatch one request; returns (status, body, headers, type)."""
        path, method = request.path, request.method
        if path in ("/query", "/topk"):
            if method != "POST":
                return 405, {"error": "method_not_allowed", "detail": f"{path} is POST-only"}, None, "application/json"
            return await self._handle_query(request, op="query" if path == "/query" else "topk")
        if path not in ("/healthz", "/metrics", "/slo", "/stats"):
            return 404, {"error": "not_found", "detail": f"unknown path {path}"}, None, "application/json"
        if method != "GET":
            return 405, {"error": "method_not_allowed", "detail": f"{path} is GET-only"}, None, "application/json"
        if path == "/healthz":
            status, payload = self._healthz()
            return status, payload, None, "application/json"
        if path == "/metrics":
            return 200, _oexp.to_prometheus(), None, "text/plain; version=0.0.4"
        if path == "/slo":
            statuses = _oslo.evaluate(
                _om.registry(), _oslo.load_objectives(), publish=False
            )
            return 200, {"objectives": [s.to_dict() for s in statuses]}, None, "application/json"
        return 200, self.stats(), None, "application/json"  # /stats

    def _healthz(self) -> Tuple[int, dict]:
        """The health-state machine plus engine shape.

        ``healthy`` / ``degraded`` / ``browned_out`` answer 200 — the
        instance still serves, a load balancer may deprioritize it on the
        body — while ``draining`` answers 503 so health checks pull the
        instance as soon as shutdown starts.
        """
        state = health_state(
            phase=self._phase,
            open_breakers=self._breakers.count("open"),
            half_open_breakers=self._breakers.count("half_open"),
            queue_depth=self._batcher.outstanding,
            brownout_depth=self._admission.brownout_depth,
        )
        _om.serve_health_state().set(float(HEALTH_STATES.index(state)))
        payload = {
            "status": state,
            "phase": self._phase,
            "points": len(self._engine),
            "shards": self._engine.n_shards,
            "backend": self._engine.backend,
            "outstanding": self._batcher.outstanding,
            "brownout_depth": self._admission.brownout_depth,
            "breakers": self._breakers.summary(),
        }
        return (503 if state == "draining" else 200), payload

    # ------------------------------------------------------------------ #
    # /query and /topk
    # ------------------------------------------------------------------ #

    def _parse_query_body(self, request: HttpRequest, op: str) -> PendingRequest:
        """Validate the JSON body into a :class:`PendingRequest` (400 on junk)."""
        body = request.json()
        if not isinstance(body, dict):
            raise HttpError(400, "request body must be a JSON object")
        raw_normal = body.get("normal")
        if not isinstance(raw_normal, list) or not raw_normal:
            raise HttpError(400, "'normal' must be a non-empty array of numbers")
        try:
            normal = np.asarray(raw_normal, dtype=np.float64)
        except (TypeError, ValueError) as exc:
            raise HttpError(400, f"'normal' is not numeric: {exc}") from exc
        if normal.ndim != 1 or not np.all(np.isfinite(normal)):
            raise HttpError(400, "'normal' must be a flat array of finite numbers")
        dim = self._engine.feature_map.out_dim
        if normal.size != dim:
            raise HttpError(
                400, f"'normal' has dimension {normal.size}, the index has {dim}"
            )
        try:
            offset = float(body.get("offset"))
        except (TypeError, ValueError) as exc:
            raise HttpError(400, "'offset' must be a number") from exc
        if not math.isfinite(offset):
            raise HttpError(400, "'offset' must be finite")
        comparison = body.get("op", "<=")
        if comparison not in _OPS:
            raise HttpError(400, f"'op' must be one of {list(_OPS)}, got {comparison!r}")
        k = 0
        if op == "topk":
            raw_k = body.get("k")
            if not isinstance(raw_k, int) or isinstance(raw_k, bool) or raw_k < 1:
                raise HttpError(400, "'k' must be a positive integer")
            k = raw_k
        tenant = body.get("tenant", "default")
        if not isinstance(tenant, str) or not tenant:
            raise HttpError(400, "'tenant' must be a non-empty string")
        return PendingRequest(
            op=op, normal=normal, offset=offset, comparison=comparison, k=k,
            tenant=tenant,
        )

    def _parse_deadline(self, request: HttpRequest) -> Deadline:
        """The request's budget: ``X-Repro-Deadline-Ms`` or the default."""
        raw = request.headers.get(DEADLINE_HEADER, "").strip()
        if not raw:
            return Deadline(self._config.deadline_s)
        try:
            budget_ms = float(raw)
        except ValueError as exc:
            raise HttpError(
                400, f"X-Repro-Deadline-Ms must be a number, got {raw!r}"
            ) from exc
        if not budget_ms > 0 or not math.isfinite(budget_ms):
            raise HttpError(
                400, f"X-Repro-Deadline-Ms must be positive and finite, got {raw!r}"
            )
        return Deadline(budget_ms / 1000.0)

    def _shed_response(
        self, *, status: int, reason: str, tenant: str, op: str, retry_after_s: float
    ) -> Tuple[int, Any, Optional[dict], str]:
        """One shed (429/503): counters, body, and the Retry-After header."""
        self._shed[reason] += 1
        _om.serve_shed_total().inc(tenant=tenant, reason=reason)
        _om.serve_requests_total().inc(tenant=tenant, op=op, status="shed")
        return (
            status,
            {
                "error": "shed",
                "reason": reason,
                "tenant": tenant,
                "retry_after_s": round(retry_after_s, 4),
            },
            {"Retry-After": str(max(1, math.ceil(retry_after_s)))},
            "application/json",
        )

    def _deadline_response(
        self, deadline: Deadline, *, stage: str, tenant: str, op: str
    ) -> Tuple[int, Any, Optional[dict], str]:
        """One 504: the expiry counter and the elapsed/budget breakdown."""
        self._deadline_expired += 1
        self._errors += 1
        _om.serve_deadline_expired_total().inc(stage=stage)
        _om.serve_requests_total().inc(tenant=tenant, op=op, status="error")
        body = {"error": "deadline_exceeded", "stage": stage}
        body.update(deadline.breakdown())
        return 504, body, None, "application/json"

    async def _handle_query(
        self, request: HttpRequest, op: str
    ) -> Tuple[int, Any, Optional[dict], str]:
        """Deadline + admission + breaker + batching for /query and /topk."""
        started = time.perf_counter()
        self._requests += 1
        try:
            deadline = self._parse_deadline(request)
            pending = self._parse_query_body(request, op)
        except HttpError as exc:
            _om.serve_requests_total().inc(tenant="?", op=op, status="error")
            return exc.status, {"error": "bad_request", "detail": exc.detail}, None, "application/json"
        pending.deadline = deadline
        tenant = pending.tenant
        if _flt.ARMED:
            try:
                # A stall here burns the request's budget (that is the
                # point: it simulates a slow accept path); an error sheds.
                _flt.check("serve.accept", op=op, tenant=tenant)
            except InjectedFaultError:
                return self._shed_response(
                    status=503,
                    reason="fault",
                    tenant=tenant,
                    op=op,
                    retry_after_s=self._jitter.apply(1.0),
                )
        if self._phase != "running":
            return self._shed_response(
                status=503,
                reason="draining",
                tenant=tenant,
                op=op,
                retry_after_s=self._jitter.apply(1.0),
            )
        if deadline.expired():
            return self._deadline_response(
                deadline, stage="accept", tenant=tenant, op=op
            )
        decision = self._admission.admit(tenant, self._batcher.outstanding)
        if not decision.admitted:
            return self._shed_response(
                status=429,
                reason=decision.reason,
                tenant=tenant,
                op=op,
                retry_after_s=decision.retry_after_s,
            )
        allowed, breaker_retry_s = self._breakers.allow(tenant, op)
        if not allowed:
            return self._shed_response(
                status=503,
                reason="breaker",
                tenant=tenant,
                op=op,
                retry_after_s=self._jitter.apply(breaker_retry_s),
            )
        deadline.mark("admission")
        # From here the (tenant, op) breaker hears exactly one outcome —
        # engine trouble counts against it, client mistakes do not — so a
        # half-open probe can never be stranded in flight.
        engine_ok = True
        try:
            answer, trace_id = await asyncio.wait_for(
                self._batcher.enqueue(pending),
                timeout=max(deadline.remaining_s(), 0.001),
            )
        except (InvalidQueryError, DimensionMismatchError) as exc:
            self._errors += 1
            _om.serve_requests_total().inc(tenant=tenant, op=op, status="error")
            return 400, {"error": "bad_request", "detail": str(exc)}, None, "application/json"
        except DeadlineExceededError:
            # The batcher already counted stage="dispatch"; answer the 504.
            engine_ok = False
            self._deadline_expired += 1
            self._errors += 1
            _om.serve_requests_total().inc(tenant=tenant, op=op, status="error")
            body = {"error": "deadline_exceeded", "stage": "dispatch"}
            body.update(deadline.breakdown())
            return 504, body, None, "application/json"
        except DrainTimeoutError as exc:
            self._errors += 1
            _om.serve_requests_total().inc(tenant=tenant, op=op, status="error")
            return 503, {"error": "draining", "detail": str(exc)}, None, "application/json"
        except (ShardFailureError, DegradedAnswerError, InjectedFaultError) as exc:
            # ShardFailureError covers QueryTimeoutError (wave deadline)
            # and raise-policy shard failures alike: transient engine
            # trouble, answered 503 and counted against the breaker.
            engine_ok = False
            self._errors += 1
            _om.serve_requests_total().inc(tenant=tenant, op=op, status="error")
            return 503, {"error": "unavailable", "detail": str(exc)}, None, "application/json"
        except asyncio.TimeoutError:
            engine_ok = False
            return self._deadline_response(
                deadline, stage="await", tenant=tenant, op=op
            )
        except ReproError as exc:
            engine_ok = False
            self._errors += 1
            _om.serve_requests_total().inc(tenant=tenant, op=op, status="error")
            return 500, {"error": "internal", "detail": f"{type(exc).__name__}: {exc}"}, None, "application/json"
        finally:
            self._breakers.record(tenant, op, engine_ok)
        payload = self._shape_answer(op, answer, trace_id)
        _om.serve_requests_total().inc(tenant=tenant, op=op, status="ok")
        _om.serve_request_seconds().observe(time.perf_counter() - started, op=op)
        return 200, payload, None, "application/json"

    @staticmethod
    def _shape_answer(op: str, answer: Any, trace_id: Optional[str]) -> dict:
        """Render an engine answer as the documented response JSON.

        ``degraded`` is the engine's ``DegradedInfo.to_dict()`` verbatim
        (exact completeness passthrough); ``trace_id`` is shared by every
        request the same coalesced engine call answered.
        """
        degraded = answer.degraded.to_dict() if answer.degraded is not None else None
        if op == "query":
            return {
                "ids": answer.ids.tolist(),
                "count": int(answer.ids.size),
                "used_fallback": bool(answer.used_fallback),
                "degraded": degraded,
                "trace_id": trace_id,
            }
        return {
            "ids": answer.ids.tolist(),
            "distances": answer.distances.tolist(),
            "n_checked": int(answer.n_checked),
            "degraded": degraded,
            "trace_id": trace_id,
        }


class ServerHandle:
    """A running service on a background thread (tests / examples).

    ``stop()`` is idempotent and thread-safe; the engine is the caller's
    to close.  Use as a context manager for exception-safe teardown.
    """

    def __init__(
        self,
        service: QueryService,
        loop: asyncio.AbstractEventLoop,
        thread: threading.Thread,
        host: str,
        port: int,
    ) -> None:
        self.service = service
        self.host = host
        self.port = port
        self._loop = loop
        self._thread = thread
        self._stopped = False

    @property
    def url(self) -> str:
        """Base URL of the running service."""
        return f"http://{self.host}:{self.port}"

    def stop(self) -> None:
        """Shut the service down and join the thread.

        Both joins are bounded by the configured drain budget (plus a
        margin for socket teardown), not a hard-coded constant: shutdown
        takes at most ``drain_timeout_s`` before the batcher fail-fasts
        its backlog, so waiting longer than that could only hide a bug.
        """
        if self._stopped:
            return
        self._stopped = True
        budget = self.service.config.drain_timeout_s + 5.0
        future = asyncio.run_coroutine_threadsafe(self.service.stop(), self._loop)
        future.result(timeout=budget)
        self._loop.call_soon_threadsafe(self._loop.stop)
        self._thread.join(timeout=budget)

    def __enter__(self) -> "ServerHandle":
        """Context-manager entry (the server is already running)."""
        return self

    def __exit__(self, *exc_info: Any) -> None:
        """Context-manager exit: stop the service."""
        self.stop()


def serve_in_thread(
    engine: ShardedFunctionIndex,
    config: Optional[ServiceConfig] = None,
    host: str = "127.0.0.1",
    port: int = 0,
) -> ServerHandle:
    """Start a :class:`QueryService` on a daemon thread; returns once bound.

    ``port=0`` binds an ephemeral port (read it off the handle).  The
    caller owns the engine's lifecycle; the handle owns the service's.
    """
    service = QueryService(engine, config)
    loop = asyncio.new_event_loop()
    ready = threading.Event()
    bound: dict = {}

    def _run() -> None:
        asyncio.set_event_loop(loop)

        async def _start() -> None:
            try:
                bound["port"] = await service.start(host, port)
            except BaseException as exc:  # repro: noqa(REP005) — startup failures must unblock the waiting caller, then surface there
                bound["error"] = exc
            finally:
                ready.set()

        loop.create_task(_start())
        loop.run_forever()
        # run_forever returned: stop() was called; let cancellations settle.
        pending = asyncio.all_tasks(loop)
        for task in pending:
            task.cancel()
        if pending:
            loop.run_until_complete(
                asyncio.gather(*pending, return_exceptions=True)
            )
        loop.close()

    thread = threading.Thread(target=_run, name="repro-serve", daemon=True)
    thread.start()
    if not ready.wait(timeout=30):
        raise RuntimeError("query service failed to start within 30s")
    if "error" in bound:
        loop.call_soon_threadsafe(loop.stop)
        thread.join(timeout=5)
        raise bound["error"]
    return ServerHandle(service, loop, thread, host, bound["port"])
