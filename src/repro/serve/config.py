"""Serving-layer configuration: batch window, queue bounds, tenant quotas.

Every knob is an env-registry flag (``REPRO_SERVE_*`` in
:mod:`repro.env`) so operators configure a deployment the same way they
configure the rest of the runtime — see ``docs/operations.md`` for the
consolidated table.  :meth:`ServiceConfig.from_env` is the single place
the serving layer reads the process environment; constructor arguments
exist for tests and embedding.

Tenant quotas live in a small JSON file (``REPRO_SERVE_TENANTS``)::

    {"tenants": [
        {"name": "dashboard", "rate": 0,   "burst": 1,  "priority": 0},
        {"name": "analytics", "rate": 200, "burst": 50, "priority": 1}
    ]}

``rate`` is the token-bucket refill rate in requests/second (``<= 0``
means unlimited), ``burst`` the bucket capacity, and ``priority`` the
shedding class: priority 0 (*interactive*) is shed only when the queue
is full, priority > 0 (*best-effort*) is shed early during brownouts.
When no file is configured every tenant name maps to one unlimited
interactive tenant; when a file is configured, names it does not list
are admitted as unlimited **best-effort** tenants.
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass, field
from pathlib import Path
from typing import Mapping

__all__ = ["ServiceConfig", "TenantSpec", "load_tenants"]


@dataclass(frozen=True)
class TenantSpec:
    """Admission parameters for one tenant."""

    name: str
    rate: float = 0.0  #: token refill rate, requests/second (<= 0 = unlimited)
    burst: float = 1.0  #: bucket capacity (max requests admitted at once)
    priority: int = 0  #: 0 = interactive, > 0 = best-effort (brownout-shed)

    def __post_init__(self) -> None:
        if not self.name:
            raise ValueError("tenant name must be non-empty")
        if self.rate > 0 and self.burst < 1:
            raise ValueError(
                f"tenant {self.name!r}: burst must be >= 1 when rate-limited, "
                f"got {self.burst}"
            )
        if self.priority < 0:
            raise ValueError(
                f"tenant {self.name!r}: priority must be >= 0, got {self.priority}"
            )


def load_tenants(path: str | Path) -> dict[str, TenantSpec]:
    """Parse a tenant-quota JSON file into a name → spec mapping."""
    with open(path, "r", encoding="utf-8") as handle:
        spec = json.load(handle)
    entries = spec.get("tenants")
    if not isinstance(entries, list):
        raise ValueError(f"{path}: tenant spec must have a 'tenants' list")
    tenants: dict[str, TenantSpec] = {}
    for position, entry in enumerate(entries):
        if not isinstance(entry, dict) or "name" not in entry:
            raise ValueError(f"{path}: tenants[{position}] must be an object with 'name'")
        tenant = TenantSpec(
            name=str(entry["name"]),
            rate=float(entry.get("rate", 0.0)),
            burst=float(entry.get("burst", 1.0)),
            priority=int(entry.get("priority", 0)),
        )
        if tenant.name in tenants:
            raise ValueError(f"{path}: duplicate tenant {tenant.name!r}")
        tenants[tenant.name] = tenant
    return tenants


def _parse_float(raw: str, default: float) -> float:
    """Parse a float env value, falling back to ``default`` on junk."""
    raw = raw.strip()
    if not raw:
        return default
    try:
        return float(raw)
    except ValueError:
        return default


def _parse_int(raw: str, default: int) -> int:
    """Parse an int env value, falling back to ``default`` on junk."""
    raw = raw.strip()
    if not raw:
        return default
    try:
        return int(raw)
    except ValueError:
        return default


@dataclass(frozen=True)
class ServiceConfig:
    """Resolved serving-layer configuration.

    ``batch_window_s == 0`` disables coalescing entirely (strict
    passthrough: one engine call per request) — that is the baseline the
    ``bench_serve`` amortization gate compares against.
    """

    batch_window_s: float = 0.002
    batch_max: int = 64
    queue_depth: int = 256
    brownout_fraction: float = 0.8
    tenants: Mapping[str, TenantSpec] = field(default_factory=dict)
    deadline_s: float = 10.0  #: default end-to-end request budget
    drain_timeout_s: float = 5.0  #: graceful-shutdown flush budget
    breaker_threshold: int = 5  #: consecutive failures that trip a breaker
    breaker_cooldown_s: float = 1.0  #: open-state shed window before a probe

    def __post_init__(self) -> None:
        if self.batch_window_s < 0:
            raise ValueError(f"batch window must be >= 0, got {self.batch_window_s}")
        if self.batch_max < 1:
            raise ValueError(f"batch max must be >= 1, got {self.batch_max}")
        if self.queue_depth < 1:
            raise ValueError(f"queue depth must be >= 1, got {self.queue_depth}")
        if not 0.0 < self.brownout_fraction <= 1.0:
            raise ValueError(
                f"brownout fraction must be in (0, 1], got {self.brownout_fraction}"
            )
        if not self.deadline_s > 0:
            raise ValueError(f"deadline must be positive, got {self.deadline_s}")
        if not self.drain_timeout_s > 0:
            raise ValueError(
                f"drain timeout must be positive, got {self.drain_timeout_s}"
            )
        if self.breaker_threshold < 1:
            raise ValueError(
                f"breaker threshold must be >= 1, got {self.breaker_threshold}"
            )
        if not self.breaker_cooldown_s > 0:
            raise ValueError(
                f"breaker cooldown must be positive, got {self.breaker_cooldown_s}"
            )

    @classmethod
    def from_env(cls) -> "ServiceConfig":
        """Build the configuration from ``REPRO_SERVE_*`` variables.

        This is the serving layer's only environment read; every variable
        is declared in :mod:`repro.env` and documented in
        ``docs/operations.md`` (both machine-checked).  Junk values fall
        back to the documented defaults rather than failing startup.
        """
        window_ms = max(
            0.0, _parse_float(os.environ.get("REPRO_SERVE_BATCH_WINDOW_MS", ""), 2.0)
        )
        tenants_path = os.environ.get("REPRO_SERVE_TENANTS", "").strip()
        return cls(
            batch_window_s=window_ms / 1000.0,
            batch_max=max(
                1, _parse_int(os.environ.get("REPRO_SERVE_BATCH_MAX", ""), 64)
            ),
            queue_depth=max(
                1, _parse_int(os.environ.get("REPRO_SERVE_QUEUE_DEPTH", ""), 256)
            ),
            brownout_fraction=min(
                1.0,
                max(
                    0.01, _parse_float(os.environ.get("REPRO_SERVE_BROWNOUT", ""), 0.8)
                ),
            ),
            tenants=load_tenants(tenants_path) if tenants_path else {},
            deadline_s=max(
                0.001,
                _parse_float(os.environ.get("REPRO_SERVE_DEADLINE_MS", ""), 10000.0)
                / 1000.0,
            ),
            drain_timeout_s=max(
                0.001,
                _parse_float(os.environ.get("REPRO_SERVE_DRAIN_MS", ""), 5000.0)
                / 1000.0,
            ),
            breaker_threshold=max(
                1,
                _parse_int(os.environ.get("REPRO_SERVE_BREAKER_THRESHOLD", ""), 5),
            ),
            breaker_cooldown_s=max(
                0.001,
                _parse_float(
                    os.environ.get("REPRO_SERVE_BREAKER_COOLDOWN_MS", ""), 1000.0
                )
                / 1000.0,
            ),
        )

    def resolve_tenant(self, name: str) -> TenantSpec:
        """The admission spec governing ``name``.

        Configured tenants get their declared quota.  With no tenant file
        at all, every name is an unlimited interactive tenant; with a
        file, unlisted names are admitted unlimited but *best-effort*
        (priority 1), so registered tenants keep their brownout shelter.
        """
        spec = self.tenants.get(name)
        if spec is not None:
            return spec
        return TenantSpec(name=name, priority=1 if self.tenants else 0)
