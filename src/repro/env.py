"""Single source of truth for every ``REPRO_*`` environment variable.

Each switch the package reads from the process environment is declared
here exactly once, with its default and a one-line description.  The
registry is *declarative*: consumers keep reading ``os.environ`` at their
own arming points (import-time for ``REPRO_SANITIZE``/``REPRO_FAULTS``,
call-time for the rest) so hot-path behaviour is unchanged — but three
artifacts are machine-checked against this module so flags cannot drift:

* the whole-program lint rule **REP014** (``repro lint --graph``) fails
  when a ``REPRO_*`` read appears anywhere in ``src/repro`` without a
  matching :class:`EnvVar` entry, and when a ``runtime``-scope entry is
  never read;
* ``tests/analysis/test_env_registry.py`` fails when this registry and
  the environment-variable matrix in ``EXPERIMENTS.md`` disagree;
* ``docs/analysis.md`` documents the registry as the place new flags are
  added.

``scope`` says where the reads live: ``"runtime"`` entries are read
inside ``src/repro`` (REP014 verifies this); ``"benchmarks"`` entries are
read only by the ``benchmarks/`` harnesses, which sit outside the
analyzed package.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

__all__ = ["ENV_VARS", "EnvVar", "var_names"]


@dataclass(frozen=True)
class EnvVar:
    """Declaration of one environment switch.

    ``name`` is the full variable name (``REPRO_*``); ``default`` is the
    effective value when unset, as the reader interprets it; ``help`` is
    a one-line description matching the EXPERIMENTS.md matrix; ``scope``
    is ``"runtime"`` (read inside ``src/repro``) or ``"benchmarks"``.
    """

    name: str
    default: str
    help: str
    scope: str = "runtime"


#: Every environment variable the reproduction responds to.  Keep this
#: tuple, the EXPERIMENTS.md matrix, and the actual ``os.environ`` reads
#: in sync — REP014 and the registry sync test enforce all three.
ENV_VARS: Tuple[EnvVar, ...] = (
    EnvVar(
        name="REPRO_OBS",
        default="0",
        help="arm the observability layer (metrics, spans, EXPLAIN counters)",
    ),
    EnvVar(
        name="REPRO_OBS_STATE",
        default=".repro-obs.json",
        help="path of the obs state file CLI runs merge their samples into",
    ),
    EnvVar(
        name="REPRO_OBS_SAMPLE",
        default="1",
        help="head-sampling rate in [0, 1] for per-query traces and log records",
    ),
    EnvVar(
        name="REPRO_OBS_SEED",
        default="0",
        help="seed of the deterministic trace-id sequence (replayable sampling)",
    ),
    EnvVar(
        name="REPRO_OBS_LOG",
        default="",
        help="arm the rotating JSONL query log at this path (empty = off)",
    ),
    EnvVar(
        name="REPRO_OBS_SLOW_MS",
        default="100",
        help="slow-query threshold in ms — slow queries log even when unsampled",
    ),
    EnvVar(
        name="REPRO_OBS_SLO",
        default="",
        help="JSON file of SLO objectives for repro slo / repro top (empty = defaults)",
    ),
    EnvVar(
        name="REPRO_SANITIZE",
        default="0",
        help="arm @array_contract shape/dtype/contiguity/finiteness checks",
    ),
    EnvVar(
        name="REPRO_SHARDS",
        default="1",
        help="default shard fan-out for the CLI and test fixtures",
    ),
    EnvVar(
        name="REPRO_SHARD_BACKEND",
        default="thread",
        help="default shard execution backend (thread or process) for engines built without one",
    ),
    EnvVar(
        name="REPRO_TUNE_RECORD",
        default="0",
        help="arm workload sketch recording in the query facades",
    ),
    EnvVar(
        name="REPRO_FAULTS",
        default="",
        help="fault-plan spec armed from process start (see docs/reliability.md)",
    ),
    EnvVar(
        name="REPRO_FAULTS_SEED",
        default="0",
        help="seed for probabilistic fault rules (seeded runs replay exactly)",
    ),
    EnvVar(
        name="REPRO_FAULT_POLICY",
        default="retry_then_degrade",
        help="default shard-failure policy for engines built without one",
    ),
    EnvVar(
        name="REPRO_SERVE_BATCH_WINDOW_MS",
        default="2",
        help="micro-batcher coalescing window in ms (0 = no coalescing)",
    ),
    EnvVar(
        name="REPRO_SERVE_BATCH_MAX",
        default="64",
        help="max requests coalesced into one engine batch call",
    ),
    EnvVar(
        name="REPRO_SERVE_QUEUE_DEPTH",
        default="256",
        help="admission queue bound; requests beyond it are shed with 429",
    ),
    EnvVar(
        name="REPRO_SERVE_BROWNOUT",
        default="0.8",
        help="queue-depth fraction at which best-effort tenants are shed (brownout)",
    ),
    EnvVar(
        name="REPRO_SERVE_TENANTS",
        default="",
        help="JSON file of per-tenant quotas/priorities (empty = one unlimited tenant)",
    ),
    EnvVar(
        name="REPRO_SERVE_DEADLINE_MS",
        default="10000",
        help="default end-to-end request deadline in ms when no X-Repro-Deadline-Ms header",
    ),
    EnvVar(
        name="REPRO_SERVE_DRAIN_MS",
        default="5000",
        help="graceful-shutdown drain budget in ms before queued requests fail fast",
    ),
    EnvVar(
        name="REPRO_SERVE_BREAKER_THRESHOLD",
        default="5",
        help="consecutive engine failures per (tenant, op) that trip the circuit breaker",
    ),
    EnvVar(
        name="REPRO_SERVE_BREAKER_COOLDOWN_MS",
        default="1000",
        help="how long an open circuit breaker sheds before probing half-open, in ms",
    ),
    EnvVar(
        name="REPRO_BENCH_SCALE",
        default="1",
        help="scale factor for benchmark dataset sizes (10 ≈ paper scale)",
        scope="benchmarks",
    ),
)


def var_names() -> Tuple[str, ...]:
    """Registered variable names, in declaration order."""
    return tuple(var.name for var in ENV_VARS)
