"""Top-k buffer and result types for Problem 2 (Section 6).

Algorithm 2 maintains a bounded buffer of the ``k`` closest satisfying
points found so far; the buffer's current maximum distance is the pruning
threshold compared against the lower-bound distance ``LBS`` (Definition 5).

The buffer is array-backed rather than heap-backed: the pruned scan feeds
it in blocks, and one vectorized merge per block (``numpy.lexsort`` over at
most ``k + block`` entries) is far cheaper in numpy than per-point heap
operations.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass

import numpy as np

from ..reliability.degraded import DegradedInfo
from .stats import QueryStats

__all__ = ["SharedCutoff", "TopKBuffer", "TopKResult"]


class SharedCutoff:
    """Monotonically decreasing distance bound shared across top-k scans.

    The sharded engine runs Algorithm 2 once per shard; each shard's
    buffered k-th distance is an *upper bound* on the global k-th best
    distance (the shard exhibits ``k`` real points at or below it), so
    the minimum over all published bounds is too.  Every shard folds this
    shared bound into its LBS cutoff test, which lets one shard's good
    candidates terminate another shard's scan early — exactly the
    cross-partition pruning a single monolithic scan would have had.

    Exactness is preserved because Claim 3's cutoff test stays *strict*
    (``LBS > bound``): points at distance equal to the bound are still
    scanned, so ties broken by id come out identical to the monolithic
    path.

    ``publish`` is atomic (one lock-protected min); ``get`` is a bare
    read — stale reads only delay pruning, never break it.
    """

    __slots__ = ("_lock", "_value")

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._value = float("inf")

    def publish(self, value: float) -> None:
        """Lower the shared bound to ``value`` if it improves it."""
        value = float(value)
        with self._lock:
            if value < self._value:
                self._value = value

    def get(self) -> float:
        """Current bound (``inf`` until any scan has ``k`` candidates)."""
        return self._value


class TopKBuffer:
    """Bounded buffer keeping the ``k`` smallest distances seen.

    Ties on distance are broken by smaller point id so results are
    deterministic across runs and backends.
    """

    def __init__(self, k: int) -> None:
        if k <= 0:
            raise ValueError(f"k must be positive, got {k}")
        self._k = int(k)
        self._distances = np.empty(0, dtype=np.float64)
        self._ids = np.empty(0, dtype=np.int64)
        # Cached k-th distance; only meaningful while the buffer is full.
        self._max = float("inf")

    @property
    def k(self) -> int:
        """Buffer capacity."""
        return self._k

    def __len__(self) -> int:
        return int(self._distances.size)

    @property
    def is_full(self) -> bool:
        """Whether ``k`` entries are buffered."""
        return self._distances.size >= self._k

    @property
    def max_distance(self) -> float:
        """Largest buffered distance; ``inf`` while the buffer is not full.

        Returning ``inf`` before the buffer fills makes the Algorithm 2
        termination test (``buffer full AND LBS > max``) a single
        comparison.
        """
        if not self.is_full:
            return float("inf")
        return self._max

    def _merge(self, distances: np.ndarray, ids: np.ndarray) -> None:
        all_distances = np.concatenate([self._distances, distances])
        all_ids = np.concatenate([self._ids, ids])
        if all_distances.size > self._k:
            order = np.lexsort((all_ids, all_distances))[: self._k]
            all_distances = all_distances[order]
            all_ids = all_ids[order]
        self._distances = all_distances
        self._ids = all_ids
        if self._distances.size >= self._k:
            self._max = float(self._distances.max())

    def offer(self, distance: float, point_id: int) -> bool:
        """Insert a candidate; returns True when it entered the buffer."""
        distance = float(distance)
        point_id = int(point_id)
        if self.is_full:
            # Reject candidates that cannot displace the current worst
            # (equal distance displaces only a larger id).
            if distance > self._max:
                return False
            if distance == self._max and point_id >= int(self._worst_id()):
                return False
        self._merge(np.array([distance]), np.array([point_id], dtype=np.int64))
        return True

    def _worst_id(self) -> int:
        worst = self._distances == self._distances.max()
        return int(self._ids[worst].max())

    def offer_many(self, distances: np.ndarray, point_ids: np.ndarray) -> None:
        """Insert a batch of candidates with one vectorized merge."""
        distances = np.ascontiguousarray(distances, dtype=np.float64)
        point_ids = np.ascontiguousarray(point_ids, dtype=np.int64)
        if distances.size == 0:
            return
        self._merge(distances, point_ids)

    def as_sorted(self) -> tuple[np.ndarray, np.ndarray]:
        """``(ids, distances)`` ascending by distance (ties by id)."""
        order = np.lexsort((self._ids, self._distances))
        return self._ids[order].copy(), self._distances[order].copy()


@dataclass(frozen=True)
class TopKResult:
    """Outcome of a top-k nearest neighbor query.

    Attributes
    ----------
    ids:
        Point ids of the result, ascending by hyperplane distance.
    distances:
        Matching hyperplane distances ``|<a, phi(x)> - b| / |a|``.
    n_checked:
        Number of points whose scalar product was actually evaluated
        (the Table 3 "checked points" metric).
    n_total:
        Number of indexed points at query time.
    stats:
        Uniform pruning diagnostics (same shape as inequality queries'
        :class:`~repro.core.planar.QueryResult.stats`).  ``None`` only for
        producers predating the observability layer; the Planar index and
        the scan baseline always populate it, with ``n_verified`` equal to
        ``n_checked``.
    degraded:
        ``None`` for normal answers; the sharded engine attaches a
        :class:`~repro.reliability.degraded.DegradedInfo` when shard
        failures were recovered or the answer is partial (see
        ``docs/reliability.md``).
    """

    ids: np.ndarray
    distances: np.ndarray
    n_checked: int
    n_total: int
    stats: QueryStats | None = None
    degraded: DegradedInfo | None = None

    def __post_init__(self) -> None:
        object.__setattr__(self, "ids", np.ascontiguousarray(self.ids, dtype=np.int64))
        object.__setattr__(
            self, "distances", np.ascontiguousarray(self.distances, dtype=np.float64)
        )

    @property
    def checked_fraction(self) -> float:
        """Checked points / total points (0 when the index is empty)."""
        if self.n_total == 0:
            return 0.0
        return self.n_checked / self.n_total

    def __len__(self) -> int:
        return int(self.ids.size)

    def to_dict(self) -> dict:
        """JSON-friendly summary (ids/distances included as lists)."""
        return {
            "ids": self.ids.tolist(),
            "distances": self.distances.tolist(),
            "n_checked": self.n_checked,
            "n_total": self.n_total,
            "stats": self.stats.to_dict() if self.stats is not None else None,
        }
