"""Query-parameter domains (Section 4.1) and the randomness-of-query model.

The exact query parameters ``a`` are unknown until query time, but their
*domains* ``Delta a_i`` are learnable or application-given.  Domains drive
three things in this library:

* the octant check and translation (Section 4.5),
* index-normal sampling — each Planar normal component ``c_i`` is drawn
  uniformly from ``Delta a_i`` (Section 4.2), and
* the experiments' *randomness of query* knob: ``RQ = |Delta a_i|`` for
  discrete domains, giving ``RQ^{d'}`` possible query normals (Section 7.1).
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from .._util import as_rng
from ..exceptions import InvalidDomainError
from ..geometry.octant import octant_from_domains

__all__ = ["ParameterDomain", "QueryModel"]


class ParameterDomain:
    """Domain of a single query parameter ``a_i``.

    Either *discrete* (an explicit value set — the paper's RQ model) or
    *continuous* (a closed interval).  A domain must not straddle zero so
    that the query octant is well defined.
    """

    def __init__(
        self,
        low: float | None = None,
        high: float | None = None,
        values: Sequence[float] | None = None,
    ) -> None:
        if values is not None:
            if low is not None or high is not None:
                raise InvalidDomainError("pass either values or (low, high), not both")
            vals = np.unique(np.asarray(list(values), dtype=np.float64))
            if vals.size == 0:
                raise InvalidDomainError("discrete domain must be non-empty")
            if not np.all(np.isfinite(vals)):
                raise InvalidDomainError("discrete domain values must be finite")
            self._values: np.ndarray | None = vals
            self._low = float(vals[0])
            self._high = float(vals[-1])
        else:
            if low is None or high is None:
                raise InvalidDomainError("continuous domain needs both low and high")
            low_f, high_f = float(low), float(high)
            if not (np.isfinite(low_f) and np.isfinite(high_f)):
                raise InvalidDomainError("domain bounds must be finite")
            if low_f > high_f:
                raise InvalidDomainError(f"empty domain: low {low_f} > high {high_f}")
            self._values = None
            self._low = low_f
            self._high = high_f
        if self._low < 0.0 < self._high:
            raise InvalidDomainError(
                f"domain [{self._low}, {self._high}] straddles zero; split the "
                "workload by parameter sign (Section 4.5)"
            )
        if self._low == 0.0 and self._high == 0.0:
            raise InvalidDomainError("domain is identically zero (a_i != 0 assumed)")

    # ------------------------------------------------------------------ #

    @classmethod
    def discrete_grid(cls, low: float, high: float, count: int) -> "ParameterDomain":
        """Evenly spaced discrete domain with ``count`` values (the RQ model)."""
        if count < 1:
            raise InvalidDomainError(f"count must be >= 1, got {count}")
        if count == 1:
            return cls(values=[float(low)])
        return cls(values=np.linspace(low, high, count))

    @property
    def low(self) -> float:
        """Smallest value in the domain."""
        return self._low

    @property
    def high(self) -> float:
        """Largest value in the domain."""
        return self._high

    @property
    def is_discrete(self) -> bool:
        """Whether this domain is an explicit value set."""
        return self._values is not None

    @property
    def values(self) -> np.ndarray | None:
        """The value set for discrete domains (copy), else ``None``."""
        return None if self._values is None else self._values.copy()

    @property
    def cardinality(self) -> float:
        """Number of values for discrete domains; ``inf`` for continuous."""
        return float(self._values.size) if self._values is not None else float("inf")

    @property
    def sign(self) -> int:
        """Common sign of every value in the domain (+1 or -1)."""
        return 1 if self._high > 0.0 else -1

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        if self._values is not None:
            return f"ParameterDomain(values={self._values.tolist()})"
        return f"ParameterDomain(low={self._low}, high={self._high})"

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, ParameterDomain):
            return NotImplemented
        if self.is_discrete != other.is_discrete:
            return False
        if self.is_discrete:
            return bool(np.array_equal(self._values, other._values))
        return self._low == other._low and self._high == other._high

    def __hash__(self) -> int:  # dataclass-like identity for caching
        if self._values is not None:
            return hash(("discrete", self._values.tobytes()))
        return hash(("continuous", self._low, self._high))

    # ------------------------------------------------------------------ #

    def contains(self, value: float) -> bool:
        """Membership test (exact for discrete, interval for continuous)."""
        if self._values is not None:
            return bool(np.any(np.isclose(self._values, value, rtol=0.0, atol=1e-12)))
        return self._low <= value <= self._high

    def sample(self, rng: np.random.Generator, size: int | None = None) -> float | np.ndarray:
        """Draw uniformly from the domain."""
        if self._values is not None:
            picked = rng.choice(self._values, size=size)
        else:
            picked = rng.uniform(self._low, self._high, size=size)
        if size is None:
            return float(picked)
        return np.asarray(picked, dtype=np.float64)

    def widened(self, value: float) -> "ParameterDomain":
        """A domain that additionally covers ``value`` (for drift adaptation).

        Discrete domains gain the value; continuous domains stretch a bound.
        The result must still not straddle zero.
        """
        if self.contains(value):
            return self
        if self._values is not None:
            return ParameterDomain(values=np.append(self._values, float(value)))
        return ParameterDomain(low=min(self._low, float(value)), high=max(self._high, float(value)))


class QueryModel:
    """Joint model of a workload's query normals: one domain per axis.

    This is what the application hands the index ahead of time.  It knows
    how to sample index normals (Section 5.2), how to sample plausible
    queries (for workload generation and self-tuning), and which octant the
    workload's hyperplanes cross (Section 4.5).
    """

    def __init__(self, domains: Sequence[ParameterDomain]) -> None:
        self._domains = tuple(domains)
        if not self._domains:
            raise InvalidDomainError("QueryModel needs at least one parameter domain")
        for i, dom in enumerate(self._domains):
            if not isinstance(dom, ParameterDomain):
                raise InvalidDomainError(f"domain {i} is not a ParameterDomain: {dom!r}")

    # ------------------------------------------------------------------ #

    @classmethod
    def uniform(cls, dim: int, low: float, high: float, rq: int | None = None) -> "QueryModel":
        """Same domain on every axis; discrete with ``rq`` values when given.

        This is exactly the experimental setup of Section 7.1: each ``a_i``
        uniformly selected from a size-``RQ`` grid over ``(low, high)``.
        """
        if rq is None:
            domain = ParameterDomain(low=low, high=high)
        else:
            domain = ParameterDomain.discrete_grid(low, high, rq)
        return cls([domain] * dim)

    @property
    def dim(self) -> int:
        """Feature-space dimensionality ``d'``."""
        return len(self._domains)

    @property
    def domains(self) -> tuple[ParameterDomain, ...]:
        """The per-axis domains."""
        return self._domains

    @property
    def randomness(self) -> float:
        """The RQ value when all domains are discrete with equal cardinality."""
        cards = {dom.cardinality for dom in self._domains}
        if len(cards) == 1:
            return cards.pop()
        return float("nan")

    @property
    def normal_space_size(self) -> float:
        """Number of possible query normals (``prod |Delta a_i|``)."""
        total = 1.0
        for dom in self._domains:
            total *= dom.cardinality
        return total

    def lows(self) -> np.ndarray:
        """Per-axis lower bounds."""
        return np.array([dom.low for dom in self._domains], dtype=np.float64)

    def highs(self) -> np.ndarray:
        """Per-axis upper bounds."""
        return np.array([dom.high for dom in self._domains], dtype=np.float64)

    def octant(self) -> np.ndarray:
        """Octant sign vector crossed by every hyperplane in this workload."""
        return octant_from_domains(self.lows(), self.highs())

    def sample_normal(self, rng_or_seed: np.random.Generator | int | None = None) -> np.ndarray:
        """Draw one query/index normal: each axis uniformly from its domain."""
        rng = as_rng(rng_or_seed)
        return np.array([dom.sample(rng) for dom in self._domains], dtype=np.float64)

    def sample_normals(self, count: int, rng_or_seed: np.random.Generator | int | None = None) -> np.ndarray:
        """Draw ``count`` normals as a ``(count, d')`` matrix."""
        rng = as_rng(rng_or_seed)
        cols = [dom.sample(rng, size=count) for dom in self._domains]
        return np.column_stack(cols)

    def contains(self, normal: np.ndarray) -> bool:
        """Whether every component of ``normal`` lies in its axis domain."""
        normal = np.asarray(normal, dtype=np.float64)
        if normal.shape != (self.dim,):
            return False
        # Iterates the d'-length parameter vector, not data points.
        return all(dom.contains(float(v)) for dom, v in zip(self._domains, normal))  # repro: noqa(REP006)

    def widened(self, normal: np.ndarray) -> "QueryModel":
        """Model whose domains additionally cover ``normal`` (drift update)."""
        normal = np.asarray(normal, dtype=np.float64)
        if normal.shape != (self.dim,):
            raise InvalidDomainError(
                f"normal has shape {normal.shape}, model has dim {self.dim}"
            )
        return QueryModel(
            [dom.widened(float(v)) for dom, v in zip(self._domains, normal)]  # repro: noqa(REP006) — d' domains, not data
        )
