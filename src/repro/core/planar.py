"""A single Planar index (Sections 4 and 6 of the paper).

Construction (Section 4.2)
--------------------------
Pick a normal vector ``c`` compatible with the query-parameter domains and
store the scalar key ``<c, phi(x)>`` of every point in ascending order.
Geometrically each point gets the index hyperplane
``H(x): <c, Y> = <c, phi(x)>`` (Eq. 3), and sorting by key sorts the family
of parallel hyperplanes by axis intercept.

Query processing (Section 4.3, Algorithm 1)
-------------------------------------------
Work in the translated first octant where every coordinate, every effective
query parameter ``a''_i`` and the index normal ``c''`` are positive.  With
``T_i = c''_i * I(q, i) = c''_i * b'' / a''_i``, the paper's three intervals
collapse to two scalar key thresholds:

* ``SI`` (accept):  ``key'' <= min_i T_i``   — every intercept of ``H(x)``
  is at most the query's (Definition 1, Observation 2);
* ``LI`` (reject):  ``key'' >  max_i T_i``   — every intercept exceeds the
  query's (Definition 2, Observation 1);
* ``II`` (verify):  everything in between (Definition 3).

Proof sketch (first octant): ``<a'', y> = sum_i (a''_i / c''_i)(c''_i y_i)``
is bracketed by ``min_i (a''_i / c''_i) * key''`` and
``max_i (a''_i / c''_i) * key''`` because the weights ``c''_i y_i >= 0`` sum
to ``key''``.  ``key'' <= min_i T_i = b'' / max_i (a''_i / c''_i)`` therefore
forces ``<a'', y> <= b''`` and symmetrically for ``LI``.  Equality is only
possible on the ``key'' == min_i T_i`` boundary, which is what makes the
strict operators need a measure-zero re-verification slice.

Because the coordinate translation adds the same constant ``<c'', delta>``
to every key, keys are stored untranslated as plain ``<c, phi(x)>`` in the
original coordinates and thresholds are shifted instead — see
:mod:`repro.geometry.translation`.

Top-k queries (Section 6, Algorithm 2) verify the intermediate interval,
then walk the accepting interval away from the query hyperplane in key
order, cutting off once the lower-bound distance ``LBS`` (Definition 5)
exceeds the current k-th best distance (Claim 3).
"""

from __future__ import annotations

import time
from dataclasses import dataclass

import numpy as np

from .._util import as_1d_float
from ..analysis.contracts import array_contract
from ..exceptions import IndexBuildError, InvalidQueryError
from ..geometry.octant import sign_vector
from ..geometry.translation import Translator
from ..obs import metrics as _om
from ..obs import runtime as _ort
from ..obs import spans as _osp
from ..obs import trace as _otr
from ..obs.explain import ExplainReport
from .feature_store import FeatureStore
from .query import Comparison, ScalarProductQuery
from .sorted_keys import SortedKeyStore
from .stats import QueryStats
from .topk import SharedCutoff, TopKBuffer, TopKResult

__all__ = ["WorkingQuery", "QueryStats", "QueryResult", "PlanarIndex"]

# Points verified per batch during the pruned top-k scan.  Larger blocks
# amortize numpy call overhead; the scan may overshoot the exact Algorithm 2
# stopping point by at most one block (results stay exact).
_TOPK_BLOCK = 512


@dataclass(frozen=True)
class WorkingQuery:
    """A scalar product query transformed into working (first-octant) coordinates.

    Built once per incoming query and shared by all indices of a collection.

    Attributes
    ----------
    query:
        The query form actually used (original, or canonicalized when only
        the negated form fits the octant).
    normal_w / offset_w:
        ``a''`` (all positive) and ``b''`` from Eq. 12.  ``b''`` may be
        negative when the hyperplane misses the octant; the interval split
        then yields an empty SI/II.
    norm:
        ``|a|`` — reflections preserve norms, so this equals ``|a''|``.
    """

    query: ScalarProductQuery
    normal_w: np.ndarray
    offset_w: float
    norm: float

    @classmethod
    def build(cls, query: ScalarProductQuery, translator: Translator) -> "WorkingQuery":
        """Express ``query`` in ``translator``'s octant.

        The original sign pattern is tried first; when it is octant
        incompatible but the canonical form (negated normal for ``b < 0``)
        matches, that form is used instead.  Raises
        :class:`InvalidQueryError` when neither form fits the octant.
        """
        chosen = query
        try:
            normal_w, offset_w = translator.transform_query(query.normal, query.offset)
        except InvalidQueryError:
            chosen = query.canonical()
            if chosen is query:
                raise
            normal_w, offset_w = translator.transform_query(chosen.normal, chosen.offset)
        return cls(
            query=chosen,
            normal_w=normal_w,
            offset_w=offset_w,
            norm=float(np.linalg.norm(chosen.normal)),
        )

    @property
    def op(self) -> Comparison:
        """Inequality direction of the canonical query."""
        return self.query.op


@dataclass(frozen=True)
class QueryResult:
    """Result of an inequality query against one index."""

    ids: np.ndarray
    stats: QueryStats

    def __post_init__(self) -> None:
        object.__setattr__(self, "ids", np.ascontiguousarray(self.ids, dtype=np.int64))

    def __len__(self) -> int:
        return int(self.ids.size)

    def to_dict(self) -> dict:
        """JSON-friendly summary (ids included as a list)."""
        return {"ids": self.ids.tolist(), "stats": self.stats.to_dict()}


class PlanarIndex:
    """One set of parallel index hyperplanes with normal ``c``.

    Parameters
    ----------
    normal:
        Index normal in *original* coordinates.  Its sign pattern must match
        ``translator``'s octant so the working normal ``c''`` is positive.
    store:
        Shared feature storage; the index keys exactly the live rows in
        ``ids`` (all live rows when ``ids`` is None).
    translator:
        Octant translator shared with sibling indices.  Must already have
        observed the indexed features.
    ids:
        Optional subset of store ids to index.
    obs_label:
        Label under which this index reports observability metrics
        (``repro_interval_points_total{index=...}`` and friends).
        Collections label their members by position; the default
        ``"solo"`` marks standalone indices.
    """

    @array_contract("normal: (d,) float64 cast", "ids: ?(n,) int64 cast")
    def __init__(
        self,
        normal: np.ndarray,
        store: FeatureStore,
        translator: Translator,
        ids: np.ndarray | None = None,
        precomputed: tuple[np.ndarray, np.ndarray] | None = None,
        obs_label: str = "solo",
        presorted: bool = False,
    ) -> None:
        normal = as_1d_float(normal, "normal")
        if normal.size != store.dim:
            raise IndexBuildError(
                f"normal has dimension {normal.size}, features have {store.dim}"
            )
        working = translator.reflect_normal(normal)
        if np.any(working <= 0.0) or not np.all(np.isfinite(working)):
            raise IndexBuildError(
                "index normal signs must match the translator octant "
                f"(working normal {working.tolist()})"
            )
        self._normal = normal.copy()
        self._normal.setflags(write=False)
        self._working_normal = working
        self._working_normal.setflags(write=False)
        self._store = store
        self._translator = translator
        # Keys are <c, phi(x)> in original coordinates: reflection cancels
        # (s_i * c_i)(s_i * phi_i) = c_i * phi_i and translation is a shared
        # constant applied to thresholds at query time.
        if precomputed is not None:
            # Bulk path used by collections: (ids, keys) computed once for
            # all sibling indices with a single matrix product; the shared
            # id array is already vetted.
            ids, keys = precomputed
            self._keys = SortedKeyStore(
                keys,
                np.ascontiguousarray(ids, np.int64),
                trusted=True,
                presorted=presorted,
            )
        else:
            if ids is None:
                ids, rows = store.get_all()
            else:
                ids = np.ascontiguousarray(ids, dtype=np.int64)
                rows = store.get(ids)
            # Build-time keying of the indexed rows: one deliberate matmul.
            self._keys = SortedKeyStore(rows @ self._normal, ids)  # repro: noqa(REP001)
        self._obs_label = str(obs_label)
        if _ort.active():
            _om.indexed_points().set(len(self._keys), index=self._obs_label)

    # ------------------------------------------------------------------ #
    # Introspection
    # ------------------------------------------------------------------ #

    def __len__(self) -> int:
        return len(self._keys)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"PlanarIndex(n={len(self)}, normal={self._normal.tolist()})"

    @property
    def normal(self) -> np.ndarray:
        """Index normal ``c`` in original coordinates (read-only)."""
        return self._normal

    @property
    def obs_label(self) -> str:
        """Label under which this index reports observability metrics."""
        return self._obs_label

    def set_obs_label(self, label: str) -> None:
        """Relabel this index's observability series.

        Collections call this after lifecycle mutations (``drop_index`` /
        ``add_index``) so labels always equal current positions.  The
        ``repro_indexed_points`` gauge is *carried*: the stale series is
        removed and the new label set to the live key count, so two
        distinct indices can never alias one label.  Counter history
        (``repro_interval_points_total``) stays under the old label —
        counters record what happened, and what happened was attributed
        correctly at the time.
        """
        label = str(label)
        if label == self._obs_label:
            return
        if _ort.active():
            gauge = _om.indexed_points()
            gauge.remove(index=self._obs_label)
            gauge.set(len(self._keys), index=label)
        self._obs_label = label

    def release_obs_label(self) -> None:
        """Retire this index's gauge series (called when it is dropped)."""
        if _ort.active():
            _om.indexed_points().remove(index=self._obs_label)

    @property
    def working_normal(self) -> np.ndarray:
        """Index normal ``c''`` in working coordinates (all positive)."""
        return self._working_normal

    @property
    def dim(self) -> int:
        """Feature dimensionality ``d'``."""
        return int(self._normal.size)

    def memory_bytes(self) -> int:
        """Footprint of this index's key structures (excludes shared features)."""
        return self._keys.memory_bytes()

    @classmethod
    @array_contract("features: (n, d) float64 cast promote", "normal: (d,) float64 cast")
    def from_features(
        cls,
        features: np.ndarray,
        normal: np.ndarray,
        margin: float = 0.0,
    ) -> "PlanarIndex":
        """Standalone construction over a feature matrix.

        Builds a private :class:`FeatureStore` and a translator whose octant
        is the sign pattern of ``normal``; convenient for tests and for
        single-index usage outside a :class:`FunctionIndex` facade.
        """
        store = FeatureStore(features)
        translator = Translator(sign_vector(normal, "normal"), margin=margin)
        _, rows = store.get_all()
        translator.observe(rows)
        return cls(normal, store, translator, None)

    @property
    def translator(self) -> Translator:
        """The octant translator used by this index."""
        return self._translator

    def working_query(self, query: ScalarProductQuery) -> WorkingQuery:
        """Transform ``query`` for this index's octant (see :class:`WorkingQuery`)."""
        return WorkingQuery.build(query, self._translator)

    # ------------------------------------------------------------------ #
    # Interval geometry
    # ------------------------------------------------------------------ #

    def _thresholds(self, wq: WorkingQuery) -> tuple[float, float, float]:
        """Stored-key thresholds ``(t_lo, t_hi, tol)`` bounding SI and LI.

        ``T_i = c''_i * b'' / a''_i`` are the working-coordinate thresholds
        (Eq. 13 intercept products); subtracting the shared translation
        offset ``<c'', delta>`` converts them to stored-key space.

        ``tol`` is a numerical guard band.  ``T_i - <c'', delta>`` cancels
        catastrophically when a point sits exactly on the query hyperplane
        (both terms large, difference ~0), so certain-accept/certain-reject
        classification within ``tol`` of a threshold would be decided by
        rounding noise.  Keys inside the guard band are verified exactly
        against the original inequality instead, which keeps answers exact
        while inflating the intermediate interval by a measure-zero slice.
        """
        if wq.normal_w.size != self.dim:
            raise InvalidQueryError(
                f"query has dimension {wq.normal_w.size}, index has {self.dim}"
            )
        t = self._working_normal * (wq.offset_w / wq.normal_w)
        key_offset = self._translator.key_offset(self._working_normal)
        # Scale of the *intermediate* terms, before cancellation.
        scale = max(1.0, float(np.abs(t).max()), abs(key_offset))
        tol = 1e-9 * scale
        return float(t.min() - key_offset), float(t.max() - key_offset), tol

    def interval_ranks(self, wq: WorkingQuery) -> tuple[int, int, int]:
        """Sorted-rank boundaries ``(r_lo, r_hi, n)`` of the intervals.

        * ranks ``[0, r_lo)``   — SI: ``<a, phi(x)> < b`` certain,
        * ranks ``[r_lo, r_hi)`` — intermediate interval, must verify,
        * ranks ``[r_hi, n)``   — LI: ``<a, phi(x)> > b`` certain.

        Both certain intervals are strict (the guard band around each
        threshold is folded into the intermediate interval), so they are
        valid for the strict and non-strict operators alike.
        """
        obs_on = _ort.active()
        started = time.perf_counter() if obs_on else 0.0
        t_lo, t_hi, tol = self._thresholds(wq)
        r_lo = self._keys.rank_le(t_lo - tol)
        r_hi = self._keys.rank_le(t_hi + tol)
        if obs_on:
            _osp.record("binary_search", started, index=self._obs_label)
        return r_lo, r_hi, len(self._keys)

    def max_stretch(self, wq: WorkingQuery) -> float:
        """Maximum stretch of the intermediate interval (Problem 3, Eq. 15).

        ``Stretch(c, i) = (max_k T_k - min_k T_k) / c''_i`` is maximised by
        the smallest normal component, so the score reduces to a scalar.
        Zero iff the index is parallel to the query hyperplane
        (Corollary 1).
        """
        t = self._working_normal * (wq.offset_w / wq.normal_w)
        return float((t.max() - t.min()) / self._working_normal.min())

    def angle_cosine(self, wq: WorkingQuery) -> float:
        """|cos| of the angle between index and query normals (Section 5.1.2).

        1.0 iff parallel; reflections preserve angles so working coordinates
        give the same value as original ones.
        """
        c = self._working_normal
        a = wq.normal_w
        return float(abs(np.dot(a, c)) / (np.linalg.norm(a) * np.linalg.norm(c)))

    # ------------------------------------------------------------------ #
    # Problem 1: inequality query (Algorithm 1)
    # ------------------------------------------------------------------ #

    def query(self, query: ScalarProductQuery | WorkingQuery) -> QueryResult:
        """Exact evaluation of an inequality query.

        Accepts a raw :class:`ScalarProductQuery` (transformed internally)
        or a prebuilt :class:`WorkingQuery` (the collection path, which
        builds it once for all indices).

        Opens a ``query.inequality`` trace root when obs is armed and no
        outer facade already owns the trace, so standalone index usage
        gets the same head sampling and query-log records as the
        collection routes.
        """
        ctx = _otr.begin("inequality")
        if ctx is None:
            return self._query_impl(query)
        try:
            result = self._query_impl(query)
        except BaseException as exc:  # repro: noqa(REP005) — trace-abort boundary; telemetry closes, exception re-raised unchanged
            _otr.abort(ctx, exc)
            raise
        _otr.finish(
            ctx, stats=result.stats.to_dict, results=result.stats.n_results
        )
        return result

    def _query_impl(self, query: ScalarProductQuery | WorkingQuery) -> QueryResult:
        """Inequality evaluation body shared by traced and nested calls."""
        wq = query if isinstance(query, WorkingQuery) else self.working_query(query)
        if not _ort.active():
            r_lo, r_hi, _ = self.interval_ranks(wq)
            return self.finish_query(wq, r_lo, r_hi)
        started = time.perf_counter()
        with _osp.span("index.query", index=self._obs_label):
            r_lo, r_hi, _ = self.interval_ranks(wq)
            result = self.finish_query(wq, r_lo, r_hi)
        _om.queries_total().inc(kind="inequality", route="intervals", strategy="solo")
        _om.query_latency().observe(
            time.perf_counter() - started, kind="inequality", route="intervals"
        )
        return result

    def _record_partition(self, kind: str, si: int, ii: int, li: int, n_verified: int) -> None:
        """O(1) metric bookkeeping for one answered query (obs armed only)."""
        counts = _om.interval_points()
        label = self._obs_label
        counts.inc(si, interval="si", index=label)
        counts.inc(ii, interval="ii", index=label)
        counts.inc(li, interval="li", index=label)
        _om.verified_points().inc(n_verified, kind=kind)

    def finish_query(
        self,
        wq: WorkingQuery,
        r_lo: int,
        r_hi: int,
        precomputed: tuple[np.ndarray, np.ndarray] | None = None,
    ) -> QueryResult:
        """Complete an inequality query from precomputed interval ranks.

        Split out of :meth:`query` so batch evaluation can compute the
        ranks of many queries with one vectorized binary search and then
        finish each query individually.  ``precomputed`` optionally
        carries ``(verify_ids, values)`` — the sorted intermediate-interval
        ids and their scalar products ``<a, phi(x)>`` under the canonical
        query normal — produced by the collection's batched GEMM so the
        per-query finish only applies the operator mask.
        """
        obs_on = _ort.active()
        n = len(self._keys)
        if wq.op.is_upper_bound:
            accepted = [self._keys.ids_in_rank_range(0, r_lo)]
        else:
            accepted = [self._keys.ids_in_rank_range(r_hi, n)]

        # Sorting the candidate ids first makes the row gather largely
        # sequential (np.take over ascending ids), which is the dominant
        # cost of verification at numpy speeds.
        started = time.perf_counter() if obs_on else 0.0
        if precomputed is None:
            verify_ids = np.sort(self._keys.ids_in_rank_range(r_lo, r_hi))
            n_verified = int(verify_ids.size)
            if n_verified:
                feats = self._store.take_rows(verify_ids)
                mask = wq.query.evaluate(feats)
                accepted.append(verify_ids[mask])
        else:
            verify_ids, values = precomputed
            n_verified = int(verify_ids.size)
            if n_verified:
                mask = wq.op.evaluate(values, wq.query.offset)
                accepted.append(verify_ids[mask])
        if obs_on:
            _osp.record("verify_II", started, n_verified=n_verified)
            started = time.perf_counter()

        result_ids = np.sort(np.concatenate(accepted))
        if obs_on:
            _osp.record("materialize", started, n_results=int(result_ids.size))
            self._record_partition(
                "inequality", r_lo, r_hi - r_lo, n - r_hi, n_verified
            )
        stats = QueryStats(
            n_total=n,
            si_size=r_lo,
            ii_size=r_hi - r_lo,
            li_size=n - r_hi,
            n_verified=n_verified,
            n_results=int(result_ids.size),
        )
        return QueryResult(result_ids, stats)

    def explain(self, query: ScalarProductQuery | WorkingQuery) -> ExplainReport:
        """Execute ``query`` through this index and report how it went.

        Unlike the collection-level EXPLAIN there is no candidate set — the
        report covers the partition and verification work of *this* index.
        The query is actually executed so ``actual_pruned`` (and the
        reported sizes) are measured, not estimated; the report's
        SI/II/LI sizes are therefore exactly :meth:`query`'s stats.
        """
        wq = query if isinstance(query, WorkingQuery) else self.working_query(query)
        r_lo, r_hi, n = self.interval_ranks(wq)
        stats = self.finish_query(wq, r_lo, r_hi).stats
        if _ort.active():
            _om.explain_total().inc(route="intervals")
        return ExplainReport(
            kind="inequality",
            route="intervals",
            n_total=n,
            chosen_index=None,
            index_normal=tuple(float(c) for c in self._normal),
            rank_lo=r_lo,
            rank_hi=r_hi,
            si_size=stats.si_size,
            ii_size=stats.ii_size,
            li_size=stats.li_size,
            n_verified=stats.n_verified,
            n_results=stats.n_results,
            estimated_pruned=stats.pruned_fraction,
            actual_pruned=1.0 - stats.verified_fraction if n else 1.0,
        )

    def query_range(
        self,
        wq_low: WorkingQuery,
        wq_high: WorkingQuery,
    ) -> QueryResult:
        """Exact BETWEEN query: ``low <= <a, phi(x)> <= high``.

        ``wq_low`` must be the ``>= low`` working query and ``wq_high`` the
        ``<= high`` one, both over the same normal.  One index serves both
        bounds: keys certainly above ``low`` *and* certainly below ``high``
        are accepted outright; the two guard bands around the thresholds
        are verified against the exact conjunction.

        This is the *standalone* entry point and reports query metrics
        under ``strategy="solo"``; collection-routed range queries go
        through :meth:`PlanarIndexCollection.query_range`, which labels
        them with the real selection strategy (matching how ``query`` and
        ``topk`` label).
        """
        if not _ort.active():
            return self._query_range_impl(wq_low, wq_high)
        started = time.perf_counter()
        result = self._query_range_impl(wq_low, wq_high)
        _om.queries_total().inc(kind="range", route="intervals", strategy="solo")
        _om.query_latency().observe(
            time.perf_counter() - started, kind="range", route="intervals"
        )
        return result

    def _query_range_impl(
        self,
        wq_low: WorkingQuery,
        wq_high: WorkingQuery,
    ) -> QueryResult:
        """Range evaluation shared by the solo and collection routes.

        Records the per-index span and partition counters but *not*
        ``repro_queries_total`` / latency — the caller owns those labels
        (``strategy="solo"`` standalone, the collection's strategy when
        routed), so one executed range query is counted exactly once.
        """
        if not np.array_equal(wq_low.query.normal, wq_high.query.normal):
            raise InvalidQueryError("range bounds must share one query normal")
        obs_on = _ort.active()
        started = time.perf_counter() if obs_on else 0.0
        # Certain-satisfy rank range of each bound, by its own operator
        # (bounds may have been canonicalized with a negated normal, which
        # flips which side of the key order satisfies them).
        bands = []
        regions = []
        n = len(self._keys)
        for wq in (wq_low, wq_high):
            r_lo, r_hi, _ = self.interval_ranks(wq)
            bands.append((r_lo, r_hi))
            regions.append((0, r_lo) if wq.op.is_upper_bound else (r_hi, n))
        in_start = max(region[0] for region in regions)
        in_stop = min(region[1] for region in regions)
        accepted = (
            self._keys.ids_in_rank_range(in_start, in_stop)
            if in_start < in_stop
            else np.empty(0, dtype=np.int64)
        )
        # Verify both uncertainty bands (they may overlap for tight ranges).
        band_ids = [
            self._keys.ids_in_rank_range(start, stop)
            for start, stop in bands
            if start < stop
        ]
        verify_ids = (
            np.unique(np.concatenate(band_ids)) if band_ids else np.empty(0, np.int64)
        )
        # Guard against double counting: certain-in ids never overlap the
        # bands by construction (disjoint rank ranges), but overlapping
        # bands may repeat ids between themselves — np.unique handled it.
        n_verified = int(verify_ids.size)
        if n_verified:
            feats = self._store.take_rows(verify_ids)
            mask = wq_low.query.evaluate(feats) & wq_high.query.evaluate(feats)
            verified = verify_ids[mask]
        else:
            verified = verify_ids
        result_ids = np.sort(np.concatenate([accepted, verified]))
        stats = QueryStats(
            n_total=n,
            si_size=max(0, in_stop - in_start),
            ii_size=n_verified,
            li_size=n - max(0, in_stop - in_start) - n_verified,
            n_verified=n_verified,
            n_results=int(result_ids.size),
        )
        if obs_on:
            _osp.record(
                "index.query_range", started, index=self._obs_label,
                n_verified=n_verified,
            )
            self._record_partition(
                "range", stats.si_size, stats.ii_size, stats.li_size, n_verified
            )
        return QueryResult(result_ids, stats)

    # ------------------------------------------------------------------ #
    # Problem 2: top-k nearest neighbors (Algorithm 2)
    # ------------------------------------------------------------------ #

    def topk(
        self,
        query: ScalarProductQuery | WorkingQuery,
        k: int,
        cutoff: SharedCutoff | None = None,
    ) -> TopKResult:
        """Exact top-k points satisfying the query, closest to ``H(q)`` first.

        Implements Algorithm 2: verify the intermediate interval into a
        bounded buffer, then scan the certain interval (SI for upper-bound
        operators, LI for lower-bound ones) moving away from the query
        hyperplane, stopping once the lower-bound distance ``LBS``
        (Definition 5 / its LI mirror) exceeds the buffered k-th distance.

        ``cutoff`` (optional) is a :class:`~repro.core.topk.SharedCutoff`
        published to and read by sibling shard scans of the sharded
        engine: the effective pruning threshold becomes the minimum of
        the local k-th distance and the best bound any shard has
        published.  Because the bound is always a valid upper bound on
        the *global* k-th distance and the cutoff test stays strict, the
        merged result is still exact — a shard may merely stop scanning
        points that can no longer make the global top-k.

        Opens a ``query.topk`` trace root when obs is armed and no outer
        facade already owns the trace (shard scans dispatched by the
        sharded engine attach to the engine's trace instead).
        """
        ctx = _otr.begin("topk")
        if ctx is None:
            return self._topk_impl(query, k, cutoff)
        try:
            result = self._topk_impl(query, k, cutoff)
        except BaseException as exc:  # repro: noqa(REP005) — trace-abort boundary; telemetry closes, exception re-raised unchanged
            _otr.abort(ctx, exc)
            raise
        def cost() -> dict:
            counters = result.stats.to_dict()
            counters["lbs_checked"] = int(result.n_checked)
            return counters

        _otr.finish(ctx, stats=cost, results=int(result.ids.size))
        return result

    def _topk_impl(
        self,
        query: ScalarProductQuery | WorkingQuery,
        k: int,
        cutoff: SharedCutoff | None = None,
    ) -> TopKResult:
        """Algorithm 2 body shared by traced and nested top-k calls."""
        if k <= 0:
            raise InvalidQueryError(f"k must be positive, got {k}")
        wq = query if isinstance(query, WorkingQuery) else self.working_query(query)
        r_lo, r_hi, n = self.interval_ranks(wq)
        ids_ii = np.sort(self._keys.ids_in_rank_range(r_lo, r_hi))
        return self._topk_from_ii(wq, k, cutoff, r_lo, r_hi, n, ids_ii, None)

    def _topk_from_ii(
        self,
        wq: WorkingQuery,
        k: int,
        cutoff: SharedCutoff | None,
        r_lo: int,
        r_hi: int,
        n: int,
        ids_ii: np.ndarray,
        values_ii: np.ndarray | None,
    ) -> TopKResult:
        """Algorithm 2 from precomputed interval ranks and II candidates.

        ``ids_ii`` must be the sorted intermediate-interval ids.
        ``values_ii`` optionally carries their scalar products
        ``<a, phi(x)>`` under the canonical query normal (the collection's
        batched GEMM supplies them); when None they are computed here.
        The LBS cutoff scan that follows is inherently sequential per
        query, so only the II verification is batchable.
        """
        obs_on = _ort.active()
        op = wq.op
        buffer = TopKBuffer(k)
        n_checked = 0

        started = time.perf_counter() if obs_on else 0.0
        if ids_ii.size:
            n_checked += int(ids_ii.size)
            if values_ii is None:
                feats = self._store.take_rows(ids_ii)
                values = feats @ wq.query.normal
            else:
                values = values_ii
            mask = op.evaluate(values, wq.query.offset)
            distances = np.abs(values[mask] - wq.query.offset) / wq.norm
            buffer.offer_many(distances, ids_ii[mask])
            if cutoff is not None and buffer.is_full:
                cutoff.publish(buffer.max_distance)
        if obs_on:
            _osp.record("verify_II", started, n_verified=int(ids_ii.size))
            started = time.perf_counter()

        key_offset = self._translator.key_offset(self._working_normal)
        ratio = wq.normal_w / self._working_normal

        if op.is_upper_bound:
            # Certain interval is SI: every point there satisfies the strict
            # inequality, so no operator re-check is needed during the scan.
            max_ratio = float(ratio.max())
            position = r_lo
            while position > 0:
                start = max(0, position - _TOPK_BLOCK)
                keys = self._keys.keys_in_rank_range(start, position)[::-1]
                ids_blk = self._keys.ids_in_rank_range(start, position)[::-1]
                # LBS (Definition 5): working key * max(a''/c'') is the
                # largest possible <a, phi>, so b'' minus it lower-bounds the
                # distance of this point and of every point below it
                # (Claim 3).
                lbs_head = (wq.offset_w - (float(keys[0]) + key_offset) * max_ratio) / wq.norm
                limit = buffer.max_distance
                if cutoff is not None:
                    limit = min(limit, cutoff.get())
                if lbs_head > limit:
                    break
                n_checked += int(ids_blk.size)
                ids_blk = np.sort(ids_blk)
                feats = self._store.take_rows(ids_blk)
                values = feats @ wq.query.normal
                distances = np.abs(values - wq.query.offset) / wq.norm
                buffer.offer_many(distances, ids_blk)
                if cutoff is not None and buffer.is_full:
                    cutoff.publish(buffer.max_distance)
                position = start
        else:
            # Certain interval is LI: every point satisfies > b, scan ascending.
            min_ratio = float(ratio.min())
            position = r_hi
            while position < n:
                stop = min(n, position + _TOPK_BLOCK)
                keys = self._keys.keys_in_rank_range(position, stop)
                ids_blk = self._keys.ids_in_rank_range(position, stop)
                lbs_head = ((float(keys[0]) + key_offset) * min_ratio - wq.offset_w) / wq.norm
                limit = buffer.max_distance
                if cutoff is not None:
                    limit = min(limit, cutoff.get())
                if lbs_head > limit:
                    break
                n_checked += int(ids_blk.size)
                ids_blk = np.sort(ids_blk)
                feats = self._store.take_rows(ids_blk)
                values = feats @ wq.query.normal
                distances = np.abs(values - wq.query.offset) / wq.norm
                buffer.offer_many(distances, ids_blk)
                if cutoff is not None and buffer.is_full:
                    cutoff.publish(buffer.max_distance)
                position = stop

        stats = QueryStats(
            n_total=n,
            si_size=r_lo,
            ii_size=r_hi - r_lo,
            li_size=n - r_hi,
            n_verified=n_checked,
            n_results=len(buffer),
        )
        if obs_on:
            # One span for the whole LBS cutoff scan (O(1) bookkeeping per
            # query regardless of how many blocks the scan visited).
            _osp.record(
                "scan_LBS", started, index=self._obs_label,
                n_scanned=n_checked - int(ids_ii.size),
            )
            self._record_partition("topk", r_lo, r_hi - r_lo, n - r_hi, n_checked)
        ids, distances = buffer.as_sorted()
        return TopKResult(
            ids=ids, distances=distances, n_checked=n_checked, n_total=n, stats=stats
        )

    # ------------------------------------------------------------------ #
    # Dynamic maintenance (Section 4.4)
    # ------------------------------------------------------------------ #

    def _compute_keys(self, rows: np.ndarray) -> np.ndarray:
        """Scalar keys ``<c, phi(x)>`` for maintenance-supplied feature rows.

        Single shared implementation (layout normalization included) so
        :meth:`rekey` and :meth:`insert` cannot drift apart in how they
        key rows — both must match the build-time keying exactly or
        maintained indices would return different answers than rebuilt
        ones.
        """
        rows = np.ascontiguousarray(rows, dtype=np.float64)
        return rows @ self._normal

    @array_contract("ids: (m,) int64 cast", "rows: (m, d) float64 cast")
    def rekey(self, ids: np.ndarray, rows: np.ndarray) -> None:
        """Update keys after the features of existing points changed.

        ``rows`` holds only the changed feature rows (one per id), never the
        full matrix.  The caller (usually :class:`FunctionIndex`) is
        responsible for having already updated the shared store and grown
        the translator.
        """
        self._keys.update_batch(
            np.ascontiguousarray(ids, dtype=np.int64), self._compute_keys(rows)
        )

    @array_contract("ids: (m,) int64 cast", "rows: (m, d) float64 cast")
    def insert(self, ids: np.ndarray, rows: np.ndarray) -> None:
        """Index newly appended points (one feature row per id)."""
        self._keys.insert(
            np.ascontiguousarray(ids, dtype=np.int64), self._compute_keys(rows)
        )
        if _ort.active():
            _om.indexed_points().set(len(self._keys), index=self._obs_label)

    @array_contract("ids: (m,) int64 cast")
    def delete(self, ids: np.ndarray) -> None:
        """Drop points from this index."""
        self._keys.delete(np.ascontiguousarray(ids, dtype=np.int64))
        if _ort.active():
            _om.indexed_points().set(len(self._keys), index=self._obs_label)
