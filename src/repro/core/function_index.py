"""User-facing facade: index a function over data points (the paper's title).

:class:`FunctionIndex` owns the whole pipeline of the paper:

* apply the application-specific function ``phi`` to the raw data points,
* derive the working octant from the query-parameter domains and translate
  (Section 4.5),
* maintain a budget of Planar indices sampled from those domains
  (Section 5.2),
* route each incoming query through best-index selection (Section 5.1) to
  Algorithm 1 / Algorithm 2,
* keep everything consistent under dynamic point updates, inserts, and
  deletes (Section 4.4).

Queries whose parameters fall outside the indexed octant cannot use the
interval argument; by default they transparently fall back to a sequential
scan (and are flagged as such in the answer) instead of failing.
"""

from __future__ import annotations

import time
from dataclasses import dataclass

import numpy as np

from .._util import as_2d_float, as_rng, require_finite_rows
from ..exceptions import DimensionMismatchError, InvalidQueryError
from ..geometry.translation import Translator
from ..obs import metrics as _om
from ..obs import runtime as _ort
from ..obs import trace as _otr
from ..reliability.degraded import DegradedInfo
from ..obs.explain import ExplainReport
from .collection import PlanarIndexCollection
from .domains import QueryModel
from .feature_store import FeatureStore
from .phi import FeatureMap, identity_map
from .planar import QueryStats
from .query import Comparison, ScalarProductQuery
from .selection import SelectionStrategy
from .topk import TopKResult

# Workload recording hook (repro.tuning).  Import-order safe: the recorder
# module itself depends only on repro.exceptions / repro.obs, and the
# advisor (pulled in by the tuning package) imports only core submodules
# that are fully initialized before this module (collection, planar, query,
# selection).  The hot-path guard is one module-attribute read when
# recording is disarmed.
from ..tuning import recorder as _tnr

__all__ = ["FunctionIndex", "QueryAnswer"]


@dataclass(frozen=True)
class QueryAnswer:
    """Answer to an inequality query through the facade.

    ``stats`` is ``None`` (and ``used_fallback`` True) when the query could
    not use the Planar machinery and was answered by a sequential scan.

    ``degraded`` is ``None`` for normal answers; the sharded engine attaches
    a :class:`~repro.reliability.degraded.DegradedInfo` when shard failures
    were recovered or the answer is partial (see ``docs/reliability.md``).
    """

    ids: np.ndarray
    stats: QueryStats | None
    used_fallback: bool
    degraded: DegradedInfo | None = None

    def __post_init__(self) -> None:
        object.__setattr__(self, "ids", np.ascontiguousarray(self.ids, dtype=np.int64))

    def __len__(self) -> int:
        return int(self.ids.size)


def _merge_batch_stats(parts: list[QueryStats]) -> QueryStats:
    """Sum per-query diagnostics of a batch for its trace's cost record."""
    return QueryStats(
        n_total=sum(p.n_total for p in parts),
        si_size=sum(p.si_size for p in parts),
        ii_size=sum(p.ii_size for p in parts),
        li_size=sum(p.li_size for p in parts),
        n_verified=sum(p.n_verified for p in parts),
        n_results=sum(p.n_results for p in parts),
    )


class FunctionIndex:
    """Planar-indexed evaluation of ``<a, phi(x)> OP b`` queries.

    Parameters
    ----------
    points:
        ``(n, d)`` raw data points.
    query_model:
        Per-axis domains of the query parameters ``a`` (Section 4.1); also
        determines the working octant and the index-normal distribution.
    feature_map:
        The indexed function ``phi``; identity by default (half-space
        search).
    n_indices:
        Index budget ``r`` (Section 5.2).  Ignored when ``normals`` is
        given.
    normals:
        Optional explicit ``(r, d')`` index normals instead of sampling
        from the query model — e.g. the MOVIES-style per-time-slot normals
        of the moving-object application (Section 7.5.1).
    strategy:
        Best-index heuristic (paper default: min-stretch / volume).
    scan_fallback:
        Answer octant-incompatible queries by scanning instead of raising.
    margin:
        Translation slack forwarded to :class:`Translator`.
    rng:
        Seed or generator for index-normal sampling.
    """

    def __init__(
        self,
        points: np.ndarray,
        query_model: QueryModel,
        feature_map: FeatureMap | None = None,
        n_indices: int = 10,
        normals: np.ndarray | None = None,
        strategy: SelectionStrategy | str = SelectionStrategy.MIN_STRETCH,
        scan_fallback: bool = True,
        margin: float = 0.0,
        rng: np.random.Generator | int | None = None,
    ) -> None:
        pts = as_2d_float(points, "points")
        if feature_map is None:
            feature_map = identity_map(pts.shape[1])
        if feature_map.in_dim != pts.shape[1]:
            raise DimensionMismatchError(
                f"points have dimension {pts.shape[1]}, feature map expects "
                f"{feature_map.in_dim}"
            )
        if query_model.dim != feature_map.out_dim:
            raise DimensionMismatchError(
                f"query model has dimension {query_model.dim}, feature map "
                f"produces {feature_map.out_dim}"
            )
        self._phi = feature_map
        self._model = query_model
        self._scan_fallback = bool(scan_fallback)
        self._rng = as_rng(rng)

        self._points = FeatureStore(pts)
        features = feature_map(pts)
        self._features = FeatureStore(features)
        self._translator = Translator(query_model.octant(), margin=margin)
        self._translator.observe(features)
        if normals is not None:
            self._collection = PlanarIndexCollection(
                self._features, self._translator, normals, strategy, self._rng
            )
        else:
            self._collection = PlanarIndexCollection.from_model(
                self._features,
                self._translator,
                query_model,
                n_indices,
                strategy,
                self._rng,
            )

    @classmethod
    def _from_prebuilt(
        cls,
        points: FeatureStore,
        features: FeatureStore,
        translator: Translator,
        collection: PlanarIndexCollection,
        feature_map: FeatureMap,
        query_model: QueryModel,
        scan_fallback: bool = True,
        rng: np.random.Generator | int | None = None,
    ) -> "FunctionIndex":
        """Bind a facade over already-constructed components.

        The persistence load path: format v3 stores the derived state
        (features, per-index sorted keys), so nothing here re-applies
        ``phi``, re-observes the translator, or re-keys indices.
        """
        self = cls.__new__(cls)
        self._phi = feature_map
        self._model = query_model
        self._scan_fallback = bool(scan_fallback)
        self._rng = as_rng(rng)
        self._points = points
        self._features = features
        self._translator = translator
        self._collection = collection
        return self

    # ------------------------------------------------------------------ #
    # Introspection
    # ------------------------------------------------------------------ #

    def __len__(self) -> int:
        """Number of live indexed points."""
        return len(self._features)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"FunctionIndex(n={len(self)}, d={self._phi.in_dim}, "
            f"d'={self._phi.out_dim}, r={self.n_indices})"
        )

    @property
    def feature_map(self) -> FeatureMap:
        """The indexed function ``phi``."""
        return self._phi

    @property
    def query_model(self) -> QueryModel:
        """The configured query-parameter domains."""
        return self._model

    @property
    def collection(self) -> PlanarIndexCollection:
        """The underlying Planar index collection."""
        return self._collection

    @property
    def translator(self) -> Translator:
        """The shared octant translator."""
        return self._translator

    @property
    def n_indices(self) -> int:
        """Number of live Planar indices."""
        return len(self._collection)

    def memory_bytes(self) -> int:
        """Footprint of features, raw points, and all key structures."""
        return (
            self._features.memory_bytes()
            + self._points.memory_bytes()
            + self._collection.memory_bytes()
        )

    def get_points(self, ids: np.ndarray) -> np.ndarray:
        """Raw data points for the given ids."""
        return self._points.get(ids)

    def get_features(self, ids: np.ndarray) -> np.ndarray:
        """Feature vectors ``phi(x)`` for the given ids."""
        return self._features.get(ids)

    def live_ids(self) -> np.ndarray:
        """All live point ids."""
        return self._features.live_ids()

    # ------------------------------------------------------------------ #
    # Queries
    # ------------------------------------------------------------------ #

    def _scan(self, query: ScalarProductQuery) -> np.ndarray:
        ids, rows = self._features.get_all()
        mask = query.evaluate(rows)
        return np.sort(ids[mask])

    def _finish_trace(
        self, ctx: _otr.TraceContext, answer: QueryAnswer, n_queries: int = 1
    ) -> None:
        """Close a monolithic facade trace (shards=1, never degraded)."""
        if _ort.ENABLED:  # repro: noqa(REP012) — thread-shared flag; a process-pool backend must re-enable obs per worker
            _om.answer_completeness().observe(1.0, kind=ctx.kind)
        _otr.finish(
            ctx,
            stats=answer.stats.to_dict if answer.stats is not None else None,
            shards=1,
            n_queries=n_queries,
            results=len(answer),
        )

    def query(
        self,
        normal: np.ndarray,
        offset: float,
        op: Comparison | str = Comparison.LE,
    ) -> QueryAnswer:
        """Answer the inequality query ``<normal, phi(x)> OP offset`` exactly."""
        ctx = _otr.begin("inequality")
        if ctx is None:
            return self._query_impl(normal, offset, op)
        try:
            answer = self._query_impl(normal, offset, op)
        except BaseException as exc:  # repro: noqa(REP005) — trace-abort boundary; telemetry closes, exception re-raised unchanged
            _otr.abort(ctx, exc)
            raise
        self._finish_trace(ctx, answer)
        return answer

    def _query_impl(
        self,
        normal: np.ndarray,
        offset: float,
        op: Comparison | str = Comparison.LE,
    ) -> QueryAnswer:
        """Untraced body of :meth:`query` (shared by the trace wrapper)."""
        spq = ScalarProductQuery(np.asarray(normal, dtype=np.float64), offset, op)
        if spq.dim != self._phi.out_dim:
            raise DimensionMismatchError(
                f"query has dimension {spq.dim}, feature space has {self._phi.out_dim}"
            )
        if _tnr.RECORDING:
            _tnr.record_query(spq.normal, spq.offset, spq.op.value, "inequality")
        try:
            result = self._collection.query(spq)
        except InvalidQueryError:
            if not self._scan_fallback:
                raise
            return QueryAnswer(self._fallback_scan(spq, "inequality"), None, True)
        return QueryAnswer(result.ids, result.stats, False)

    def _fallback_scan(self, query: ScalarProductQuery, kind: str) -> np.ndarray:
        """Octant-fallback scan, reported under its own metric route."""
        obs_on = _ort.active()
        started = time.perf_counter() if obs_on else 0.0
        ids = self._scan(query)
        if obs_on:
            _om.queries_total().inc(kind=kind, route="octant-fallback", strategy="none")
            _om.verified_points().inc(len(self), kind=kind)
            _om.query_latency().observe(
                time.perf_counter() - started, kind=kind, route="octant-fallback"
            )
        return ids

    def query_range(
        self,
        normal: np.ndarray,
        low: float,
        high: float,
    ) -> QueryAnswer:
        """Exact BETWEEN query: ``low <= <normal, phi(x)> <= high``.

        Served by a single Planar index pass over both thresholds (see
        :meth:`PlanarIndex.query_range`); falls back to a scan for
        octant-incompatible normals.
        """
        ctx = _otr.begin("range")
        if ctx is None:
            return self._query_range_impl(normal, low, high)
        try:
            answer = self._query_range_impl(normal, low, high)
        except BaseException as exc:  # repro: noqa(REP005) — trace-abort boundary; telemetry closes, exception re-raised unchanged
            _otr.abort(ctx, exc)
            raise
        self._finish_trace(ctx, answer)
        return answer

    def _query_range_impl(
        self,
        normal: np.ndarray,
        low: float,
        high: float,
    ) -> QueryAnswer:
        """Untraced body of :meth:`query_range`."""
        if not low <= high:
            raise InvalidQueryError(f"empty range ({low}, {high})")
        low_q = ScalarProductQuery(np.asarray(normal, dtype=np.float64), low, ">=")
        high_q = ScalarProductQuery(np.asarray(normal, dtype=np.float64), high, "<=")
        if low_q.dim != self._phi.out_dim:
            raise DimensionMismatchError(
                f"query has dimension {low_q.dim}, feature space has {self._phi.out_dim}"
            )
        if _tnr.RECORDING:
            # One sketch per bound (same normal, both operators).
            _tnr.record_query(low_q.normal, low, ">=", "range")
            _tnr.record_query(high_q.normal, high, "<=", "range")
        try:
            wq_low = self._collection.working_query(low_q)
            wq_high = self._collection.working_query(high_q)
        except InvalidQueryError:
            if not self._scan_fallback:
                raise
            obs_on = _ort.active()
            started = time.perf_counter() if obs_on else 0.0
            ids, rows = self._features.get_all()
            values = rows @ low_q.normal  # repro: noqa(REP001) — explicit opt-in scan fallback (guarded above)
            mask = (values >= low) & (values <= high)
            if obs_on:
                _om.queries_total().inc(
                    kind="range", route="octant-fallback", strategy="none"
                )
                _om.verified_points().inc(len(self), kind="range")
                _om.query_latency().observe(
                    time.perf_counter() - started, kind="range", route="octant-fallback"
                )
            return QueryAnswer(np.sort(ids[mask]), None, True)
        result = self._collection.query_range(wq_low, wq_high)
        return QueryAnswer(result.ids, result.stats, False)

    def query_batch(
        self,
        normals: np.ndarray,
        offsets: np.ndarray,
        op: Comparison | str = Comparison.LE,
    ) -> list[QueryAnswer]:
        """Answer a batch of inequality queries sharing one operator.

        ``normals`` is ``(m, d')`` and ``offsets`` has length ``m``.
        Binary searches are batched per selected index (see
        :meth:`PlanarIndexCollection.query_batch`); octant-incompatible
        queries fall back to scans individually.  The batch is one trace.
        """
        ctx = _otr.begin("batch")
        if ctx is None:
            return self._query_batch_impl(normals, offsets, op)
        try:
            answers = self._query_batch_impl(normals, offsets, op)
        except BaseException as exc:  # repro: noqa(REP005) — trace-abort boundary; telemetry closes, exception re-raised unchanged
            _otr.abort(ctx, exc)
            raise
        parts = [answer.stats for answer in answers if answer.stats is not None]
        merged = QueryAnswer(
            np.empty(0, dtype=np.int64),
            _merge_batch_stats(parts) if parts else None,
            False,
        )
        if _ort.ENABLED:  # repro: noqa(REP012) — thread-shared flag; a process-pool backend must re-enable obs per worker
            _om.answer_completeness().observe(1.0, kind=ctx.kind)
        _otr.finish(
            ctx,
            stats=merged.stats.to_dict if merged.stats is not None else None,
            shards=1,
            n_queries=len(answers),
            results=sum(len(answer) for answer in answers),
        )
        return answers

    def _query_batch_impl(
        self,
        normals: np.ndarray,
        offsets: np.ndarray,
        op: Comparison | str = Comparison.LE,
    ) -> list[QueryAnswer]:
        """Untraced body of :meth:`query_batch`."""
        normals = as_2d_float(normals, "normals")
        offsets = np.ascontiguousarray(offsets, dtype=np.float64)
        if offsets.ndim != 1 or offsets.size != normals.shape[0]:
            raise DimensionMismatchError(
                f"{offsets.size} offsets for {normals.shape[0]} normals"
            )
        queries = [
            ScalarProductQuery(normals[row], float(offsets[row]), op)
            for row in range(normals.shape[0])
        ]
        if _tnr.RECORDING:
            for spq in queries:
                _tnr.record_query(spq.normal, spq.offset, spq.op.value, "batch")
        plannable: list[int] = []
        answers: list[QueryAnswer | None] = [None] * len(queries)
        for position, spq in enumerate(queries):
            try:
                self._collection.working_query(spq)
            except InvalidQueryError:
                if not self._scan_fallback:
                    raise
                answers[position] = QueryAnswer(
                    self._fallback_scan(spq, "batch"), None, True
                )
                continue
            plannable.append(position)
        if plannable:
            results = self._collection.query_batch([queries[p] for p in plannable])
            for position, result in zip(plannable, results):
                answers[position] = QueryAnswer(result.ids, result.stats, False)
        return answers  # type: ignore[return-value]

    def topk(
        self,
        normal: np.ndarray,
        offset: float,
        k: int,
        op: Comparison | str = Comparison.LE,
    ) -> TopKResult:
        """Top-k satisfying points nearest the query hyperplane (Problem 2)."""
        ctx = _otr.begin("topk")
        if ctx is None:
            return self._topk_impl(normal, offset, k, op)
        try:
            result = self._topk_impl(normal, offset, k, op)
        except BaseException as exc:  # repro: noqa(REP005) — trace-abort boundary; telemetry closes, exception re-raised unchanged
            _otr.abort(ctx, exc)
            raise
        if _ort.ENABLED:  # repro: noqa(REP012) — thread-shared flag; a process-pool backend must re-enable obs per worker
            _om.answer_completeness().observe(1.0, kind=ctx.kind)
        def cost() -> dict:
            counters = result.stats.to_dict() if result.stats is not None else {}
            counters["lbs_checked"] = int(result.n_checked)
            return counters

        _otr.finish(
            ctx, stats=cost, shards=1, results=int(result.ids.size)
        )
        return result

    def _topk_impl(
        self,
        normal: np.ndarray,
        offset: float,
        k: int,
        op: Comparison | str = Comparison.LE,
    ) -> TopKResult:
        """Untraced body of :meth:`topk`."""
        spq = ScalarProductQuery(np.asarray(normal, dtype=np.float64), offset, op)
        if spq.dim != self._phi.out_dim:
            raise DimensionMismatchError(
                f"query has dimension {spq.dim}, feature space has {self._phi.out_dim}"
            )
        if _tnr.RECORDING:
            _tnr.record_query(spq.normal, spq.offset, spq.op.value, "topk", k)
        try:
            return self._collection.topk(spq, k)
        except InvalidQueryError:
            if not self._scan_fallback:
                raise
            from ..scan.baseline import SequentialScan

            obs_on = _ort.active()
            started = time.perf_counter() if obs_on else 0.0
            ids, rows = self._features.get_all()
            result = SequentialScan(rows, ids).topk(spq, k)
            if obs_on:
                _om.queries_total().inc(
                    kind="topk", route="octant-fallback", strategy="none"
                )
                _om.query_latency().observe(
                    time.perf_counter() - started, kind="topk", route="octant-fallback"
                )
            return result

    def topk_batch(
        self,
        normals: np.ndarray,
        offsets: np.ndarray,
        k: int,
        op: Comparison | str = Comparison.LE,
    ) -> list[TopKResult]:
        """Answer a batch of top-k queries sharing one operator and ``k``.

        Candidate verification is batched per selected index with one
        GEMM (see :meth:`PlanarIndexCollection.topk_batch`); each query's
        LBS cutoff scan still runs individually.  Octant-incompatible
        queries fall back to sequential-scan top-k one by one.  The batch
        is one trace.
        """
        ctx = _otr.begin("batch_topk")
        if ctx is None:
            return self._topk_batch_impl(normals, offsets, k, op)
        try:
            results = self._topk_batch_impl(normals, offsets, k, op)
        except BaseException as exc:  # repro: noqa(REP005) — trace-abort boundary; telemetry closes, exception re-raised unchanged
            _otr.abort(ctx, exc)
            raise
        if _ort.ENABLED:  # repro: noqa(REP012) — thread-shared flag; a process-pool backend must re-enable obs per worker
            _om.answer_completeness().observe(1.0, kind=ctx.kind)
        parts = [result.stats for result in results if result.stats is not None]
        merged = _merge_batch_stats(parts) if parts else None

        def cost() -> dict:
            counters = merged.to_dict() if merged is not None else {}
            counters["lbs_checked"] = sum(int(r.n_checked) for r in results)
            return counters

        _otr.finish(
            ctx,
            stats=cost,
            shards=1,
            n_queries=len(results),
            results=sum(int(r.ids.size) for r in results),
        )
        return results

    def _topk_batch_impl(
        self,
        normals: np.ndarray,
        offsets: np.ndarray,
        k: int,
        op: Comparison | str = Comparison.LE,
    ) -> list[TopKResult]:
        """Untraced body of :meth:`topk_batch`."""
        normals = as_2d_float(normals, "normals")
        offsets = np.ascontiguousarray(offsets, dtype=np.float64)
        if offsets.ndim != 1 or offsets.size != normals.shape[0]:
            raise DimensionMismatchError(
                f"{offsets.size} offsets for {normals.shape[0]} normals"
            )
        if normals.shape[0] and normals.shape[1] != self._phi.out_dim:
            raise DimensionMismatchError(
                f"queries have dimension {normals.shape[1]}, feature space "
                f"has {self._phi.out_dim}"
            )
        queries = [
            ScalarProductQuery(normals[row], float(offsets[row]), op)
            for row in range(normals.shape[0])
        ]
        if _tnr.RECORDING:
            for spq in queries:
                _tnr.record_query(spq.normal, spq.offset, spq.op.value, "topk", k)
        plannable: list[int] = []
        results: list[TopKResult | None] = [None] * len(queries)
        for position, spq in enumerate(queries):
            try:
                self._collection.working_query(spq)
            except InvalidQueryError:
                if not self._scan_fallback:
                    raise
                from ..scan.baseline import SequentialScan

                ids, rows = self._features.get_all()
                results[position] = SequentialScan(rows, ids).topk(spq, k)
                continue
            plannable.append(position)
        if plannable:
            batched = self._collection.topk_batch(
                [queries[p] for p in plannable], k
            )
            for position, result in zip(plannable, batched):
                results[position] = result
        return results  # type: ignore[return-value]

    def explain(
        self,
        normal: np.ndarray,
        offset: float,
        op: Comparison | str = Comparison.LE,
    ) -> dict[str, object]:
        """EXPLAIN-style plan for a query, without executing it.

        Returns the selected index (position and normal), the interval
        sizes the plan is based on, and the route the executor would take:
        ``"intervals"`` (pruned evaluation), ``"scan"`` (cost-based
        fallback for an unselective index), or ``"octant-fallback"``
        (parameter signs incompatible with the indexed octant).
        """
        from .collection import _SCAN_FALLBACK_FRACTION

        spq = ScalarProductQuery(np.asarray(normal, dtype=np.float64), offset, op)
        try:
            wq = self._collection.working_query(spq)
        except InvalidQueryError as exc:
            return {
                "route": "octant-fallback",
                "reason": str(exc),
                "n_total": len(self),
            }
        position = self._collection._select_position(wq)
        index = self._collection[position]
        r_lo, r_hi, n = index.interval_ranks(wq)
        intermediate = r_hi - r_lo
        route = (
            "scan" if intermediate > _SCAN_FALLBACK_FRACTION * n else "intervals"
        )
        return {
            "route": route,
            "strategy": self._collection.strategy.value,
            "index_position": position,
            "index_normal": index.normal.copy(),
            "si_size": r_lo,
            "ii_size": intermediate,
            "li_size": n - r_hi,
            "n_total": n,
            "expected_verified": n if route == "scan" else intermediate,
        }

    def explain_report(
        self,
        normal: np.ndarray,
        offset: float,
        op: Comparison | str = Comparison.LE,
    ) -> ExplainReport:
        """Structured EXPLAIN report for a query, executing it once.

        Unlike :meth:`explain`, which predicts the plan without running it,
        this runs the query through the exact code path :meth:`query` takes
        and reports measured interval sizes, verification counts, and the
        pruning achieved.  Octant-incompatible queries produce a report for
        the sequential-scan fallback route instead of raising (when
        ``scan_fallback`` is set).
        """
        spq = ScalarProductQuery(np.asarray(normal, dtype=np.float64), offset, op)
        if spq.dim != self._phi.out_dim:
            raise DimensionMismatchError(
                f"query has dimension {spq.dim}, feature space has {self._phi.out_dim}"
            )
        try:
            return self._collection.explain(spq)
        except InvalidQueryError as exc:
            if not self._scan_fallback:
                raise
            ids = self._scan(spq)
            if _ort.active():
                _om.explain_total().inc(route="octant-fallback")
            n = len(self)
            return ExplainReport(
                kind="inequality",
                route="octant-fallback",
                n_total=n,
                n_verified=n,
                n_results=int(ids.size),
                estimated_pruned=0.0,
                actual_pruned=0.0,
                notes=(str(exc),),
            )

    def query_disjunction(self, constraints) -> "ConstraintAnswer":
        """Exact disjunction (OR) of scalar product constraints.

        Same input conventions as :meth:`query_conjunction`.
        """
        from .constraints import DisjunctiveQuery, answer_disjunction

        built = []
        for constraint in constraints:
            if isinstance(constraint, ScalarProductQuery):
                built.append(constraint)
            else:
                built.append(ScalarProductQuery(*constraint))
        return answer_disjunction(
            self._collection, DisjunctiveQuery(built), self._features
        )

    def query_conjunction(self, constraints) -> "ConstraintAnswer":
        """Exact conjunction (AND) of scalar product constraints.

        ``constraints`` is a sequence of ``(normal, offset)`` or
        ``(normal, offset, op)`` tuples, or ready
        :class:`~repro.core.query.ScalarProductQuery` objects.  See
        :mod:`repro.core.constraints` for the multi-index evaluation.
        """
        from .constraints import ConjunctiveQuery, answer_conjunction

        built = []
        for constraint in constraints:
            if isinstance(constraint, ScalarProductQuery):
                built.append(constraint)
            else:
                built.append(ScalarProductQuery(*constraint))
        return answer_conjunction(
            self._collection, ConjunctiveQuery(built), self._features
        )

    # ------------------------------------------------------------------ #
    # Dynamic maintenance (Section 4.4)
    # ------------------------------------------------------------------ #

    def update_points(self, ids: np.ndarray, new_points: np.ndarray) -> None:
        """Change the raw values of existing points and re-key every index."""
        ids = np.ascontiguousarray(ids, dtype=np.int64)
        new_points = as_2d_float(new_points, "new_points")
        require_finite_rows(new_points, "new_points")
        features = self._phi(new_points)
        # Validate *before* the translator observes the new extremes: a NaN
        # feature row would poison the translator's running min/max and
        # corrupt every later octant translation even though the store
        # rejects the row.
        require_finite_rows(features, "features(new_points)")
        # Growing the translator first keeps Claim 1 valid for the new
        # extremes; stored keys are translation-invariant so no rebuild.
        self._translator.observe(features)
        self._points.update(ids, new_points)
        self._features.update(ids, features)
        self._collection.rekey(ids, features)

    def insert_points(self, new_points: np.ndarray) -> np.ndarray:
        """Add new data points; returns their assigned ids."""
        new_points = as_2d_float(new_points, "new_points")
        require_finite_rows(new_points, "new_points")
        features = self._phi(new_points)
        # Same ordering concern as update_points: reject non-finite feature
        # rows before the translator can absorb them into its extremes.
        require_finite_rows(features, "features(new_points)")
        self._translator.observe(features)
        point_ids = self._points.append(new_points)
        feature_ids = self._features.append(features)
        if not np.array_equal(point_ids, feature_ids):  # pragma: no cover
            raise RuntimeError("point/feature stores diverged")
        self._collection.insert(feature_ids, features)
        return feature_ids

    def delete_points(self, ids: np.ndarray) -> None:
        """Remove points from the index."""
        # Fail before touching the collection: deleting from the indices
        # first and then hitting a read-only (memmap) store would leave
        # the two out of lockstep.
        if not self._features.writable:
            self._features.delete(np.empty(0, dtype=np.int64))  # raises
        ids = np.ascontiguousarray(ids, dtype=np.int64)
        self._collection.delete(ids)
        self._features.delete(ids)
        self._points.delete(ids)

    def add_index(self, normal: np.ndarray) -> bool:
        """Dynamically add one more Planar index (Section 4.2 adaptation)."""
        return self._collection.add_index(normal)

    def drop_index(self, position: int) -> None:
        """Drop the Planar index at ``position`` (Section 4.2 adaptation).

        At least one index must remain; see
        :meth:`~repro.core.collection.PlanarIndexCollection.drop_index`.
        The tuning advisor's :func:`~repro.tuning.advisor.apply_plan`
        retires workload-mismatched normals through this hook.
        """
        self._collection.drop_index(position)
