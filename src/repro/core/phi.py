"""Feature maps ``phi : R^d -> R^{d'}`` (the "function" being indexed).

The paper's whole premise is that the *functional* part of a scalar product
query is known ahead of time.  :class:`FeatureMap` packages that function
with the metadata the index needs (input/output dimensionality, component
names for diagnostics).  Several constructors cover the paper's use cases:

* :func:`identity_map` — half-space range searching (Remark 3),
* :func:`product_map` — monomial features such as
  ``(active_power, voltage * current)`` from Example 1,
* :func:`polynomial_map` — degree-bounded monomials, and
* :meth:`FeatureMap.from_callable` — anything else.
"""

from __future__ import annotations

import itertools
from typing import Callable, Sequence

import numpy as np

from .._util import as_2d_float
from ..exceptions import DimensionMismatchError

__all__ = ["FeatureMap", "identity_map", "product_map", "polynomial_map"]


class FeatureMap:
    """A vetted, vectorized feature function with fixed dimensionalities.

    Parameters
    ----------
    func:
        Callable mapping an ``(n, d)`` array to an ``(n, d')`` array.
    in_dim / out_dim:
        ``d`` and ``d'``.
    names:
        Optional human-readable names for the ``d'`` output components,
        used in diagnostics and the SQL-function layer.
    """

    def __init__(
        self,
        func: Callable[[np.ndarray], np.ndarray],
        in_dim: int,
        out_dim: int,
        names: Sequence[str] | None = None,
    ) -> None:
        if in_dim <= 0 or out_dim <= 0:
            raise ValueError(
                f"feature map dimensions must be positive, got ({in_dim}, {out_dim})"
            )
        if names is not None and len(names) != out_dim:
            raise DimensionMismatchError(
                f"got {len(names)} component names for out_dim={out_dim}"
            )
        self._func = func
        self._in_dim = int(in_dim)
        self._out_dim = int(out_dim)
        self._names = tuple(names) if names is not None else tuple(
            f"phi_{i}" for i in range(out_dim)
        )

    # ------------------------------------------------------------------ #

    @property
    def in_dim(self) -> int:
        """Input dimensionality ``d``."""
        return self._in_dim

    @property
    def out_dim(self) -> int:
        """Output dimensionality ``d'``."""
        return self._out_dim

    @property
    def names(self) -> tuple[str, ...]:
        """Names of the output components."""
        return self._names

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"FeatureMap({self._in_dim} -> {self._out_dim}, names={list(self._names)})"

    def __call__(self, points: np.ndarray) -> np.ndarray:
        """Apply the map to a batch of points, validating both shapes."""
        pts = as_2d_float(points, "points")
        if pts.shape[1] != self._in_dim:
            raise DimensionMismatchError(
                f"points have dimension {pts.shape[1]}, feature map expects {self._in_dim}"
            )
        out = np.ascontiguousarray(self._func(pts), dtype=np.float64)
        if out.ndim != 2 or out.shape != (pts.shape[0], self._out_dim):
            raise DimensionMismatchError(
                f"feature function returned shape {out.shape}, expected "
                f"({pts.shape[0]}, {self._out_dim})"
            )
        return out

    # ------------------------------------------------------------------ #
    # Constructors
    # ------------------------------------------------------------------ #

    @classmethod
    def from_callable(
        cls,
        func: Callable[[np.ndarray], np.ndarray],
        in_dim: int,
        out_dim: int,
        names: Sequence[str] | None = None,
    ) -> "FeatureMap":
        """Wrap an arbitrary vectorized callable."""
        return cls(func, in_dim, out_dim, names)


def identity_map(dim: int) -> FeatureMap:
    """``phi(x) = x`` — reduces the problems to half-space range search."""
    return FeatureMap(lambda pts: pts, dim, dim, [f"x_{i}" for i in range(dim)])


def product_map(in_dim: int, terms: Sequence[Sequence[int]], names: Sequence[str] | None = None) -> FeatureMap:
    """Monomial features: each term is a tuple of input indices to multiply.

    ``product_map(4, [(0,), (2, 3)])`` builds
    ``phi(x) = (x_0, x_2 * x_3)`` — the Example 1 power-factor features.
    An empty term ``()`` yields the constant 1 component.
    """
    term_tuples = [tuple(int(i) for i in term) for term in terms]
    for term in term_tuples:
        for idx in term:
            if not 0 <= idx < in_dim:
                raise DimensionMismatchError(
                    f"term {term} references input index {idx}, but in_dim={in_dim}"
                )
    if names is None:
        names = [
            "*".join(f"x_{i}" for i in term) if term else "1" for term in term_tuples
        ]

    def _apply(pts: np.ndarray) -> np.ndarray:
        cols = []
        for term in term_tuples:
            col = np.ones(pts.shape[0], dtype=np.float64)
            for idx in term:
                col = col * pts[:, idx]
            cols.append(col)
        return np.column_stack(cols)

    fmap = FeatureMap(_apply, in_dim, len(term_tuples), names)
    # Marker consumed by repro.core.persistence so product maps round-trip.
    fmap._persist_kind = {
        "type": "product",
        "in_dim": in_dim,
        "terms": [list(t) for t in term_tuples],
    }
    return fmap


def polynomial_map(in_dim: int, degree: int, include_bias: bool = False) -> FeatureMap:
    """All monomials of total degree 1..``degree`` (optionally the constant).

    Generates features in the deterministic order produced by
    ``itertools.combinations_with_replacement``, mirroring what a polynomial
    kernel expansion would index.
    """
    if degree < 1:
        raise ValueError(f"degree must be >= 1, got {degree}")
    terms: list[tuple[int, ...]] = []
    if include_bias:
        terms.append(())
    for deg in range(1, degree + 1):
        terms.extend(itertools.combinations_with_replacement(range(in_dim), deg))
    return product_map(in_dim, terms)
