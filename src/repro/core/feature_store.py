"""Shared storage of feature vectors ``phi(x)``, addressable by point id.

Every Planar index in a collection sorts the *same* underlying feature
vectors under a different normal, and query verification must fetch feature
rows by point id.  :class:`FeatureStore` centralizes that storage so a
collection of ``r`` indices costs one feature matrix plus ``r`` key arrays —
matching the paper's ``O(n * r)`` space claim with a small constant.

The store is dynamic (Section 4.4): rows can be appended, re-valued, and
deleted.  Ids are stable row handles; deleted ids are never reused so stale
references fail loudly.
"""

from __future__ import annotations

import numpy as np

from .._util import as_2d_float, require_finite_rows
from ..analysis.contracts import array_contract
from ..exceptions import DimensionMismatchError
from ..obs import metrics as _om
from ..obs import runtime as _ort
from ..reliability import faults as _flt

__all__ = ["FeatureStore"]


class FeatureStore:
    """Growable ``(capacity, d')`` matrix with liveness tracking.

    Invariant: a point id *is* its row position in ``_data``, forever.
    Appends assign ids at the current capacity, deletes only flip the
    liveness bit (rows are never compacted), and dead ids are never
    reused — so ``live_ids()`` can derive ids from positions and row
    gathers can index directly by id without a translation table.
    Anything that compacts or reorders ``_data`` in place would break
    every :class:`~repro.core.sorted_keys.SortedKeyStore` built on top.
    """

    @array_contract("features: (n, d) float64 cast promote")
    def __init__(self, features: np.ndarray) -> None:
        data = as_2d_float(features, "features")
        if data.shape[0] == 0:
            raise ValueError("FeatureStore needs at least one initial feature row")
        require_finite_rows(data, "features")
        self._data = data.copy()
        self._live = np.ones(data.shape[0], dtype=bool)
        self._n_live = int(data.shape[0])
        # Bumped by every mutation (update/append/delete) so read-side
        # caches — e.g. a shard view's materialized row slice — can
        # invalidate with one integer comparison.
        self._version = 0
        self._writable = True

    @classmethod
    def from_backing(cls, data: np.ndarray) -> "FeatureStore":
        """Read-only store over an externally owned (typically memmap) matrix.

        ``data`` is bound directly — no copy, no finiteness re-check (the
        persistence layer checksums what it wrote) — so a multi-GB matrix
        costs nothing to open and its pages are shared across forked
        shard workers.  All rows are live: persistence compacts dead rows
        out at save time.  Mutations raise; load with ``mode="copy"`` to
        get a writable store.
        """
        if data.ndim != 2 or data.dtype != np.float64:
            raise ValueError(
                f"backing must be a float64 matrix, got {data.dtype} {data.shape}"
            )
        store = cls.__new__(cls)
        store._data = data
        store._live = np.ones(data.shape[0], dtype=bool)
        store._n_live = int(data.shape[0])
        store._version = 0
        store._writable = False
        return store

    def _require_writable(self) -> None:
        if not self._writable:
            raise ValueError(
                "this FeatureStore is a read-only (memmap) backing; "
                "load the index with mode='copy' to mutate it"
            )

    # ------------------------------------------------------------------ #

    @property
    def dim(self) -> int:
        """Feature dimensionality ``d'``."""
        return int(self._data.shape[1])

    def __len__(self) -> int:
        """Number of live rows."""
        return self._n_live

    @property
    def capacity(self) -> int:
        """Total allocated rows (live + deleted)."""
        return int(self._data.shape[0])

    @property
    def version(self) -> int:
        """Mutation counter; changes whenever rows or liveness change."""
        return self._version

    @property
    def writable(self) -> bool:
        """False for read-only (memmap) backings — mutations will raise."""
        return self._writable

    def live_ids(self) -> np.ndarray:
        """Ids of all live rows, ascending.

        Positions and ids coincide by the class invariant (ids are row
        positions and rows are never compacted), so deriving ids from
        ``nonzero(_live)`` is exact even after delete/append churn —
        pinned by ``test_live_ids_survive_churn``.
        """
        return np.nonzero(self._live)[0].astype(np.int64)

    def is_live(self, point_id: int) -> bool:
        """Whether ``point_id`` refers to a live row."""
        return 0 <= int(point_id) < self.capacity and bool(self._live[int(point_id)])

    def memory_bytes(self) -> int:
        """Heap footprint of the backing arrays."""
        return int(self._data.nbytes + self._live.nbytes)

    # ------------------------------------------------------------------ #

    def _check_ids(self, ids: np.ndarray) -> np.ndarray:
        ids = np.ascontiguousarray(ids, dtype=np.int64)
        if ids.ndim != 1:
            raise DimensionMismatchError(f"ids must be 1-D, got shape {ids.shape}")
        if ids.size and (ids.min() < 0 or ids.max() >= self.capacity):
            raise KeyError(f"point id out of range [0, {self.capacity})")
        dead = ids[~self._live[ids]]
        if dead.size:
            raise KeyError(f"point ids not live: {dead[:5].tolist()}")
        return ids

    @array_contract("ids: (m,) int64 cast", returns="(m, d) float64")
    def get(self, ids: np.ndarray) -> np.ndarray:
        """Feature rows for the given live ids (copy)."""
        if _flt.ARMED:
            _flt.check("store.get_features", n=int(np.size(ids)))
        ids = self._check_ids(ids)
        return self._data[ids]

    @array_contract("ids: (m,) int64 C", returns="(m, d) float64")
    def take_rows(self, ids: np.ndarray) -> np.ndarray:
        """Unvalidated row gather for internal hot paths.

        Callers must pass ids they obtained from this store (query
        verification does: the interval ids come from a key store that is
        maintained in lockstep).  ``numpy.take`` over pre-sorted ids is
        several times faster than checked fancy indexing, which dominates
        query latency otherwise.
        """
        if _ort.active():
            _om.rows_gathered().inc(ids.size)
        return np.take(self._data, ids, axis=0)

    def get_all(self) -> tuple[np.ndarray, np.ndarray]:
        """``(ids, rows)`` for every live row."""
        ids = self.live_ids()
        return ids, self._data[ids]

    @array_contract("normal: (d,) float64 cast")
    def scan_values(self, normal: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        """``(ids, <normal, row>)`` for every live row via one matmul.

        This is the streaming evaluation a sequential scan performs; the
        collection's cost-based router uses it when an index's intermediate
        interval would be more expensive to verify than scanning.
        """
        if _ort.active():
            _om.store_scans().inc()
        values = self._data @ np.ascontiguousarray(normal, dtype=np.float64)
        if self._n_live == self.capacity:
            return np.arange(self.capacity, dtype=np.int64), values
        ids = self.live_ids()
        return ids, values[ids]

    @array_contract("normals: (m, d) float64 cast promote")
    def scan_values_many(self, normals: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        """``(ids, values)`` of every live row under ``m`` normals at once.

        ``values`` has shape ``(n_live, m)`` with column ``j`` equal to
        ``scan_values(normals[j])[1]`` — one GEMM instead of ``m``
        matrix-vector products, which is what makes batched scan-routed
        queries cheap.  Counts ``m`` store scans (each column is one
        logical scan).
        """
        normals = as_2d_float(normals, "normals")
        if _ort.active():
            _om.store_scans().inc(normals.shape[0])
        values = self._data @ np.ascontiguousarray(normals.T)
        if self._n_live == self.capacity:
            return np.arange(self.capacity, dtype=np.int64), values
        ids = self.live_ids()
        return ids, values[ids]

    @array_contract("ids: (m,) int64 cast", "rows: (m, d) float64 cast")
    def update(self, ids: np.ndarray, rows: np.ndarray) -> None:
        """Replace the feature vectors of existing live rows."""
        self._require_writable()
        ids = self._check_ids(ids)
        rows = as_2d_float(rows, "rows")
        if rows.shape != (ids.size, self.dim):
            raise DimensionMismatchError(
                f"rows have shape {rows.shape}, expected ({ids.size}, {self.dim})"
            )
        require_finite_rows(rows, "rows")
        self._data[ids] = rows
        self._version += 1

    @array_contract("rows: (m, d) float64 cast promote", returns="(m,) int64")
    def append(self, rows: np.ndarray) -> np.ndarray:
        """Add new rows; returns their freshly assigned ids."""
        self._require_writable()
        rows = as_2d_float(rows, "rows")
        if rows.shape[1] != self.dim:
            raise DimensionMismatchError(
                f"rows have dimension {rows.shape[1]}, store has {self.dim}"
            )
        require_finite_rows(rows, "rows")
        if rows.shape[0] == 0:
            return np.empty(0, dtype=np.int64)
        start = self.capacity
        self._data = np.vstack([self._data, rows])
        self._live = np.concatenate([self._live, np.ones(rows.shape[0], dtype=bool)])
        self._n_live += rows.shape[0]
        self._version += 1
        return np.arange(start, start + rows.shape[0], dtype=np.int64)

    @array_contract("ids: (m,) int64 cast")
    def delete(self, ids: np.ndarray) -> None:
        """Mark rows dead; their ids become permanently invalid."""
        self._require_writable()
        ids = self._check_ids(ids)
        unique = np.unique(ids)
        if unique.size != ids.size:
            raise ValueError("delete ids must be unique")
        self._live[ids] = False
        self._n_live -= int(ids.size)
        self._version += 1
