"""Scalar product queries (Problem 1 and Problem 2 of the paper).

A scalar product query asks for all data points ``x`` with
``<a, phi(x)> OP b`` where ``OP`` is one of ``<=``, ``<``, ``>=``, ``>``.
The parameters ``a`` (the query normal) and ``b`` (the inequality offset)
are only known at query time; ``phi`` is fixed and indexed ahead of time.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

import numpy as np

from .._util import as_1d_float, describe_nonfinite
from ..exceptions import InvalidQueryError
from ..geometry.hyperplane import Hyperplane

__all__ = ["Comparison", "ScalarProductQuery", "TopKQuery"]


class Comparison(enum.Enum):
    """Inequality direction of a scalar product query."""

    LE = "<="
    LT = "<"
    GE = ">="
    GT = ">"

    @classmethod
    def parse(cls, op: "Comparison | str") -> "Comparison":
        """Accept either a :class:`Comparison` or its textual form."""
        if isinstance(op, Comparison):
            return op
        try:
            return cls(op)
        except ValueError:
            valid = ", ".join(repr(member.value) for member in cls)
            raise InvalidQueryError(f"unknown comparison {op!r}; expected one of {valid}") from None

    @property
    def is_upper_bound(self) -> bool:
        """True for ``<=`` / ``<`` (the result set lies below the hyperplane)."""
        return self in (Comparison.LE, Comparison.LT)

    @property
    def is_strict(self) -> bool:
        """True for the strict variants ``<`` and ``>``."""
        return self in (Comparison.LT, Comparison.GT)

    def flipped(self) -> "Comparison":
        """The comparison obtained by negating both sides of the inequality."""
        return _FLIPPED[self]

    def evaluate(self, lhs: np.ndarray, rhs: float) -> np.ndarray:
        """Vectorized truth of ``lhs OP rhs``."""
        if self is Comparison.LE:
            return lhs <= rhs
        if self is Comparison.LT:
            return lhs < rhs
        if self is Comparison.GE:
            return lhs >= rhs
        return lhs > rhs


_FLIPPED = {
    Comparison.LE: Comparison.GE,
    Comparison.LT: Comparison.GT,
    Comparison.GE: Comparison.LE,
    Comparison.GT: Comparison.LT,
}


@dataclass(frozen=True)
class ScalarProductQuery:
    """An inequality query ``<a, phi(x)> OP b`` (Problem 1).

    Parameters
    ----------
    normal:
        The query parameters ``a`` — the normal of the query hyperplane
        ``H(q)`` in feature space.  Must be nonzero; individual zero
        components are allowed here (the index layer drops or rejects them
        depending on its configured domains).
    offset:
        The inequality parameter ``b``.
    op:
        The inequality direction (default ``<=``, as in the paper).
    """

    normal: np.ndarray
    offset: float
    op: Comparison = Comparison.LE
    _hyperplane: Hyperplane = field(init=False, repr=False, compare=False, default=None)  # type: ignore[assignment]

    def __post_init__(self) -> None:
        normal = as_1d_float(self.normal, "normal")
        if normal.size == 0 or not np.any(normal):
            raise InvalidQueryError("query normal must be nonzero")
        if not np.all(np.isfinite(normal)):
            raise InvalidQueryError(
                f"query normal must be finite; non-finite entries at "
                f"{describe_nonfinite(normal)}"
            )
        offset = float(self.offset)
        if not np.isfinite(offset):
            raise InvalidQueryError(f"query offset must be finite, got {offset!r}")
        normal.setflags(write=False)
        object.__setattr__(self, "normal", normal)
        object.__setattr__(self, "offset", offset)
        object.__setattr__(self, "op", Comparison.parse(self.op))
        object.__setattr__(self, "_hyperplane", Hyperplane(normal, offset))

    # ------------------------------------------------------------------ #

    @property
    def dim(self) -> int:
        """Dimensionality ``d'`` of the query (feature) space."""
        return int(self.normal.size)

    @property
    def hyperplane(self) -> Hyperplane:
        """The query hyperplane ``H(q): <a, Y> = b`` (Eq. 2)."""
        return self._hyperplane

    def canonical(self) -> "ScalarProductQuery":
        """Equivalent query with nonnegative offset ``b`` (paper assumption).

        ``<a, y> OP b`` with ``b < 0`` is rewritten as
        ``<-a, y> flipped(OP) -b``.  The index layer canonicalizes every
        incoming query before octant checks, so callers may pass queries in
        either form.
        """
        if self.offset >= 0.0:
            return self
        return ScalarProductQuery(-self.normal, -self.offset, self.op.flipped())

    def evaluate(self, features: np.ndarray) -> np.ndarray:
        """Ground-truth boolean mask over feature rows (sequential semantics)."""
        values = np.ascontiguousarray(features, dtype=np.float64) @ self.normal
        return self.op.evaluate(values, self.offset)

    def distance(self, features: np.ndarray) -> np.ndarray:
        """Hyperplane distance ``|<a, phi(x)> - b| / |a|`` per feature row."""
        return self._hyperplane.distance(features)

    def with_op(self, op: "Comparison | str") -> "ScalarProductQuery":
        """Copy of this query with a different comparison operator."""
        return ScalarProductQuery(self.normal.copy(), self.offset, Comparison.parse(op))


@dataclass(frozen=True)
class TopKQuery:
    """A top-k nearest neighbor query (Problem 2).

    Among points satisfying the inequality, report the ``k`` whose features
    lie closest to the query hyperplane.
    """

    query: ScalarProductQuery
    k: int

    def __post_init__(self) -> None:
        if not isinstance(self.query, ScalarProductQuery):
            raise InvalidQueryError("TopKQuery.query must be a ScalarProductQuery")
        if int(self.k) <= 0:
            raise InvalidQueryError(f"k must be a positive integer, got {self.k!r}")
        object.__setattr__(self, "k", int(self.k))

    @property
    def dim(self) -> int:
        """Dimensionality ``d'`` of the feature space."""
        return self.query.dim
