"""Saving and loading a :class:`FunctionIndex` to/from disk.

A persisted index is a single ``.npz`` archive holding the raw points, the
index normals, the translator state, and a JSON-encoded metadata blob
(query-model domains, strategy, feature-map identifier).  Feature maps are
code, not data: built-in maps (identity / product / polynomial and the
compiled SQL forms) round-trip automatically; custom callables must be
re-supplied at load time.

The archive stores *inputs*, not the derived sorted orders — rebuilding the
key arrays on load is O(n log n) per index (seconds), dominated by I/O for
realistic sizes, and keeps the format trivially stable.

Format v2 (crash safety, see ``docs/reliability.md``)
-----------------------------------------------------
Archives are written atomically (temp file + fsync + ``os.replace`` via
:mod:`repro.reliability.atomic`), and the metadata blob carries a
``checksums`` manifest of per-array SHA-256 digests that :func:`load_index`
verifies — truncation, bit flips, and torn writes surface as precise
:class:`~repro.exceptions.PersistenceError` s instead of silent corruption.
v1 archives (no manifest) still load.
"""

from __future__ import annotations

import json
import struct
import zipfile
import zlib
from pathlib import Path

import numpy as np

from ..exceptions import PersistenceError
from ..reliability.atomic import atomic_writer, checksum_manifest, verify_checksums
from .domains import ParameterDomain, QueryModel
from .function_index import FunctionIndex
from .phi import FeatureMap, identity_map, product_map

__all__ = ["save_index", "load_index", "PersistenceError"]

_FORMAT_VERSION = 2
_SUPPORTED_VERSIONS = (1, 2)


def _domain_to_json(domain: ParameterDomain) -> dict:
    if domain.is_discrete:
        return {"values": domain.values.tolist()}
    return {"low": domain.low, "high": domain.high}


def _domain_from_json(blob: dict) -> ParameterDomain:
    if "values" in blob:
        return ParameterDomain(values=blob["values"])
    return ParameterDomain(low=blob["low"], high=blob["high"])


def _feature_map_to_json(fmap: FeatureMap) -> dict:
    kind = getattr(fmap, "_persist_kind", None)
    if kind is not None:
        return dict(kind)
    # Identity maps are recognizable structurally.
    if fmap.in_dim == fmap.out_dim and all(
        name == f"x_{i}" for i, name in enumerate(fmap.names)
    ):
        return {"type": "identity", "dim": fmap.in_dim}
    return {"type": "custom", "in_dim": fmap.in_dim, "out_dim": fmap.out_dim}


def _feature_map_from_json(blob: dict, supplied: FeatureMap | None) -> FeatureMap:
    kind = blob.get("type")
    if kind == "identity":
        return identity_map(int(blob["dim"]))
    if kind == "product":
        return product_map(int(blob["in_dim"]), [tuple(t) for t in blob["terms"]])
    if supplied is None:
        raise PersistenceError(
            "this index was built with a custom feature map; pass feature_map= "
            "when loading"
        )
    if (supplied.in_dim, supplied.out_dim) != (blob["in_dim"], blob["out_dim"]):
        raise PersistenceError(
            f"supplied feature map is {supplied.in_dim}->{supplied.out_dim}, "
            f"archive expects {blob['in_dim']}->{blob['out_dim']}"
        )
    return supplied


def save_index(index: FunctionIndex, path: str | Path) -> Path:
    """Persist ``index`` (live points, normals, domains) to ``path``.

    The write is crash-safe (temp file + atomic replace) and the archive
    embeds a per-array SHA-256 checksum manifest (format v2).  Returns
    the written path (``.npz`` appended if missing).
    """
    path = Path(path)
    target = path if path.suffix == ".npz" else path.with_suffix(path.suffix + ".npz")
    ids = index.live_ids()
    points = index.get_points(ids)
    arrays = {
        "points": points,
        "normals": index.collection.normals,
        "octant": index.translator.octant,
        "delta": index.translator.delta,
    }
    metadata = {
        "format_version": _FORMAT_VERSION,
        "strategy": index.collection.strategy.value,
        "domains": [_domain_to_json(d) for d in index.query_model.domains],
        "feature_map": _feature_map_to_json(index.feature_map),
        "checksums": checksum_manifest(arrays),
    }
    with atomic_writer(target, artifact="index") as tmp:
        with open(tmp, "wb") as handle:
            np.savez_compressed(
                handle,
                metadata=np.frombuffer(json.dumps(metadata).encode("utf-8"), dtype=np.uint8),  # repro: noqa(REP002) — byte buffer for JSON metadata, not numeric keys
                **arrays,
            )
    return target


def load_index(path: str | Path, feature_map: FeatureMap | None = None) -> FunctionIndex:
    """Rebuild a :class:`FunctionIndex` from a :func:`save_index` archive.

    v2 archives are integrity-checked against their checksum manifest;
    v1 archives (pre-manifest) load without verification.
    """
    path = Path(path)
    try:
        with np.load(path) as archive:
            arrays = {
                name: archive[name]
                for name in ("points", "normals", "octant", "delta")
            }
            metadata = json.loads(bytes(archive["metadata"].tobytes()).decode("utf-8"))
    except (
        OSError,
        KeyError,
        ValueError,
        EOFError,
        json.JSONDecodeError,
        zipfile.BadZipFile,
        zlib.error,
        struct.error,
    ) as exc:
        raise PersistenceError(
            f"cannot read index archive {path}: {type(exc).__name__}: {exc} "
            f"(truncated, torn, or not a save_index archive?)"
        ) from exc
    points = arrays["points"]
    normals = arrays["normals"]
    delta = arrays["delta"]
    version = metadata.get("format_version")
    if version not in _SUPPORTED_VERSIONS:
        raise PersistenceError(
            f"unsupported archive version {version!r} "
            f"(supported: {list(_SUPPORTED_VERSIONS)})"
        )
    if version >= 2:
        manifest = metadata.get("checksums")
        if not isinstance(manifest, dict) or not manifest:
            raise PersistenceError(
                f"index archive {path} (format v{version}) is missing its "
                f"checksum manifest"
            )
        verify_checksums(arrays, manifest, artifact="index", path=path)
    model = QueryModel([_domain_from_json(d) for d in metadata["domains"]])
    fmap = _feature_map_from_json(metadata["feature_map"], feature_map)
    index = FunctionIndex(
        points,
        model,
        feature_map=fmap,
        normals=normals,
        strategy=metadata["strategy"],
    )
    # Restore the translator's accumulated delta so previously observed
    # extremes stay covered even if those points were since deleted.
    index.translator.observe(-np.abs(delta)[None, :] * index.translator.octant)
    return index
