"""Saving and loading a :class:`FunctionIndex` to/from disk.

A persisted index is a single ``.npz`` archive holding the raw points, the
index normals, the translator state, and a JSON-encoded metadata blob
(query-model domains, strategy, feature-map identifier).  Feature maps are
code, not data: built-in maps (identity / product / polynomial and the
compiled SQL forms) round-trip automatically; custom callables must be
re-supplied at load time.

The archive stores *inputs*, not the derived sorted orders — rebuilding the
key arrays on load is O(n log n) per index (seconds), dominated by I/O for
realistic sizes, and keeps the format trivially stable.
"""

from __future__ import annotations

import json
from pathlib import Path

import numpy as np

from ..exceptions import ReproError
from .domains import ParameterDomain, QueryModel
from .function_index import FunctionIndex
from .phi import FeatureMap, identity_map, product_map

__all__ = ["save_index", "load_index", "PersistenceError"]

_FORMAT_VERSION = 1


class PersistenceError(ReproError):
    """The archive is malformed, or a custom feature map was not supplied."""


def _domain_to_json(domain: ParameterDomain) -> dict:
    if domain.is_discrete:
        return {"values": domain.values.tolist()}
    return {"low": domain.low, "high": domain.high}


def _domain_from_json(blob: dict) -> ParameterDomain:
    if "values" in blob:
        return ParameterDomain(values=blob["values"])
    return ParameterDomain(low=blob["low"], high=blob["high"])


def _feature_map_to_json(fmap: FeatureMap) -> dict:
    kind = getattr(fmap, "_persist_kind", None)
    if kind is not None:
        return dict(kind)
    # Identity maps are recognizable structurally.
    if fmap.in_dim == fmap.out_dim and all(
        name == f"x_{i}" for i, name in enumerate(fmap.names)
    ):
        return {"type": "identity", "dim": fmap.in_dim}
    return {"type": "custom", "in_dim": fmap.in_dim, "out_dim": fmap.out_dim}


def _feature_map_from_json(blob: dict, supplied: FeatureMap | None) -> FeatureMap:
    kind = blob.get("type")
    if kind == "identity":
        return identity_map(int(blob["dim"]))
    if kind == "product":
        return product_map(int(blob["in_dim"]), [tuple(t) for t in blob["terms"]])
    if supplied is None:
        raise PersistenceError(
            "this index was built with a custom feature map; pass feature_map= "
            "when loading"
        )
    if (supplied.in_dim, supplied.out_dim) != (blob["in_dim"], blob["out_dim"]):
        raise PersistenceError(
            f"supplied feature map is {supplied.in_dim}->{supplied.out_dim}, "
            f"archive expects {blob['in_dim']}->{blob['out_dim']}"
        )
    return supplied


def save_index(index: FunctionIndex, path: str | Path) -> Path:
    """Persist ``index`` (live points, normals, domains) to ``path``.

    Returns the written path (``.npz`` appended if missing).
    """
    path = Path(path)
    ids = index.live_ids()
    points = index.get_points(ids)
    metadata = {
        "format_version": _FORMAT_VERSION,
        "strategy": index.collection.strategy.value,
        "domains": [_domain_to_json(d) for d in index.query_model.domains],
        "feature_map": _feature_map_to_json(index.feature_map),
    }
    np.savez_compressed(
        path,
        points=points,
        normals=index.collection.normals,
        octant=index.translator.octant,
        delta=index.translator.delta,
        metadata=np.frombuffer(json.dumps(metadata).encode("utf-8"), dtype=np.uint8),  # repro: noqa(REP002) — byte buffer for JSON metadata, not numeric keys
    )
    return path if path.suffix == ".npz" else path.with_suffix(path.suffix + ".npz")


def load_index(path: str | Path, feature_map: FeatureMap | None = None) -> FunctionIndex:
    """Rebuild a :class:`FunctionIndex` from a :func:`save_index` archive."""
    path = Path(path)
    try:
        with np.load(path) as archive:
            points = archive["points"]
            normals = archive["normals"]
            delta = archive["delta"]
            metadata = json.loads(bytes(archive["metadata"].tobytes()).decode("utf-8"))
    except (OSError, KeyError, ValueError, json.JSONDecodeError) as exc:
        raise PersistenceError(f"cannot read index archive {path}: {exc}") from exc
    if metadata.get("format_version") != _FORMAT_VERSION:
        raise PersistenceError(
            f"unsupported archive version {metadata.get('format_version')!r}"
        )
    model = QueryModel([_domain_from_json(d) for d in metadata["domains"]])
    fmap = _feature_map_from_json(metadata["feature_map"], feature_map)
    index = FunctionIndex(
        points,
        model,
        feature_map=fmap,
        normals=normals,
        strategy=metadata["strategy"],
    )
    # Restore the translator's accumulated delta so previously observed
    # extremes stay covered even if those points were since deleted.
    index.translator.observe(-np.abs(delta)[None, :] * index.translator.octant)
    return index
