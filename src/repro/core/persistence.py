"""Saving and loading a :class:`FunctionIndex` to/from disk.

Format v3 (memmap-ready, default)
---------------------------------
A persisted index is a *directory* holding one raw ``.npy`` file per
array plus a ``manifest.json`` with the metadata (format version,
selection strategy, query-model domains, feature-map identifier, and the
per-array SHA-256 checksum manifest).  Unlike v2, the directory stores
*derived* state — the compacted feature matrix ``phi(x)`` and every
index's keys already in ascending order with ids remapped to compacted
row positions — so :func:`load_index` can bind the arrays directly
instead of re-applying ``phi`` and re-sorting ``r`` key arrays.

Because ``.npy`` headers pad the data offset to a 64-byte multiple, each
array is alignment-friendly for ``np.load(..., mmap_mode="r")``: with
``mode="mmap"`` (the v3 default) a multi-GB index cold-starts in
milliseconds, nothing is paged in until queries touch it, and the pages
are shared copy-on-write across forked shard workers (see
``docs/parallel.md``).  Memory-mapped loads are read-only — maintenance
raises with a pointer at ``mode="copy"``.

Format v2 (single ``.npz``, still loads; write with ``version=2``)
------------------------------------------------------------------
A single ``.npz`` archive holding the raw points, the index normals, the
translator state, and a JSON-encoded metadata blob.  The archive stores
*inputs*, not the derived sorted orders — rebuilding the key arrays on
load is O(n log n) per index.  v1 archives (no checksum manifest) still
load.

Both formats are written crash-safely (temp file/directory + fsync +
``os.replace`` via :mod:`repro.reliability.atomic`) and embed per-array
SHA-256 checksums that :func:`load_index` verifies — truncation, bit
flips, and torn writes surface as precise
:class:`~repro.exceptions.PersistenceError` s instead of silent
corruption.  In ``mmap`` mode only the small arrays (normals, octant,
delta) are verified eagerly; hashing the big ones would page the whole
index in and defeat the zero-copy load (documented trade-off — use
``mode="copy"`` for a full integrity check).

Feature maps are code, not data: built-in maps (identity / product)
round-trip automatically; custom callables must be re-supplied at load
time.
"""

from __future__ import annotations

import json
import os
import shutil
import struct
import tempfile
import zipfile
import zlib
from pathlib import Path

import numpy as np

from ..exceptions import PersistenceError
from ..geometry.translation import Translator
from ..reliability.atomic import (
    atomic_write_text,
    atomic_writer,
    checksum_manifest,
    verify_checksums,
)
from .collection import PlanarIndexCollection
from .domains import ParameterDomain, QueryModel
from .feature_store import FeatureStore
from .function_index import FunctionIndex
from .phi import FeatureMap, identity_map, product_map

__all__ = ["save_index", "load_index", "PersistenceError"]

_FORMAT_VERSION = 3
_SUPPORTED_VERSIONS = (1, 2, 3)

#: Manifest file marking a directory as a v3 index.
_MANIFEST_NAME = "manifest.json"

#: Arrays verified eagerly even under ``mode="mmap"`` — O(r d') bytes, so
#: checking them never pages the bulk data in.
_SMALL_ARRAYS = ("normals", "octant", "delta")


def _domain_to_json(domain: ParameterDomain) -> dict:
    if domain.is_discrete:
        return {"values": domain.values.tolist()}
    return {"low": domain.low, "high": domain.high}


def _domain_from_json(blob: dict) -> ParameterDomain:
    if "values" in blob:
        return ParameterDomain(values=blob["values"])
    return ParameterDomain(low=blob["low"], high=blob["high"])


def _feature_map_to_json(fmap: FeatureMap) -> dict:
    kind = getattr(fmap, "_persist_kind", None)
    if kind is not None:
        return dict(kind)
    # Identity maps are recognizable structurally.
    if fmap.in_dim == fmap.out_dim and all(
        name == f"x_{i}" for i, name in enumerate(fmap.names)
    ):
        return {"type": "identity", "dim": fmap.in_dim}
    return {"type": "custom", "in_dim": fmap.in_dim, "out_dim": fmap.out_dim}


def _feature_map_from_json(blob: dict, supplied: FeatureMap | None) -> FeatureMap:
    kind = blob.get("type")
    if kind == "identity":
        return identity_map(int(blob["dim"]))
    if kind == "product":
        return product_map(int(blob["in_dim"]), [tuple(t) for t in blob["terms"]])
    if supplied is None:
        raise PersistenceError(
            "this index was built with a custom feature map; pass feature_map= "
            "when loading"
        )
    if (supplied.in_dim, supplied.out_dim) != (blob["in_dim"], blob["out_dim"]):
        raise PersistenceError(
            f"supplied feature map is {supplied.in_dim}->{supplied.out_dim}, "
            f"archive expects {blob['in_dim']}->{blob['out_dim']}"
        )
    return supplied


def _metadata(index: FunctionIndex, version: int, arrays: dict) -> dict:
    return {
        "format_version": version,
        "strategy": index.collection.strategy.value,
        "domains": [_domain_to_json(d) for d in index.query_model.domains],
        "feature_map": _feature_map_to_json(index.feature_map),
        "checksums": checksum_manifest(arrays),
    }


def save_index(
    index: FunctionIndex, path: str | Path, version: int = _FORMAT_VERSION
) -> Path:
    """Persist ``index`` to ``path`` crash-safely; returns the written path.

    ``version=3`` (default) writes the memmap-ready directory format
    described in the module docstring.  ``version=2`` writes the legacy
    single-``.npz`` archive (``.npz`` appended to the path if missing).
    Both embed per-array SHA-256 checksum manifests.
    """
    path = Path(path)
    if version == 3:
        return _save_v3(index, path)
    if version == 2:
        return _save_v2(index, path)
    raise PersistenceError(
        f"cannot write archive version {version!r} (writable: 2, 3)"
    )


def _save_v2(index: FunctionIndex, path: Path) -> Path:
    target = path if path.suffix == ".npz" else path.with_suffix(path.suffix + ".npz")
    ids = index.live_ids()
    points = index.get_points(ids)
    arrays = {
        "points": points,
        "normals": index.collection.normals,
        "octant": index.translator.octant,
        "delta": index.translator.delta,
    }
    metadata = _metadata(index, 2, arrays)
    with atomic_writer(target, artifact="index") as tmp:
        with open(tmp, "wb") as handle:
            np.savez_compressed(
                handle,
                metadata=np.frombuffer(json.dumps(metadata).encode("utf-8"), dtype=np.uint8),  # repro: noqa(REP002) — byte buffer for JSON metadata, not numeric keys
                **arrays,
            )
    return target


def _save_v3(index: FunctionIndex, target: Path) -> Path:
    """Write the directory format: one aligned ``.npy`` per array.

    Every array file goes through :func:`atomic_writer` (fault-injection
    site ``persistence.write`` included), accumulated in a temp directory
    beside ``target`` which is then renamed into place — a crash leaves
    either the previous index or a stray ``*.tmp`` directory, never a
    half-written destination.
    """
    live = index.live_ids()
    arrays: dict[str, np.ndarray] = {
        "points": index.get_points(live),
        "features": index.get_features(live),
        "normals": index.collection.normals,
        "octant": index.translator.octant,
        "delta": index.translator.delta,
    }
    for position, planar in enumerate(index.collection):
        keys = planar._keys
        arrays[f"keys_{position}"] = keys.sorted_keys
        # Remap ids to positions in the compacted (live-only) matrices so
        # the loaded store's ids == row positions invariant holds without
        # a translation table.
        arrays[f"ids_{position}"] = np.ascontiguousarray(
            np.searchsorted(live, keys.sorted_ids), dtype=np.int64
        )
    metadata = _metadata(index, 3, arrays)
    metadata["n_indices"] = index.n_indices

    target.parent.mkdir(parents=True, exist_ok=True)
    tmp_dir = Path(
        tempfile.mkdtemp(prefix=target.name + ".", suffix=".tmp", dir=str(target.parent))
    )
    try:
        for name, array in arrays.items():
            with atomic_writer(tmp_dir / f"{name}.npy", artifact="index") as tmp:
                with open(tmp, "wb") as handle:
                    np.save(handle, np.ascontiguousarray(array))
        atomic_write_text(
            tmp_dir / _MANIFEST_NAME, json.dumps(metadata, indent=2), artifact="index"
        )
        retired: Path | None = None
        if target.is_dir():
            # rename(2) replaces an *empty* directory atomically, so park
            # the previous index under a fresh temp name first.
            retired = Path(
                tempfile.mkdtemp(
                    prefix=target.name + ".", suffix=".old", dir=str(target.parent)
                )
            )
            os.replace(target, retired)
        elif target.exists():
            fd, retired_name = tempfile.mkstemp(
                prefix=target.name + ".", suffix=".old", dir=str(target.parent)
            )
            os.close(fd)
            retired = Path(retired_name)
            os.replace(target, retired)
        os.replace(tmp_dir, target)
    except BaseException:  # repro: noqa(REP005) — cleanup-and-reraise of the temp directory
        shutil.rmtree(tmp_dir, ignore_errors=True)
        raise
    if retired is not None:
        if retired.is_dir():
            shutil.rmtree(retired, ignore_errors=True)
        else:
            retired.unlink(missing_ok=True)
    return target


def load_index(
    path: str | Path,
    feature_map: FeatureMap | None = None,
    mode: str = "auto",
) -> FunctionIndex:
    """Rebuild a :class:`FunctionIndex` from a :func:`save_index` artifact.

    ``mode`` controls how v3 directories bind their arrays:

    * ``"auto"`` (default) — memory-map v3 directories, copy v1/v2
      archives (which cannot memmap from inside an ``.npz``).
    * ``"mmap"`` — zero-copy read-only load; mutations raise.  Rejects
      v1/v2 archives with a pointer at re-saving as v3.
    * ``"copy"`` — fully materialized writable load with every array
      checksum-verified.

    v2/v3 artifacts are integrity-checked against their checksum
    manifests (v3 ``mmap`` loads verify the small arrays only — see the
    module docstring); v1 archives load without verification.
    """
    if mode not in ("auto", "mmap", "copy"):
        raise ValueError(f"mode must be 'auto', 'mmap', or 'copy', got {mode!r}")
    path = Path(path)
    if path.is_dir():
        if not (path / _MANIFEST_NAME).exists():
            raise PersistenceError(
                f"directory {path} has no {_MANIFEST_NAME} — not a save_index "
                f"directory"
            )
        return _load_v3(path, feature_map, mode)
    if mode == "mmap":
        raise PersistenceError(
            f"{path} is a v1/v2 .npz archive; arrays inside an archive cannot "
            f"be memory-mapped — load with mode='copy' or re-save as format v3"
        )
    return _load_npz(path, feature_map)


def _load_npz(path: Path, feature_map: FeatureMap | None) -> FunctionIndex:
    """v1/v2 load: read the archive and rebuild the index from inputs."""
    try:
        with np.load(path) as archive:
            arrays = {
                name: archive[name]
                for name in ("points", "normals", "octant", "delta")
            }
            metadata = json.loads(bytes(archive["metadata"].tobytes()).decode("utf-8"))
    except (
        OSError,
        KeyError,
        ValueError,
        EOFError,
        json.JSONDecodeError,
        zipfile.BadZipFile,
        zlib.error,
        struct.error,
    ) as exc:
        raise PersistenceError(
            f"cannot read index archive {path}: {type(exc).__name__}: {exc} "
            f"(truncated, torn, or not a save_index archive?)"
        ) from exc
    points = arrays["points"]
    normals = arrays["normals"]
    delta = arrays["delta"]
    version = metadata.get("format_version")
    if version not in _SUPPORTED_VERSIONS:
        raise PersistenceError(
            f"unsupported archive version {version!r} "
            f"(supported: {list(_SUPPORTED_VERSIONS)})"
        )
    if version >= 2:
        manifest = metadata.get("checksums")
        if not isinstance(manifest, dict) or not manifest:
            raise PersistenceError(
                f"index archive {path} (format v{version}) is missing its "
                f"checksum manifest"
            )
        verify_checksums(arrays, manifest, artifact="index", path=path)
    model = QueryModel([_domain_from_json(d) for d in metadata["domains"]])
    fmap = _feature_map_from_json(metadata["feature_map"], feature_map)
    index = FunctionIndex(
        points,
        model,
        feature_map=fmap,
        normals=normals,
        strategy=metadata["strategy"],
    )
    # Restore the translator's accumulated delta so previously observed
    # extremes stay covered even if those points were since deleted.
    index.translator.observe(-np.abs(delta)[None, :] * index.translator.octant)
    return index


def _load_v3(path: Path, feature_map: FeatureMap | None, mode: str) -> FunctionIndex:
    """v3 load: bind the persisted derived arrays, mmap'd or copied."""
    try:
        metadata = json.loads((path / _MANIFEST_NAME).read_text("utf-8"))
    except (OSError, json.JSONDecodeError, UnicodeDecodeError) as exc:
        raise PersistenceError(
            f"cannot read index manifest {path / _MANIFEST_NAME}: "
            f"{type(exc).__name__}: {exc}"
        ) from exc
    version = metadata.get("format_version")
    if version != 3:
        raise PersistenceError(
            f"unsupported directory-format version {version!r} in {path} "
            f"(expected 3)"
        )
    n_indices = metadata.get("n_indices")
    if not isinstance(n_indices, int) or n_indices < 1:
        raise PersistenceError(
            f"index directory {path}: invalid n_indices {n_indices!r}"
        )
    manifest = metadata.get("checksums")
    if not isinstance(manifest, dict) or not manifest:
        raise PersistenceError(
            f"index directory {path} is missing its checksum manifest"
        )

    names = ["points", "features", "normals", "octant", "delta"]
    for position in range(n_indices):
        names.extend((f"keys_{position}", f"ids_{position}"))
    mmap_mode = None if mode == "copy" else "r"
    arrays: dict[str, np.ndarray] = {}
    try:
        for name in names:
            arrays[name] = np.load(
                path / f"{name}.npy", mmap_mode=mmap_mode, allow_pickle=False
            )
    except (OSError, ValueError, EOFError) as exc:
        raise PersistenceError(
            f"cannot read index array {name!r} in {path}: "
            f"{type(exc).__name__}: {exc} (truncated or torn write?)"
        ) from exc
    verify_names = list(arrays) if mmap_mode is None else list(_SMALL_ARRAYS)
    verify_checksums(
        {name: arrays[name] for name in verify_names},
        {name: manifest[name] for name in verify_names if name in manifest},
        artifact="index",
        path=path,
    )

    model = QueryModel([_domain_from_json(d) for d in metadata["domains"]])
    fmap = _feature_map_from_json(metadata["feature_map"], feature_map)
    octant = np.array(arrays["octant"], dtype=np.float64)
    delta = np.array(arrays["delta"], dtype=np.float64)
    translator = Translator(octant)
    # One synthetic extreme row restores delta exactly (delta >= 0 and
    # reflect(-delta * octant) == -delta), without paging the features in.
    translator.observe(-np.abs(delta)[None, :] * octant)

    if mmap_mode is None:
        points_store = FeatureStore(arrays["points"])
        features_store = FeatureStore(arrays["features"])
    else:
        points_store = FeatureStore.from_backing(arrays["points"])
        features_store = FeatureStore.from_backing(arrays["features"])
    normals = np.array(arrays["normals"], dtype=np.float64)
    if normals.ndim != 2 or normals.shape[0] != n_indices:
        raise PersistenceError(
            f"index directory {path}: normals shape {normals.shape} does not "
            f"match n_indices {n_indices}"
        )
    prebuilt = [
        (normals[position], arrays[f"ids_{position}"], arrays[f"keys_{position}"])
        for position in range(n_indices)
    ]
    collection = PlanarIndexCollection._from_prebuilt(
        features_store, translator, prebuilt, metadata["strategy"]
    )
    return FunctionIndex._from_prebuilt(
        points_store,
        features_store,
        translator,
        collection,
        fmap,
        model,
    )
