"""Core of the reproduction: the Planar index for scalar product queries."""

from .collection import PlanarIndexCollection, dedupe_parallel_normals
from .constraints import (
    ConjunctiveQuery,
    ConstraintAnswer,
    DisjunctiveQuery,
    answer_conjunction,
    answer_disjunction,
)
from .domains import ParameterDomain, QueryModel
from .persistence import PersistenceError, load_index, save_index
from .feature_store import FeatureStore
from .function_index import FunctionIndex, QueryAnswer
from .phi import FeatureMap, identity_map, polynomial_map, product_map
from .planar import PlanarIndex, QueryResult, QueryStats, WorkingQuery
from .query import Comparison, ScalarProductQuery, TopKQuery
from .selection import (
    SelectionStrategy,
    make_selector,
    select_min_angle,
    select_min_stretch,
    select_random,
)
from .sorted_keys import SortedKeyStore
from .topk import SharedCutoff, TopKBuffer, TopKResult

__all__ = [
    "Comparison",
    "ConjunctiveQuery",
    "ConstraintAnswer",
    "DisjunctiveQuery",
    "FeatureMap",
    "FeatureStore",
    "FunctionIndex",
    "ParameterDomain",
    "PersistenceError",
    "PlanarIndex",
    "PlanarIndexCollection",
    "QueryAnswer",
    "QueryModel",
    "QueryResult",
    "QueryStats",
    "ScalarProductQuery",
    "SelectionStrategy",
    "SharedCutoff",
    "SortedKeyStore",
    "TopKBuffer",
    "TopKQuery",
    "TopKResult",
    "WorkingQuery",
    "answer_conjunction",
    "answer_disjunction",
    "dedupe_parallel_normals",
    "identity_map",
    "load_index",
    "make_selector",
    "save_index",
    "polynomial_map",
    "product_map",
    "select_min_angle",
    "select_min_stretch",
    "select_random",
]
