"""The sorted key list ``L`` at the heart of a Planar index (Section 4.2).

One Planar index keeps, for every data point ``x``, the scalar key
``<c, phi(x)>`` and maintains all keys in ascending order.  Queries binary
search this order (Eq. 7); dynamic workloads update, insert, and delete
entries (Section 4.4).

The store maps *external point ids* (arbitrary nonnegative integers chosen
by the caller) to keys, so the same ids can be shared across the multiple
indices of a collection and across the raw-point storage of the facade.

Implementation notes
--------------------
Keys live in a contiguous ``float64`` array for O(log n) binary search and
vectorized slicing, which is what makes pruned query processing fast in
numpy.  All mutations are vectorized (``numpy.isin`` membership, one merge
per batch) — O(n + b log b) per batch of ``b`` changes, the array-backed
sorted-list trade-off (the paper's O(log n) per change assumes a balanced
tree; the asymptotic *query* complexity is identical).  An id -> key map
for point lookups is materialized lazily and invalidated by mutations, so
index construction and batch maintenance never pay for it.
"""

from __future__ import annotations

import numpy as np

from .._util import as_1d_float
from ..analysis.contracts import array_contract
from ..exceptions import DimensionMismatchError

__all__ = ["SortedKeyStore"]


class SortedKeyStore:
    """Ascending key order over ``(point id, key)`` pairs with dynamic updates."""

    @array_contract("keys: (n,) float64 cast", "ids: ?(n,) int64 cast")
    def __init__(
        self,
        keys: np.ndarray,
        ids: np.ndarray | None = None,
        trusted: bool = False,
        presorted: bool = False,
    ) -> None:
        """``trusted=True`` skips finiteness/uniqueness validation — used by
        bulk index construction where the same vetted id array backs many
        sibling indices (validation would otherwise dominate build time).

        ``presorted=True`` additionally binds ``keys``/``ids`` as the
        already-ascending order without the argsort pass or a copy — the
        memmap load path uses it so opening a persisted index never pages
        the key arrays in.  Keys must genuinely be ascending; this is not
        validated (the persistence layer wrote them from a sorted store).
        """
        keys = as_1d_float(keys, "keys")
        if not trusted and not np.all(np.isfinite(keys)):
            raise ValueError("keys must be finite")
        if ids is None:
            ids = np.arange(keys.size, dtype=np.int64)
        else:
            ids = np.ascontiguousarray(ids, dtype=np.int64)
            if ids.ndim != 1:
                raise DimensionMismatchError(f"ids must be 1-D, got shape {ids.shape}")
            if ids.size != keys.size:
                raise DimensionMismatchError(f"{ids.size} ids for {keys.size} keys")
            if not trusted and np.unique(ids).size != ids.size:
                raise ValueError("ids must be unique")
        if presorted:
            self._keys = keys
            self._ids = ids
        else:
            order = np.argsort(keys, kind="stable")
            self._keys = keys[order]
            self._ids = ids[order]
        # id -> key map, built lazily on first lookup and invalidated by
        # mutations: queries and maintenance never need it.
        self._key_map: dict[int, float] | None = None

    # ------------------------------------------------------------------ #
    # Introspection
    # ------------------------------------------------------------------ #

    def __len__(self) -> int:
        return int(self._keys.size)

    def __contains__(self, point_id: int) -> bool:
        return int(point_id) in self._lookup()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"SortedKeyStore(n={len(self)})"

    def _lookup(self) -> dict[int, float]:
        if self._key_map is None:
            self._key_map = {
                int(i): float(k) for i, k in zip(self._ids, self._keys)
            }
        return self._key_map

    @property
    def sorted_keys(self) -> np.ndarray:
        """Keys in ascending order (read-only view)."""
        view = self._keys.view()
        view.setflags(write=False)
        return view

    @property
    def sorted_ids(self) -> np.ndarray:
        """Point ids in ascending key order (read-only view)."""
        view = self._ids.view()
        view.setflags(write=False)
        return view

    def key_of(self, point_id: int) -> float:
        """The key currently stored for ``point_id``."""
        return self._lookup()[int(point_id)]

    def memory_bytes(self) -> int:
        """Approximate heap footprint of the key structures (O(n))."""
        # The lazily built id->key dict roughly triples the array cost in
        # CPython; count it only once materialized.
        dict_overhead = 100 * len(self._key_map) if self._key_map is not None else 0
        return int(self._keys.nbytes + self._ids.nbytes + dict_overhead)

    # ------------------------------------------------------------------ #
    # Binary search (Eq. 7)
    # ------------------------------------------------------------------ #

    def rank_le(self, threshold: float) -> int:
        """Number of entries with key <= threshold — the paper's ``Small(i)+1``."""
        return int(np.searchsorted(self._keys, threshold, side="right"))

    def rank_lt(self, threshold: float) -> int:
        """Number of entries with key < threshold."""
        return int(np.searchsorted(self._keys, threshold, side="left"))

    def ids_in_rank_range(self, start: int, stop: int) -> np.ndarray:
        """Point ids at sorted positions ``[start, stop)``."""
        return self._ids[start:stop]

    def keys_in_rank_range(self, start: int, stop: int) -> np.ndarray:
        """Keys at sorted positions ``[start, stop)``."""
        return self._keys[start:stop]

    # ------------------------------------------------------------------ #
    # Dynamic maintenance (Section 4.4) — all vectorized
    # ------------------------------------------------------------------ #

    @staticmethod
    def _validate_batch(point_ids: np.ndarray, keys: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        point_ids = np.ascontiguousarray(point_ids, dtype=np.int64)
        keys = as_1d_float(keys, "keys")
        if point_ids.size != keys.size:
            raise DimensionMismatchError(f"{point_ids.size} ids for {keys.size} keys")
        if point_ids.size and not np.all(np.isfinite(keys)):
            raise ValueError("keys must be finite")
        if np.unique(point_ids).size != point_ids.size:
            raise ValueError("batch ids must be unique")
        return point_ids, keys

    def _merge_in(self, add_ids: np.ndarray, add_keys: np.ndarray) -> None:
        order = np.argsort(add_keys, kind="stable")
        add_keys = add_keys[order]
        add_ids = add_ids[order]
        positions = np.searchsorted(self._keys, add_keys, side="right")
        self._keys = np.insert(self._keys, positions, add_keys)
        self._ids = np.insert(self._ids, positions, add_ids)

    def _remove(self, point_ids: np.ndarray, context: str) -> None:
        present = np.isin(point_ids, self._ids)
        if not np.all(present):
            missing = point_ids[~present][:5].tolist()
            raise KeyError(f"unknown point ids in {context}: {missing}")
        keep = ~np.isin(self._ids, point_ids)
        self._keys = self._keys[keep]
        self._ids = self._ids[keep]

    def update(self, point_id: int, new_key: float) -> None:
        """Re-key one point, preserving sorted order (Section 4.4 update)."""
        self.update_batch(
            np.array([point_id], dtype=np.int64), np.array([float(new_key)])
        )

    @array_contract("point_ids: (m,) int64 cast", "new_keys: (m,) float64 cast")
    def update_batch(self, point_ids: np.ndarray, new_keys: np.ndarray) -> None:
        """Re-key many points with one remove + one merge pass."""
        point_ids, new_keys = self._validate_batch(point_ids, new_keys)
        if point_ids.size == 0:
            return
        self._remove(point_ids, "update")
        self._merge_in(point_ids, new_keys)
        self._key_map = None

    @array_contract("point_ids: (m,) int64 cast", "keys: (m,) float64 cast")
    def insert(self, point_ids: np.ndarray, keys: np.ndarray) -> None:
        """Add new points to the index order."""
        point_ids, keys = self._validate_batch(point_ids, keys)
        if point_ids.size == 0:
            return
        clashes = point_ids[np.isin(point_ids, self._ids)]
        if clashes.size:
            raise ValueError(f"point ids already present: {clashes[:5].tolist()}")
        self._merge_in(point_ids, keys)
        self._key_map = None

    @array_contract("point_ids: (m,) int64 cast")
    def delete(self, point_ids: np.ndarray) -> None:
        """Remove points from the index order."""
        point_ids = np.ascontiguousarray(point_ids, dtype=np.int64)
        if point_ids.size == 0:
            return
        if np.unique(point_ids).size != point_ids.size:
            raise ValueError("delete ids must be unique")
        self._remove(point_ids, "delete")
        self._key_map = None
