"""Multiple Planar indices under one budget (Section 5).

A single Planar index only prunes well when its hyperplanes are nearly
parallel to the query hyperplane.  Because the exact query normal is
unknown, the paper maintains ``r`` indices whose normals are sampled
uniformly from the query-parameter domains (Section 5.2), removes redundant
(mutually parallel) normals, and picks the best index per query with an
``O(r d')`` heuristic (Section 5.1).
"""

from __future__ import annotations

import time
from typing import Iterator, Sequence

import numpy as np

from .._util import as_rng
from ..analysis.contracts import array_contract
from ..exceptions import IndexBuildError, InvalidQueryError
from ..geometry.translation import Translator
from ..obs import metrics as _om
from ..obs import runtime as _ort
from ..obs import spans as _osp
from ..obs.explain import ExplainReport, IndexCandidate
from .domains import QueryModel
from .feature_store import FeatureStore
from .planar import PlanarIndex, QueryResult, QueryStats, WorkingQuery
from .query import ScalarProductQuery
from .selection import (
    Selector,
    SelectionStrategy,
    angle_cosines,
    make_selector,
    stretch_scores,
)
from .topk import TopKResult

__all__ = ["PlanarIndexCollection", "dedupe_parallel_normals"]

# Two normals closer than this angle (radians) are considered parallel and
# therefore redundant (Section 5.2).  float64 cannot resolve angles below
# ~1e-8 near zero (arccos(1 - eps) ~ sqrt(2 eps)), so the tolerance sits
# safely above that.
_PARALLEL_TOL = 1e-7

# Verifying one intermediate-interval point costs a few times a
# sequentially scanned point (scattered gather vs streaming matmul), so
# once the interval exceeds this fraction of the data a direct scan is the
# cheaper *exact* plan.  This mirrors a database optimizer preferring a
# table scan over an unselective index.
_SCAN_FALLBACK_FRACTION = 0.2


@array_contract("normals: (r, d) float64 cast", returns="(k,) int64")
def dedupe_parallel_normals(normals: np.ndarray, tol: float = _PARALLEL_TOL) -> np.ndarray:
    """Drop normals parallel to an earlier one (Section 5.2 redundancy rule).

    Returns the row indices of the kept normals, preserving order.  The
    check is vectorized: each candidate is compared against all kept unit
    normals at once.  Two normals are *parallel* iff
    ``|cos(angle)| >= cos(tol)`` — the same rule :meth:`add_index` applies,
    evaluated directly on cosines (the arccos round trip loses resolution
    exactly where it matters, near angle 0).

    Zero rows are rejected up front with a clear error: a zero normal can
    never index anything, and letting it through only to fail deep inside
    ``PlanarIndex`` construction with an octant-sign message is a
    diagnosis trap.
    """
    normals = np.ascontiguousarray(normals, dtype=np.float64)
    lengths = np.linalg.norm(normals, axis=1, keepdims=True)
    zero_rows = np.nonzero(lengths[:, 0] == 0.0)[0]
    if zero_rows.size:
        raise IndexBuildError(
            "index normals must be nonzero: "
            f"zero rows at positions {zero_rows[:5].tolist()}"
        )
    units = normals / lengths
    cos_tol = np.cos(tol)
    kept: list[int] = []
    for row in range(normals.shape[0]):
        if kept:
            cosines = np.abs(units[kept] @ units[row])
            if float(cosines.max()) >= cos_tol:
                continue
        kept.append(row)
    return np.asarray(kept, dtype=np.int64)


class _SelectionCache:
    """Immutable snapshot of the member list plus its selection matrices.

    Best-index selection needs the stacked working normals and two derived
    row statistics; bundling them *with the member tuple they were computed
    from* into one object that is rebound atomically (a single attribute
    store) means a query thread that snapshots the cache once can never see
    a matrix from one index generation paired with the member list of
    another — the invariant that makes ``add_index``/``drop_index`` safe to
    run concurrently with queries (a racing query may route through the
    just-retired generation, but every generation answers exactly).
    """

    __slots__ = ("indices", "matrix", "row_min", "row_norm")

    def __init__(self, indices: Sequence[PlanarIndex]) -> None:
        self.indices: tuple[PlanarIndex, ...] = tuple(indices)
        matrix = np.vstack([index.working_normal for index in self.indices])
        self.matrix = matrix
        self.row_min = matrix.min(axis=1)
        self.row_norm = np.linalg.norm(matrix, axis=1)


class PlanarIndexCollection:
    """Budget-``r`` family of Planar indices over one shared feature store.

    Parameters
    ----------
    store:
        Shared feature storage (one copy of ``phi(x)`` for all indices).
    translator:
        Octant translator shared by every index; must already have observed
        the stored features.
    normals:
        Index normals, one row per index, in original coordinates.
        Redundant (parallel) rows are dropped.
    strategy:
        Best-index selection strategy (paper default: min-stretch, the
        volume heuristic used in all its experiments).
    obs_prefix:
        Prefix prepended to every member's positional observability label
        (``repro_indexed_points{index=...}`` and friends).  The sharded
        engine passes ``"s<shard>:"`` so sibling shards' indices never
        collide in the metric label space.
    """

    @array_contract("normals: (r, d) float64 cast")
    def __init__(
        self,
        store: FeatureStore,
        translator: Translator,
        normals: np.ndarray,
        strategy: SelectionStrategy | str = SelectionStrategy.MIN_STRETCH,
        rng: np.random.Generator | int | None = None,
        obs_prefix: str = "",
    ) -> None:
        normals = np.ascontiguousarray(normals, dtype=np.float64)
        if normals.ndim != 2 or normals.shape[0] == 0:
            raise IndexBuildError(
                f"normals must be a non-empty (r, d') matrix, got shape {normals.shape}"
            )
        keep = dedupe_parallel_normals(normals)
        self._store = store
        self._translator = translator
        self._obs_prefix = str(obs_prefix)
        # One matrix product computes every index's keys (Section 4.2's
        # <c, phi(x)> for all c at once); each index then only sorts.
        ids, rows = store.get_all()
        key_matrix = rows @ normals[keep].T  # repro: noqa(REP001) — bulk build-time keying, one matmul by design
        self._indices = [
            PlanarIndex(
                normals[row],
                store,
                translator,
                precomputed=(ids, key_matrix[:, position]),
                obs_label=self._label(position),
            )
            for position, row in enumerate(keep)
        ]
        self._selector: Selector = make_selector(strategy, rng)
        self._strategy = SelectionStrategy(strategy)
        self._refresh_selection_cache()

    @classmethod
    def _from_prebuilt(
        cls,
        store: FeatureStore,
        translator: Translator,
        prebuilt: Sequence[tuple[np.ndarray, np.ndarray, np.ndarray]],
        strategy: SelectionStrategy | str,
        rng: np.random.Generator | int | None = None,
        obs_prefix: str = "",
    ) -> "PlanarIndexCollection":
        """Rebind a collection from persisted ``(normal, ids, keys)`` triples.

        The format-v3 load path: normals were deduped at build time and
        each index's keys were persisted in ascending order, so
        construction skips deduplication, bulk keying, and sorting — with
        ``mode="mmap"`` nothing here pages the key arrays in.
        """
        if not prebuilt:
            raise IndexBuildError("prebuilt collection needs at least one index")
        self = cls.__new__(cls)
        self._store = store
        self._translator = translator
        self._obs_prefix = str(obs_prefix)
        self._indices = [
            PlanarIndex(
                normal,
                store,
                translator,
                precomputed=(ids, keys),
                obs_label=self._label(position),
                presorted=True,
            )
            for position, (normal, ids, keys) in enumerate(prebuilt)
        ]
        self._selector = make_selector(strategy, rng)
        self._strategy = SelectionStrategy(strategy)
        self._refresh_selection_cache()
        return self

    def _label(self, position: int) -> str:
        """Observability label of the index at ``position``."""
        return f"{self._obs_prefix}{position}"

    def _relabel(self) -> None:
        """Re-align every member's obs label with its current position.

        Lifecycle mutations shift positions: dropping index 0 of three
        left survivors labelled {"1", "2"} while a subsequent
        ``add_index`` labelled the newcomer ``str(len)`` — which collides
        with a survivor and aliases two distinct indices in
        ``repro_interval_points_total`` / ``repro_indexed_points``.
        Relabelling after every mutation (carrying the gauges, see
        :meth:`PlanarIndex.set_obs_label`) keeps label == position as an
        invariant.
        """
        for position, index in enumerate(self._indices):
            index.set_obs_label(self._label(position))

    def _refresh_selection_cache(self) -> None:
        """Precompute per-index normal matrices for O(r d') vectorized
        selection — one numpy expression instead of a Python loop over
        indices (Section 5.1 requires selection to be dataset-independent
        and cheap; at Python speeds it must also be loop-free).  The
        snapshot is rebound atomically (see :class:`_SelectionCache`) so
        queries racing a lifecycle mutation stay consistent."""
        self._cache = _SelectionCache(self._indices)

    # ------------------------------------------------------------------ #
    # Construction helpers
    # ------------------------------------------------------------------ #

    @classmethod
    def from_model(
        cls,
        store: FeatureStore,
        translator: Translator,
        model: QueryModel,
        budget: int,
        strategy: SelectionStrategy | str = SelectionStrategy.MIN_STRETCH,
        rng: np.random.Generator | int | None = None,
    ) -> "PlanarIndexCollection":
        """Sample ``budget`` index normals from the query model (Section 5.2)."""
        if budget <= 0:
            raise IndexBuildError(f"index budget must be positive, got {budget}")
        generator = as_rng(rng)
        normals = model.sample_normals(budget, generator)
        return cls(store, translator, normals, strategy, generator)

    # ------------------------------------------------------------------ #
    # Introspection
    # ------------------------------------------------------------------ #

    def __len__(self) -> int:
        """Number of (non-redundant) indices."""
        return len(self._indices)

    def __iter__(self) -> Iterator[PlanarIndex]:
        return iter(self._indices)

    def __getitem__(self, position: int) -> PlanarIndex:
        return self._indices[position]

    @property
    def strategy(self) -> SelectionStrategy:
        """The configured best-index selection strategy."""
        return self._strategy

    @property
    def normals(self) -> np.ndarray:
        """All index normals as an ``(r, d')`` matrix."""
        return np.vstack([index.normal for index in self._indices])

    def memory_bytes(self) -> int:
        """Key-structure footprint across all indices (excludes features)."""
        return sum(index.memory_bytes() for index in self._indices)

    # ------------------------------------------------------------------ #
    # Query routing
    # ------------------------------------------------------------------ #

    def working_query(self, query: ScalarProductQuery) -> WorkingQuery:
        """Transform a query once for use across all indices."""
        return WorkingQuery.build(query, self._translator)

    def select(self, query: ScalarProductQuery | WorkingQuery) -> PlanarIndex:
        """The best index for ``query`` under the configured strategy."""
        wq = query if isinstance(query, WorkingQuery) else self.working_query(query)
        cache = self._cache
        return cache.indices[self._select_position(wq, cache)]

    def _select_position(
        self, wq: WorkingQuery, cache: "_SelectionCache | None" = None
    ) -> int:
        """Vectorized fast paths for the two paper heuristics.

        Equivalent to :func:`~repro.core.selection.select_min_stretch` /
        ``select_min_angle`` but evaluated as one ``(r, d')`` numpy
        expression over the (snapshotted) selection cache.  Callers that
        will look the position up must pass the same ``cache`` snapshot
        they index into, so a concurrent lifecycle mutation cannot shift
        positions under them.
        """
        if cache is None:
            cache = self._cache
        obs_on = _ort.active()
        started = time.perf_counter() if obs_on else 0.0
        if self._strategy is SelectionStrategy.MIN_STRETCH:
            position = int(
                np.argmin(stretch_scores(cache.matrix, cache.row_min, wq))
            )
        elif self._strategy is SelectionStrategy.MIN_ANGLE:
            position = int(
                np.argmax(angle_cosines(cache.matrix, cache.row_norm, wq))
            )
        else:
            position = self._selector(cache.indices, wq)
        if obs_on:
            _osp.record("select", started, strategy=self._strategy.value, chosen=position)
            _om.selection_total().inc(
                strategy=self._strategy.value, index=str(position)
            )
        return position

    def _scan_result(
        self, wq: WorkingQuery, best: PlanarIndex, r_lo: int, r_hi: int, n: int
    ) -> QueryResult:
        """Cost-based scan fallback: exact answer by one streamed matmul.

        Pruning statistics stay interval-based (``si``/``ii``/``li`` from
        the chosen index's ranks) so Figures 9/10 metrics are unaffected by
        the routing decision; ``n_verified`` reflects the scan.
        """
        obs_on = _ort.active()
        started = time.perf_counter() if obs_on else 0.0
        ids, values = self._store.scan_values(wq.query.normal)
        mask = wq.op.evaluate(values, wq.query.offset)
        result_ids = ids[mask]
        if obs_on:
            _osp.record("scan", started, n=n)
            best._record_partition("inequality", r_lo, r_hi - r_lo, n - r_hi, n)
        stats = QueryStats(
            n_total=n,
            si_size=r_lo,
            ii_size=r_hi - r_lo,
            li_size=n - r_hi,
            n_verified=n,
            n_results=int(result_ids.size),
        )
        return QueryResult(result_ids, stats)

    def _query_impl(self, wq: WorkingQuery) -> tuple[QueryResult, str]:
        """Route one working query; returns the result and the route taken."""
        cache = self._cache
        best = cache.indices[self._select_position(wq, cache)]
        r_lo, r_hi, n = best.interval_ranks(wq)
        if r_hi - r_lo <= _SCAN_FALLBACK_FRACTION * n:
            return best.finish_query(wq, r_lo, r_hi), "intervals"
        return self._scan_result(wq, best, r_lo, r_hi, n), "scan"

    def query(self, query: ScalarProductQuery) -> QueryResult:
        """Answer an inequality query via the best index (or a scan).

        After best-index selection, a cost-based router checks the size of
        the intermediate interval: verifying it point-by-point costs a few
        times a streamed scan per point, so above
        ``_SCAN_FALLBACK_FRACTION`` of the data the exact answer is
        computed by one matmul over all live features instead — same
        answer, better worst case (the paper's "query time gets close to
        the baseline" regime).  Pruning statistics stay interval-based.
        """
        if not _ort.active():
            return self._query_impl(self.working_query(query))[0]
        started = time.perf_counter()
        with _osp.span("collection.query", strategy=self._strategy.value):
            result, route = self._query_impl(self.working_query(query))
        _om.queries_total().inc(
            kind="inequality", route=route, strategy=self._strategy.value
        )
        _om.query_latency().observe(
            time.perf_counter() - started, kind="inequality", route=route
        )
        return result

    def _group_ranks(
        self, index: PlanarIndex, working: list[WorkingQuery], members: list[int]
    ) -> tuple[np.ndarray, np.ndarray]:
        """Interval ranks of every group member via one vectorized search."""
        lows = np.empty(len(members))
        highs = np.empty(len(members))
        for slot, member in enumerate(members):
            t_lo, t_hi, tol = index._thresholds(working[member])
            lows[slot] = t_lo - tol
            highs[slot] = t_hi + tol
        keys = index._keys.sorted_keys
        rank_los = np.searchsorted(keys, lows, side="right")
        rank_his = np.searchsorted(keys, highs, side="right")
        return rank_los, rank_his

    @staticmethod
    def _merged_windows(members: list[tuple[int, int, int]]) -> list[list[int]]:
        """Disjoint union of the members' ``[r_lo, r_hi)`` rank windows.

        Merging overlapping windows bounds the union gather by the live
        row count even when every member verifies nearly the same
        interval — the GEMM then touches each candidate row once.
        """
        merged: list[list[int]] = []
        for r_lo, r_hi in sorted((m[1], m[2]) for m in members if m[2] > m[1]):
            if merged and r_lo <= merged[-1][1]:
                if r_hi > merged[-1][1]:
                    merged[-1][1] = r_hi
            else:
                merged.append([r_lo, r_hi])
        return merged

    def _gemm_values(
        self,
        index: PlanarIndex,
        working: list[WorkingQuery],
        members: list[tuple[int, int, int]],
    ) -> tuple[np.ndarray | None, np.ndarray | None]:
        """``(union_ids, values)`` of one group's candidate verification.

        ``union_ids`` is the ascending union of every member's
        intermediate-interval ids and ``values[i, j]`` is
        ``<normal_j, phi(union_ids[i])>`` for member ``j``'s canonical
        query normal — one ``(rows × queries)`` GEMM over a contiguous
        gather instead of one matrix-vector product per member.  Returns
        ``(None, None)`` when every member's interval is empty.
        """
        merged = self._merged_windows(members)
        if not merged:
            return None, None
        union_ids = np.sort(
            np.concatenate(
                [index._keys.ids_in_rank_range(lo, hi) for lo, hi in merged]
            )
        )
        rows = self._store.take_rows(union_ids)
        normals = np.vstack([working[m].query.normal for m, _, _ in members])
        values = rows @ normals.T
        return union_ids, values

    def _finish_group(
        self,
        index: PlanarIndex,
        working: list[WorkingQuery],
        members: list[tuple[int, int, int]],
        results: list[QueryResult | None],
    ) -> None:
        """Finish one index group's interval-routed members off one GEMM."""
        obs_on = _ort.active()
        started = time.perf_counter() if obs_on else 0.0
        union_ids, values = self._gemm_values(index, working, members)
        if obs_on and union_ids is not None:
            _osp.record(
                "verify_II_batch", started,
                index=index.obs_label,
                n_rows=int(union_ids.size),
                n_queries=len(members),
            )
        for column, (member, r_lo, r_hi) in enumerate(members):
            wq = working[member]
            if union_ids is None or r_hi <= r_lo:
                results[member] = index.finish_query(wq, r_lo, r_hi)
                continue
            member_ids = np.sort(index._keys.ids_in_rank_range(r_lo, r_hi))
            positions = np.searchsorted(union_ids, member_ids)
            results[member] = index.finish_query(
                wq, r_lo, r_hi, precomputed=(member_ids, values[positions, column])
            )

    def _scan_group(
        self,
        working: list[WorkingQuery],
        members: list[tuple[int, PlanarIndex, int, int, int]],
        results: list[QueryResult | None],
    ) -> None:
        """Answer every scan-routed member (across all groups) off one GEMM.

        Batched twin of :meth:`_scan_result`: one
        :meth:`FeatureStore.scan_values_many` call replaces one streamed
        matmul per query; per-query stats and partition counters are
        recorded exactly as the single-query path records them.
        """
        obs_on = _ort.active()
        started = time.perf_counter() if obs_on else 0.0
        normals = np.vstack(
            [working[member].query.normal for member, *_ in members]
        )
        ids, values = self._store.scan_values_many(normals)
        if obs_on:
            _osp.record("scan_batch", started, n_queries=len(members))
        for column, (member, index, r_lo, r_hi, n) in enumerate(members):
            wq = working[member]
            mask = wq.op.evaluate(values[:, column], wq.query.offset)
            result_ids = ids[mask]
            if obs_on:
                index._record_partition(
                    "inequality", r_lo, r_hi - r_lo, n - r_hi, n
                )
            results[member] = QueryResult(
                result_ids,
                QueryStats(
                    n_total=n,
                    si_size=r_lo,
                    ii_size=r_hi - r_lo,
                    li_size=n - r_hi,
                    n_verified=n,
                    n_results=int(result_ids.size),
                ),
            )

    def query_batch(self, queries: Sequence[ScalarProductQuery]) -> list[QueryResult]:
        """Answer many inequality queries with batched searches and GEMMs.

        Queries are grouped by their selected index; each group's interval
        boundaries come from one vectorized ``searchsorted`` over the
        group's thresholds, the group's candidate verification is one
        ``(rows × queries)`` matrix product over the union of the
        members' intermediate intervals, and scan-routed queries from
        *all* groups share one multi-normal store scan.  Results are
        positionally aligned with ``queries`` and identical to per-query
        :meth:`query` calls (including the cost-based scan routing);
        ``QueryStats`` are still computed per query.
        """
        obs_on = _ort.active()
        batch_started = time.perf_counter() if obs_on else 0.0
        working = [self.working_query(query) for query in queries]
        cache = self._cache
        groups: dict[int, list[int]] = {}
        for position, wq in enumerate(working):
            groups.setdefault(self._select_position(wq, cache), []).append(position)

        results: list[QueryResult | None] = [None] * len(queries)
        scan_members: list[tuple[int, PlanarIndex, int, int, int]] = []
        n_intervals = 0
        for index_position, members in groups.items():
            index = cache.indices[index_position]
            rank_los, rank_his = self._group_ranks(index, working, members)
            n = len(index)
            interval_members: list[tuple[int, int, int]] = []
            for slot, member in enumerate(members):
                r_lo, r_hi = int(rank_los[slot]), int(rank_his[slot])
                if r_hi - r_lo <= _SCAN_FALLBACK_FRACTION * n:
                    interval_members.append((member, r_lo, r_hi))
                    n_intervals += 1
                else:
                    scan_members.append((member, index, r_lo, r_hi, n))
            if interval_members:
                self._finish_group(index, working, interval_members, results)
        n_scans = len(scan_members)
        if scan_members:
            self._scan_group(working, scan_members, results)
        if obs_on:
            strategy = self._strategy.value
            counter = _om.queries_total()
            if n_intervals:
                counter.inc(n_intervals, kind="batch", route="intervals", strategy=strategy)
            if n_scans:
                counter.inc(n_scans, kind="batch", route="scan", strategy=strategy)
            _osp.record("collection.query_batch", batch_started, n_queries=len(queries))
            _om.query_latency().observe(
                time.perf_counter() - batch_started, kind="batch", route="mixed"
            )
        return results  # type: ignore[return-value]

    def topk(
        self,
        query: ScalarProductQuery,
        k: int,
        cutoff: "SharedCutoff | None" = None,
    ) -> TopKResult:
        """Answer a top-k nearest neighbor query via the best index.

        ``cutoff`` threads a :class:`~repro.core.topk.SharedCutoff` into
        Algorithm 2's LBS termination test — the sharded engine shares one
        across sibling shards so the globally best k-th distance prunes
        every shard's scan (see :meth:`PlanarIndex.topk`).
        """
        if not _ort.active():
            wq = self.working_query(query)
            return self.select(wq).topk(wq, k, cutoff=cutoff)
        started = time.perf_counter()
        with _osp.span("collection.topk", strategy=self._strategy.value, k=k):
            wq = self.working_query(query)
            result = self.select(wq).topk(wq, k, cutoff=cutoff)
        _om.queries_total().inc(
            kind="topk", route="intervals", strategy=self._strategy.value
        )
        _om.query_latency().observe(
            time.perf_counter() - started, kind="topk", route="intervals"
        )
        return result

    def topk_batch(
        self, queries: Sequence[ScalarProductQuery], k: int
    ) -> list[TopKResult]:
        """Answer many top-k queries, batching selection and II verification.

        Queries are grouped by their selected index; each group's
        intermediate-interval candidates are verified with one
        ``(rows × queries)`` GEMM (the same union-window gather as
        :meth:`query_batch`), after which each member runs its own LBS
        cutoff scan — that walk is adaptive per query and inherently
        sequential (Algorithm 2), so only the verification stage batches.
        Results are positionally aligned and identical to per-query
        :meth:`topk` calls.
        """
        if k <= 0:
            raise InvalidQueryError(f"k must be positive, got {k}")
        obs_on = _ort.active()
        batch_started = time.perf_counter() if obs_on else 0.0
        working = [self.working_query(query) for query in queries]
        cache = self._cache
        groups: dict[int, list[int]] = {}
        for position, wq in enumerate(working):
            groups.setdefault(self._select_position(wq, cache), []).append(position)

        results: list[TopKResult | None] = [None] * len(queries)
        for index_position, members in groups.items():
            index = cache.indices[index_position]
            rank_los, rank_his = self._group_ranks(index, working, members)
            n = len(index)
            bounded = [
                (member, int(rank_los[slot]), int(rank_his[slot]))
                for slot, member in enumerate(members)
            ]
            union_ids, values = self._gemm_values(index, working, bounded)
            for column, (member, r_lo, r_hi) in enumerate(bounded):
                wq = working[member]
                if union_ids is None or r_hi <= r_lo:
                    ids_ii = np.sort(index._keys.ids_in_rank_range(r_lo, r_hi))
                    values_ii = None
                else:
                    ids_ii = np.sort(index._keys.ids_in_rank_range(r_lo, r_hi))
                    positions = np.searchsorted(union_ids, ids_ii)
                    values_ii = values[positions, column]
                results[member] = index._topk_from_ii(
                    wq, k, None, r_lo, r_hi, n, ids_ii, values_ii
                )
        if obs_on:
            _om.queries_total().inc(
                len(queries), kind="topk", route="intervals",
                strategy=self._strategy.value,
            )
            _osp.record(
                "collection.topk_batch", batch_started, n_queries=len(queries), k=k
            )
            _om.query_latency().observe(
                time.perf_counter() - batch_started, kind="batch", route="topk"
            )
        return results  # type: ignore[return-value]

    def query_range(self, wq_low: WorkingQuery, wq_high: WorkingQuery) -> QueryResult:
        """Exact BETWEEN query routed through best-index selection.

        ``wq_low`` / ``wq_high`` are the ``>= low`` / ``<= high`` working
        queries over one shared normal (the facade builds them once for
        octant validation).  Selection uses the high bound; metrics are
        recorded here under the collection's real strategy label —
        matching how :meth:`query` and :meth:`topk` label — instead of
        the ``strategy="solo"`` series the standalone
        :meth:`PlanarIndex.query_range` entry point reports.
        """
        if not _ort.active():
            return self.select(wq_high)._query_range_impl(wq_low, wq_high)
        started = time.perf_counter()
        with _osp.span("collection.query_range", strategy=self._strategy.value):
            result = self.select(wq_high)._query_range_impl(wq_low, wq_high)
        _om.queries_total().inc(
            kind="range", route="intervals", strategy=self._strategy.value
        )
        _om.query_latency().observe(
            time.perf_counter() - started, kind="range", route="intervals"
        )
        return result

    # ------------------------------------------------------------------ #
    # EXPLAIN (see docs/observability.md)
    # ------------------------------------------------------------------ #

    def explain(self, query: ScalarProductQuery) -> ExplainReport:
        """Execute ``query`` and report selection, partition, and pruning.

        The report scores *every* candidate index (stretch, |cos| angle,
        and the intermediate-interval size an ``interval_ranks`` probe
        predicts), marks the one the configured strategy chose, then
        executes the query through exactly the same routing as
        :meth:`query` — so the reported SI/II/LI sizes, verification count
        and result count are identical to what :meth:`query` returns for
        the same query (deterministic strategies).  ``estimated_pruned``
        is the interval promise ``(|SI|+|LI|)/n``; ``actual_pruned`` is
        the measured fraction of points never verified (0 when the
        cost-based router chose the scan).
        """
        wq = self.working_query(query)
        cache = self._cache
        chosen = self._select_position(wq, cache)
        candidates = []
        ranks: list[tuple[int, int, int]] = []
        for position, index in enumerate(cache.indices):
            r_lo_c, r_hi_c, n_c = index.interval_ranks(wq)
            ranks.append((r_lo_c, r_hi_c, n_c))
            candidates.append(
                IndexCandidate(
                    position=position,
                    stretch=index.max_stretch(wq),
                    angle_cos=index.angle_cosine(wq),
                    expected_ii=r_hi_c - r_lo_c,
                    chosen=position == chosen,
                )
            )
        best = cache.indices[chosen]
        r_lo, r_hi, n = ranks[chosen]
        if r_hi - r_lo <= _SCAN_FALLBACK_FRACTION * n:
            route = "intervals"
            result = best.finish_query(wq, r_lo, r_hi)
        else:
            route = "scan"
            result = self._scan_result(wq, best, r_lo, r_hi, n)
        stats = result.stats
        if _ort.active():
            _om.explain_total().inc(route=route)
        return ExplainReport(
            kind="inequality",
            route=route,
            n_total=n,
            strategy=self._strategy.value,
            chosen_index=chosen,
            index_normal=tuple(float(c) for c in best.normal),
            candidates=tuple(candidates),
            rank_lo=r_lo,
            rank_hi=r_hi,
            si_size=stats.si_size,
            ii_size=stats.ii_size,
            li_size=stats.li_size,
            n_verified=stats.n_verified,
            n_results=stats.n_results,
            estimated_pruned=stats.pruned_fraction,
            actual_pruned=1.0 - stats.verified_fraction if n else 1.0,
        )

    # ------------------------------------------------------------------ #
    # Maintenance (Sections 4.2 and 4.4)
    # ------------------------------------------------------------------ #

    @array_contract("normal: (d,) float64 cast")
    def add_index(self, normal: np.ndarray) -> bool:
        """Dynamically introduce a new Planar index (skips redundant normals).

        Returns ``True`` when the index was added.  This is the operation
        the paper recommends for adapting to drifting query domains
        ("deletion of old indices as well as inclusion of new indices",
        Section 4.2).

        Redundancy uses the *same* rule as construction
        (:func:`dedupe_parallel_normals`): parallel iff
        ``|cos(angle)| >= cos(_PARALLEL_TOL)``, compared directly on
        cosines.  The previous ``angle_between(...) <= tol`` formulation
        round-tripped through ``arccos``, whose float64 resolution near 0
        (~``sqrt(2 eps)``) classified near-threshold normals differently
        from the construction path.
        """
        normal = np.ascontiguousarray(normal, dtype=np.float64)
        length = float(np.linalg.norm(normal))
        if length == 0.0:
            raise IndexBuildError("index normals must be nonzero")
        unit = normal / length
        existing = self.normals
        existing_units = existing / np.linalg.norm(existing, axis=1, keepdims=True)
        cosines = np.abs(existing_units @ unit)
        if float(cosines.max()) >= np.cos(_PARALLEL_TOL):
            return False
        newcomer = PlanarIndex(
            normal,
            self._store,
            self._translator,
            obs_label=self._label(len(self._indices)),
        )
        # Rebind rather than append in place: a query thread holding the
        # previous member list (via its cache snapshot) keeps a stable view.
        self._indices = [*self._indices, newcomer]
        self._relabel()
        self._refresh_selection_cache()
        return True

    def drop_index(self, position: int) -> None:
        """Remove the index at ``position``; at least one index must remain.

        Survivors are relabelled to their new positions (gauges carried,
        the dropped index's gauge series retired) so observability labels
        always equal positions — see :meth:`_relabel`.
        """
        if len(self._indices) <= 1:
            raise IndexBuildError("cannot drop the last index of a collection")
        dropped = self._indices[position]
        # Rebind to a survivor list (never `del` in place) so concurrent
        # query threads keep the generation their cache snapshot names.
        self._indices = [
            index for index in self._indices if index is not dropped
        ]
        dropped.release_obs_label()
        self._relabel()
        self._refresh_selection_cache()

    @array_contract("ids: (m,) int64 cast", "rows: (m, d) float64 cast")
    def rekey(self, ids: np.ndarray, rows: np.ndarray) -> None:
        """Propagate a feature update (changed rows only) to every index."""
        for index in self._indices:
            index.rekey(ids, rows)

    @array_contract("ids: (m,) int64 cast", "rows: (m, d) float64 cast")
    def insert(self, ids: np.ndarray, rows: np.ndarray) -> None:
        """Propagate newly appended points to every index."""
        for index in self._indices:
            index.insert(ids, rows)

    @array_contract("ids: (m,) int64 cast")
    def delete(self, ids: np.ndarray) -> None:
        """Propagate deletions to every index."""
        for index in self._indices:
            index.delete(ids)
