"""Best-index selection at query time (Section 5.1).

Given ``r`` Planar indices and one query, pick — in ``O(r d')`` time,
independent of the dataset size — the index expected to minimize the
intermediate interval:

* :func:`select_min_stretch` — the volume-minimization heuristic
  (Section 5.1.1, Problem 3): minimize the maximum stretch of the
  intermediate interval along any axis.  The paper reports this usually
  wins and uses it for all experiments.
* :func:`select_min_angle` — the angle-minimization heuristic
  (Section 5.1.2): maximize ``|cos|`` between the query normal and the
  index normal.
* :func:`select_random` — ablation baseline: ignore the query entirely.

Both paper heuristics pick the parallel index whenever one exists
(Corollary 1): a parallel index has zero stretch and ``|cos| = 1``.
"""

from __future__ import annotations

import enum
import time
from typing import Callable, Sequence

import numpy as np

from .._util import as_rng
from ..exceptions import IndexBuildError
from ..obs import runtime as _ort
from ..obs import spans as _osp
from .planar import PlanarIndex, WorkingQuery

__all__ = [
    "SelectionStrategy",
    "select_min_stretch",
    "select_min_angle",
    "select_random",
    "make_selector",
    "stretch_scores",
    "angle_cosines",
]

Selector = Callable[[Sequence[PlanarIndex], WorkingQuery], int]


class SelectionStrategy(enum.Enum):
    """Named best-index selection strategies."""

    MIN_STRETCH = "min_stretch"
    MIN_ANGLE = "min_angle"
    RANDOM = "random"


def _require_indices(indices: Sequence[PlanarIndex]) -> None:
    if not indices:
        raise IndexBuildError("cannot select from an empty index collection")


def stretch_scores(
    working_matrix: np.ndarray, row_min: np.ndarray, wq: WorkingQuery
) -> np.ndarray:
    """Vectorized min-stretch scores of many index normals for one query.

    ``working_matrix`` is the ``(r, d')`` stack of working normals and
    ``row_min`` its per-row minimum (precomputable because it is
    query-independent).  Row ``i`` equals
    :meth:`~repro.core.planar.PlanarIndex.max_stretch` of index ``i`` —
    the same expression evaluated as one numpy broadcast, which is what
    both the collection's query-time router and the tuning advisor's
    workload simulation use, keeping their routing decisions identical.
    """
    thresholds = working_matrix * (wq.offset_w / wq.normal_w)
    return (thresholds.max(axis=1) - thresholds.min(axis=1)) / row_min


def angle_cosines(
    working_matrix: np.ndarray, row_norm: np.ndarray, wq: WorkingQuery
) -> np.ndarray:
    """Vectorized ``|cos(angle)|`` of many index normals against one query.

    Row ``i`` equals
    :meth:`~repro.core.planar.PlanarIndex.angle_cosine` of index ``i``;
    ``row_norm`` holds the precomputed per-row norms.
    """
    return np.abs(working_matrix @ wq.normal_w) / (
        row_norm * np.linalg.norm(wq.normal_w)
    )


def select_min_stretch(indices: Sequence[PlanarIndex], wq: WorkingQuery) -> int:
    """Index position minimizing the maximum intermediate-interval stretch."""
    _require_indices(indices)
    obs_on = _ort.active()
    started = time.perf_counter() if obs_on else 0.0
    scores = [index.max_stretch(wq) for index in indices]
    position = int(np.argmin(scores))
    if obs_on:
        _osp.record("select.min_stretch", started, chosen=position)
    return position


def select_min_angle(indices: Sequence[PlanarIndex], wq: WorkingQuery) -> int:
    """Index position minimizing the angle to the query hyperplane."""
    _require_indices(indices)
    obs_on = _ort.active()
    started = time.perf_counter() if obs_on else 0.0
    scores = [index.angle_cosine(wq) for index in indices]
    position = int(np.argmax(scores))
    if obs_on:
        _osp.record("select.min_angle", started, chosen=position)
    return position


def select_random(
    indices: Sequence[PlanarIndex],
    wq: WorkingQuery,
    rng: np.random.Generator | int | None = None,
) -> int:
    """Ablation baseline: uniformly random index, blind to the query."""
    _require_indices(indices)
    position = int(as_rng(rng).integers(0, len(indices)))
    if _ort.active():
        _osp.record("select.random", time.perf_counter(), chosen=position)
    return position


def make_selector(
    strategy: SelectionStrategy | str,
    rng: np.random.Generator | int | None = None,
) -> Selector:
    """Build a selector callable for a strategy name.

    The random strategy captures its own RNG so repeated calls vary while
    remaining reproducible from a seed.
    """
    strategy = SelectionStrategy(strategy)
    if strategy is SelectionStrategy.MIN_STRETCH:
        return select_min_stretch
    if strategy is SelectionStrategy.MIN_ANGLE:
        return select_min_angle
    generator = as_rng(rng)
    return lambda indices, wq: select_random(indices, wq, generator)
