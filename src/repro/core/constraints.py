"""Conjunctive linear-constraint queries over multiple Planar indices.

The paper's Related Work (Section 2, "Linear constraint queries") notes
that a search region given by an intersection of half-spaces can be
answered with multiple Planar indices.  This module implements that idea:

For a conjunction ``AND_j <a_j, phi(x)> OP_j b_j``:

* a point inside *every* constraint's certain-accept interval is accepted
  without any scalar product,
* a point inside *any* constraint's certain-reject interval is rejected
  without any scalar product,
* the rest are verified — against the cheapest-to-falsify constraint
  first, so verification short-circuits.

All set algebra happens on sorted-rank intervals and id arrays, never on
per-point Python objects.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from ..exceptions import InvalidQueryError
from .collection import PlanarIndexCollection
from .planar import QueryStats, WorkingQuery
from .query import ScalarProductQuery

__all__ = [
    "ConjunctiveQuery",
    "DisjunctiveQuery",
    "ConstraintAnswer",
    "answer_conjunction",
    "answer_disjunction",
]


@dataclass(frozen=True)
class ConjunctiveQuery:
    """A conjunction (AND) of scalar product constraints."""

    constraints: tuple[ScalarProductQuery, ...]

    def __init__(self, constraints: Sequence[ScalarProductQuery]) -> None:
        constraints = tuple(constraints)
        if not constraints:
            raise InvalidQueryError("a conjunction needs at least one constraint")
        dims = {c.dim for c in constraints}
        if len(dims) != 1:
            raise InvalidQueryError(
                f"constraints disagree on dimensionality: {sorted(dims)}"
            )
        object.__setattr__(self, "constraints", constraints)

    @property
    def dim(self) -> int:
        """Feature-space dimensionality shared by all constraints."""
        return self.constraints[0].dim

    def __len__(self) -> int:
        return len(self.constraints)

    def evaluate(self, features: np.ndarray) -> np.ndarray:
        """Ground-truth conjunction mask (oracle semantics)."""
        mask = self.constraints[0].evaluate(features)
        for constraint in self.constraints[1:]:
            mask &= constraint.evaluate(features)
        return mask


@dataclass(frozen=True)
class DisjunctiveQuery:
    """A disjunction (OR) of scalar product constraints."""

    constraints: tuple[ScalarProductQuery, ...]

    def __init__(self, constraints: Sequence[ScalarProductQuery]) -> None:
        constraints = tuple(constraints)
        if not constraints:
            raise InvalidQueryError("a disjunction needs at least one constraint")
        dims = {c.dim for c in constraints}
        if len(dims) != 1:
            raise InvalidQueryError(
                f"constraints disagree on dimensionality: {sorted(dims)}"
            )
        object.__setattr__(self, "constraints", constraints)

    @property
    def dim(self) -> int:
        """Feature-space dimensionality shared by all constraints."""
        return self.constraints[0].dim

    def __len__(self) -> int:
        return len(self.constraints)

    def evaluate(self, features: np.ndarray) -> np.ndarray:
        """Ground-truth disjunction mask (oracle semantics)."""
        mask = self.constraints[0].evaluate(features)
        for constraint in self.constraints[1:]:
            mask |= constraint.evaluate(features)
        return mask


@dataclass(frozen=True)
class ConstraintAnswer:
    """Result of a conjunctive query with pruning diagnostics."""

    ids: np.ndarray
    n_verified: int
    n_total: int
    per_constraint: tuple[QueryStats, ...]

    def __post_init__(self) -> None:
        object.__setattr__(self, "ids", np.ascontiguousarray(self.ids, dtype=np.int64))

    @property
    def pruned_fraction(self) -> float:
        """Fraction of points decided purely by interval membership."""
        if self.n_total == 0:
            return 1.0
        return 1.0 - self.n_verified / self.n_total

    def __len__(self) -> int:
        return int(self.ids.size)


def _certain_sets(
    collection: PlanarIndexCollection, wq: WorkingQuery
) -> tuple[np.ndarray, np.ndarray, np.ndarray, QueryStats]:
    """(certain-accept ids, candidate ids, certain-reject ids, stats)."""
    index = collection.select(wq)
    r_lo, r_hi, n = index.interval_ranks(wq)
    keys = index._keys  # sorted-order access shared with the index
    if wq.op.is_upper_bound:
        accept = keys.ids_in_rank_range(0, r_lo)
        reject = keys.ids_in_rank_range(r_hi, n)
    else:
        accept = keys.ids_in_rank_range(r_hi, n)
        reject = keys.ids_in_rank_range(0, r_lo)
    candidates = keys.ids_in_rank_range(r_lo, r_hi)
    stats = QueryStats(
        n_total=n,
        si_size=r_lo,
        ii_size=r_hi - r_lo,
        li_size=n - r_hi,
        n_verified=0,
        n_results=0,
    )
    return accept, candidates, reject, stats


def answer_conjunction(
    collection: PlanarIndexCollection,
    query: ConjunctiveQuery,
    store,
) -> ConstraintAnswer:
    """Exact evaluation of a conjunction through one index collection.

    ``store`` is the :class:`~repro.core.FeatureStore` backing the
    collection (needed to verify undecided points).
    """
    working = [collection.working_query(constraint) for constraint in query.constraints]
    certains = [_certain_sets(collection, wq) for wq in working]
    n_total = certains[0][3].n_total

    # Certain accept for the conjunction: intersection of per-constraint
    # accepts.  Certain reject: union of per-constraint rejects.
    accepted = certains[0][0]
    for accept, _, _, _ in certains[1:]:
        accepted = np.intersect1d(accepted, accept, assume_unique=True)
    rejected = np.unique(np.concatenate([c[2] for c in certains]))

    # Everything neither certainly accepted nor certainly rejected must be
    # verified; that is the complement of (accepted | rejected).
    decided = np.union1d(accepted, rejected)
    all_ids = np.sort(np.asarray(collection[0]._keys.sorted_ids))
    undecided = np.setdiff1d(all_ids, decided, assume_unique=True)

    n_verified = int(undecided.size)
    survivors = undecided
    if survivors.size:
        feats = store.take_rows(survivors)
        # Short-circuit: apply the most selective-looking constraint first
        # (smallest candidate set => likely to kill the most points).
        order = np.argsort([c[1].size for c in certains])
        for position in order:  # repro: noqa(REP006) — loop over the few constraints, not data points
            constraint = query.constraints[position]
            mask = constraint.evaluate(feats)
            survivors = survivors[mask]
            feats = feats[mask]
            if survivors.size == 0:
                break

    ids = np.sort(np.concatenate([accepted, survivors]))
    return ConstraintAnswer(
        ids=ids,
        n_verified=n_verified,
        n_total=n_total,
        per_constraint=tuple(c[3] for c in certains),
    )


def answer_disjunction(
    collection: PlanarIndexCollection,
    query: DisjunctiveQuery,
    store,
) -> ConstraintAnswer:
    """Exact evaluation of a disjunction (OR) through one index collection.

    De Morgan dual of the conjunction: certain-accept is the *union* of
    per-constraint accepts, certain-reject the *intersection* of rejects,
    and undecided points are verified — short-circuiting on the first
    constraint each point satisfies.
    """
    working = [collection.working_query(constraint) for constraint in query.constraints]
    certains = [_certain_sets(collection, wq) for wq in working]
    n_total = certains[0][3].n_total

    accepted = np.unique(np.concatenate([c[0] for c in certains]))
    rejected = certains[0][2]
    for _, _, reject, _ in certains[1:]:
        rejected = np.intersect1d(rejected, reject, assume_unique=True)

    decided = np.union1d(accepted, rejected)
    all_ids = np.sort(np.asarray(collection[0]._keys.sorted_ids))
    undecided = np.setdiff1d(all_ids, decided, assume_unique=True)

    n_verified = int(undecided.size)
    satisfied_parts: list[np.ndarray] = []
    remaining = undecided
    if remaining.size:
        feats = store.take_rows(remaining)
        order = np.argsort([c[1].size for c in certains])
        for position in order:  # repro: noqa(REP006) — loop over the few constraints, not data points
            constraint = query.constraints[position]
            mask = constraint.evaluate(feats)
            satisfied_parts.append(remaining[mask])
            remaining = remaining[~mask]
            feats = feats[~mask]
            if remaining.size == 0:
                break

    ids = np.sort(np.concatenate([accepted, *satisfied_parts]))
    return ConstraintAnswer(
        ids=ids,
        n_verified=n_verified,
        n_total=n_total,
        per_constraint=tuple(c[3] for c in certains),
    )
