"""Per-query pruning statistics shared by every result type.

:class:`QueryStats` started life inside :mod:`repro.core.planar`; it now
lives in its own module so that both inequality results
(:class:`~repro.core.planar.QueryResult`) and top-k results
(:class:`~repro.core.topk.TopKResult`) can carry the *same* pruning
diagnostics without an import cycle (``planar`` imports ``topk``).
``repro.core.planar`` re-exports the class, so existing imports keep
working.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["QueryStats"]


@dataclass(frozen=True)
class QueryStats:
    """Per-query pruning diagnostics (the Figures 9/10 metric).

    ``si_size``/``ii_size``/``li_size`` are the cardinalities of the three
    intervals.  ``n_verified`` counts points whose scalar product was
    actually evaluated — normally the intermediate interval, or the whole
    dataset when the cost-based router preferred a scan.
    """

    n_total: int
    si_size: int
    ii_size: int
    li_size: int
    n_verified: int
    n_results: int

    @property
    def pruned_fraction(self) -> float:
        """Fraction of points the *intervals* decide without a scalar product.

        Interval-based, exactly the paper's Figures 9/10 metric — it
        reflects index quality even when the router chose to scan anyway.
        """
        if self.n_total == 0:
            return 1.0
        return (self.si_size + self.li_size) / self.n_total

    @property
    def verified_fraction(self) -> float:
        """Fraction of points whose scalar product was actually evaluated."""
        if self.n_total == 0:
            return 0.0
        return self.n_verified / self.n_total

    def to_dict(self) -> dict:
        """JSON-friendly representation (used by EXPLAIN and exporters)."""
        return {
            "n_total": self.n_total,
            "si_size": self.si_size,
            "ii_size": self.ii_size,
            "li_size": self.li_size,
            "n_verified": self.n_verified,
            "n_results": self.n_results,
            "pruned_fraction": self.pruned_fraction,
        }
