"""Degraded-answer contract types for the hardened sharded engine.

When a shard of :class:`~repro.parallel.engine.ShardedFunctionIndex`
fails (or misses its deadline) and the selected :class:`FailurePolicy`
is a degrading one, the engine attaches a :class:`DegradedInfo` to the
returned answer instead of raising.  The contract is *partial but
honest*: every id in a degraded answer is correct (no false positives),
and :attr:`DegradedInfo.completeness` states exactly which fraction of
the live points the answer covers, so callers can decide whether a
partial answer is acceptable (compare PolyFit / HD-Index, which make
approximation explicit and bounded rather than silent).
"""

from __future__ import annotations

import enum
import os
from dataclasses import dataclass

from ..exceptions import DegradedAnswerError, FaultSpecError

__all__ = [
    "FailurePolicy",
    "DegradedInfo",
    "default_policy",
]


class FailurePolicy(enum.Enum):
    """What the sharded engine does when a shard of a fan-out fails.

    ``RAISE``
        Propagate a :class:`~repro.exceptions.ShardFailureError` carrying
        the failed shard's identity (pre-PR behaviour, plus identity).
    ``DEGRADE``
        Recover the failed shards by exact scan when possible; otherwise
        return a partial answer annotated with :class:`DegradedInfo`.
    ``RETRY_THEN_DEGRADE``
        First retry the failed shards (bounded, jittered backoff); fall
        back to ``DEGRADE`` handling only if retries are exhausted.
    """

    RAISE = "raise"
    DEGRADE = "degrade"
    RETRY_THEN_DEGRADE = "retry_then_degrade"

    @classmethod
    def parse(cls, value: "FailurePolicy | str | None") -> "FailurePolicy":
        """Coerce a policy name (CLI/env string) into a member."""
        if value is None:
            return default_policy()
        if isinstance(value, cls):
            return value
        text = str(value).strip().lower().replace("-", "_")
        for member in cls:
            if member.value == text:
                return member
        raise FaultSpecError(
            f"unknown failure policy {value!r}; choose from "
            f"{[member.value for member in cls]}"
        )


def default_policy() -> FailurePolicy:
    """The process-default policy: ``REPRO_FAULT_POLICY`` or ``raise``.

    Read lazily (not cached at import) so tests and the chaos CLI can
    flip the environment without re-importing the package.
    """
    text = os.environ.get("REPRO_FAULT_POLICY", "").strip()
    if not text:
        return FailurePolicy.RAISE
    return FailurePolicy.parse(text)


@dataclass(frozen=True)
class DegradedInfo:
    """Provenance of a partial (or recovered) answer.

    Attributes
    ----------
    failed_shards:
        Shard ids whose results are *missing* from the answer (failed
        and not recovered).  Empty when every failure was recovered.
    recovered_shards:
        Shard ids that failed their primary execution but whose points
        were recovered by an exact fallback scan (or a successful
        retry); their results ARE in the answer.
    cause:
        Human-readable description of the first failure observed.
    completeness:
        Exact fraction of live points covered by the answer: live
        points owned by answered shards / total live points.  ``1.0``
        when every failure was recovered.
    retries:
        Total shard retry attempts spent producing this answer.
    """

    failed_shards: tuple[int, ...] = ()
    recovered_shards: tuple[int, ...] = ()
    cause: str = ""
    completeness: float = 1.0
    retries: int = 0

    def __post_init__(self) -> None:
        object.__setattr__(self, "failed_shards", tuple(self.failed_shards))
        object.__setattr__(self, "recovered_shards", tuple(self.recovered_shards))

    @property
    def is_complete(self) -> bool:
        """True when the answer covers every live point (nothing missing)."""
        return not self.failed_shards and self.completeness >= 1.0

    def require_complete(self) -> None:
        """Raise :class:`DegradedAnswerError` unless the answer is complete.

        The opt-in strict check for callers that accepted a degrading
        policy for availability but need completeness for a particular
        query.
        """
        if not self.is_complete:
            raise DegradedAnswerError(
                f"answer is degraded: shards {list(self.failed_shards)} missing "
                f"(completeness {self.completeness:.3f}, cause: {self.cause})"
            )

    def to_dict(self) -> dict[str, object]:
        """JSON-ready representation (chaos CLI reports)."""
        return {
            "failed_shards": list(self.failed_shards),
            "recovered_shards": list(self.recovered_shards),
            "cause": self.cause,
            "completeness": self.completeness,
            "retries": self.retries,
        }

    def describe(self) -> str:
        """One-line human summary of the degradation."""
        if self.is_complete:
            shards = ",".join(str(s) for s in self.recovered_shards)
            return (
                f"complete after recovery (shards [{shards}] recovered, "
                f"{self.retries} retries)"
            )
        return (
            f"degraded: shards {list(self.failed_shards)} missing, "
            f"completeness {self.completeness:.3f} ({self.cause})"
        )
