"""CLI for chaos testing: ``python -m repro chaos``.

Runs a deterministic query workload against a sharded index while a fault
plan (``--faults`` or ``$REPRO_FAULTS``) injects shard errors, stalls, and
torn writes, then prints a survival report:

* per-query outcomes — complete, recovered (retried/rescanned back to a
  complete answer), degraded (partial answer with a completeness
  fraction), raised (query failed under the active policy);
* per-rule fault-plan counters (checks vs fires);
* with ``--verify``, every answer is checked against the ground-truth
  sequential evaluation: complete answers must match exactly, degraded
  answers must be correct subsets whose size is consistent with the
  reported completeness.  Verification failures exit nonzero.

The index is rebuilt deterministically from ``--n/--dim/--rq/--indices/
--seed`` (the same recipe as ``repro tune``), so a chaos run is
reproducible end to end: same plan seed, same workload, same outcome
counts.  See ``docs/reliability.md`` for the fault-spec grammar and the
failure-policy semantics.
"""

from __future__ import annotations

import argparse
import contextlib
import os
import sys
from typing import Sequence, TextIO

import numpy as np

from ..exceptions import (
    DegradedAnswerError,
    FaultSpecError,
    ReproError,
    ShardFailureError,
)
from . import faults as _flt

__all__ = ["configure_parser", "build_parser", "run_from_args", "main"]


def configure_parser(parser: argparse.ArgumentParser) -> None:
    """Attach the chaos options to ``parser`` (shared with ``repro.cli``)."""
    parser.add_argument(
        "--faults",
        type=str,
        default=None,
        help="fault plan spec, e.g. 'shard.query:error:p=0.3' "
        "(default: $REPRO_FAULTS)",
    )
    parser.add_argument(
        "--faults-seed",
        type=int,
        default=0,
        help="seed for probabilistic fault rules (default: 0)",
    )
    parser.add_argument(
        "--policy",
        type=str,
        choices=["raise", "degrade", "retry-then-degrade", "retry_then_degrade"],
        default="retry_then_degrade",
        help="shard failure policy for the engine (default: retry_then_degrade)",
    )
    parser.add_argument(
        "--timeout",
        type=float,
        default=None,
        help="per-shard query deadline in seconds (default: none)",
    )
    parser.add_argument(
        "--max-retries",
        type=int,
        default=2,
        help="retry attempts per failed shard under retry_then_degrade",
    )
    parser.add_argument(
        "--queries", type=int, default=50, help="number of workload queries"
    )
    parser.add_argument(
        "--verify",
        action="store_true",
        help="check every answer against the sequential ground truth",
    )
    parser.add_argument("--n", type=int, default=10_000, help="dataset size")
    parser.add_argument("--dim", type=int, default=6, help="dimensionality")
    parser.add_argument("--rq", type=int, default=4, help="randomness of query")
    parser.add_argument("--indices", type=int, default=8, help="index budget r")
    parser.add_argument("--shards", type=int, default=4, help="shard count")
    parser.add_argument(
        "--workers", type=int, default=None, help="thread-pool size"
    )
    parser.add_argument("--seed", type=int, default=0, help="random seed")


def build_parser() -> argparse.ArgumentParser:
    """Standalone ``repro chaos`` parser (the main CLI nests the same flags)."""
    parser = argparse.ArgumentParser(
        prog="repro chaos",
        description="run a query workload under fault injection and report "
        "survival statistics",
    )
    configure_parser(parser)
    return parser


def _build_engine(args: argparse.Namespace):
    """Deterministic sharded index + workload, mirroring ``repro tune``."""
    from ..core.domains import QueryModel
    from ..datasets import independent
    from ..datasets.workloads import eq18_offset, skewed_normals
    from ..parallel.engine import ShardedFunctionIndex

    points = independent(args.n, args.dim, rng=args.seed).points
    model = QueryModel.uniform(dim=args.dim, low=1.0, high=5.0, rq=args.rq)
    engine = ShardedFunctionIndex(
        points,
        model,
        n_indices=args.indices,
        rng=args.seed,
        n_shards=args.shards,
        max_workers=args.workers,
        failure_policy=args.policy.replace("-", "_"),
        query_timeout_s=args.timeout,
        max_retries=args.max_retries,
    )
    maxima = points.max(axis=0)
    normals = skewed_normals(model, args.queries, 0.0, rng=args.seed)
    offsets = np.array([eq18_offset(n, maxima, 0.25) for n in normals])
    return engine, points, normals, offsets


def _verify_answer(answer, query, points) -> str | None:
    """Ground-truth check of one (possibly degraded) answer.

    Returns an error description, or ``None`` when the answer is sound.
    """
    truth = np.nonzero(query.evaluate(points))[0].astype(np.int64)
    got = np.asarray(answer.ids, dtype=np.int64)
    info = answer.degraded
    if info is None or info.is_complete:
        if not np.array_equal(np.sort(got), truth):
            return (
                f"complete answer mismatch: got {got.size} ids, "
                f"expected {truth.size}"
            )
        return None
    if not np.isin(got, truth).all():
        false_pos = got[~np.isin(got, truth)]
        return f"degraded answer contains wrong ids: {false_pos[:5].tolist()}"
    if not 0.0 <= info.completeness <= 1.0:
        return f"completeness out of range: {info.completeness!r}"
    return None


def _cmd_run(args: argparse.Namespace, stream: TextIO) -> int:
    spec = args.faults if args.faults is not None else os.environ.get("REPRO_FAULTS", "")
    engine, points, normals, offsets = _build_engine(args)
    from ..core.query import ScalarProductQuery

    context = (
        _flt.injected(spec, seed=args.faults_seed)
        if spec.strip()
        else contextlib.nullcontext(_flt.active_plan())
    )
    outcomes = {"complete": 0, "recovered": 0, "degraded": 0, "raised": 0}
    completeness: list[float] = []
    retries = 0
    problems: list[str] = []
    with engine, context as plan:
        for qid, (normal, offset) in enumerate(zip(normals, offsets)):
            spq = ScalarProductQuery(normal, float(offset))
            try:
                answer = engine.query(normal, float(offset))
            except (ShardFailureError, DegradedAnswerError) as exc:
                outcomes["raised"] += 1
                if args.verify and args.policy.replace("-", "_") != "raise":
                    # Non-raise policies should only raise when *every*
                    # shard (and its recovery scan) failed.
                    if not isinstance(exc, DegradedAnswerError):
                        problems.append(f"query {qid}: unexpected {exc!r}")
                continue
            info = answer.degraded
            if info is None:
                outcomes["complete"] += 1
            elif info.is_complete:
                outcomes["recovered"] += 1
                retries += info.retries
            else:
                outcomes["degraded"] += 1
                completeness.append(info.completeness)
                retries += info.retries
            if args.verify:
                issue = _verify_answer(answer, spq, points)
                if issue is not None:
                    problems.append(f"query {qid}: {issue}")
        stats = plan.stats() if plan is not None else []
        fired = plan.fired_total() if plan is not None else 0

    total = sum(outcomes.values())
    print(
        f"chaos: {total} queries over {args.shards} shards, "
        f"policy={args.policy.replace('-', '_')}",
        file=stream,
    )
    print(
        f"  complete={outcomes['complete']}  recovered={outcomes['recovered']}"
        f"  degraded={outcomes['degraded']}  raised={outcomes['raised']}"
        f"  retries={retries}",
        file=stream,
    )
    if completeness:
        print(
            f"  degraded completeness: mean {np.mean(completeness):.3f}, "
            f"min {np.min(completeness):.3f}",
            file=stream,
        )
    if stats:
        print(f"  faults fired: {fired}", file=stream)
        for row in stats:
            print(
                f"    {row['site']}:{row['kind']} — "
                f"{row['fires']}/{row['checks']} checks fired",
                file=stream,
            )
    else:
        print("  faults fired: 0 (no fault plan armed)", file=stream)
    if args.verify:
        if problems:
            for problem in problems[:10]:
                print(f"  VERIFY FAIL {problem}", file=sys.stderr)
            print(f"verification failed: {len(problems)} issue(s)", file=sys.stderr)
            return 1
        print(f"  verified {total - outcomes['raised']} answers against "
              f"the sequential ground truth: all sound", file=stream)
    return 0


def run_from_args(args: argparse.Namespace, stream: TextIO | None = None) -> int:
    """Execute a chaos invocation from a parsed namespace; returns exit code."""
    stream = stream or sys.stdout
    try:
        return _cmd_run(args, stream)
    except FaultSpecError as exc:
        print(f"error: bad fault spec: {exc}", file=sys.stderr)
        return 2
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1


def main(argv: Sequence[str] | None = None, stream: TextIO | None = None) -> int:
    """Standalone entry point (``python -m repro.reliability.cli``)."""
    try:
        args = build_parser().parse_args(argv)
    except SystemExit as exc:  # argparse uses 2 for usage errors already
        return int(exc.code or 0)
    return run_from_args(args, stream)


if __name__ == "__main__":  # pragma: no cover - exercised via repro.cli tests
    sys.exit(main())
