"""CLI for chaos testing: ``python -m repro chaos``.

Runs a deterministic query workload against a sharded index while a fault
plan (``--faults`` or ``$REPRO_FAULTS``) injects shard errors, stalls, and
torn writes, then prints a survival report:

* per-query outcomes — complete, recovered (retried/rescanned back to a
  complete answer), degraded (partial answer with a completeness
  fraction), raised (query failed under the active policy);
* per-rule fault-plan counters (checks vs fires);
* with ``--verify``, every answer is checked against the ground-truth
  sequential evaluation: complete answers must match exactly, degraded
  answers must be correct subsets whose size is consistent with the
  reported completeness.  Verification failures exit nonzero.

The index is rebuilt deterministically from ``--n/--dim/--rq/--indices/
--seed`` (the same recipe as ``repro tune``), so a chaos run is
reproducible end to end: same plan seed, same workload, same outcome
counts.  See ``docs/reliability.md`` for the fault-spec grammar and the
failure-policy semantics.

``--serve`` runs the same workload *through the live HTTP service*
instead of direct engine calls: a :func:`~repro.serve.service
.serve_in_thread` stack comes up with the fault plan armed (including
the serving layer's own ``serve.accept`` / ``serve.dispatch`` /
``serve.flush`` sites), every ``200`` response is verified exact or a
truthful ``DegradedInfo`` subset against the sequential ground truth,
and every non-200 must be an explicit ``429``/``503``/``504`` — any
silent truncation or unexplained status exits nonzero.  ``--deadline-ms``
stamps each request's ``X-Repro-Deadline-Ms`` header to exercise the
end-to-end deadline path under stalls.
"""

from __future__ import annotations

import argparse
import contextlib
import os
import sys
from typing import Sequence, TextIO

import numpy as np

from ..exceptions import (
    DegradedAnswerError,
    FaultSpecError,
    ReproError,
    ShardFailureError,
)
from . import faults as _flt

__all__ = ["configure_parser", "build_parser", "run_from_args", "main"]


def configure_parser(parser: argparse.ArgumentParser) -> None:
    """Attach the chaos options to ``parser`` (shared with ``repro.cli``)."""
    parser.add_argument(
        "--faults",
        type=str,
        default=None,
        help="fault plan spec, e.g. 'shard.query:error:p=0.3' "
        "(default: $REPRO_FAULTS)",
    )
    parser.add_argument(
        "--faults-seed",
        type=int,
        default=0,
        help="seed for probabilistic fault rules (default: 0)",
    )
    parser.add_argument(
        "--policy",
        type=str,
        choices=["raise", "degrade", "retry-then-degrade", "retry_then_degrade"],
        default="retry_then_degrade",
        help="shard failure policy for the engine (default: retry_then_degrade)",
    )
    parser.add_argument(
        "--timeout",
        type=float,
        default=None,
        help="per-shard query deadline in seconds (default: none)",
    )
    parser.add_argument(
        "--max-retries",
        type=int,
        default=2,
        help="retry attempts per failed shard under retry_then_degrade",
    )
    parser.add_argument(
        "--queries", type=int, default=50, help="number of workload queries"
    )
    parser.add_argument(
        "--verify",
        action="store_true",
        help="check every answer against the sequential ground truth",
    )
    parser.add_argument("--n", type=int, default=10_000, help="dataset size")
    parser.add_argument("--dim", type=int, default=6, help="dimensionality")
    parser.add_argument("--rq", type=int, default=4, help="randomness of query")
    parser.add_argument("--indices", type=int, default=8, help="index budget r")
    parser.add_argument("--shards", type=int, default=4, help="shard count")
    parser.add_argument(
        "--workers", type=int, default=None, help="thread-pool size"
    )
    parser.add_argument("--seed", type=int, default=0, help="random seed")
    parser.add_argument(
        "--serve",
        action="store_true",
        help="drive the workload through a live HTTP service instead of "
        "direct engine calls; every response is verified exact, truthfully "
        "degraded, or an explicit 429/503/504",
    )
    parser.add_argument(
        "--deadline-ms",
        type=float,
        default=None,
        help="with --serve: X-Repro-Deadline-Ms header for every request "
        "(default: the service default)",
    )


def build_parser() -> argparse.ArgumentParser:
    """Standalone ``repro chaos`` parser (the main CLI nests the same flags)."""
    parser = argparse.ArgumentParser(
        prog="repro chaos",
        description="run a query workload under fault injection and report "
        "survival statistics",
    )
    configure_parser(parser)
    return parser


def _build_engine(args: argparse.Namespace):
    """Deterministic sharded index + workload, mirroring ``repro tune``."""
    from ..core.domains import QueryModel
    from ..datasets import independent
    from ..datasets.workloads import eq18_offset, skewed_normals
    from ..parallel.engine import ShardedFunctionIndex

    points = independent(args.n, args.dim, rng=args.seed).points
    model = QueryModel.uniform(dim=args.dim, low=1.0, high=5.0, rq=args.rq)
    engine = ShardedFunctionIndex(
        points,
        model,
        n_indices=args.indices,
        rng=args.seed,
        n_shards=args.shards,
        max_workers=args.workers,
        failure_policy=args.policy.replace("-", "_"),
        query_timeout_s=args.timeout,
        max_retries=args.max_retries,
    )
    maxima = points.max(axis=0)
    normals = skewed_normals(model, args.queries, 0.0, rng=args.seed)
    offsets = np.array([eq18_offset(n, maxima, 0.25) for n in normals])
    return engine, points, normals, offsets


def _verify_answer(answer, query, points) -> str | None:
    """Ground-truth check of one (possibly degraded) answer.

    Returns an error description, or ``None`` when the answer is sound.
    """
    truth = np.nonzero(query.evaluate(points))[0].astype(np.int64)
    got = np.asarray(answer.ids, dtype=np.int64)
    info = answer.degraded
    if info is None or info.is_complete:
        if not np.array_equal(np.sort(got), truth):
            return (
                f"complete answer mismatch: got {got.size} ids, "
                f"expected {truth.size}"
            )
        return None
    if not np.isin(got, truth).all():
        false_pos = got[~np.isin(got, truth)]
        return f"degraded answer contains wrong ids: {false_pos[:5].tolist()}"
    if not 0.0 <= info.completeness <= 1.0:
        return f"completeness out of range: {info.completeness!r}"
    return None


def _post_json(
    host: str, port: int, path: str, body: dict, headers: dict
) -> tuple[int, dict]:
    """POST ``body`` to the live service; returns ``(status, payload)``."""
    import http.client
    import json

    connection = http.client.HTTPConnection(host, port, timeout=60)
    try:
        connection.request(
            "POST",
            path,
            json.dumps(body),
            {"Content-Type": "application/json", **headers},
        )
        response = connection.getresponse()
        return response.status, json.loads(response.read().decode("utf-8"))
    finally:
        connection.close()


def _verify_served(payload: dict, spq, k: int, points, scan) -> str | None:
    """Ground-truth check of one 200 response from the live service.

    Complete answers (no ``degraded`` block, or a recovered one) must
    match the sequential scan exactly; degraded answers must be truthful
    subsets with an in-range completeness — the acceptance bar: partial
    answers are never disguised as complete ones.
    """
    info = payload.get("degraded")
    complete = info is None or (
        not info.get("failed_shards") and info.get("completeness", 0.0) >= 1.0
    )
    got = np.asarray(payload["ids"], dtype=np.int64)
    if not complete and not 0.0 <= float(info["completeness"]) <= 1.0:
        return f"completeness out of range: {info['completeness']!r}"
    if k:
        if complete:
            truth = scan.topk(spq, k)
            if payload["ids"] != truth.ids.tolist():
                return "complete top-k ids mismatch vs sequential scan"
            if not np.allclose(payload["distances"], truth.distances):
                return "complete top-k distances mismatch vs sequential scan"
            return None
        if got.size > k:
            return f"degraded top-k returned {got.size} ids for k={k}"
        if got.size and (got.min() < 0 or got.max() >= len(points)):
            return "degraded top-k contains unknown ids"
        return None
    truth = np.nonzero(spq.evaluate(points))[0].astype(np.int64)
    if complete:
        if not np.array_equal(np.sort(got), truth):
            return (
                f"complete answer mismatch: got {got.size} ids, "
                f"expected {truth.size}"
            )
        return None
    if got.size and not np.isin(got, truth).all():
        false_pos = got[~np.isin(got, truth)]
        return f"degraded answer contains wrong ids: {false_pos[:5].tolist()}"
    return None


def _cmd_serve(args: argparse.Namespace, stream: TextIO) -> int:
    """Drive the chaos workload through a live HTTP service and verify it."""
    from ..core.query import ScalarProductQuery
    from ..scan.baseline import SequentialScan
    from ..serve.config import ServiceConfig
    from ..serve.service import serve_in_thread

    spec = args.faults if args.faults is not None else os.environ.get("REPRO_FAULTS", "")
    engine, points, normals, offsets = _build_engine(args)
    scan = SequentialScan(points)
    headers: dict = {}
    if args.deadline_ms is not None:
        headers["X-Repro-Deadline-Ms"] = f"{args.deadline_ms:g}"
    context = (
        _flt.injected(spec, seed=args.faults_seed)
        if spec.strip()
        else contextlib.nullcontext(_flt.active_plan())
    )
    counts = {
        "exact": 0,
        "degraded": 0,
        "shed_429": 0,
        "shed_503": 0,
        "deadline_504": 0,
    }
    problems: list[str] = []
    k = 10
    with engine, context as plan:
        handle = serve_in_thread(engine, ServiceConfig.from_env())
        try:
            for qid, (normal, offset) in enumerate(zip(normals, offsets)):
                op_is_topk = qid % 2 == 1
                body = {"normal": normal.tolist(), "offset": float(offset)}
                if op_is_topk:
                    body["k"] = k
                status, payload = _post_json(
                    handle.host,
                    handle.port,
                    "/topk" if op_is_topk else "/query",
                    body,
                    headers,
                )
                if status == 200:
                    spq = ScalarProductQuery(normal, float(offset))
                    issue = _verify_served(
                        payload, spq, k if op_is_topk else 0, points, scan
                    )
                    if issue is not None:
                        problems.append(f"request {qid}: {issue}")
                    elif payload.get("degraded") is not None and not payload[
                        "degraded"
                    ].get("completeness", 0.0) >= 1.0:
                        counts["degraded"] += 1
                    else:
                        counts["exact"] += 1
                elif status == 429:
                    counts["shed_429"] += 1
                elif status == 503:
                    counts["shed_503"] += 1
                elif status == 504:
                    counts["deadline_504"] += 1
                    if "budget_ms" not in payload or "elapsed_ms" not in payload:
                        problems.append(
                            f"request {qid}: 504 without a budget breakdown"
                        )
                else:
                    problems.append(
                        f"request {qid}: unexpected status {status}: {payload!r}"
                    )
            service_stats = handle.service.stats()
        finally:
            handle.stop()
        fault_stats = plan.stats() if plan is not None else []
        fired = plan.fired_total() if plan is not None else 0

    print(
        f"chaos --serve: {len(offsets)} HTTP requests over {args.shards} shards, "
        f"policy={args.policy.replace('-', '_')}",
        file=stream,
    )
    print(
        f"  exact={counts['exact']}  degraded={counts['degraded']}"
        f"  shed_429={counts['shed_429']}  shed_503={counts['shed_503']}"
        f"  deadline_504={counts['deadline_504']}",
        file=stream,
    )
    breakers = service_stats.get("breakers", {})
    print(
        f"  breakers: open={breakers.get('open', 0)} "
        f"half_open={breakers.get('half_open', 0)} "
        f"tripped={breakers.get('tripped', [])}",
        file=stream,
    )
    if fault_stats:
        print(f"  faults fired: {fired}", file=stream)
        for row in fault_stats:
            print(
                f"    {row['site']}:{row['kind']} — "
                f"{row['fires']}/{row['checks']} checks fired",
                file=stream,
            )
    else:
        print("  faults fired: 0 (no fault plan armed)", file=stream)
    if problems:
        for problem in problems[:10]:
            print(f"  VERIFY FAIL {problem}", file=sys.stderr)
        print(f"verification failed: {len(problems)} issue(s)", file=sys.stderr)
        return 1
    print(
        f"  verified {counts['exact'] + counts['degraded']} answers against "
        f"the sequential ground truth: all sound",
        file=stream,
    )
    return 0


def _cmd_run(args: argparse.Namespace, stream: TextIO) -> int:
    spec = args.faults if args.faults is not None else os.environ.get("REPRO_FAULTS", "")
    engine, points, normals, offsets = _build_engine(args)
    from ..core.query import ScalarProductQuery

    context = (
        _flt.injected(spec, seed=args.faults_seed)
        if spec.strip()
        else contextlib.nullcontext(_flt.active_plan())
    )
    outcomes = {"complete": 0, "recovered": 0, "degraded": 0, "raised": 0}
    completeness: list[float] = []
    retries = 0
    problems: list[str] = []
    with engine, context as plan:
        for qid, (normal, offset) in enumerate(zip(normals, offsets)):
            spq = ScalarProductQuery(normal, float(offset))
            try:
                answer = engine.query(normal, float(offset))
            except (ShardFailureError, DegradedAnswerError) as exc:
                outcomes["raised"] += 1
                if args.verify and args.policy.replace("-", "_") != "raise":
                    # Non-raise policies should only raise when *every*
                    # shard (and its recovery scan) failed.
                    if not isinstance(exc, DegradedAnswerError):
                        problems.append(f"query {qid}: unexpected {exc!r}")
                continue
            info = answer.degraded
            if info is None:
                outcomes["complete"] += 1
            elif info.is_complete:
                outcomes["recovered"] += 1
                retries += info.retries
            else:
                outcomes["degraded"] += 1
                completeness.append(info.completeness)
                retries += info.retries
            if args.verify:
                issue = _verify_answer(answer, spq, points)
                if issue is not None:
                    problems.append(f"query {qid}: {issue}")
        stats = plan.stats() if plan is not None else []
        fired = plan.fired_total() if plan is not None else 0

    total = sum(outcomes.values())
    print(
        f"chaos: {total} queries over {args.shards} shards, "
        f"policy={args.policy.replace('-', '_')}",
        file=stream,
    )
    print(
        f"  complete={outcomes['complete']}  recovered={outcomes['recovered']}"
        f"  degraded={outcomes['degraded']}  raised={outcomes['raised']}"
        f"  retries={retries}",
        file=stream,
    )
    if completeness:
        print(
            f"  degraded completeness: mean {np.mean(completeness):.3f}, "
            f"min {np.min(completeness):.3f}",
            file=stream,
        )
    if stats:
        print(f"  faults fired: {fired}", file=stream)
        for row in stats:
            print(
                f"    {row['site']}:{row['kind']} — "
                f"{row['fires']}/{row['checks']} checks fired",
                file=stream,
            )
    else:
        print("  faults fired: 0 (no fault plan armed)", file=stream)
    if args.verify:
        if problems:
            for problem in problems[:10]:
                print(f"  VERIFY FAIL {problem}", file=sys.stderr)
            print(f"verification failed: {len(problems)} issue(s)", file=sys.stderr)
            return 1
        print(f"  verified {total - outcomes['raised']} answers against "
              f"the sequential ground truth: all sound", file=stream)
    return 0


def run_from_args(args: argparse.Namespace, stream: TextIO | None = None) -> int:
    """Execute a chaos invocation from a parsed namespace; returns exit code."""
    stream = stream or sys.stdout
    try:
        if getattr(args, "serve", False):
            return _cmd_serve(args, stream)
        return _cmd_run(args, stream)
    except FaultSpecError as exc:
        print(f"error: bad fault spec: {exc}", file=sys.stderr)
        return 2
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1


def main(argv: Sequence[str] | None = None, stream: TextIO | None = None) -> int:
    """Standalone entry point (``python -m repro.reliability.cli``)."""
    try:
        args = build_parser().parse_args(argv)
    except SystemExit as exc:  # argparse uses 2 for usage errors already
        return int(exc.code or 0)
    return run_from_args(args, stream)


if __name__ == "__main__":  # pragma: no cover - exercised via repro.cli tests
    sys.exit(main())
