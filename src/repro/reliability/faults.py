"""Deterministic, seedable fault injection for chaos testing.

A :class:`FaultPlan` is a list of :class:`FaultRule` s keyed on *site*
names — stable strings naming the places production code volunteers to
fail (``shard.query``, ``shard.scan``, ``shard.maintenance``,
``persistence.write``, ``store.get_features``, and the serving layer's
``serve.accept``, ``serve.dispatch``, ``serve.flush``).  Each rule
describes one fault *kind*:

``error``
    Raise :class:`~repro.exceptions.InjectedFaultError` at the site.
``stall``
    Sleep ``ms`` milliseconds at the site (exercises deadlines).
``torn``
    Truncate the next write at the site to ``frac`` of its bytes
    (consulted only by the crash-safe writers in
    :mod:`repro.reliability.atomic` — simulates a legacy non-atomic
    write interrupted mid-flight).

Arming follows the ``REPRO_SANITIZE`` / ``REPRO_OBS`` guard discipline:
the hot paths read one module global and branch::

    from ..reliability import faults as _flt
    ...
    if _flt.ARMED:
        _flt.check("shard.query", shard=shard, kind=kind)

so the disarmed path — the default — costs a single attribute read.
``REPRO_FAULTS=<spec>`` arms a plan from process start (seeded by
``REPRO_FAULTS_SEED``); :func:`arm` / :func:`disarm` / :func:`injected`
arm programmatically.

Spec grammar (full reference in ``docs/reliability.md``)::

    spec  := rule (";" rule)*
    rule  := site ":" kind (":" key "=" value)*
    site  := dotted name, optionally ending in "*" (prefix glob)
    kind  := "error" | "stall" | "torn"

Known options: ``p`` (fire probability, default 1), ``every`` (fire on
every n-th matching check), ``times`` (max fires), ``after`` (skip the
first n matching checks), ``ms`` (stall duration), ``frac`` (torn-write
fraction).  Any *other* ``key=value`` pair is an attribute filter: the
rule only matches checks whose ``attrs[key]`` stringifies to ``value``
(e.g. ``shard=2`` or ``kind=topk``).  Firing decisions are pure
functions of the plan seed and per-rule check counters, so a seeded
chaos run replays bit-identically.
"""

from __future__ import annotations

import os
import random
import threading
import time
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Iterator, Mapping, Sequence

from ..exceptions import FaultSpecError, InjectedFaultError

__all__ = [
    "ARMED",
    "KINDS",
    "FaultRule",
    "FaultPlan",
    "arm",
    "disarm",
    "is_armed",
    "active_plan",
    "injected",
    "check",
    "torn_fraction",
]

#: Supported fault kinds.
KINDS = ("error", "stall", "torn")

#: Whether a fault plan is armed.  Hot paths read this directly and only
#: call :func:`check` when it is True; mutated via :func:`arm`/:func:`disarm`.
ARMED: bool = False

#: Monotonic arming generation, bumped by every :func:`arm` / :func:`disarm`.
#: Forked worker pools snapshot the armed plan at fork time; comparing the
#: generation they forked under against this value tells them the plan
#: changed and the workers must be reforked (see ``repro.parallel.process``).
GENERATION: int = 0

_FLOAT_OPTIONS = ("p", "ms", "frac")
_INT_OPTIONS = ("every", "times", "after", "seed")


def _record_fire(site: str, kind: str) -> None:
    """Count one injected fault in the obs registry (lazy import: this
    module must stay importable before :mod:`repro.obs` finishes
    initializing, and the disarmed path never reaches here)."""
    from ..obs import metrics as _om
    from ..obs import runtime as _ort

    if _ort.ENABLED:
        _om.faults_injected_total().inc(site=site, kind=kind)


@dataclass(frozen=True)
class FaultRule:
    """One deterministic injection rule of a :class:`FaultPlan`.

    Attributes
    ----------
    site:
        Site name to match, exact or with a trailing ``*`` prefix glob
        (``shard.*`` matches ``shard.query`` and ``shard.scan``).
    kind:
        ``error`` / ``stall`` / ``torn`` (see module docstring).
    p / every / times / after:
        Firing schedule over the rule's matching checks (see module
        docstring); ``0`` disables ``every``/``times``/``after``.
    ms / frac:
        Stall duration (milliseconds) and torn-write byte fraction.
    seed:
        Per-rule RNG seed for the ``p`` draw; ``None`` derives one from
        the plan seed and the rule's position.
    filters:
        Attribute equality filters — every ``key`` must be present in
        the check's attributes and stringify to ``value``.
    """

    site: str
    kind: str
    p: float = 1.0
    every: int = 0
    times: int = 0
    after: int = 0
    ms: float = 10.0
    frac: float = 0.5
    seed: int | None = None
    filters: Mapping[str, str] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if not self.site:
            raise FaultSpecError("fault rule needs a non-empty site name")
        if self.kind not in KINDS:
            raise FaultSpecError(
                f"unknown fault kind {self.kind!r}; choose from {KINDS}"
            )
        if not 0.0 <= self.p <= 1.0:
            raise FaultSpecError(f"fault probability p={self.p!r} outside [0, 1]")
        if self.every < 0 or self.times < 0 or self.after < 0:
            raise FaultSpecError("every/times/after must be non-negative")
        if self.ms < 0.0:
            raise FaultSpecError(f"stall duration ms={self.ms!r} must be >= 0")
        if not 0.0 <= self.frac < 1.0:
            raise FaultSpecError(f"torn fraction frac={self.frac!r} outside [0, 1)")
        object.__setattr__(self, "filters", dict(self.filters))

    def matches(self, site: str, attrs: Mapping[str, object]) -> bool:
        """Whether this rule applies to a check at ``site`` with ``attrs``."""
        if self.site.endswith("*"):
            if not site.startswith(self.site[:-1]):
                return False
        elif site != self.site:
            return False
        for key, expected in self.filters.items():
            if key not in attrs or str(attrs[key]) != expected:
                return False
        return True

    @classmethod
    def parse(cls, text: str) -> "FaultRule":
        """Parse one ``site:kind[:key=value...]`` rule fragment."""
        parts = [part.strip() for part in text.split(":")]
        if len(parts) < 2 or not parts[0] or not parts[1]:
            raise FaultSpecError(
                f"fault rule {text!r} must look like 'site:kind[:key=value...]'"
            )
        site, kind = parts[0], parts[1]
        options: dict[str, object] = {}
        filters: dict[str, str] = {}
        for fragment in parts[2:]:
            if "=" not in fragment:
                raise FaultSpecError(
                    f"fault option {fragment!r} in rule {text!r} must be key=value"
                )
            key, value = (piece.strip() for piece in fragment.split("=", 1))
            try:
                if key in _FLOAT_OPTIONS:
                    options[key] = float(value)
                elif key in _INT_OPTIONS:
                    options[key] = int(value)
                else:
                    filters[key] = value
            except ValueError as exc:
                raise FaultSpecError(
                    f"bad value for fault option {key!r} in rule {text!r}: {value!r}"
                ) from exc
        return cls(site=site, kind=kind, filters=filters, **options)  # type: ignore[arg-type]


class _RuleState:
    """Mutable firing counters of one rule (plan-lock protected)."""

    __slots__ = ("checks", "fires", "rng")

    def __init__(self, rng: random.Random) -> None:
        self.checks = 0
        self.fires = 0
        self.rng = rng


class FaultPlan:
    """An armed set of :class:`FaultRule` s with deterministic firing state.

    Thread-safe: the sharded engine checks sites from pool workers, so
    all counter updates happen under one lock.  ``seed`` fixes every
    probabilistic draw; counter-based rules (``every``/``times``/
    ``after``) are deterministic regardless.
    """

    def __init__(self, rules: Sequence[FaultRule], seed: int = 0) -> None:
        self._rules = tuple(rules)
        self._seed = int(seed)
        self._lock = threading.Lock()
        self._state = [
            _RuleState(
                random.Random(
                    rule.seed
                    if rule.seed is not None
                    else (self._seed << 16) ^ (index + 1)
                )
            )
            for index, rule in enumerate(self._rules)
        ]

    @classmethod
    def parse(cls, spec: str, seed: int = 0) -> "FaultPlan":
        """Build a plan from a ``REPRO_FAULTS``-style spec string."""
        rules = [
            FaultRule.parse(fragment)
            for fragment in spec.split(";")
            if fragment.strip()
        ]
        if not rules:
            raise FaultSpecError(f"fault spec {spec!r} contains no rules")
        return cls(rules, seed=seed)

    # ------------------------------------------------------------------ #

    @property
    def rules(self) -> tuple[FaultRule, ...]:
        """The plan's rules, in declaration order."""
        return self._rules

    @property
    def seed(self) -> int:
        """The plan-level seed for probabilistic rules."""
        return self._seed

    def reset(self) -> None:
        """Rewind every rule's counters and RNG to the armed-fresh state."""
        with self._lock:
            for index, rule in enumerate(self._rules):
                self._state[index] = _RuleState(
                    random.Random(
                        rule.seed
                        if rule.seed is not None
                        else (self._seed << 16) ^ (index + 1)
                    )
                )

    def stats(self) -> list[dict[str, object]]:
        """Per-rule check/fire counters (the chaos CLI's survival report)."""
        with self._lock:
            return [
                {
                    "site": rule.site,
                    "kind": rule.kind,
                    "checks": state.checks,
                    "fires": state.fires,
                }
                for rule, state in zip(self._rules, self._state)
            ]

    def fired_total(self) -> int:
        """Total fault firings across all rules since arming/reset."""
        with self._lock:
            return sum(state.fires for state in self._state)

    # ------------------------------------------------------------------ #

    def _should_fire(self, index: int, rule: FaultRule) -> bool:
        """Advance rule counters under the lock; True when the rule fires."""
        with self._lock:
            state = self._state[index]
            state.checks += 1
            effective = state.checks - rule.after
            if effective <= 0:
                return False
            if rule.times and state.fires >= rule.times:
                return False
            if rule.every and effective % rule.every != 0:
                return False
            if rule.p < 1.0 and state.rng.random() >= rule.p:
                return False
            state.fires += 1
            return True

    def check(self, site: str, attrs: Mapping[str, object]) -> None:
        """Evaluate ``error``/``stall`` rules for a check at ``site``.

        Raises :class:`InjectedFaultError` when an ``error`` rule fires;
        sleeps when a ``stall`` rule fires (then keeps evaluating, so a
        stall can precede an error).  ``torn`` rules are consulted only
        by :meth:`torn_fraction`.
        """
        for index, rule in enumerate(self._rules):
            if rule.kind == "torn" or not rule.matches(site, attrs):
                continue
            if not self._should_fire(index, rule):
                continue
            _record_fire(site, rule.kind)
            if rule.kind == "stall":
                time.sleep(rule.ms / 1000.0)
                continue
            detail = " ".join(f"{k}={v}" for k, v in sorted(attrs.items()))
            raise InjectedFaultError(
                f"injected fault at {site}" + (f" ({detail})" if detail else ""),
                site=site,
            )

    def torn_fraction(self, site: str, attrs: Mapping[str, object]) -> float | None:
        """Byte fraction of the next write to keep, or None for intact."""
        for index, rule in enumerate(self._rules):
            if rule.kind != "torn" or not rule.matches(site, attrs):
                continue
            if self._should_fire(index, rule):
                _record_fire(site, rule.kind)
                return rule.frac
        return None


# --------------------------------------------------------------------- #
# Module-level arming (mirrors repro.obs.runtime)
# --------------------------------------------------------------------- #

_PLAN: FaultPlan | None = None


def arm(plan: FaultPlan | str, seed: int | None = None) -> FaultPlan:
    """Arm ``plan`` (a :class:`FaultPlan` or a spec string) process-wide."""
    global ARMED, _PLAN, GENERATION
    if isinstance(plan, str):
        plan = FaultPlan.parse(plan, seed=0 if seed is None else seed)
    elif seed is not None:
        raise FaultSpecError("seed= only applies when arming from a spec string")
    _PLAN = plan
    ARMED = True
    GENERATION += 1
    return plan


def disarm() -> None:
    """Return fault injection to its zero-cost no-op mode."""
    global ARMED, _PLAN, GENERATION
    ARMED = False
    _PLAN = None
    GENERATION += 1


def is_armed() -> bool:
    """Whether a fault plan is currently armed."""
    return ARMED


def active_plan() -> FaultPlan | None:
    """The armed plan, or None when disarmed."""
    return _PLAN


@contextmanager
def injected(plan: FaultPlan | str, seed: int | None = None) -> Iterator[FaultPlan]:
    """Context manager: arm ``plan`` inside the block, restore after.

    Restores whatever plan (or disarmed state) was active before, so
    tests can nest scoped fault windows under an environment-armed plan.
    """
    previous_plan, previously_armed = _PLAN, ARMED
    active = arm(plan, seed=seed)
    try:
        yield active
    finally:
        if previously_armed and previous_plan is not None:
            arm(previous_plan)
        else:
            disarm()


def check(site: str, **attrs: object) -> None:
    """Hot-path hook: evaluate the armed plan at ``site`` (no-op disarmed).

    Callers guard with ``if faults.ARMED`` themselves so the disarmed
    path costs one attribute read; the re-check here makes direct calls
    safe too.
    """
    plan = _PLAN  # repro: noqa(REP012) — worker threads share the armed plan; process pools must arm via REPRO_FAULTS
    if plan is not None:
        plan.check(site, attrs)


def torn_fraction(site: str, **attrs: object) -> float | None:
    """Hot-path hook for writers: torn-write fraction, or None (intact)."""
    plan = _PLAN
    if plan is None:
        return None
    return plan.torn_fraction(site, attrs)


# Environment arming: REPRO_FAULTS=<spec> [REPRO_FAULTS_SEED=<int>].
_ENV_SPEC = os.environ.get("REPRO_FAULTS", "").strip()
if _ENV_SPEC:
    try:
        _env_seed = int(os.environ.get("REPRO_FAULTS_SEED", "0").strip() or "0")
    except ValueError as _exc:
        raise FaultSpecError(
            f"REPRO_FAULTS_SEED must be an integer, got "
            f"{os.environ.get('REPRO_FAULTS_SEED')!r}"
        ) from _exc
    arm(_ENV_SPEC, seed=_env_seed)
