"""Fault tolerance: fault injection, degraded answers, crash-safe writes.

Three pieces (see ``docs/reliability.md``):

* :mod:`repro.reliability.faults` — deterministic, seedable fault
  injection (``REPRO_FAULTS``), zero overhead while disarmed.
* :mod:`repro.reliability.degraded` — the :class:`FailurePolicy` /
  :class:`DegradedInfo` contract the hardened sharded engine uses to
  return *partial but honest* answers instead of aborting.
* :mod:`repro.reliability.atomic` — atomic temp-file + ``os.replace``
  writers and SHA-256 array checksums backing persistence format v2.
"""

from __future__ import annotations

from .atomic import (
    array_checksum,
    atomic_write_bytes,
    atomic_write_text,
    atomic_writer,
    checksum_manifest,
    verify_checksums,
)
from .degraded import DegradedInfo, FailurePolicy, default_policy
from .faults import FaultPlan, FaultRule, arm, disarm, injected, is_armed

__all__ = [
    "FaultPlan",
    "FaultRule",
    "arm",
    "disarm",
    "injected",
    "is_armed",
    "FailurePolicy",
    "DegradedInfo",
    "default_policy",
    "array_checksum",
    "checksum_manifest",
    "verify_checksums",
    "atomic_writer",
    "atomic_write_bytes",
    "atomic_write_text",
]
