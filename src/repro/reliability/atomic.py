"""Crash-safe persistence primitives: atomic writes and array checksums.

Every persisted artifact in the library — index ``.npz`` archives,
workload recorder ``.npz`` archives, tuning-plan JSON, and the obs
state file — is written through :func:`atomic_writer`: the payload goes
to a temp file in the *target directory* (same filesystem, so the final
``os.replace`` is atomic), is flushed and fsynced, then renamed over
the destination.  A crash mid-write leaves either the previous intact
artifact or a stray ``*.tmp`` — never a torn destination file.

Integrity is layered on top with :func:`array_checksum`: persistence v2
formats embed a manifest of per-array SHA-256 digests (over
``dtype|shape|bytes``) that loaders verify, so a bit flip or a
truncated archive is reported as a precise
:class:`~repro.exceptions.PersistenceError` instead of a downstream
numeric mystery.

The fault-injection site ``persistence.write`` (kind ``torn``) hooks
:func:`atomic_writer`: when an armed torn rule fires, the temp file is
truncated to ``frac`` of its bytes *before* the replace, simulating the
legacy non-atomic writer dying mid-flight — this is how the test suite
proves loaders detect torn archives.  ``error``/``stall`` rules at the
same site fire before any byte is written.
"""

from __future__ import annotations

import hashlib
import os
import tempfile
from contextlib import contextmanager
from pathlib import Path
from typing import Iterator, Mapping

import numpy as np

from ..exceptions import PersistenceError
from . import faults as _flt

__all__ = [
    "WRITE_SITE",
    "array_checksum",
    "checksum_manifest",
    "verify_checksums",
    "atomic_writer",
    "atomic_write_bytes",
    "atomic_write_text",
]

#: Fault-injection site name consulted by every atomic write.
WRITE_SITE = "persistence.write"


def array_checksum(array: np.ndarray) -> str:
    """SHA-256 hex digest over an array's dtype, shape, and raw bytes.

    Hashing ``dtype|shape`` alongside the buffer means a reinterpreted
    or reshaped array fails verification even when its bytes survive.
    """
    arr = np.ascontiguousarray(array)
    digest = hashlib.sha256()
    digest.update(str(arr.dtype).encode("utf-8"))
    digest.update(b"|")
    digest.update(repr(arr.shape).encode("utf-8"))
    digest.update(b"|")
    digest.update(arr.tobytes())
    return digest.hexdigest()


def checksum_manifest(arrays: Mapping[str, np.ndarray]) -> dict[str, str]:
    """Per-array SHA-256 manifest embedded in v2 archive metadata."""
    return {
        name: array_checksum(np.asarray(array)) for name, array in arrays.items()
    }


def verify_checksums(
    arrays: Mapping[str, np.ndarray],
    manifest: Mapping[str, str],
    *,
    artifact: str,
    path: str | Path,
) -> None:
    """Verify loaded ``arrays`` against a v2 checksum ``manifest``.

    Raises a precise :class:`~repro.exceptions.PersistenceError` naming
    the artifact, the damaged array, and both digests; each detection is
    counted in ``repro_reliability_checksum_failures_total``.
    """
    unlisted = sorted(set(arrays) - set(manifest))
    if unlisted:
        _record_checksum_failure(artifact)
        raise PersistenceError(
            f"{artifact} archive {path}: array(s) {unlisted} have no checksum "
            f"manifest entry — the metadata blob was tampered with or written "
            f"by a corrupted producer"
        )
    for name in sorted(manifest):
        expected = manifest[name]
        if name not in arrays:
            _record_checksum_failure(artifact)
            raise PersistenceError(
                f"{artifact} archive {path} is missing array {name!r} listed "
                f"in its checksum manifest (truncated or torn write?)"
            )
        actual = array_checksum(np.asarray(arrays[name]))
        if actual != expected:
            _record_checksum_failure(artifact)
            raise PersistenceError(
                f"{artifact} archive {path}: checksum mismatch for array "
                f"{name!r} (manifest {expected[:12]}…, file {actual[:12]}…) — "
                f"the archive is corrupted"
            )


def _record_checksum_failure(artifact: str) -> None:
    """Count one integrity failure (lazy obs import, see :func:`_record_write`)."""
    from ..obs import metrics as _om
    from ..obs import runtime as _ort

    if _ort.ENABLED:
        _om.checksum_failures_total().inc(artifact=artifact)


def _apply_torn(tmp_path: str, frac: float) -> None:
    """Truncate the finished temp file to ``frac`` of its bytes."""
    size = os.path.getsize(tmp_path)
    keep = int(size * frac)
    with open(tmp_path, "r+b") as handle:
        handle.truncate(keep)


@contextmanager
def atomic_writer(path: str | Path, *, artifact: str = "artifact") -> Iterator[Path]:
    """Yield a temp path to write; atomically replace ``path`` on success.

    Usage::

        with atomic_writer(target, artifact="index") as tmp:
            np.savez_compressed(tmp, **arrays)

    The temp file lives in ``path``'s directory so the final
    ``os.replace`` never crosses filesystems.  On any exception from the
    body the temp file is removed and the destination is untouched.  The
    ``artifact`` label feeds fault-rule attribute filters
    (``persistence.write:torn:artifact=index``).
    """
    target = Path(path)
    target.parent.mkdir(parents=True, exist_ok=True)
    if _flt.ARMED:
        _flt.check(WRITE_SITE, artifact=artifact, path=str(target))
    fd, tmp_name = tempfile.mkstemp(
        prefix=target.name + ".", suffix=".tmp", dir=str(target.parent)
    )
    os.close(fd)
    try:
        yield Path(tmp_name)
        # NB: np.savez* appends ".npz" when handed a *name* without one —
        # callers must write through an open handle of the yielded path
        # (``with open(tmp, "wb") as fh: np.savez_compressed(fh, ...)``).
        if _flt.ARMED:
            frac = _flt.torn_fraction(WRITE_SITE, artifact=artifact, path=str(target))
            if frac is not None:
                _apply_torn(tmp_name, frac)
        fd = os.open(tmp_name, os.O_RDWR)
        try:
            os.fsync(fd)
        finally:
            os.close(fd)
        os.replace(tmp_name, target)
    except BaseException:  # repro: noqa(REP005) — cleanup-and-reraise of the temp file
        try:
            os.unlink(tmp_name)
        except OSError:
            pass
        raise
    _record_write(artifact)


def atomic_write_bytes(path: str | Path, payload: bytes, *, artifact: str = "artifact") -> Path:
    """Atomically write ``payload`` to ``path``; returns the target path."""
    target = Path(path)
    with atomic_writer(target, artifact=artifact) as tmp:
        tmp.write_bytes(payload)
    return target


def atomic_write_text(
    path: str | Path,
    payload: str,
    *,
    artifact: str = "artifact",
    encoding: str = "utf-8",
) -> Path:
    """Atomically write ``payload`` text to ``path``; returns the target."""
    return atomic_write_bytes(path, payload.encode(encoding), artifact=artifact)


def _record_write(artifact: str) -> None:
    """Count one committed atomic write (lazy obs import: this module is
    imported by :mod:`repro.obs.exporters`, so a top-level obs import
    would be circular)."""
    from ..obs import metrics as _om
    from ..obs import runtime as _ort

    if _ort.ENABLED:
        _om.atomic_writes_total().inc(artifact=artifact)
