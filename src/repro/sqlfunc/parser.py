"""Recursive-descent parser for the SQL-function expression language.

Grammar (standard arithmetic precedence, left associative)::

    expression := term (("+" | "-") term)*
    term       := unary (("*" | "/") unary)*
    unary      := "-" unary | atom
    atom       := NUMBER | IDENT | "?" | "(" expression ")"

Each ``?`` placeholder is assigned the next positional parameter index in
left-to-right source order.
"""

from __future__ import annotations

from ..exceptions import ExpressionSyntaxError
from .ast import BinOp, Column, Expr, Neg, Number, Param
from .lexer import Token, TokenType, tokenize

__all__ = ["parse"]


class _Parser:
    def __init__(self, tokens: list[Token]) -> None:
        self._tokens = tokens
        self._position = 0
        self._next_param = 0

    def _peek(self) -> Token:
        return self._tokens[self._position]

    def _advance(self) -> Token:
        token = self._tokens[self._position]
        self._position += 1
        return token

    def _expect(self, token_type: TokenType) -> Token:
        token = self._peek()
        if token.type is not token_type:
            raise ExpressionSyntaxError(
                f"expected {token_type.value!r} at position {token.position}, "
                f"found {token.text or 'end of input'!r}"
            )
        return self._advance()

    def parse(self) -> Expr:
        expr = self._expression()
        trailing = self._peek()
        if trailing.type is not TokenType.EOF:
            raise ExpressionSyntaxError(
                f"unexpected trailing input {trailing.text!r} at position {trailing.position}"
            )
        return expr

    def _expression(self) -> Expr:
        expr = self._term()
        while self._peek().type in (TokenType.PLUS, TokenType.MINUS):
            op = self._advance()
            right = self._term()
            expr = BinOp("+" if op.type is TokenType.PLUS else "-", expr, right)
        return expr

    def _term(self) -> Expr:
        expr = self._unary()
        while self._peek().type in (TokenType.STAR, TokenType.SLASH):
            op = self._advance()
            right = self._unary()
            expr = BinOp("*" if op.type is TokenType.STAR else "/", expr, right)
        return expr

    def _unary(self) -> Expr:
        if self._peek().type is TokenType.MINUS:
            self._advance()
            return Neg(self._unary())
        return self._atom()

    def _atom(self) -> Expr:
        token = self._peek()
        if token.type is TokenType.NUMBER:
            self._advance()
            return Number(token.value)
        if token.type is TokenType.IDENT:
            self._advance()
            return Column(token.text)
        if token.type is TokenType.PARAM:
            self._advance()
            param = Param(self._next_param)
            self._next_param += 1
            return param
        if token.type is TokenType.LPAREN:
            self._advance()
            expr = self._expression()
            self._expect(TokenType.RPAREN)
            return expr
        raise ExpressionSyntaxError(
            f"expected a value at position {token.position}, "
            f"found {token.text or 'end of input'!r}"
        )


def parse(text: str) -> Expr:
    """Parse ``text`` into an expression AST.

    >>> str(parse("active_power - ? * voltage * current"))
    '(active_power - ((? * voltage) * current))'
    """
    return _Parser(tokenize(text)).parse()
