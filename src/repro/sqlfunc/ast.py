"""Expression AST for the SQL-function layer.

Expressions are arithmetic over table columns, numeric literals, and
positional query parameters (``?``).  Evaluation is fully vectorized: a
column environment maps names to numpy arrays and parameters are bound to
scalars at query time.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping, Sequence

import numpy as np

from ..exceptions import ExpressionError, UnknownColumnError

__all__ = ["Expr", "Column", "Number", "Param", "BinOp", "Neg"]

_OPS = {
    "+": np.add,
    "-": np.subtract,
    "*": np.multiply,
    "/": np.divide,
}


class Expr:
    """Base class of all expression nodes."""

    def evaluate(
        self,
        env: Mapping[str, np.ndarray],
        params: Sequence[float] = (),
    ) -> np.ndarray | float:
        """Evaluate against a column environment and bound parameters."""
        raise NotImplementedError

    def columns(self) -> frozenset[str]:
        """Names of all table columns referenced."""
        raise NotImplementedError

    def params(self) -> frozenset[int]:
        """Positions of all query parameters referenced."""
        raise NotImplementedError

    def is_param_free(self) -> bool:
        """Whether the expression contains no query parameter."""
        return not self.params()

    # Operator sugar so compiler code can combine nodes naturally.
    def __add__(self, other: "Expr") -> "Expr":
        return BinOp("+", self, other)

    def __sub__(self, other: "Expr") -> "Expr":
        return BinOp("-", self, other)

    def __mul__(self, other: "Expr") -> "Expr":
        return BinOp("*", self, other)

    def __truediv__(self, other: "Expr") -> "Expr":
        return BinOp("/", self, other)

    def __neg__(self) -> "Expr":
        return Neg(self)


@dataclass(frozen=True)
class Column(Expr):
    """A reference to a table column by name."""

    name: str

    def evaluate(self, env, params=()):
        """Look the column up in ``env`` (vectorized: values may be arrays)."""
        try:
            return env[self.name]
        except KeyError:
            raise UnknownColumnError(self.name) from None

    def columns(self):
        """The singleton set of this column's name."""
        return frozenset({self.name})

    def params(self):
        """Columns bind no placeholders."""
        return frozenset()

    def __str__(self) -> str:
        return self.name


@dataclass(frozen=True)
class Number(Expr):
    """A numeric literal."""

    value: float

    def evaluate(self, env, params=()):
        """The literal's value, as a float."""
        return float(self.value)

    def columns(self):
        """Literals reference no columns."""
        return frozenset()

    def params(self):
        """Literals bind no placeholders."""
        return frozenset()

    def __str__(self) -> str:
        return repr(float(self.value))


@dataclass(frozen=True)
class Param(Expr):
    """A positional query parameter (the n-th ``?`` in the expression)."""

    position: int

    def evaluate(self, env, params=()):
        """The bound value of this placeholder; raises when unbound."""
        if self.position >= len(params):
            raise ExpressionError(
                f"parameter ?{self.position} unbound: only {len(params)} value(s) given"
            )
        return float(params[self.position])

    def columns(self):
        """Placeholders reference no columns."""
        return frozenset()

    def params(self):
        """The singleton set of this placeholder's position."""
        return frozenset({self.position})

    def __str__(self) -> str:
        # Printed as the placeholder itself so printed expressions reparse;
        # positions are implicit in left-to-right occurrence order.
        return "?"


@dataclass(frozen=True)
class BinOp(Expr):
    """A binary arithmetic operation (+, -, *, /)."""

    op: str
    left: Expr
    right: Expr

    def __post_init__(self) -> None:
        if self.op not in _OPS:
            raise ExpressionError(f"unknown operator {self.op!r}")

    def evaluate(self, env, params=()):
        """Apply the operator to both evaluated operands."""
        return _OPS[self.op](self.left.evaluate(env, params), self.right.evaluate(env, params))

    def columns(self):
        """Union of both operands' column references."""
        return self.left.columns() | self.right.columns()

    def params(self):
        """Union of both operands' placeholder positions."""
        return self.left.params() | self.right.params()

    def __str__(self) -> str:
        return f"({self.left} {self.op} {self.right})"


@dataclass(frozen=True)
class Neg(Expr):
    """Unary negation."""

    operand: Expr

    def evaluate(self, env, params=()):
        """The evaluated operand, negated."""
        return -self.operand.evaluate(env, params)

    def columns(self):
        """The operand's column references."""
        return self.operand.columns()

    def params(self):
        """The operand's placeholder positions."""
        return self.operand.params()

    def __str__(self) -> str:
        return f"(-{self.operand})"
