"""Tokenizer for the SQL-function expression language.

Grammar tokens: numbers (integer / decimal / scientific), identifiers
(column names, ``[A-Za-z_][A-Za-z0-9_]*``), the parameter placeholder
``?``, arithmetic operators ``+ - * /``, and parentheses.
"""

from __future__ import annotations

import enum
import re
from dataclasses import dataclass
from typing import Iterator

from ..exceptions import ExpressionSyntaxError

__all__ = ["TokenType", "Token", "tokenize"]


class TokenType(enum.Enum):
    """Lexical token categories."""

    NUMBER = "number"
    IDENT = "ident"
    PARAM = "param"
    PLUS = "+"
    MINUS = "-"
    STAR = "*"
    SLASH = "/"
    LPAREN = "("
    RPAREN = ")"
    EOF = "eof"


@dataclass(frozen=True)
class Token:
    """One lexical token with its source position (for error messages)."""

    type: TokenType
    text: str
    position: int

    @property
    def value(self) -> float:
        """Numeric value for NUMBER tokens."""
        if self.type is not TokenType.NUMBER:
            raise ExpressionSyntaxError(f"token {self.text!r} is not a number")
        return float(self.text)


_NUMBER_RE = re.compile(r"\d+(\.\d*)?([eE][+-]?\d+)?|\.\d+([eE][+-]?\d+)?")
_IDENT_RE = re.compile(r"[A-Za-z_][A-Za-z0-9_]*")
_SINGLE_CHAR = {
    "+": TokenType.PLUS,
    "-": TokenType.MINUS,
    "*": TokenType.STAR,
    "/": TokenType.SLASH,
    "(": TokenType.LPAREN,
    ")": TokenType.RPAREN,
    "?": TokenType.PARAM,
}


def tokenize(text: str) -> list[Token]:
    """Tokenize ``text``, ending with an EOF token.

    Raises
    ------
    ExpressionSyntaxError
        On any character outside the language.
    """
    return list(_scan(text))


def _scan(text: str) -> Iterator[Token]:
    position = 0
    length = len(text)
    while position < length:
        char = text[position]
        if char.isspace():
            position += 1
            continue
        if char in _SINGLE_CHAR:
            yield Token(_SINGLE_CHAR[char], char, position)
            position += 1
            continue
        number = _NUMBER_RE.match(text, position)
        if number:
            yield Token(TokenType.NUMBER, number.group(), position)
            position = number.end()
            continue
        ident = _IDENT_RE.match(text, position)
        if ident:
            yield Token(TokenType.IDENT, ident.group(), position)
            position = ident.end()
            continue
        raise ExpressionSyntaxError(
            f"unexpected character {char!r} at position {position} in {text!r}"
        )
    yield Token(TokenType.EOF, "", length)
