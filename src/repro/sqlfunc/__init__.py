"""Mini SQL-function layer (Example 1: indexing parameterised expressions).

Oracle supports function-based indexes over multiple attributes, but — as
the paper points out — not functions that mix *known* column expressions
with *unknown* query parameters.  This subpackage closes that gap on top of
the Planar index:

* an arithmetic expression language over table columns with ``?``
  placeholders for query-time parameters (lexer / parser / AST),
* a compiler that decomposes any parameter-linear expression into scalar
  product form ``base(x) + sum_j coeff_j(x) * ?_j`` — the functional parts
  become the indexed ``phi`` components and the parameters become the query
  normal, and
* a :class:`Table` with ``create_function_index`` mirroring the paper's
  ``CREATE FUNCTION Critical_Consume`` example.
"""

from .ast import BinOp, Column, Expr, Neg, Number, Param
from .compile import ScalarProductForm, compile_expression
from .lexer import Token, TokenType, tokenize
from .parser import parse
from .table import FunctionIndexHandle, Table

__all__ = [
    "BinOp",
    "Column",
    "Expr",
    "FunctionIndexHandle",
    "Neg",
    "Number",
    "Param",
    "ScalarProductForm",
    "Table",
    "Token",
    "TokenType",
    "compile_expression",
    "parse",
    "tokenize",
]
