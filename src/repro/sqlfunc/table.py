"""A tiny relational layer with Planar function indexes (Example 1).

:class:`Table` stores named numeric columns.  ``create_function_index``
compiles a parameterised expression into scalar product form, materialises
its ``phi`` components, and builds a :class:`~repro.core.FunctionIndex`
over them — the analogue of::

    CREATE FUNCTION Critical_Consume (INPUT double threshold ...)
    WHERE active_power - threshold * voltage * current <= 0

Row appends and in-place updates propagate to every function index
registered on the table, exercising the paper's dynamic-maintenance path
(Section 4.4).
"""

from __future__ import annotations

from typing import Mapping, Sequence

import numpy as np

from .._util import as_1d_float
from ..core.domains import ParameterDomain, QueryModel
from ..core.function_index import FunctionIndex, QueryAnswer
from ..core.phi import identity_map
from ..core.query import Comparison
from ..core.selection import SelectionStrategy
from ..core.topk import TopKResult
from ..exceptions import DimensionMismatchError, UnknownColumnError
from .compile import ScalarProductForm, compile_expression

__all__ = ["Table", "FunctionIndexHandle"]


class Table:
    """An in-memory table of named float64 columns."""

    def __init__(self, columns: Mapping[str, np.ndarray]) -> None:
        if not columns:
            raise ValueError("a table needs at least one column")
        self._columns: dict[str, np.ndarray] = {}
        length: int | None = None
        for name, values in columns.items():
            arr = as_1d_float(values, f"column {name!r}")
            if length is None:
                length = arr.size
            elif arr.size != length:
                raise DimensionMismatchError(
                    f"column {name!r} has {arr.size} rows, expected {length}"
                )
            self._columns[str(name)] = arr.copy()
        self._handles: list[FunctionIndexHandle] = []

    # ------------------------------------------------------------------ #

    def __len__(self) -> int:
        return int(next(iter(self._columns.values())).size)

    def __contains__(self, name: str) -> bool:
        return name in self._columns

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Table(n={len(self)}, columns={self.column_names})"

    @property
    def column_names(self) -> tuple[str, ...]:
        """Column names in insertion order."""
        return tuple(self._columns)

    def column(self, name: str) -> np.ndarray:
        """One column as a read-only view."""
        try:
            view = self._columns[name].view()
        except KeyError:
            raise UnknownColumnError(name) from None
        view.setflags(write=False)
        return view

    def env(self) -> dict[str, np.ndarray]:
        """Column environment for expression evaluation."""
        return dict(self._columns)

    # ------------------------------------------------------------------ #
    # Direct (scan) evaluation
    # ------------------------------------------------------------------ #

    def filter(
        self,
        expression: str,
        params: Sequence[float] = (),
        op: Comparison | str = Comparison.LE,
        rhs: float = 0.0,
    ) -> np.ndarray:
        """Row indices where ``expression(params) OP rhs`` — sequential scan."""
        form = compile_expression(expression)
        self._check_columns(form)
        values = form.evaluate(self.env(), params)
        values = np.broadcast_to(values, len(self))
        mask = Comparison.parse(op).evaluate(values, float(rhs))
        return np.nonzero(mask)[0].astype(np.int64)

    # ------------------------------------------------------------------ #
    # Function indexes
    # ------------------------------------------------------------------ #

    def _check_columns(self, form: ScalarProductForm) -> None:
        missing = sorted(form.columns() - set(self._columns))
        if missing:
            raise UnknownColumnError(missing[0])

    def create_function_index(
        self,
        expression: str,
        param_domains: Sequence[ParameterDomain],
        rhs: float = 0.0,
        n_indices: int = 10,
        strategy: SelectionStrategy | str = SelectionStrategy.MIN_STRETCH,
        rng: np.random.Generator | int | None = None,
    ) -> "FunctionIndexHandle":
        """Compile ``expression`` and build a Planar function index for it.

        ``param_domains`` give the anticipated domain of each ``?`` in
        source order (Section 4.1); they drive octant derivation and index
        normal sampling.  The handle answers ``expression OP rhs`` for any
        comparison ``OP`` and parameter binding.
        """
        form = compile_expression(expression)
        self._check_columns(form)
        if len(param_domains) != form.n_params:
            raise DimensionMismatchError(
                f"expression has {form.n_params} parameter(s), "
                f"got {len(param_domains)} domain(s)"
            )
        domains = list(param_domains)
        if form.has_base:
            domains = [ParameterDomain(values=[1.0]), *domains]
        model = QueryModel(domains)
        features = form.feature_matrix(self.env(), len(self))
        index = FunctionIndex(
            features,
            model,
            feature_map=identity_map(form.phi_dim),
            n_indices=n_indices,
            strategy=strategy,
            rng=rng,
        )
        handle = FunctionIndexHandle(self, form, index, float(rhs))
        self._handles.append(handle)
        return handle

    def drop_function_index(self, handle: "FunctionIndexHandle") -> None:
        """Unregister a function index from update propagation."""
        self._handles.remove(handle)

    # ------------------------------------------------------------------ #
    # Mutation (propagates to registered indexes)
    # ------------------------------------------------------------------ #

    def _coerce_rows(self, rows: Mapping[str, np.ndarray]) -> dict[str, np.ndarray]:
        unknown = sorted(set(rows) - set(self._columns))
        if unknown:
            raise UnknownColumnError(unknown[0])
        missing = sorted(set(self._columns) - set(rows))
        if missing:
            raise DimensionMismatchError(f"missing values for column {missing[0]!r}")
        coerced = {name: as_1d_float(vals, f"column {name!r}") for name, vals in rows.items()}
        sizes = {arr.size for arr in coerced.values()}
        if len(sizes) != 1:
            raise DimensionMismatchError(f"ragged row batch: sizes {sorted(sizes)}")
        return coerced

    def append_rows(self, rows: Mapping[str, np.ndarray]) -> np.ndarray:
        """Append a batch of rows; returns their new row indices."""
        coerced = self._coerce_rows(rows)
        start = len(self)
        count = next(iter(coerced.values())).size
        for name in self._columns:
            self._columns[name] = np.concatenate([self._columns[name], coerced[name]])
        new_ids = np.arange(start, start + count, dtype=np.int64)
        for handle in self._handles:
            handle._on_rows_appended(new_ids)
        return new_ids

    def update_rows(self, row_indices: np.ndarray, rows: Mapping[str, np.ndarray]) -> None:
        """Overwrite existing rows in the given columns (others unchanged)."""
        row_indices = np.ascontiguousarray(row_indices, dtype=np.int64)
        if row_indices.size and (row_indices.min() < 0 or row_indices.max() >= len(self)):
            raise IndexError(f"row index out of range [0, {len(self)})")
        unknown = sorted(set(rows) - set(self._columns))
        if unknown:
            raise UnknownColumnError(unknown[0])
        for name, values in rows.items():
            arr = as_1d_float(values, f"column {name!r}")
            if arr.size != row_indices.size:
                raise DimensionMismatchError(
                    f"column {name!r}: {arr.size} values for {row_indices.size} rows"
                )
            self._columns[name][row_indices] = arr
        for handle in self._handles:
            handle._on_rows_updated(row_indices)


class FunctionIndexHandle:
    """A live Planar function index over one table expression."""

    def __init__(
        self,
        table: Table,
        form: ScalarProductForm,
        index: FunctionIndex,
        rhs: float,
    ) -> None:
        self._table = table
        self._form = form
        self._index = index
        self._rhs = rhs

    # ------------------------------------------------------------------ #

    @property
    def form(self) -> ScalarProductForm:
        """The compiled scalar-product decomposition."""
        return self._form

    @property
    def feature_names(self) -> tuple[str, ...]:
        """Names of the indexed ``phi`` components."""
        return self._form.feature_names

    @property
    def rhs(self) -> float:
        """Default right-hand side of the indexed inequality."""
        return self._rhs

    @property
    def index(self) -> FunctionIndex:
        """The underlying :class:`FunctionIndex`."""
        return self._index

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"FunctionIndexHandle(expr={self._form.expr}, n={len(self._index)})"

    # ------------------------------------------------------------------ #
    # Queries
    # ------------------------------------------------------------------ #

    def query(
        self,
        params: Sequence[float],
        op: Comparison | str = Comparison.LE,
        rhs: float | None = None,
    ) -> QueryAnswer:
        """Row indices with ``expression(params) OP rhs`` via the Planar index."""
        normal = self._form.query_normal(params)
        offset = self._rhs if rhs is None else float(rhs)
        return self._index.query(normal, offset, op)

    def topk(
        self,
        params: Sequence[float],
        k: int,
        op: Comparison | str = Comparison.LE,
        rhs: float | None = None,
    ) -> TopKResult:
        """Top-k satisfying rows closest to the expression's zero set."""
        normal = self._form.query_normal(params)
        offset = self._rhs if rhs is None else float(rhs)
        return self._index.topk(normal, offset, k, op)

    def scan(
        self,
        params: Sequence[float],
        op: Comparison | str = Comparison.LE,
        rhs: float | None = None,
    ) -> np.ndarray:
        """Oracle answer by direct expression evaluation (sequential scan)."""
        offset = self._rhs if rhs is None else float(rhs)
        values = np.broadcast_to(
            self._form.evaluate(self._table.env(), params), len(self._table)
        )
        mask = Comparison.parse(op).evaluate(values, offset)
        return np.nonzero(mask)[0].astype(np.int64)

    # ------------------------------------------------------------------ #
    # Update propagation (called by Table)
    # ------------------------------------------------------------------ #

    def _feature_rows(self, row_indices: np.ndarray) -> np.ndarray:
        env = {name: col[row_indices] for name, col in self._table.env().items()}
        return self._form.feature_matrix(env, row_indices.size)

    def _on_rows_appended(self, new_ids: np.ndarray) -> None:
        assigned = self._index.insert_points(self._feature_rows(new_ids))
        if not np.array_equal(assigned, new_ids):  # pragma: no cover - invariant
            raise RuntimeError("table rows and index ids diverged")

    def _on_rows_updated(self, row_indices: np.ndarray) -> None:
        self._index.update_points(row_indices, self._feature_rows(row_indices))
