"""Compile a parameterised expression into scalar product form.

A query expression is *indexable* when it is linear in its parameters::

    expr  =  base(columns) + sum_j coeff_j(columns) * ?_j

The parameter-free ``base`` and ``coeff_j`` become the components of the
indexed function ``phi``, and the parameter values (plus a constant 1 for
the base) become the query normal — exactly the decomposition the paper
performs by hand in Examples 1 and 2.  Expressions that are nonlinear in a
parameter (``? * ?``, a parameter inside a divisor, ...) raise
:class:`NonScalarProductError`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping, Sequence

import numpy as np

from ..exceptions import NonScalarProductError
from .ast import BinOp, Column, Expr, Neg, Number, Param
from .parser import parse

__all__ = ["ScalarProductForm", "compile_expression"]

# ``None`` keys the parameter-free (base) part of a linear form.
_LinearForm = dict


def _is_zero(expr: Expr) -> bool:
    return isinstance(expr, Number) and expr.value == 0.0


def _is_one(expr: Expr) -> bool:
    return isinstance(expr, Number) and expr.value == 1.0


def _add(left: Expr, right: Expr) -> Expr:
    if _is_zero(left):
        return right
    if _is_zero(right):
        return left
    if isinstance(left, Number) and isinstance(right, Number):
        return Number(left.value + right.value)
    return BinOp("+", left, right)


def _mul(left: Expr, right: Expr) -> Expr:
    if _is_one(left):
        return right
    if _is_one(right):
        return left
    if _is_zero(left) or _is_zero(right):
        return Number(0.0)
    if isinstance(left, Number) and isinstance(right, Number):
        return Number(left.value * right.value)
    return BinOp("*", left, right)


def _div(left: Expr, right: Expr) -> Expr:
    if _is_one(right):
        return left
    if isinstance(left, Number) and isinstance(right, Number) and right.value != 0.0:
        return Number(left.value / right.value)
    return BinOp("/", left, right)


def _neg(expr: Expr) -> Expr:
    if isinstance(expr, Number):
        return Number(-expr.value)
    if isinstance(expr, Neg):
        return expr.operand
    return Neg(expr)


def _linearize(expr: Expr) -> _LinearForm:
    """Decompose ``expr`` into ``{param_index_or_None: coefficient_expr}``."""
    if isinstance(expr, (Number, Column)):
        return {None: expr}
    if isinstance(expr, Param):
        return {expr.position: Number(1.0)}
    if isinstance(expr, Neg):
        inner = _linearize(expr.operand)
        return {key: _neg(value) for key, value in inner.items()}
    if isinstance(expr, BinOp):
        if expr.op in ("+", "-"):
            left = _linearize(expr.left)
            right = _linearize(expr.right)
            merged = dict(left)
            for key, value in right.items():
                addend = _neg(value) if expr.op == "-" else value
                merged[key] = _add(merged[key], addend) if key in merged else addend
            return merged
        if expr.op == "*":
            left_free = expr.left.is_param_free()
            right_free = expr.right.is_param_free()
            if not left_free and not right_free:
                raise NonScalarProductError(
                    f"expression multiplies two parameter-dependent factors: {expr}"
                )
            if left_free:
                scalar, form = expr.left, _linearize(expr.right)
            else:
                scalar, form = expr.right, _linearize(expr.left)
            return {key: _mul(scalar, value) for key, value in form.items()}
        # Division: only by a parameter-free expression.
        if not expr.right.is_param_free():
            raise NonScalarProductError(
                f"expression divides by a parameter-dependent factor: {expr}"
            )
        form = _linearize(expr.left)
        return {key: _div(value, expr.right) for key, value in form.items()}
    raise NonScalarProductError(f"unsupported expression node: {expr!r}")


@dataclass(frozen=True)
class ScalarProductForm:
    """The scalar-product decomposition of a parameterised expression.

    ``expr(x, p) = base(x) + sum_j coefficients[j](x) * p[param_positions[j]]``

    ``phi(x)`` stacks ``base`` (when present) followed by the coefficient
    expressions; the matching query normal is ``(1, p_0, ..., p_m)``.
    """

    expr: Expr
    base: Expr | None
    param_positions: tuple[int, ...]
    coefficients: tuple[Expr, ...]

    @property
    def n_params(self) -> int:
        """Number of distinct query parameters."""
        return len(self.param_positions)

    @property
    def has_base(self) -> bool:
        """Whether a parameter-free base component exists."""
        return self.base is not None

    @property
    def phi_dim(self) -> int:
        """Dimensionality ``d'`` of the induced feature map."""
        return len(self.coefficients) + (1 if self.has_base else 0)

    @property
    def feature_exprs(self) -> tuple[Expr, ...]:
        """The column-only expressions making up ``phi`` (base first)."""
        if self.has_base:
            return (self.base, *self.coefficients)
        return self.coefficients

    @property
    def feature_names(self) -> tuple[str, ...]:
        """Readable names for the ``phi`` components."""
        return tuple(str(expr) for expr in self.feature_exprs)

    def columns(self) -> frozenset[str]:
        """All table columns the expression touches."""
        return self.expr.columns()

    def feature_matrix(self, env: Mapping[str, np.ndarray], n_rows: int) -> np.ndarray:
        """Evaluate ``phi`` over a column environment as an ``(n, d')`` matrix."""
        cols = []
        for expr in self.feature_exprs:
            value = expr.evaluate(env)
            cols.append(np.broadcast_to(np.asarray(value, dtype=np.float64), n_rows))
        return np.column_stack(cols)

    def query_normal(self, params: Sequence[float]) -> np.ndarray:
        """The query normal ``a`` for one parameter binding.

        Raises :class:`NonScalarProductError` when the binding's arity does
        not match the expression.
        """
        if len(params) != self.n_params:
            raise NonScalarProductError(
                f"expression has {self.n_params} parameter(s), got {len(params)} value(s)"
            )
        # params[i] binds the parameter at param_positions[i] — positional,
        # mirroring evaluate(); positions need not be contiguous for
        # hand-built ASTs.
        values = [float(value) for value in params]
        if self.has_base:
            return np.array([1.0, *values], dtype=np.float64)
        return np.array(values, dtype=np.float64)

    def evaluate(self, env: Mapping[str, np.ndarray], params: Sequence[float]) -> np.ndarray:
        """Direct (oracle) evaluation of the original expression."""
        full = [0.0] * (max(self.param_positions, default=-1) + 1)
        for value, pos in zip(params, self.param_positions):
            full[pos] = float(value)
        return np.asarray(self.expr.evaluate(env, full), dtype=np.float64)


def compile_expression(expression: str | Expr) -> ScalarProductForm:
    """Parse (if needed) and decompose an expression into scalar product form.

    >>> form = compile_expression("active_power - ? * voltage * current")
    >>> form.feature_names
    ('active_power', '(-(current * voltage))')
    >>> form.n_params
    1
    """
    expr = parse(expression) if isinstance(expression, str) else expression
    form = _linearize(expr)
    base = form.pop(None, None)
    if base is not None and _is_zero(base):
        base = None
    positions = tuple(sorted(form))
    coefficients = tuple(form[pos] for pos in positions)
    if not coefficients and base is None:
        raise NonScalarProductError("expression is identically zero")
    for pos, coeff in zip(positions, coefficients):
        if _is_zero(coeff):
            raise NonScalarProductError(
                f"parameter ?{pos} cancels out of the expression; rewrite without it"
            )
    return ScalarProductForm(
        expr=expr, base=base, param_positions=positions, coefficients=coefficients
    )
