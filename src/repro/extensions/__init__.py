"""Extensions: the paper's two future-work directions (Section 8).

* **Query-adaptive indexing** (:class:`AdaptiveOctantIndex`) — "use machine
  learning techniques to dynamically update the indices based on past
  queries": indices are built lazily per query-sign-pattern (octant) and
  each observed query normal is folded into the index set, so recurring
  workloads converge to near-parallel indices with near-logarithmic query
  time.
* **Dimensionality-reduction preprocessing** (:class:`PCA`,
  :class:`PCAFilterIndex`) — "apply various dimensionality reduction
  techniques as a preprocessing method": index in a low-dimensional PCA
  space where Planar pruning is strong, bound the projection residual, and
  verify only the uncertainty band in full dimension.  Results stay exact.
"""

from .adaptive import AdaptiveOctantIndex
from .pca import PCA, PCAFilterIndex

__all__ = ["AdaptiveOctantIndex", "PCA", "PCAFilterIndex"]
