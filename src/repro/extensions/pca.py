"""PCA preprocessing for Planar indexing (future work, Section 8).

The Planar index prunes best at low dimensionality, so the paper suggests
dimensionality reduction as a preprocessing step.  Done naively that would
change query answers; this module keeps them **exact** with a
filter-and-verify scheme:

With centered data ``x = V z + mu + eps`` (``V`` the top-``m`` principal
directions, ``z`` the projection, ``eps`` the residual)::

    <a, x> = <V^T a, z> + <a, mu> + <a, eps>,   |<a, eps>| <= |a| * E

where ``E`` is the largest residual norm over the dataset (precomputed).
Querying the *reduced* index with the offset shifted by ``-|a| E`` yields
certain accepts; shifting by ``+|a| E`` yields the candidate band, whose
members are verified against the full-dimensional features.  Reduced query
normals ``V^T a`` have no stable sign pattern, so the reduced index is an
:class:`AdaptiveOctantIndex`.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .._util import as_1d_float, as_2d_float, as_rng
from ..core.query import Comparison
from ..exceptions import DimensionMismatchError
from .adaptive import AdaptiveOctantIndex

__all__ = ["PCA", "PCAFilterIndex", "FilteredAnswer"]


class PCA:
    """Principal component analysis via eigendecomposition (from scratch)."""

    def __init__(self, n_components: int) -> None:
        if n_components < 1:
            raise ValueError(f"n_components must be >= 1, got {n_components}")
        self._m = int(n_components)
        self.mean_: np.ndarray | None = None
        self.components_: np.ndarray | None = None  # (m, d) rows = directions
        self.explained_variance_: np.ndarray | None = None

    @property
    def n_components(self) -> int:
        """Number of retained principal directions."""
        return self._m

    @property
    def is_fitted(self) -> bool:
        """Whether :meth:`fit` has run."""
        return self.components_ is not None

    def fit(self, data: np.ndarray) -> "PCA":
        """Fit on ``(n, d)`` data; requires ``n_components <= d``."""
        x = as_2d_float(data, "data")
        if self._m > x.shape[1]:
            raise DimensionMismatchError(
                f"n_components={self._m} exceeds data dimension {x.shape[1]}"
            )
        self.mean_ = x.mean(axis=0)
        centered = x - self.mean_
        covariance = (centered.T @ centered) / max(1, x.shape[0] - 1)
        eigenvalues, eigenvectors = np.linalg.eigh(covariance)
        order = np.argsort(eigenvalues)[::-1][: self._m]
        self.components_ = eigenvectors[:, order].T.copy()
        self.explained_variance_ = eigenvalues[order].copy()
        return self

    def _require_fitted(self) -> None:
        if not self.is_fitted:
            raise RuntimeError("PCA is not fitted")

    def transform(self, data: np.ndarray) -> np.ndarray:
        """Project ``(n, d)`` data onto the retained directions."""
        self._require_fitted()
        x = as_2d_float(data, "data")
        return (x - self.mean_) @ self.components_.T

    def inverse_transform(self, projected: np.ndarray) -> np.ndarray:
        """Reconstruct full-dimensional points from projections."""
        self._require_fitted()
        z = as_2d_float(projected, "projected")
        return z @ self.components_ + self.mean_

    def residual_norms(self, data: np.ndarray) -> np.ndarray:
        """Per-point reconstruction-residual norms ``|x - reconstruct(x)|``."""
        x = as_2d_float(data, "data")
        reconstructed = self.inverse_transform(self.transform(x))
        return np.linalg.norm(x - reconstructed, axis=1)


@dataclass(frozen=True)
class FilteredAnswer:
    """Answer of a PCA-filtered query with pruning diagnostics."""

    ids: np.ndarray
    n_verified: int
    n_total: int

    def __post_init__(self) -> None:
        object.__setattr__(self, "ids", np.ascontiguousarray(self.ids, dtype=np.int64))

    @property
    def pruned_fraction(self) -> float:
        """Fraction of points decided without a full-dimensional evaluation."""
        if self.n_total == 0:
            return 1.0
        return 1.0 - self.n_verified / self.n_total

    def __len__(self) -> int:
        return int(self.ids.size)


class PCAFilterIndex:
    """Exact inequality answering through a reduced-dimension Planar filter.

    Parameters
    ----------
    features:
        Full-dimensional ``(n, d')`` feature matrix.
    n_components:
        Reduced dimensionality ``m < d'``.
    """

    def __init__(
        self,
        features: np.ndarray,
        n_components: int,
        max_indices_per_octant: int = 10,
        rng: np.random.Generator | int | None = None,
    ) -> None:
        self._features = as_2d_float(features, "features").copy()
        self._pca = PCA(n_components).fit(self._features)
        reduced = self._pca.transform(self._features)
        self._residual_bound = float(self._pca.residual_norms(self._features).max())
        self._reduced_index = AdaptiveOctantIndex(
            reduced, max_indices_per_octant=max_indices_per_octant, rng=as_rng(rng)
        )

    # ------------------------------------------------------------------ #

    @property
    def pca(self) -> PCA:
        """The fitted projection."""
        return self._pca

    @property
    def residual_bound(self) -> float:
        """Worst-case reconstruction residual ``E`` (drives the filter band)."""
        return self._residual_bound

    def __len__(self) -> int:
        return int(self._features.shape[0])

    # ------------------------------------------------------------------ #

    def query(
        self,
        normal: np.ndarray,
        offset: float,
        op: Comparison | str = Comparison.LE,
    ) -> FilteredAnswer:
        """Exact answer to ``<normal, x> OP offset`` via the reduced filter."""
        normal = as_1d_float(normal, "normal")
        if normal.size != self._features.shape[1]:
            raise DimensionMismatchError(
                f"query has dimension {normal.size}, features have "
                f"{self._features.shape[1]}"
            )
        op = Comparison.parse(op)
        reduced_normal = self._pca.components_ @ normal
        shifted = float(offset) - float(normal @ self._pca.mean_)
        slack = float(np.linalg.norm(normal)) * self._residual_bound

        if op.is_upper_bound:
            certain_offset, band_offset = shifted - slack, shifted + slack
        else:
            certain_offset, band_offset = shifted + slack, shifted - slack

        certain = self._reduced_index.query(reduced_normal, certain_offset, op).ids
        band = self._reduced_index.query(reduced_normal, band_offset, op).ids
        maybe = np.setdiff1d(band, certain, assume_unique=True)
        if maybe.size:
            values = self._features[maybe] @ normal
            verified = maybe[op.evaluate(values, float(offset))]
        else:
            verified = maybe
        ids = np.sort(np.concatenate([certain, verified]))
        return FilteredAnswer(ids=ids, n_verified=int(maybe.size), n_total=len(self))
