"""Query-adaptive, octant-agnostic Planar indexing (future work, Section 8).

A plain :class:`~repro.core.FunctionIndex` is bound to one hyper-octant
derived from a priori parameter domains.  Workloads like active learning or
PCA-projected queries have *no* stable sign pattern, so this wrapper:

* maintains one lazily built ``FunctionIndex`` per observed sign pattern
  (octant) of the query normal,
* folds each observed query normal into that octant's index set (up to a
  budget) — the paper's "dynamically update the indices based on past
  queries" — so repeated similar queries converge to a near-parallel index
  and near-logarithmic query time, and
* forwards dynamic point updates/inserts/deletes to every cached index.

Every octant index is constructed over the same row universe, so point ids
are globally consistent across octants.
"""

from __future__ import annotations

import numpy as np

from .._util import as_1d_float, as_2d_float, as_rng
from ..core.domains import ParameterDomain, QueryModel
from ..core.function_index import FunctionIndex, QueryAnswer
from ..core.query import Comparison
from ..core.topk import TopKResult
from ..exceptions import DimensionMismatchError

__all__ = ["AdaptiveOctantIndex"]

_DEFAULT_MAX_INDICES = 10
_DEFAULT_DOMAIN_SPREAD = 10.0
# Sign-pattern derivation treats |component| below this as "positive zero".
_SIGN_EPS = 1e-9


class AdaptiveOctantIndex:
    """Planar indexing for queries with arbitrary, drifting sign patterns.

    Parameters
    ----------
    features:
        Initial ``(n, d')`` feature matrix.
    max_indices_per_octant:
        Budget of Planar indices accumulated per octant.
    domain_spread:
        Multiplicative width of the synthesized parameter domains around
        the first normal observed in an octant (domains only guide index
        sampling; correctness never depends on them).
    """

    def __init__(
        self,
        features: np.ndarray,
        max_indices_per_octant: int = _DEFAULT_MAX_INDICES,
        domain_spread: float = _DEFAULT_DOMAIN_SPREAD,
        rng: np.random.Generator | int | None = None,
    ) -> None:
        rows = as_2d_float(features, "features")
        if max_indices_per_octant < 1:
            raise ValueError(
                f"max_indices_per_octant must be >= 1, got {max_indices_per_octant}"
            )
        if domain_spread <= 1.0:
            raise ValueError(f"domain_spread must exceed 1, got {domain_spread}")
        self._rows = rows.copy()          # full row history (including deleted)
        self._dead: set[int] = set()
        self._max_indices = int(max_indices_per_octant)
        self._spread = float(domain_spread)
        self._rng = as_rng(rng)
        self._octants: dict[tuple[int, ...], FunctionIndex] = {}

    # ------------------------------------------------------------------ #

    @property
    def dim(self) -> int:
        """Feature dimensionality ``d'``."""
        return int(self._rows.shape[1])

    def __len__(self) -> int:
        """Number of live points."""
        return int(self._rows.shape[0]) - len(self._dead)

    @property
    def n_octants(self) -> int:
        """Octants with a materialized index."""
        return len(self._octants)

    def n_indices(self, normal: np.ndarray) -> int:
        """Planar indices currently held for ``normal``'s octant (0 if none)."""
        index = self._octants.get(self._signs_of(normal))
        return index.n_indices if index is not None else 0

    # ------------------------------------------------------------------ #

    def _signs_of(self, normal: np.ndarray) -> tuple[int, ...]:
        normal = as_1d_float(normal, "normal")
        if normal.size != self.dim:
            raise DimensionMismatchError(
                f"normal has dimension {normal.size}, index has {self.dim}"
            )
        return tuple(1 if value >= 0 else -1 for value in normal)

    def _octant_normal(self, normal: np.ndarray, signs: tuple[int, ...]) -> np.ndarray:
        """``normal`` with (near-)zero components nudged to match the octant."""
        normal = np.asarray(normal, dtype=np.float64)
        magnitude = np.where(np.abs(normal) < _SIGN_EPS, _SIGN_EPS, np.abs(normal))
        return magnitude * np.asarray(signs, dtype=np.float64)

    def _index_for(self, normal: np.ndarray) -> FunctionIndex:
        signs = self._signs_of(normal)
        safe = self._octant_normal(normal, signs)
        index = self._octants.get(signs)
        if index is None:
            magnitudes = np.abs(safe)
            domains = [
                ParameterDomain(low=mag / self._spread, high=mag * self._spread)
                if sign > 0
                else ParameterDomain(low=-mag * self._spread, high=-mag / self._spread)
                for mag, sign in zip(magnitudes, signs)
            ]
            index = FunctionIndex(
                self._rows,
                QueryModel(domains),
                normals=safe.reshape(1, -1),
                rng=self._rng,
            )
            if self._dead:
                index.delete_points(np.fromiter(self._dead, dtype=np.int64))
            self._octants[signs] = index
        elif index.n_indices < self._max_indices:
            # Fold the observed query into the index set (adaptive update).
            index.add_index(safe)
        return index

    # ------------------------------------------------------------------ #
    # Queries
    # ------------------------------------------------------------------ #

    def query(
        self,
        normal: np.ndarray,
        offset: float,
        op: Comparison | str = Comparison.LE,
    ) -> QueryAnswer:
        """Exact inequality query; builds/updates the octant index as needed."""
        return self._index_for(normal).query(normal, offset, op)

    def topk(
        self,
        normal: np.ndarray,
        offset: float,
        k: int,
        op: Comparison | str = Comparison.LE,
    ) -> TopKResult:
        """Exact top-k nearest neighbor query (Problem 2)."""
        return self._index_for(normal).topk(normal, offset, k, op)

    # ------------------------------------------------------------------ #
    # Dynamic maintenance
    # ------------------------------------------------------------------ #

    def insert_points(self, features: np.ndarray) -> np.ndarray:
        """Append points; returns their globally consistent ids."""
        rows = as_2d_float(features, "features")
        if rows.shape[1] != self.dim:
            raise DimensionMismatchError(
                f"rows have dimension {rows.shape[1]}, index has {self.dim}"
            )
        start = self._rows.shape[0]
        self._rows = np.vstack([self._rows, rows])
        ids = np.arange(start, start + rows.shape[0], dtype=np.int64)
        for index in self._octants.values():
            assigned = index.insert_points(rows)
            if not np.array_equal(assigned, ids):  # pragma: no cover - invariant
                raise RuntimeError("octant indices diverged from the row universe")
        return ids

    def update_points(self, ids: np.ndarray, features: np.ndarray) -> None:
        """Re-value existing points in every cached octant index."""
        ids = np.ascontiguousarray(ids, dtype=np.int64)
        rows = as_2d_float(features, "features")
        self._check_live(ids)
        self._rows[ids] = rows
        for index in self._octants.values():
            index.update_points(ids, rows)

    def delete_points(self, ids: np.ndarray) -> None:
        """Remove points from every cached octant index."""
        ids = np.ascontiguousarray(ids, dtype=np.int64)
        self._check_live(ids)
        self._dead.update(int(i) for i in ids)
        for index in self._octants.values():
            index.delete_points(ids)

    def _check_live(self, ids: np.ndarray) -> None:
        if ids.size and (ids.min() < 0 or ids.max() >= self._rows.shape[0]):
            raise KeyError(f"point id out of range [0, {self._rows.shape[0]})")
        dead = [int(i) for i in ids if int(i) in self._dead]
        if dead:
            raise KeyError(f"point ids not live: {dead[:5]}")
