"""Command-line interface: ``python -m repro <command>``.

Commands
--------
``info``
    Package version and subsystem overview.
``demo``
    Run one of the bundled demonstrations without touching the examples
    directory (quickstart / consumption / moving / learning).
``bench``
    Run a single experiment family and print its table (a lighter-weight
    alternative to the pytest-benchmark suite).
``datasets``
    Generate a dataset and print its Table 2 characteristics (optionally
    exporting to CSV).
``lint``
    Run the repo-specific linter (per-file rules REP001–REP009 plus the
    whole-program graph rules REP010–REP014 under ``--graph``, see
    ``docs/analysis.md``) over files or directories.  Exit code 0 means
    clean, 1 means findings, 2 means usage error.
``obs``
    Inspect, export (JSON / Prometheus text), or reset the observability
    registry (see ``docs/observability.md``).  Instrumented commands merge
    their samples into a state file when ``REPRO_OBS=1`` is set, so metrics
    accumulate across CLI runs.
``tune``
    The workload-adaptive tuning loop (see ``docs/tuning.md``): ``record``
    captures a query workload to a ``.npz`` archive, ``advise`` plans a
    better index-normal portfolio against it, ``apply`` executes (or
    ``--dry-run`` previews) the plan and reports measured |II| deltas.
``chaos``
    Run a query workload against a sharded index while a fault plan
    injects shard errors / stalls / torn writes, and print a survival
    report (see ``docs/reliability.md``).  ``--verify`` checks every
    answer — complete or degraded — against the sequential ground truth.
``slo``
    Evaluate the declarative latency / completeness objectives against
    the recorded metric state and report error-budget burn rates
    (``repro slo check`` exits nonzero when an objective is violated, so
    CI can gate on it).
``top``
    Live terminal dashboard over the obs state file: per-op query rates
    and latency quantiles, reliability counters, and the SLO table
    (``--once`` renders a single frame for CI smoke tests).
``serve``
    Run the asyncio HTTP query service: micro-batched ``/query`` and
    ``/topk`` over a sharded engine, per-tenant admission control, and
    the ``/metrics`` / ``/healthz`` / ``/slo`` operational endpoints
    (see ``docs/serving.md`` and ``docs/operations.md``).
"""

from __future__ import annotations

import argparse
import os
import sys
from typing import Sequence

import numpy as np

__all__ = ["main", "build_parser"]


def _default_shards() -> int:
    """Default shard count, overridable via the ``REPRO_SHARDS`` env var."""
    try:
        return max(1, int(os.environ.get("REPRO_SHARDS", "1")))
    except ValueError:
        return 1


def _add_parallel_args(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--shards",
        type=int,
        default=_default_shards(),
        help="partition the data across S shards and fan queries out on a "
        "thread pool (default: $REPRO_SHARDS or 1 = monolithic)",
    )
    parser.add_argument(
        "--workers",
        type=int,
        default=None,
        help="thread-pool size for the sharded engine "
        "(default: min(shards, cpu count))",
    )


def build_parser() -> argparse.ArgumentParser:
    """The argparse tree for the ``repro`` command."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Planar index for scalar product queries (SIGMOD 2014 reproduction)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("info", help="show version and subsystem overview")

    demo = sub.add_parser("demo", help="run a bundled demonstration")
    demo.add_argument(
        "name",
        choices=["quickstart", "consumption", "moving", "learning"],
        help="which demonstration to run",
    )
    demo.add_argument("--n", type=int, default=50_000, help="dataset size")
    demo.add_argument("--seed", type=int, default=0, help="random seed")
    demo.add_argument(
        "--explain",
        action="store_true",
        help="print an EXPLAIN report for the demo query (quickstart only)",
    )
    _add_parallel_args(demo)

    bench = sub.add_parser("bench", help="run one experiment family")
    bench.add_argument(
        "experiment",
        choices=["query", "topk", "selectivity", "moving", "scalability"],
        help="experiment family (see DESIGN.md for the figure mapping)",
    )
    bench.add_argument("--n", type=int, default=60_000, help="dataset size")
    bench.add_argument("--dim", type=int, default=6, help="dimensionality")
    bench.add_argument("--rq", type=int, default=4, help="randomness of query")
    bench.add_argument("--indices", type=int, default=100, help="index budget")
    bench.add_argument("--seed", type=int, default=0, help="random seed")
    _add_parallel_args(bench)

    datasets = sub.add_parser("datasets", help="generate / describe a dataset")
    datasets.add_argument(
        "name",
        choices=["indp", "corr", "anti", "cmoment", "ctexture", "consumption"],
    )
    datasets.add_argument("--n", type=int, default=10_000)
    datasets.add_argument("--dim", type=int, default=6, help="synthetic families only")
    datasets.add_argument("--seed", type=int, default=0)
    datasets.add_argument("--csv", type=str, default=None, help="export path")

    from repro.analysis import lint as lint_module

    lint = sub.add_parser(
        "lint",
        help="run the repo-specific linter (REP001–REP014)",
        description="AST linter enforcing the Planar index invariants; "
        "see docs/analysis.md for the rule catalogue",
    )
    lint_module.configure_parser(lint)

    from repro.obs import cli as obs_module

    obs = sub.add_parser(
        "obs",
        help="inspect / export / reset the metrics registry",
        description="observability registry tools; see docs/observability.md",
    )
    obs_module.configure_parser(obs)

    from repro.tuning import cli as tune_module

    tune = sub.add_parser(
        "tune",
        help="record a workload / advise / apply an index tuning plan",
        description="workload-adaptive index tuning; see docs/tuning.md",
    )
    tune_module.configure_parser(tune)

    from repro.reliability import cli as chaos_module

    chaos = sub.add_parser(
        "chaos",
        help="run a workload under fault injection and report survival",
        description="chaos testing for the sharded engine; "
        "see docs/reliability.md",
    )
    chaos_module.configure_parser(chaos)

    from repro.obs import slo as slo_module

    slo = sub.add_parser(
        "slo",
        help="check latency / completeness objectives against recorded metrics",
        description="SLO evaluation and error-budget burn rates; "
        "see docs/observability.md",
    )
    slo_module.configure_parser(slo)

    from repro.obs import dashboard as top_module

    top = sub.add_parser(
        "top",
        help="live dashboard over the obs state file",
        description="terminal dashboard: query rates, latency quantiles, "
        "reliability counters, SLO table; see docs/observability.md",
    )
    top_module.configure_parser(top)

    from repro.serve import cli as serve_module

    serve = sub.add_parser(
        "serve",
        help="run the HTTP query service (micro-batching, tenant quotas)",
        description="asyncio HTTP front-end over the sharded engine; "
        "see docs/serving.md and docs/operations.md",
    )
    serve_module.configure_parser(serve)
    _add_parallel_args(serve)
    return parser


def _cmd_info() -> int:
    import repro

    print(f"repro {repro.__version__} — Planar index for scalar product queries")
    print("subsystems: core (Planar index), scan, datasets, sqlfunc, moving,")
    print("            learning, extensions (adaptive octants, PCA filter), bench")
    print("docs: README.md, DESIGN.md, EXPERIMENTS.md")
    return 0


def _cmd_demo(args: argparse.Namespace) -> int:
    if args.name == "quickstart":
        from repro import FunctionIndex, QueryModel, ShardedFunctionIndex
        from repro.datasets import independent

        points = independent(args.n, 6, rng=args.seed).points
        model = QueryModel.uniform(dim=6, low=1.0, high=5.0, rq=4)
        if args.shards > 1:
            index = ShardedFunctionIndex(
                points,
                model,
                n_indices=100,
                rng=args.seed,
                n_shards=args.shards,
                max_workers=args.workers,
            )
        else:
            index = FunctionIndex(points, model, n_indices=100, rng=args.seed)
        try:
            normal = model.sample_normal(args.seed)
            offset = 0.25 * float(normal @ points.max(axis=0))
            answer = index.query(normal, offset)
            print(
                f"indexed {len(index):,} points with {index.n_indices} Planar indices"
            )
            if args.shards > 1:
                sizes = ", ".join(f"{s:,}" for s in index.shard_sizes())
                print(f"sharded across {index.n_shards} shards ({sizes} points)")
            print(f"query matched {len(answer):,} points; "
                  f"pruned {answer.stats.pruned_fraction:.1%}")
            if args.explain:
                print()
                if args.shards > 1:
                    from repro import ScalarProductQuery

                    spq = ScalarProductQuery(normal, offset)
                    for shard, collection in enumerate(index.collections):
                        print(f"shard {shard}:")
                        print(collection.explain(spq).render())
                        print()
                else:
                    print(index.explain_report(normal, offset).render())
            return 0
        finally:
            if isinstance(index, ShardedFunctionIndex):
                index.close()
    if args.name == "consumption":
        from repro import ParameterDomain
        from repro.datasets import consumption
        from repro.sqlfunc import Table

        dataset = consumption(args.n, rng=args.seed)
        active, reactive, voltage, current = dataset.points.T
        table = Table(
            {"active_power": active, "voltage": voltage, "current": current}
        )
        handle = table.create_function_index(
            "active_power - ? * voltage * current / 1000",
            [ParameterDomain(low=0.1, high=1.0)],
            n_indices=50,
            rng=args.seed,
        )
        for threshold in (0.3, 0.6, 0.9):
            answer = handle.query([threshold])
            print(f"power factor <= {threshold:.1f}: {len(answer):,} households "
                  f"({len(answer) / len(table):.1%})")
        return 0
    if args.name == "moving":
        from repro.bench import print_table, run_moving_experiment

        rows = run_moving_experiment(
            "circular", max(50, args.n // 200), (10.0, 12.5, 15.0), rng=args.seed
        )
        print_table("circular moving-object intersection", rows)
        return 0
    # learning
    from repro.learning import ActiveLearner, make_linear_classification

    pool, labels, _, _ = make_linear_classification(args.n, 5, noise=0.03, rng=args.seed)
    report = ActiveLearner(pool, labels, backend="planar", rng=args.seed).run(10, labels)
    print(f"active learning: {report.labeled_ids.size} labels -> "
          f"{report.final_accuracy:.1%} accuracy "
          f"({report.n_checked_total:,} scalar products)")
    return 0


def _cmd_bench(args: argparse.Namespace) -> int:
    from repro.bench import (
        print_table,
        run_moving_experiment,
        run_query_experiment,
        run_scalability_experiment,
        run_selectivity_experiment,
        run_topk_experiment,
    )
    from repro.datasets import load

    if args.experiment == "query":
        points = load("indp", args.n, args.dim, rng=args.seed).points
        cell = run_query_experiment(
            points, rq=args.rq, n_indices=args.indices, rng=args.seed,
            n_shards=args.shards, workers=args.workers,
        )
        print_table("query experiment", [cell])
    elif args.experiment == "topk":
        points = load("indp", args.n, args.dim, rng=args.seed).points
        rows = run_topk_experiment(
            points, (50, 1000), n_indices=args.indices, rng=args.seed,
            n_shards=args.shards, workers=args.workers,
        )
        print_table("top-k experiment (Table 3)", rows)
    elif args.experiment == "selectivity":
        points = load("indp", args.n, args.dim, rng=args.seed).points
        rows = run_selectivity_experiment(
            points, (0.1, 0.25, 0.5, 0.75, 1.0), rq=args.rq,
            n_indices=args.indices, rng=args.seed,
        )
        print_table("selectivity sweep (Fig 11)", rows)
    elif args.experiment == "moving":
        rows = run_moving_experiment(
            "linear", max(50, args.n // 200), (10.0, 12.5, 15.0), rng=args.seed
        )
        print_table("moving objects (Fig 14a)", rows)
    else:  # scalability
        sizes = (args.n // 4, args.n // 2, args.n)
        rows = run_scalability_experiment(
            "indp", sizes, dim=args.dim, rq=args.rq,
            n_indices=args.indices, rng=args.seed,
            n_shards=args.shards, workers=args.workers,
        )
        print_table("scalability (Fig 12)", rows)
    return 0


def _cmd_datasets(args: argparse.Namespace) -> int:
    from repro.bench import print_table
    from repro.datasets import cmoment, consumption, ctexture, load, table2_characteristics

    if args.name in ("indp", "corr", "anti"):
        dataset = load(args.name, args.n, args.dim, rng=args.seed)
    else:
        factory = {"cmoment": cmoment, "ctexture": ctexture, "consumption": consumption}
        dataset = factory[args.name](args.n, rng=args.seed)
    print_table("dataset characteristics", table2_characteristics([dataset]))
    if args.csv:
        from repro.datasets.io import save_csv

        path = save_csv(dataset, args.csv)
        print(f"wrote {path}")
    return 0


def _save_obs_state() -> None:
    """Merge this process's metric samples into the obs state file.

    Only runs when observability is armed and something was recorded, so
    uninstrumented invocations never touch the filesystem.
    """
    from repro.obs import metrics as obs_metrics
    from repro.obs import runtime as obs_runtime

    if not obs_runtime.ENABLED:
        return
    if obs_metrics.registry().n_samples() == 0:
        return
    from repro.obs.exporters import merge_into_file

    merge_into_file()


def main(argv: Sequence[str] | None = None) -> int:
    """CLI entry point; returns a process exit code."""
    args = build_parser().parse_args(argv)
    np.set_printoptions(precision=4, suppress=True)
    if args.command == "info":
        return _cmd_info()
    if args.command == "obs":
        from repro.obs.cli import run_from_args as obs_run

        return obs_run(args)
    if args.command == "slo":
        from repro.obs.slo import run_from_args as slo_run

        return slo_run(args)
    if args.command == "top":
        from repro.obs.dashboard import run_from_args as top_run

        return top_run(args)
    if args.command == "demo":
        code = _cmd_demo(args)
    elif args.command == "bench":
        code = _cmd_bench(args)
    elif args.command == "lint":
        from repro.analysis.lint import run_from_args

        code = run_from_args(args)
    elif args.command == "tune":
        from repro.tuning.cli import run_from_args as tune_run

        code = tune_run(args)
    elif args.command == "chaos":
        from repro.reliability.cli import run_from_args as chaos_run

        code = chaos_run(args)
    elif args.command == "serve":
        from repro.serve.cli import run_from_args as serve_run

        code = serve_run(args)
    else:
        code = _cmd_datasets(args)
    _save_obs_state()
    return code


if __name__ == "__main__":  # pragma: no cover - exercised via __main__
    sys.exit(main())
