"""A shard's window onto the shared :class:`~repro.core.feature_store.FeatureStore`.

Each shard of the parallel engine owns a :class:`FeatureStoreView` — the
same object shape a :class:`~repro.core.collection.PlanarIndexCollection`
expects, restricted to the ids the shard owns.  Point ids stay *global*:
row gathers (``take_rows``) delegate straight to the base store, so the
hot verification path pays zero indirection, while enumeration surfaces
(``live_ids`` / ``get_all`` / ``scan_values``) filter by the shard
predicate.  Because membership is a pure function of the id
(:mod:`repro.parallel.sharding`), the view carries no state that could
drift from the base store under inserts and deletes.
"""

from __future__ import annotations

import numpy as np

from ..core.feature_store import FeatureStore
from ..obs import metrics as _om
from ..obs import runtime as _ort
from .sharding import assign_shards

__all__ = ["FeatureStoreView"]


class FeatureStoreView:
    """Read-only shard slice of a shared feature store.

    Mutations (append/update/delete) go through the base store — the
    engine owns that lifecycle and tells each shard's collection which of
    its ids changed.  The view only answers reads, restricted to the ids
    for which ``assign_shards(id) == shard``.
    """

    __slots__ = ("_base", "_shard", "_n_shards", "_policy", "_ids_cache", "_rows_cache")

    def __init__(
        self, base: FeatureStore, shard: int, n_shards: int, policy: str
    ) -> None:
        if not 0 <= shard < n_shards:
            raise ValueError(f"shard {shard} out of range [0, {n_shards})")
        self._base = base
        self._shard = int(shard)
        self._n_shards = int(n_shards)
        self._policy = str(policy)
        # Memoized owned live ids and (lazily) the matching contiguous row
        # slice, both keyed by the base store's mutation ``version``.
        # Recomputing membership over the whole base per scan would make
        # ``S`` shards do ``S`` times the id work of one monolithic scan,
        # and scattered row gathers cost as much as the scan matmul
        # itself — the materialized slice turns shard scans back into
        # contiguous streams.  Each cache is one tuple so a racing
        # recompute in another pool thread is benign (last writer wins,
        # both values correct for their version).
        self._ids_cache: tuple[int, np.ndarray] | None = None
        self._rows_cache: tuple[int, np.ndarray] | None = None

    # ------------------------------------------------------------------ #

    @property
    def base(self) -> FeatureStore:
        """The shared store this view restricts."""
        return self._base

    @property
    def shard(self) -> int:
        """Which shard this view exposes."""
        return self._shard

    @property
    def dim(self) -> int:
        """Feature dimensionality ``d'`` (same as the base store)."""
        return self._base.dim

    def _owned(self, ids: np.ndarray) -> np.ndarray:
        """Subset of ``ids`` owned by this shard (order preserved)."""
        mask = assign_shards(ids, self._n_shards, self._policy) == self._shard
        return ids[mask]

    def live_ids(self) -> np.ndarray:
        """Live ids owned by this shard, ascending (memoized).

        O(1) in the steady state; O(n_base) only after a base-store
        mutation (the ``version`` stamp moves).
        """
        version = self._base.version
        cached = self._ids_cache
        if cached is not None and cached[0] == version:
            return cached[1]
        ids = self._owned(self._base.live_ids())
        ids.setflags(write=False)
        self._ids_cache = (version, ids)
        return ids

    def _local_rows(self) -> np.ndarray:
        """Contiguous copy of this shard's live rows (memoized).

        Materialized lazily on the first scan after a mutation; across all
        shards the caches add up to at most one extra copy of the live
        feature matrix — the price of giving every shard a streamable
        local slice, exactly as a distributed deployment would hold its
        partition locally.
        """
        version = self._base.version
        cached = self._rows_cache
        if cached is not None and cached[0] == version:
            return cached[1]
        rows = self._base.take_rows(self.live_ids())
        rows.setflags(write=False)
        self._rows_cache = (version, rows)
        return rows

    def __len__(self) -> int:
        """Number of live rows owned by this shard."""
        return int(self.live_ids().size)

    def is_live(self, point_id: int) -> bool:
        """Whether ``point_id`` is live *and* owned by this shard."""
        owned = (
            int(assign_shards(np.asarray([point_id]), self._n_shards, self._policy)[0])
            == self._shard
        )
        return owned and self._base.is_live(point_id)

    def memory_bytes(self) -> int:
        """Footprint of the view's memoized id/row caches."""
        total = 0
        if self._ids_cache is not None:
            total += int(self._ids_cache[1].nbytes)
        if self._rows_cache is not None:
            total += int(self._rows_cache[1].nbytes)
        return total

    # ------------------------------------------------------------------ #

    def get(self, ids: np.ndarray) -> np.ndarray:
        """Validated feature rows for the given live ids (global ids)."""
        return self._base.get(ids)

    def take_rows(self, ids: np.ndarray) -> np.ndarray:
        """Unvalidated gather on the shared matrix — the hot path.

        Interval ids come from this shard's own key stores, which are
        maintained in lockstep with the shard's membership, so the base
        store's trust contract holds unchanged.
        """
        return self._base.take_rows(ids)

    def get_all(self) -> tuple[np.ndarray, np.ndarray]:
        """``(ids, rows)`` for every live row owned by this shard."""
        return self.live_ids(), self._local_rows()

    def scan_values(self, normal: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        """Shard-restricted streaming scan: ``(ids, <normal, row>)``.

        Streams the memoized contiguous slice, so ``S`` shards scanning
        concurrently together do the same arithmetic as one monolithic
        scan — split ``S`` ways.
        """
        if _ort.active():
            _om.store_scans().inc()
        ids = self.live_ids()
        values = self._local_rows() @ np.ascontiguousarray(normal, dtype=np.float64)  # repro: noqa(REP001) — shard-local scan, cost-routed by the collection
        return ids, values

    def scan_values_many(self, normals: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        """Shard-restricted batched scan: ``(ids, (n_owned, m) values)``.

        Column ``j`` equals ``scan_values(normals[j])[1]`` — one GEMM over
        the memoized contiguous slice instead of ``m`` matrix-vector
        products (mirrors :meth:`FeatureStore.scan_values_many`).
        """
        normals = np.ascontiguousarray(normals, dtype=np.float64)
        if _ort.active():
            _om.store_scans().inc(normals.shape[0])
        ids = self.live_ids()
        values = self._local_rows() @ np.ascontiguousarray(normals.T)  # repro: noqa(REP001) — shard-local scan, cost-routed by the collection
        return ids, values
