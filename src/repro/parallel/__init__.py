"""Sharded parallel query execution (see ``docs/parallel.md``).

The engine partitions the indexed points into ``S`` shards — membership a
pure function of the point id — and fans queries out across per-shard
:class:`~repro.core.collection.PlanarIndexCollection` instances on a
thread pool, merging exact per-shard answers into results bit-identical
to the monolithic :class:`~repro.core.function_index.FunctionIndex`.
"""

from .engine import ShardedFunctionIndex
from .sharding import SHARD_POLICIES, assign_shards, shard_ids
from .view import FeatureStoreView

__all__ = [
    "ShardedFunctionIndex",
    "FeatureStoreView",
    "SHARD_POLICIES",
    "assign_shards",
    "shard_ids",
]
