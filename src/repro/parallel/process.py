"""Process-pool shard backend for :class:`~repro.parallel.engine.ShardedFunctionIndex`.

The thread backend relies on numpy releasing the GIL inside ``matmul`` /
``searchsorted``; pure-Python sections of the per-shard work (grouping,
stats assembly, span bookkeeping) still serialize.  This backend fans
shard work out to **forked worker processes** instead, so those sections
overlap too.  It is selected with ``backend="process"`` (or the
``REPRO_SHARD_BACKEND`` environment variable) and changes *scheduling
only* — answers stay bit-identical to the thread backend and the
monolithic facade.

Design
------
Workers are forked, never spawned: the parent registers the engine in a
module-level mapping *before* the pool forks, and each child inherits the
whole engine — feature stores, key arrays, translator — by copy-on-write.
Nothing per-task is pickled except a small *task descriptor* (the query
parameters) and the result, so fan-out cost is independent of index size.
When the feature store is a memmap backing (``load_index(...,
mode="mmap")``) the page cache is physically shared across workers, so
``S`` processes cost one copy of the data.

Because workers snapshot the engine at fork time, every mutation
(insert/update/delete, add/drop index) **invalidates the pool**; the next
query forks fresh workers that see the current state.  Maintenance
fan-outs themselves always run in the parent.

Semantics carried over from the thread backend:

* the ``shard.query`` fault site fires *inside the worker* (the armed
  plan is inherited through the fork; firing counters advance per
  worker process).  Arming or disarming *after* the fork bumps the
  fault-plan generation, which the owning engine checks before every
  fan-out — a stale pool is discarded and reforked, so ``injected()``
  context managers behave exactly as under the thread backend;
* worker failures — including injected faults and deadline misses —
  pickle back to the parent, where the retry / degrade / raise policy
  machinery handles them exactly as for thread failures;
* sampled traces stitch: the worker records its ``shard.<kind>`` span
  tree manually and ships it home with the result, and the parent grafts
  it under the query's root span, so ``repro obs trace`` shows one tree
  regardless of backend;
* unsampled traces mute worker-side telemetry for the duration of the
  task.

The one intentional difference: shared top-k cutoffs
(:class:`~repro.core.topk.SharedCutoff`) are thread-only, so process
top-k fan-outs run Algorithm 2 with per-shard cutoffs.  The merged
answer is unchanged (each shard still returns its exact local top-k);
only cross-shard pruning is forgone.
"""

from __future__ import annotations

import multiprocessing
import threading
from concurrent.futures import Future, ProcessPoolExecutor
from typing import Any, Optional

from ..core.planar import WorkingQuery
from ..obs import metrics as _om
from ..obs import runtime as _ort
from ..obs import spans as _osp
from ..reliability import faults as _flt

__all__ = ["ProcessShardPool", "fork_available"]

# "ShardedFunctionIndex" annotations below stay string-valued on purpose:
# importing repro.parallel.engine here would close an import cycle
# (engine imports this module at load time).

#: Engines reachable from forked workers, keyed by registration token.
#: Populated in the parent BEFORE the pool forks, so children inherit the
#: mapping (and the engines behind it) copy-on-write; a worker never sees
#: a token registered after its fork because the engine invalidates the
#: pool on every mutation and re-registers on the next fork.
_ENGINES: dict[int, "ShardedFunctionIndex"] = {}  # repro: noqa(REP012) — populated pre-fork by design; workers read their COW snapshot

_token_lock = threading.Lock()
_next_token = 0


def fork_available() -> bool:
    """Whether this platform supports the ``fork`` start method.

    The backend requires fork (not spawn): workers must inherit the
    engine's in-memory state, which is never pickled.
    """
    return "fork" in multiprocessing.get_all_start_methods()


def _register(engine: "ShardedFunctionIndex") -> int:
    """Make ``engine`` visible to workers forked after this call."""
    global _next_token
    with _token_lock:
        _next_token += 1
        token = _next_token
    _ENGINES[token] = engine  # repro: noqa(REP012) — pre-fork registration; see module docstring
    return token


def _unregister(token: int) -> None:
    _ENGINES.pop(token, None)  # repro: noqa(REP012) — parent-side cleanup; workers hold their own COW copy


def _apply(engine: "ShardedFunctionIndex", shard: int, task: tuple) -> Any:
    """Execute one task descriptor against the worker's shard collection.

    Descriptors carry only query *parameters*; anything derived from
    engine state (working queries, octant translation) is rebuilt here
    against the worker's forked snapshot, which matches the parent's
    state because mutations invalidate the pool.
    """
    collection = engine._collections[shard]
    kind = task[0]
    if kind == "inequality":
        return collection.query(task[1])
    if kind == "batch":
        return collection.query_batch(task[1])
    if kind == "range":
        wq_low = WorkingQuery.build(task[1], engine._translator)
        wq_high = WorkingQuery.build(task[2], engine._translator)
        return collection.query_range(wq_low, wq_high)
    if kind == "topk":
        # SharedCutoff is thread-local machinery; per-shard cutoffs are
        # still exact (merely less cross-shard pruning).
        return collection.topk(task[1], task[2], cutoff=None)
    if kind == "batch_topk":
        return collection.topk_batch(task[1], task[2])
    raise ValueError(f"unknown process task kind {kind!r}")


def _run_task(
    token: int,
    shard: int,
    kind: str,
    task: tuple,
    trace_id: Optional[str],
    sampled: bool,
) -> tuple:
    """Worker entry: one shard's slice of one query fan-out.

    Returns ``(result, span, metrics)``.  For sampled traces ``span`` is
    the shard's completed :class:`~repro.obs.spans.SpanRecord` tree (the
    parent grafts it under the query root) and ``metrics`` is a registry
    snapshot of *this task's* counter/histogram increments — the worker
    registry is a fork-time copy the parent never sees, so the deltas
    ship home with the result and the parent folds them back in.  Both
    are ``None`` for unsampled tasks (muted, as in the thread backend)
    and when observability is off.
    """
    engine = _ENGINES.get(token)
    if engine is None:  # pragma: no cover - defensive: pool outlived registration
        raise RuntimeError(f"no engine registered under token {token} in worker")
    if _flt.ARMED:  # repro: noqa(REP012) — per-worker divergence is the point: the armed plan is fork-inherited and counters advance per process
        _flt.check("shard.query", shard=shard, kind=kind)
    if not (sampled and _ort.ENABLED):  # repro: noqa(REP012) — fork-inherited obs arming; the parent decides sampling and passes it in
        if _ort.ENABLED:
            # Unsampled trace: silence the collection's per-query
            # telemetry in this worker, mirroring the thread backend's
            # attach()-mute.
            _ort.mute()
        try:
            return _apply(engine, shard, task), None, None
        finally:
            if _ort.ENABLED:
                _ort.unmute()
    # Clear inherited/accumulated samples so the post-task snapshot is
    # exactly this task's delta.  The worker registry is disposable: the
    # parent's registry is the durable one.
    _om.reset()
    attrs: dict[str, Any] = {"shard": shard, "backend": "process"}
    if trace_id is not None:
        attrs["trace_id"] = trace_id
    root = _osp.open_span(f"shard.{kind}", **attrs)
    try:
        result = _apply(engine, shard, task)
    except BaseException as exc:  # repro: noqa(REP005) — span annotates the failure kind, then re-raises unchanged
        root.attrs["error"] = type(exc).__name__
        _osp.close_span(root)
        raise
    _osp.close_span(root)
    metrics = _om.registry().snapshot()
    # Gauges describe *current parent state* (index sizes, shard points);
    # a worker's fork-time view must not overwrite them on restore.
    metrics["metrics"] = [
        entry
        for entry in metrics["metrics"]
        if entry["type"] != "gauge" and entry["series"]
    ]
    return result, root, metrics


class ProcessShardPool:
    """A fork-context :class:`ProcessPoolExecutor` bound to one engine.

    Construction registers the engine for worker visibility; workers fork
    lazily on first submit, inheriting everything registered so far.  The
    pool must be discarded (see :meth:`shutdown`) whenever the engine
    mutates — the owning engine does this from every maintenance method.
    """

    def __init__(self, engine: "ShardedFunctionIndex", max_workers: int) -> None:
        if not fork_available():
            raise ValueError(
                "backend='process' requires the fork start method, which this "
                "platform does not provide; use backend='thread'"
            )
        self._token = _register(engine)
        # Workers inherit the fault plan armed at fork time; the owning
        # engine compares this against the live generation and discards
        # the pool when arm()/disarm() happened since.
        self.fault_generation = _flt.GENERATION
        self._executor: ProcessPoolExecutor | None = ProcessPoolExecutor(
            max_workers=max_workers,
            mp_context=multiprocessing.get_context("fork"),
        )

    def submit(
        self,
        shard: int,
        kind: str,
        task: tuple,
        trace_id: Optional[str],
        sampled: bool,
    ) -> Future:
        """Schedule one shard task; returns the pending future."""
        executor = self._executor
        if executor is None:  # pragma: no cover - defensive: submit after shutdown
            raise RuntimeError("process shard pool is shut down")
        return executor.submit(_run_task, self._token, shard, kind, task, trace_id, sampled)

    def shutdown(self) -> None:
        """Tear the pool down and drop the worker-visible registration.

        Idempotent; queued-but-unstarted tasks are cancelled.  Workers
        exit once in-flight tasks drain — their copy-on-write snapshot
        dies with them, which is what makes this the engine's mutation
        barrier.
        """
        executor, self._executor = self._executor, None
        if executor is not None:
            executor.shutdown(wait=True, cancel_futures=True)
        _unregister(self._token)
