"""Shard-membership policies for the parallel execution engine.

Membership is a *pure function of the point id* — no per-point state, no
routing tables.  That is what lets :class:`~repro.parallel.view.FeatureStoreView`
stay a stateless filter over the shared :class:`~repro.core.feature_store.FeatureStore`:
any component can recompute which shard owns an id at any time and always
agree with every other component.

Two policies are provided (the trade-off mirrors classic distributed kNN
partitioning, e.g. HD-Index's distributed RDB layout):

``round_robin``
    ``shard(id) = id % S``.  Ids are assigned densely by the feature
    store, so consecutive inserts spread perfectly evenly across shards;
    deletions of contiguous id ranges, however, drain shards unevenly.

``hash``
    ``shard(id) = splitmix64(id) % S``.  A finalizing 64-bit mixer makes
    the shard of an id independent of insertion order and of any
    structure in the workload's delete pattern, at the cost of a few
    integer multiplies per id.
"""

from __future__ import annotations

import numpy as np

__all__ = ["SHARD_POLICIES", "assign_shards", "shard_ids"]

SHARD_POLICIES = ("round_robin", "hash")


def _splitmix64(values: np.ndarray) -> np.ndarray:
    """Vectorized splitmix64 finalizer (Steele et al.; public domain mixer).

    Operates in uint64 with wrap-around semantics — the mixer is *defined*
    over the 2^64 ring, so the hot-path float64/int64 dtype contract does
    not apply to this intentionally modular arithmetic.
    """
    # uint64 wrap-around is the definition of splitmix64, hence the
    # per-line REP002 suppressions below.
    z = values.astype(np.uint64, copy=True)  # repro: noqa(REP002)
    with np.errstate(over="ignore"):
        z += np.uint64(0x9E3779B97F4A7C15)  # repro: noqa(REP002)
        z = (z ^ (z >> np.uint64(30))) * np.uint64(0xBF58476D1CE4E5B9)  # repro: noqa(REP002)
        z = (z ^ (z >> np.uint64(27))) * np.uint64(0x94D4A2C62D024255)  # repro: noqa(REP002)
        z ^= z >> np.uint64(31)  # repro: noqa(REP002)
    return z


def assign_shards(
    ids: np.ndarray, n_shards: int, policy: str = "round_robin"
) -> np.ndarray:
    """Shard index (``0 .. n_shards-1``) owning each id, as ``int64``.

    Deterministic and stateless: the same ``(id, n_shards, policy)`` always
    maps to the same shard, across processes and across calls.
    """
    if n_shards <= 0:
        raise ValueError(f"n_shards must be positive, got {n_shards}")
    ids = np.ascontiguousarray(ids, dtype=np.int64)
    if np.any(ids < 0):
        raise ValueError("point ids must be nonnegative")
    if policy == "round_robin":
        return ids % np.int64(n_shards)
    if policy == "hash":
        # Modulus in uint64 space, cast back to the int64 contract dtype.
        return (_splitmix64(ids) % np.uint64(n_shards)).astype(np.int64)  # repro: noqa(REP002)
    raise ValueError(f"unknown shard policy {policy!r}; choose from {SHARD_POLICIES}")


def shard_ids(
    ids: np.ndarray, shard: int, n_shards: int, policy: str = "round_robin"
) -> np.ndarray:
    """Subset of ``ids`` owned by ``shard`` (order preserved)."""
    assignment = assign_shards(ids, n_shards, policy)
    ids = np.ascontiguousarray(ids, dtype=np.int64)
    return ids[assignment == shard]
