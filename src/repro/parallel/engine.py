"""Sharded parallel query execution over the Planar index machinery.

:class:`ShardedFunctionIndex` mirrors the
:class:`~repro.core.function_index.FunctionIndex` facade but partitions the
data into ``S`` shards, each owning its own
:class:`~repro.core.collection.PlanarIndexCollection` over a
:class:`~repro.parallel.view.FeatureStoreView` of one shared feature store.
Queries fan out across shards on a thread pool by default — numpy releases
the GIL inside ``matmul`` and ``searchsorted``, so the per-shard interval
splits and verification products genuinely overlap without process-level
parallelism.  ``backend="process"`` (or ``REPRO_SHARD_BACKEND=process``)
switches query fan-outs to forked worker processes
(:mod:`repro.parallel.process`), which also overlap the pure-Python
sections and share memmap'd store pages; answers are bit-identical across
backends.

Exactness
---------
Results are *bit-identical* to the monolithic path:

* Point ids are global (the shared store assigns them); each shard answers
  over a disjoint id subset, so inequality/range answers merge by one
  ``sort(concatenate(...))`` into exactly the monolithic sorted id array.
* All shards share one translator and the same index normals, so octant
  validation, query canonicalization, and per-point scalar products are
  the same floating-point computations as the monolithic path.
* Top-k runs Algorithm 2 once per shard against a *shared* pruning
  threshold (:class:`~repro.core.topk.SharedCutoff`): each shard's
  buffered k-th distance is an upper bound on the global k-th best (the
  shard exhibits ``k`` real points at or below it), so folding the
  minimum of all published bounds into every shard's LBS cutoff preserves
  Claim 3 while letting one shard's good candidates terminate another
  shard's scan.  The strict cutoff comparison keeps boundary candidates,
  so tie-breaks by id survive the merge through
  :class:`~repro.core.topk.TopKBuffer` unchanged.

The single-shard configuration bypasses both the view and the executor —
shard 0 *is* the monolithic collection — so ``n_shards=1`` costs only the
facade indirection.

Fault tolerance (see ``docs/reliability.md``)
---------------------------------------------
Each fan-out wave collects per-shard results under an optional per-query
deadline (``query_timeout_s``).  A shard failure is handled per the
configured :class:`~repro.reliability.degraded.FailurePolicy`:

``raise``
    Propagate a :class:`~repro.exceptions.ShardFailureError` carrying the
    failed shard's identity and fan-out kind; still-pending futures are
    cancelled instead of leaking work.
``degrade``
    Recover the failed shards by an exact sequential scan of their live
    points when possible; shards that cannot be recovered are dropped and
    the answer carries a :class:`~repro.reliability.degraded.DegradedInfo`
    with the exact live-point completeness fraction.
``retry_then_degrade``
    Re-execute failed shards (bounded attempts, exponential backoff with
    deterministic jitter) before falling back to ``degrade`` handling.

Failed shards never contribute partial results — a shard either returns
its complete slice (primary, retry, or recovery scan: all exact) or is
excluded and accounted for — so every id in a degraded answer is correct.
Maintenance fan-outs retry under ``retry_then_degrade`` but never degrade:
a mutation that cannot be applied raises, because silently dropping a
shard's update would corrupt the partition.
"""

from __future__ import annotations

import os
import random
import time
from concurrent.futures import ThreadPoolExecutor
from concurrent.futures import TimeoutError as _FutTimeout
from concurrent.futures.process import BrokenProcessPool
from typing import Callable, Sequence, TypeVar

import numpy as np

from .._util import as_2d_float, as_rng, require_finite_rows
from ..core.collection import PlanarIndexCollection
from ..core.domains import QueryModel
from ..core.feature_store import FeatureStore
from ..core.function_index import QueryAnswer
from ..core.phi import FeatureMap, identity_map
from ..core.planar import QueryResult, WorkingQuery
from ..core.query import Comparison, ScalarProductQuery
from ..core.selection import SelectionStrategy
from ..core.stats import QueryStats
from ..core.topk import SharedCutoff, TopKBuffer, TopKResult
from ..exceptions import (
    DegradedAnswerError,
    DimensionMismatchError,
    IndexBuildError,
    InjectedFaultError,
    InvalidQueryError,
    QueryTimeoutError,
    ReproError,
    ShardFailureError,
)
from ..geometry.translation import Translator
from ..obs import metrics as _om
from ..obs import runtime as _ort
from ..obs import spans as _osp
from ..obs import trace as _otr
from ..reliability import faults as _flt
from ..reliability.degraded import DegradedInfo, FailurePolicy
from ..tuning import recorder as _tnr
from .process import ProcessShardPool, fork_available
from .sharding import SHARD_POLICIES, assign_shards
from .view import FeatureStoreView

__all__ = ["ShardedFunctionIndex", "SHARD_BACKENDS"]

_T = TypeVar("_T")

#: Supported shard fan-out backends.
SHARD_BACKENDS = ("thread", "process")

#: Exception families treated as *caller errors* during maintenance:
#: deterministic validation failures that every shard would report
#: identically, re-raised unwrapped so existing error contracts hold.
_CALLER_ERRORS = (ValueError, KeyError, IndexError, TypeError)


def _is_shard_fault(error: BaseException) -> bool:
    """Whether ``error`` is an operational shard failure (vs caller error)."""
    if isinstance(error, (InjectedFaultError, ShardFailureError, TimeoutError)):
        return True
    if isinstance(error, ReproError):
        return False
    if isinstance(error, _CALLER_ERRORS):
        return False
    return True


def _merge_stats(parts: Sequence[QueryStats]) -> QueryStats:
    """Sum per-shard pruning diagnostics into one global view.

    Every field is additive over a disjoint partition of the points, so
    the merged fractions (pruned/verified) are the point-weighted means of
    the shard fractions.
    """
    return QueryStats(
        n_total=sum(p.n_total for p in parts),
        si_size=sum(p.si_size for p in parts),
        ii_size=sum(p.ii_size for p in parts),
        li_size=sum(p.li_size for p in parts),
        n_verified=sum(p.n_verified for p in parts),
        n_results=sum(p.n_results for p in parts),
    )


class ShardedFunctionIndex:
    """Sharded drop-in for :class:`~repro.core.function_index.FunctionIndex`.

    Parameters follow the monolithic facade, plus:

    n_shards:
        Number of data partitions ``S``.  ``1`` (the default) keeps the
        monolithic layout and executes inline.
    policy:
        Shard-membership policy, ``"round_robin"`` or ``"hash"``
        (:mod:`repro.parallel.sharding`).
    max_workers:
        Worker-pool size for the fan-out; defaults to
        ``min(n_shards, cpu_count)``.
    backend:
        Fan-out backend, ``"thread"`` (default) or ``"process"``.
        Threads overlap the GIL-releasing numpy sections; processes
        (fork-based, see :mod:`repro.parallel.process`) overlap the
        pure-Python sections too and share memmap'd store pages.
        ``None`` resolves ``REPRO_SHARD_BACKEND`` at construction,
        falling back to ``thread``.  Answers are bit-identical across
        backends.
    failure_policy:
        What to do when a shard of a fan-out fails:
        :class:`~repro.reliability.degraded.FailurePolicy` or its string
        name.  ``None`` (the default) resolves ``REPRO_FAULT_POLICY`` at
        construction, falling back to ``raise``.
    query_timeout_s:
        Per-query deadline for each fan-out wave; a shard that has not
        produced its slice by then counts as failed with a
        :class:`~repro.exceptions.QueryTimeoutError`.  ``None`` disables
        deadlines.
    max_retries:
        Bounded retry attempts per failed shard under
        ``retry_then_degrade`` (also applied to maintenance fan-outs).
    retry_backoff_s:
        Base backoff before retry attempt ``i``: the engine sleeps
        ``retry_backoff_s * 2**(i-1)`` scaled by a deterministic jitter
        in ``[0.5, 1.5)``.  The jitter uses its own fixed-seed RNG — not
        the engine's ``rng`` — so retries never perturb index-selection
        draws and answers stay bit-identical to the monolithic path.

    The engine is also a context manager; :meth:`close` shuts the pool
    down (idempotent, never raises, runs on ``__exit__`` even when the
    body raised).
    """

    def __init__(
        self,
        points: np.ndarray,
        query_model: QueryModel,
        feature_map: FeatureMap | None = None,
        n_indices: int = 10,
        normals: np.ndarray | None = None,
        strategy: SelectionStrategy | str = SelectionStrategy.MIN_STRETCH,
        scan_fallback: bool = True,
        margin: float = 0.0,
        rng: np.random.Generator | int | None = None,
        n_shards: int = 1,
        policy: str = "round_robin",
        max_workers: int | None = None,
        failure_policy: FailurePolicy | str | None = None,
        query_timeout_s: float | None = None,
        max_retries: int = 2,
        retry_backoff_s: float = 0.05,
        backend: str | None = None,
    ) -> None:
        if n_shards <= 0:
            raise ValueError(f"n_shards must be positive, got {n_shards}")
        if policy not in SHARD_POLICIES:
            raise ValueError(
                f"unknown shard policy {policy!r}; choose from {SHARD_POLICIES}"
            )
        if backend is None:
            backend = os.environ.get("REPRO_SHARD_BACKEND", "").strip() or "thread"
        if backend not in SHARD_BACKENDS:
            raise ValueError(
                f"unknown shard backend {backend!r}; choose from {SHARD_BACKENDS}"
            )
        if backend == "process" and not fork_available():
            raise ValueError(
                "backend='process' requires the fork start method, which this "
                "platform does not provide; use backend='thread'"
            )
        if query_timeout_s is not None and not query_timeout_s > 0:
            raise ValueError(
                f"query_timeout_s must be positive or None, got {query_timeout_s}"
            )
        if max_retries < 0:
            raise ValueError(f"max_retries must be >= 0, got {max_retries}")
        if retry_backoff_s < 0:
            raise ValueError(f"retry_backoff_s must be >= 0, got {retry_backoff_s}")
        pts = as_2d_float(points, "points")
        if feature_map is None:
            feature_map = identity_map(pts.shape[1])
        if feature_map.in_dim != pts.shape[1]:
            raise DimensionMismatchError(
                f"points have dimension {pts.shape[1]}, feature map expects "
                f"{feature_map.in_dim}"
            )
        if query_model.dim != feature_map.out_dim:
            raise DimensionMismatchError(
                f"query model has dimension {query_model.dim}, feature map "
                f"produces {feature_map.out_dim}"
            )
        self._phi = feature_map
        self._model = query_model
        self._scan_fallback = bool(scan_fallback)
        self._rng = as_rng(rng)
        self._n_shards = int(n_shards)
        self._policy = str(policy)
        self._max_workers = (
            min(self._n_shards, os.cpu_count() or 1)
            if max_workers is None
            else int(max_workers)
        )
        self._executor: ThreadPoolExecutor | None = None
        self._backend = str(backend)
        self._process_pool: ProcessShardPool | None = None
        self._failure_policy = FailurePolicy.parse(failure_policy)
        self._query_timeout_s = (
            None if query_timeout_s is None else float(query_timeout_s)
        )
        self._max_retries = int(max_retries)
        self._retry_backoff_s = float(retry_backoff_s)
        # Deterministic retry jitter.  Deliberately NOT self._rng: the
        # selection strategy may consume self._rng per query, so any extra
        # draw here would desynchronize sharded answers from FunctionIndex.
        self._jitter = random.Random(0)

        self._points = FeatureStore(pts)
        features = feature_map(pts)
        self._features = FeatureStore(features)
        self._translator = Translator(query_model.octant(), margin=margin)
        self._translator.observe(features)

        if normals is None:
            if n_indices <= 0:
                raise IndexBuildError(
                    f"index budget must be positive, got {n_indices}"
                )
            normals = query_model.sample_normals(n_indices, self._rng)
        normals = np.ascontiguousarray(normals, dtype=np.float64)

        # Every shard indexes the same normals over its own slice of the
        # shared store; the single-shard layout *is* the monolithic one.
        self._stores: list[FeatureStore | FeatureStoreView] = []
        self._collections: list[PlanarIndexCollection] = []
        for shard in range(self._n_shards):
            store: FeatureStore | FeatureStoreView
            if self._n_shards == 1:
                store = self._features
                prefix = ""
            else:
                store = FeatureStoreView(
                    self._features, shard, self._n_shards, self._policy
                )
                prefix = f"s{shard}:"
            self._stores.append(store)
            self._collections.append(
                PlanarIndexCollection(
                    store,
                    self._translator,
                    normals,
                    strategy,
                    self._rng,
                    obs_prefix=prefix,
                )
            )
        self._record_shard_sizes()

    # ------------------------------------------------------------------ #
    # Lifecycle
    # ------------------------------------------------------------------ #

    def close(self) -> None:
        """Shut down the fan-out worker pools (thread and process).

        Idempotent and exception-safe: each pool reference is cleared
        *before* shutdown, so a second :meth:`close` (or closing after an
        in-query failure) is a no-op, and shutdown errors are swallowed —
        teardown must never mask the exception that triggered it.
        """
        pool, self._process_pool = self._process_pool, None
        if pool is not None:
            try:
                pool.shutdown()
            except Exception:  # repro: noqa(REP005) — close() must never raise (teardown path)
                pass
        executor, self._executor = self._executor, None
        if executor is None:
            return
        try:
            executor.shutdown(wait=True, cancel_futures=True)
        except Exception:  # repro: noqa(REP005) — close() must never raise (teardown path)
            pass

    def _invalidate_process_pool(self) -> None:
        """Discard the forked worker pool (mutation barrier / teardown).

        Workers snapshot the engine at fork time, so every mutation calls
        this before changing state; the next process fan-out forks a
        fresh pool that sees the current stores, keys, and translator.
        Never raises — it runs on teardown paths too.
        """
        pool, self._process_pool = self._process_pool, None
        if pool is None:
            return
        try:
            pool.shutdown()
        except Exception:  # repro: noqa(REP005) — teardown must never mask the mutation/exception that triggered it
            pass

    def __enter__(self) -> "ShardedFunctionIndex":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    def _ensure_executor(self) -> ThreadPoolExecutor:
        if self._executor is None:
            self._executor = ThreadPoolExecutor(
                max_workers=self._max_workers,
                thread_name_prefix="repro-shard",
            )
        return self._executor

    def _ensure_process_pool(self) -> ProcessShardPool:
        pool = self._process_pool
        if pool is not None and pool.fault_generation != _flt.GENERATION:
            # arm()/disarm() happened after the workers forked; their
            # inherited plan is stale, so refork under the current one.
            self._invalidate_process_pool()
            pool = None
        if pool is None:
            pool = ProcessShardPool(self, self._max_workers)
            self._process_pool = pool
        return pool

    # ------------------------------------------------------------------ #
    # Introspection
    # ------------------------------------------------------------------ #

    def __len__(self) -> int:
        """Number of live indexed points (across all shards)."""
        return len(self._features)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"ShardedFunctionIndex(n={len(self)}, shards={self._n_shards}, "
            f"policy={self._policy!r}, r={self.n_indices})"
        )

    @property
    def n_shards(self) -> int:
        """Number of data partitions."""
        return self._n_shards

    @property
    def policy(self) -> str:
        """Shard-membership policy."""
        return self._policy

    @property
    def backend(self) -> str:
        """Resolved fan-out backend (``thread`` or ``process``)."""
        return self._backend

    @property
    def failure_policy(self) -> FailurePolicy:
        """The resolved shard-failure policy (fixed at construction)."""
        return self._failure_policy

    @property
    def query_timeout_s(self) -> float | None:
        """Per-query fan-out deadline in seconds (None = no deadline)."""
        return self._query_timeout_s

    @property
    def feature_map(self) -> FeatureMap:
        """The indexed function ``phi``."""
        return self._phi

    @property
    def query_model(self) -> QueryModel:
        """The configured query-parameter domains."""
        return self._model

    @property
    def translator(self) -> Translator:
        """The octant translator shared by every shard."""
        return self._translator

    @property
    def collections(self) -> tuple[PlanarIndexCollection, ...]:
        """Per-shard Planar index collections."""
        return tuple(self._collections)

    @property
    def n_indices(self) -> int:
        """Number of live Planar indices per shard."""
        return len(self._collections[0])

    def shard_sizes(self) -> list[int]:
        """Live point count owned by each shard."""
        return [len(store) for store in self._stores]

    def live_ids(self) -> np.ndarray:
        """All live point ids (global, ascending)."""
        return self._features.live_ids()

    def get_points(self, ids: np.ndarray) -> np.ndarray:
        """Raw data points for the given ids."""
        return self._points.get(ids)

    def get_features(self, ids: np.ndarray) -> np.ndarray:
        """Feature vectors ``phi(x)`` for the given ids."""
        return self._features.get(ids)

    def memory_bytes(self) -> int:
        """Footprint of features, raw points, and all shard key structures."""
        return (
            self._features.memory_bytes()
            + self._points.memory_bytes()
            + sum(collection.memory_bytes() for collection in self._collections)
        )

    def _record_shard_sizes(self) -> None:
        if not _ort.active():
            return
        gauge = _om.shard_points()
        for shard, store in enumerate(self._stores):
            gauge.set(len(store), shard=str(shard))

    # ------------------------------------------------------------------ #
    # Fan-out machinery
    # ------------------------------------------------------------------ #

    @staticmethod
    def _shard_cost(result: object) -> dict[str, int]:
        """Per-shard cost counters for span annotation (small scalars only).

        Understands the three fan-out result shapes: ``QueryResult``,
        ``TopKResult`` (adds the LBS ``lbs_checked`` counter), and a
        batch's ``list[QueryResult]`` (cell-wise sums).  These are the
        counters the stitched-trace property test reconciles against the
        merged answer's stats, so they must mirror ``_merge_stats``.
        """
        if isinstance(result, list):
            parts = [entry.stats for entry in result if entry.stats is not None]
            return {
                "verified": sum(part.n_verified for part in parts),
                "ii": sum(part.ii_size for part in parts),
                "results": sum(part.n_results for part in parts),
            }
        stats = getattr(result, "stats", None)
        cost: dict[str, int] = {}
        if stats is not None:
            cost.update(
                verified=stats.n_verified, ii=stats.ii_size, results=stats.n_results
            )
        n_checked = getattr(result, "n_checked", None)
        if n_checked is not None:
            cost["lbs_checked"] = int(n_checked)
        return cost

    def _run_shard(
        self, kind: str, shard: int, fn: Callable[[PlanarIndexCollection], _T]
    ) -> _T:
        """Execute one shard's slice of a query, with per-shard telemetry.

        Span recording uses thread-local stacks, so emitting from pool
        workers is safe; counters take one lock per increment.  The
        ``shard.query`` fault site fires *before* the work, so injected
        failures never leave partial shard state behind.  When a trace is
        attached, the shard's work runs inside a ``shard.<kind>`` span
        carrying the trace id and per-shard cost counters, so the inner
        collection spans nest under it in the stitched tree.
        """
        if _flt.ARMED:  # repro: noqa(REP012) — thread-shared by design; a process-pool backend must re-arm faults per worker
            _flt.check("shard.query", shard=shard, kind=kind)
        if not _ort.active():
            return fn(self._collections[shard])
        ctx = _otr.current()
        attrs: dict[str, object] = {"shard": shard}
        if ctx is not None:
            attrs["trace_id"] = ctx.trace_id
        with _osp.span(f"shard.{kind}", **attrs) as shard_span:
            try:
                result = fn(self._collections[shard])
            except BaseException as exc:  # repro: noqa(REP005) — span annotates the failure kind, then re-raises unchanged
                shard_span.annotate(error=type(exc).__name__)
                raise
            shard_span.annotate(**self._shard_cost(result))
        _om.shard_queries_total().inc(kind=kind, shard=str(shard))
        return result

    def _run_shard_traced(
        self,
        ctx: _otr.TraceContext | None,
        kind: str,
        shard: int,
        fn: Callable[[PlanarIndexCollection], _T],
    ) -> _T:
        """Worker-thread entry: restore the issuing query's trace context.

        ``ctx`` is captured on the submitting thread (``_otr.current()``)
        and re-entered here so the worker inherits both the stitched span
        tree (sampled traces) and the sampling mute (unsampled ones).
        """
        with _otr.attach(ctx):
            return self._run_shard(kind, shard, fn)

    def _execute_wave(
        self,
        kind: str,
        fn: Callable[[PlanarIndexCollection], _T],
        shards: Sequence[int],
        deadline: float | None,
        fail_fast: bool,
        timeout_s: float | None = None,
    ) -> tuple[dict[int, _T], dict[int, BaseException]]:
        """Run ``fn`` on ``shards``; collect per-shard results and failures.

        With a ``deadline`` (monotonic timestamp), each pending result is
        awaited only for the remaining budget; misses become
        :class:`QueryTimeoutError` and the stale future is cancelled.
        Under ``fail_fast`` the first failure cancels every not-yet-started
        future instead of leaking queued work.
        """
        results: dict[int, _T] = {}
        failures: dict[int, BaseException] = {}
        if self._n_shards == 1 and deadline is None:
            try:
                results[0] = self._run_shard(kind, 0, fn)
            except Exception as exc:  # repro: noqa(REP005) — fan-out failure boundary, classified by policy
                failures[0] = exc
            return results, failures
        executor = self._ensure_executor()
        ctx = _otr.current()
        futures = {
            shard: executor.submit(self._run_shard_traced, ctx, kind, shard, fn)
            for shard in shards
        }
        for shard, future in futures.items():
            if fail_fast and failures:
                future.cancel()
                continue
            remaining: float | None = None
            if deadline is not None:
                remaining = max(0.0, deadline - time.monotonic())
            try:
                results[shard] = future.result(timeout=remaining)
            except _FutTimeout:
                future.cancel()
                failures[shard] = QueryTimeoutError(
                    f"shard {shard} missed the "
                    f"{timeout_s if timeout_s is not None else self._query_timeout_s}s "
                    f"deadline during {kind} fan-out",
                    shard=shard,
                    kind=kind,
                )
            except Exception as exc:  # repro: noqa(REP005) — fan-out failure boundary, classified by policy
                failures[shard] = exc
        return results, failures

    def _execute_process_wave(
        self,
        kind: str,
        task: tuple,
        shards: Sequence[int],
        deadline: float | None,
        fail_fast: bool,
        timeout_s: float | None = None,
    ) -> tuple[dict[int, _T], dict[int, BaseException]]:
        """Run a task descriptor on ``shards`` via forked worker processes.

        Mirrors :meth:`_execute_wave` semantics — per-shard deadline
        budgets, ``fail_fast`` cancellation of queued work — over the
        process backend.  Workers return ``(result, span, metrics)``;
        sampled traces get the worker's ``shard.<kind>`` span tree
        grafted under the query root here, on the issuing thread, and the
        worker's counter/histogram deltas folded into the parent registry
        — so stitched traces and per-query series look identical across
        backends.  Faults that *fired* in a worker and surfaced as
        :class:`InjectedFaultError` are re-counted here (the worker-side
        increment died with its registry copy).  A broken pool (worker
        hard death) fails the affected shards and discards the pool so
        the next fan-out forks a fresh one.
        """
        results: dict[int, _T] = {}
        failures: dict[int, BaseException] = {}
        pool = self._ensure_process_pool()
        ctx = _otr.current()
        sampled = bool(ctx is not None and ctx.sampled and _ort.ENABLED)
        trace_id = ctx.trace_id if sampled and ctx is not None else None
        graft = ctx.root if sampled and ctx is not None else None
        futures = {
            shard: pool.submit(shard, kind, task, trace_id, sampled)
            for shard in shards
        }
        obs_on = _ort.active()
        broken = False
        for shard, future in futures.items():
            if fail_fast and failures:
                future.cancel()
                continue
            remaining: float | None = None
            if deadline is not None:
                remaining = max(0.0, deadline - time.monotonic())
            try:
                result, span, metrics = future.result(timeout=remaining)
            except _FutTimeout:
                future.cancel()
                failures[shard] = QueryTimeoutError(
                    f"shard {shard} missed the "
                    f"{timeout_s if timeout_s is not None else self._query_timeout_s}s "
                    f"deadline during {kind} fan-out",
                    shard=shard,
                    kind=kind,
                )
                continue
            except Exception as exc:  # repro: noqa(REP005) — fan-out failure boundary, classified by policy
                failures[shard] = exc
                if isinstance(exc, BrokenProcessPool):
                    broken = True
                elif _ort.ENABLED and isinstance(exc, InjectedFaultError) and exc.site:
                    # The worker counted the fire into its own registry
                    # copy and then died with it; mirror the thread
                    # backend by counting it here.
                    _om.faults_injected_total().inc(site=exc.site, kind="error")
                continue
            results[shard] = result
            if span is not None and graft is not None:
                span.attrs.update(self._shard_cost(result))
                graft.children.append(span)
            if metrics is not None:
                _om.registry().restore(metrics)
            if obs_on:
                _om.shard_queries_total().inc(kind=kind, shard=str(shard))
        if broken:
            self._invalidate_process_pool()
        return results, failures

    def _gather_fast(
        self,
        kind: str,
        fn: Callable[[PlanarIndexCollection], _T],
        policy: FailurePolicy,
    ) -> tuple[dict[int, _T], dict[int, BaseException]]:
        """Minimal-overhead fan-out for the disarmed/no-deadline case.

        Submits ``fn`` against each collection directly — no
        :meth:`_run_shard` wrapper frame, no per-future deadline math, no
        fault-site or telemetry probes (the caller checked those are all
        off).  Failure handling matches :meth:`_execute_wave`: under
        ``RAISE`` the first failure cancels the not-yet-started futures
        and propagates with shard identity; degrading policies collect
        every shard's outcome for the retry/recovery machinery.
        """
        results: dict[int, _T] = {}
        failures: dict[int, BaseException] = {}
        collections = self._collections
        if self._n_shards == 1:
            try:
                results[0] = fn(collections[0])
            except Exception as exc:  # repro: noqa(REP005) — fan-out failure boundary, classified by policy
                if policy is FailurePolicy.RAISE:
                    raise self._wrap_failure(kind, 0, exc) from exc
                failures[0] = exc
            return results, failures
        executor = self._ensure_executor()
        futures = [executor.submit(fn, collection) for collection in collections]
        for shard, future in enumerate(futures):
            try:
                results[shard] = future.result()
            except Exception as exc:  # repro: noqa(REP005) — fan-out failure boundary, classified by policy
                if policy is FailurePolicy.RAISE:
                    for pending in futures[shard + 1 :]:
                        pending.cancel()
                    raise self._wrap_failure(kind, shard, exc) from exc
                failures[shard] = exc
        return results, failures

    def _wrap_failure(
        self, kind: str, shard: int, error: BaseException
    ) -> ShardFailureError:
        """Attach shard identity to a propagated fan-out failure."""
        if isinstance(error, ShardFailureError):
            return error
        return ShardFailureError(
            f"shard {shard} failed during {kind} fan-out: "
            f"{type(error).__name__}: {error}",
            shard=shard,
            kind=kind,
        )

    def _backoff(self, attempt: int) -> None:
        """Sleep before retry ``attempt`` (exponential, deterministic jitter)."""
        if self._retry_backoff_s <= 0:
            return
        delay = self._retry_backoff_s * (2 ** (attempt - 1))
        delay *= 0.5 + self._jitter.random()
        time.sleep(delay)

    def _record_retry(
        self, kind: str, shards: Sequence[int], attempt: int, started: float
    ) -> None:
        # Reliability counters stay exact under head sampling (ENABLED),
        # while the span only joins sampled traces (active()).
        if not _ort.ENABLED:  # repro: noqa(REP012) — thread-shared flag; a process-pool backend must re-enable obs per worker
            return
        _om.shard_retries_total().inc(len(shards), kind=kind)
        if _ort.active():
            _osp.record(
                "shard.retry", started, kind=kind, attempt=attempt, shards=len(shards)
            )

    def _record_degraded(self, kind: str, degraded: DegradedInfo) -> None:
        if not _ort.ENABLED:  # repro: noqa(REP012) — thread-shared flag; a process-pool backend must re-enable obs per worker
            return
        _om.degraded_queries_total().inc(kind=kind)
        if _ort.active():
            _osp.record(
                "shard.degrade",
                time.perf_counter(),
                kind=kind,
                failed=len(degraded.failed_shards),
                recovered=len(degraded.recovered_shards),
                completeness=round(degraded.completeness, 6),
            )

    def _map_shards(
        self,
        kind: str,
        fn: Callable[[PlanarIndexCollection], _T],
        recover: Callable[[int], _T] | None = None,
        task: tuple | None = None,
        timeout_s: float | None = None,
    ) -> tuple[list[_T | None], DegradedInfo | None]:
        """Run ``fn`` against every shard under the failure policy.

        ``timeout_s`` overrides the engine's construction-time
        ``query_timeout_s`` for this one fan-out — the serving layer
        passes a request's remaining deadline budget here so the engine
        wave honors the end-to-end contract instead of a static knob.

        ``task`` is the fan-out's picklable descriptor for the process
        backend (see :mod:`repro.parallel.process`); when the engine was
        built with ``backend="process"`` and the layout is actually
        sharded, the wave executes on forked workers instead of ``fn`` on
        threads — same answers, same failure handling.  Fan-outs without
        a descriptor (maintenance) always run in the parent.

        Returns ``(results, degraded)`` where ``results[shard]`` is the
        shard's slice (or ``None`` for an unrecovered shard under a
        degrading policy) and ``degraded`` is ``None`` unless at least one
        shard failed its primary execution.  Raises
        :class:`ShardFailureError` (with shard identity) under
        ``FailurePolicy.RAISE`` and :class:`DegradedAnswerError` when no
        shard survives.
        """
        policy = self._failure_policy
        timeout = self._query_timeout_s if timeout_s is None else float(timeout_s)
        if timeout is not None and not timeout > 0:
            raise ValueError(f"timeout_s must be positive, got {timeout}")
        use_process = (
            task is not None and self._backend == "process" and self._n_shards > 1
        )
        if (
            self._n_shards == 1
            and timeout is None
            and policy is FailurePolicy.RAISE
            and not _flt.ARMED
        ):
            # Hot path: monolithic layout, no reliability features active.
            return [self._run_shard(kind, 0, fn)], None
        shards = list(range(self._n_shards))
        if use_process:
            deadline = None if timeout is None else time.monotonic() + timeout
            results, failures = self._execute_process_wave(
                kind,
                task,
                shards,
                deadline,
                fail_fast=policy is FailurePolicy.RAISE,
                timeout_s=timeout,
            )
        elif timeout is None and not _flt.ARMED and not _ort.ENABLED:
            # Disarmed fast path: no deadlines to track, no fault sites to
            # probe, no telemetry to stamp — submit the shard work directly
            # (skipping the `_run_shard` wrapper frame) and only pay for
            # failure bookkeeping when something actually fails.
            results, failures = self._gather_fast(kind, fn, policy)
        else:
            deadline = None if timeout is None else time.monotonic() + timeout
            results, failures = self._execute_wave(
                kind,
                fn,
                shards,
                deadline,
                fail_fast=policy is FailurePolicy.RAISE,
                timeout_s=timeout,
            )
        if not failures:
            return [results[shard] for shard in shards], None
        first_shard = min(failures)
        first_error = failures[first_shard]
        if policy is FailurePolicy.RAISE:
            raise self._wrap_failure(kind, first_shard, first_error) from first_error
        retries = 0
        retry_recovered: list[int] = []
        if policy is FailurePolicy.RETRY_THEN_DEGRADE:
            for attempt in range(1, self._max_retries + 1):
                if not failures:
                    break
                retry_shards = sorted(failures)
                started = time.perf_counter()
                self._backoff(attempt)
                wave_deadline = (
                    None if timeout is None else time.monotonic() + timeout
                )
                if use_process:
                    recovered_wave, failures = self._execute_process_wave(
                        kind,
                        task,
                        retry_shards,
                        wave_deadline,
                        fail_fast=False,
                        timeout_s=timeout,
                    )
                else:
                    recovered_wave, failures = self._execute_wave(
                        kind,
                        fn,
                        retry_shards,
                        wave_deadline,
                        fail_fast=False,
                        timeout_s=timeout,
                    )
                retries += len(retry_shards)
                results.update(recovered_wave)
                retry_recovered.extend(recovered_wave)
                self._record_retry(kind, retry_shards, attempt, started)
        scan_recovered: list[int] = []
        failed: list[int] = []
        for shard in sorted(failures):
            if recover is None:
                failed.append(shard)
                continue
            try:
                if _flt.ARMED:
                    _flt.check("shard.scan", shard=shard, kind=kind)
                obs_on = _ort.active()
                started = time.perf_counter() if obs_on else 0.0
                results[shard] = recover(shard)
                scan_recovered.append(shard)
                if obs_on:
                    _osp.record(
                        "shard.recover",
                        started,
                        shard=shard,
                        kind=kind,
                        **self._shard_cost(results[shard]),
                    )
            except Exception:  # repro: noqa(REP005) — recovery is best-effort; failures are accounted, not raised
                failed.append(shard)
        if len(failed) == self._n_shards:
            raise DegradedAnswerError(
                f"every shard failed during {kind} fan-out; no degraded "
                f"answer is possible (first cause: "
                f"{type(first_error).__name__}: {first_error})"
            ) from first_error
        sizes = self.shard_sizes()
        total = sum(sizes)
        dead = set(failed)
        covered = sum(size for shard, size in enumerate(sizes) if shard not in dead)
        degraded = DegradedInfo(
            failed_shards=tuple(failed),
            recovered_shards=tuple(sorted(set(retry_recovered) | set(scan_recovered))),
            cause=f"{type(first_error).__name__}: {first_error}",
            completeness=(covered / total) if total else 1.0,
            retries=retries,
        )
        self._record_degraded(kind, degraded)
        return [results.get(shard) for shard in shards], degraded

    def _owned(self, ids: np.ndarray) -> list[np.ndarray]:
        """Boolean ownership masks of ``ids`` for every shard."""
        assignment = assign_shards(ids, self._n_shards, self._policy)
        return [assignment == shard for shard in range(self._n_shards)]

    def _working_or_raise(self, spq: ScalarProductQuery) -> WorkingQuery:
        """Octant-validate once (the translator is shared by all shards)."""
        return WorkingQuery.build(spq, self._translator)

    def _check_dim(self, spq: ScalarProductQuery) -> None:
        if spq.dim != self._phi.out_dim:
            raise DimensionMismatchError(
                f"query has dimension {spq.dim}, feature space has {self._phi.out_dim}"
            )

    def _fallback_scan(self, spq: ScalarProductQuery, kind: str) -> np.ndarray:
        """Octant-fallback: one scan over the shared store (all shards)."""
        obs_on = _ort.active()
        started = time.perf_counter() if obs_on else 0.0
        ids, rows = self._features.get_all()
        mask = spq.evaluate(rows)
        result = np.sort(ids[mask])
        if obs_on:
            _om.queries_total().inc(kind=kind, route="octant-fallback", strategy="none")
            _om.verified_points().inc(len(self), kind=kind)
            _om.query_latency().observe(
                time.perf_counter() - started, kind=kind, route="octant-fallback"
            )
        return result

    # ------------------------------------------------------------------ #
    # Exact recovery scans (degraded mode)
    # ------------------------------------------------------------------ #

    def _shard_scan_stats(self, n_rows: int, n_results: int) -> QueryStats:
        """Diagnostics for a recovery scan: every row verified, none pruned."""
        return QueryStats(
            n_total=n_rows,
            si_size=n_rows,
            ii_size=n_rows,
            li_size=0,
            n_verified=n_rows,
            n_results=n_results,
        )

    def _recover_inequality(
        self, spq: ScalarProductQuery, shard: int
    ) -> QueryResult:
        """Exact fallback for one failed shard: scan its live points."""
        ids, rows = self._stores[shard].get_all()
        hits = np.sort(ids[spq.evaluate(rows)])
        return QueryResult(hits, self._shard_scan_stats(int(ids.size), int(hits.size)))

    def _recover_batch(
        self, queries: Sequence[ScalarProductQuery], shard: int
    ) -> list[QueryResult]:
        """Exact fallback for one failed shard of a batch fan-out."""
        ids, rows = self._stores[shard].get_all()
        out: list[QueryResult] = []
        for spq in queries:
            hits = np.sort(ids[spq.evaluate(rows)])
            out.append(
                QueryResult(hits, self._shard_scan_stats(int(ids.size), int(hits.size)))
            )
        return out

    def _recover_range(
        self,
        low_q: ScalarProductQuery,
        high_q: ScalarProductQuery,
        shard: int,
    ) -> QueryResult:
        """Exact fallback for one failed shard of a range fan-out."""
        ids, rows = self._stores[shard].get_all()
        mask = low_q.evaluate(rows) & high_q.evaluate(rows)
        hits = np.sort(ids[mask])
        return QueryResult(hits, self._shard_scan_stats(int(ids.size), int(hits.size)))

    def _recover_topk(
        self, spq: ScalarProductQuery, k: int, shard: int
    ) -> TopKResult:
        """Exact fallback for one failed shard of a top-k fan-out."""
        from ..scan.baseline import SequentialScan

        ids, rows = self._stores[shard].get_all()
        return SequentialScan(rows, ids).topk(spq, k)

    def _recover_topk_batch(
        self, queries: Sequence[ScalarProductQuery], k: int, shard: int
    ) -> list[TopKResult]:
        """Exact fallback for one failed shard of a batched top-k fan-out."""
        from ..scan.baseline import SequentialScan

        ids, rows = self._stores[shard].get_all()
        scan = SequentialScan(rows, ids)
        return [scan.topk(spq, k) for spq in queries]

    @staticmethod
    def _merge_inequality(
        results: Sequence[QueryResult | None],
        degraded: DegradedInfo | None = None,
    ) -> QueryAnswer:
        """Disjoint sorted id sets merge into the monolithic sorted array.

        ``None`` entries (unrecovered shards under a degrading policy) are
        skipped; their absence is what ``degraded.completeness`` accounts.
        """
        present = [result for result in results if result is not None]
        if len(present) == 1:
            only = present[0]
            return QueryAnswer(only.ids, only.stats, False, degraded)
        ids = np.sort(np.concatenate([result.ids for result in present]))
        return QueryAnswer(
            ids, _merge_stats([result.stats for result in present]), False, degraded
        )

    # ------------------------------------------------------------------ #
    # Queries
    # ------------------------------------------------------------------ #

    def _finish_trace(
        self,
        ctx: _otr.TraceContext,
        *,
        stats: QueryStats | None,
        degraded: DegradedInfo | None,
        results: int,
        n_queries: int = 1,
        lbs_checked: int | None = None,
    ) -> None:
        """Close a facade trace: completeness observation + query-log record.

        Completeness is observed for *every* trace (sampled or not) so
        the SLO completeness floor is evaluated over exact data; the
        per-stage cost counters ride the query-log record, which is
        emitted per the head-sampling / slow-query rules in
        :mod:`repro.obs.trace`.
        """
        if _ort.ENABLED:  # repro: noqa(REP012) — thread-shared flag; a process-pool backend must re-enable obs per worker
            _om.answer_completeness().observe(
                degraded.completeness if degraded is not None else 1.0,
                kind=ctx.kind,
            )
        def cost() -> dict:
            counters = stats.to_dict() if stats is not None else {}
            if lbs_checked is not None:
                counters = dict(counters)
                counters["lbs_checked"] = lbs_checked
            return counters

        _otr.finish(
            ctx,
            stats=cost,
            degraded=degraded,
            shards=self._n_shards,
            retries=degraded.retries if degraded is not None else 0,
            n_queries=n_queries,
            results=results,
        )

    def query(
        self,
        normal: np.ndarray,
        offset: float,
        op: Comparison | str = Comparison.LE,
    ) -> QueryAnswer:
        """Answer ``<normal, phi(x)> OP offset`` exactly, fanned across shards."""
        ctx = _otr.begin("inequality", shards=self._n_shards)
        if ctx is None:
            return self._query_impl(normal, offset, op)
        try:
            answer = self._query_impl(normal, offset, op)
        except BaseException as exc:  # repro: noqa(REP005) — trace-abort boundary; telemetry closes, exception re-raised unchanged
            _otr.abort(ctx, exc)
            raise
        self._finish_trace(
            ctx, stats=answer.stats, degraded=answer.degraded, results=len(answer)
        )
        return answer

    def _query_impl(
        self,
        normal: np.ndarray,
        offset: float,
        op: Comparison | str = Comparison.LE,
    ) -> QueryAnswer:
        """Untraced body of :meth:`query` (shared by the trace wrapper)."""
        spq = ScalarProductQuery(np.asarray(normal, dtype=np.float64), offset, op)
        self._check_dim(spq)
        if _tnr.RECORDING:
            _tnr.record_query(spq.normal, spq.offset, spq.op.value, "inequality")
        try:
            self._working_or_raise(spq)
        except InvalidQueryError:
            if not self._scan_fallback:
                raise
            return QueryAnswer(self._fallback_scan(spq, "inequality"), None, True)
        results, degraded = self._map_shards(
            "inequality",
            lambda collection: collection.query(spq),
            recover=lambda shard: self._recover_inequality(spq, shard),
            task=("inequality", spq),
        )
        return self._merge_inequality(results, degraded)

    def query_batch(
        self,
        normals: np.ndarray,
        offsets: np.ndarray,
        op: Comparison | str = Comparison.LE,
        *,
        timeout_s: float | None = None,
    ) -> list[QueryAnswer]:
        """Answer a batch of inequality queries sharing one operator.

        The whole plannable batch is shipped to every shard as *one* task
        (each shard batches its own binary searches per selected index),
        so fan-out overhead is per shard, not per query.  The batch is
        one trace: per-query shard work appears as children of a single
        ``query.batch`` root.

        ``timeout_s`` overrides the engine's ``query_timeout_s`` for this
        call — the serving layer passes each coalesced batch's remaining
        deadline budget here.

        Validation and the empty-batch short-circuit run *before* the
        trace opens: a malformed or zero-query batch emits no trace, no
        spans, and no counters (it did no fan-out work to account for).
        """
        normals = as_2d_float(normals, "normals")
        offsets = np.ascontiguousarray(offsets, dtype=np.float64)
        if offsets.ndim != 1 or offsets.size != normals.shape[0]:
            raise DimensionMismatchError(
                f"{offsets.size} offsets for {normals.shape[0]} normals"
            )
        if normals.shape[0] == 0:
            return []
        ctx = _otr.begin("batch", shards=self._n_shards)
        if ctx is None:
            return self._query_batch_impl(normals, offsets, op, timeout_s=timeout_s)
        try:
            answers = self._query_batch_impl(normals, offsets, op, timeout_s=timeout_s)
        except BaseException as exc:  # repro: noqa(REP005) — trace-abort boundary; telemetry closes, exception re-raised unchanged
            _otr.abort(ctx, exc)
            raise
        parts = [answer.stats for answer in answers if answer.stats is not None]
        degraded = next(
            (answer.degraded for answer in answers if answer.degraded is not None), None
        )
        self._finish_trace(
            ctx,
            stats=_merge_stats(parts) if parts else None,
            degraded=degraded,
            results=sum(len(answer) for answer in answers),
            n_queries=len(answers),
        )
        return answers

    def _query_batch_impl(
        self,
        normals: np.ndarray,
        offsets: np.ndarray,
        op: Comparison | str = Comparison.LE,
        *,
        timeout_s: float | None = None,
    ) -> list[QueryAnswer]:
        """Untraced body of :meth:`query_batch` (inputs pre-validated)."""
        queries = [
            ScalarProductQuery(normals[row], float(offsets[row]), op)
            for row in range(normals.shape[0])
        ]
        if _tnr.RECORDING:
            for spq in queries:
                _tnr.record_query(spq.normal, spq.offset, spq.op.value, "batch")
        plannable: list[int] = []
        answers: list[QueryAnswer | None] = [None] * len(queries)
        for position, spq in enumerate(queries):
            self._check_dim(spq)
            try:
                self._working_or_raise(spq)
            except InvalidQueryError:
                if not self._scan_fallback:
                    raise
                answers[position] = QueryAnswer(
                    self._fallback_scan(spq, "batch"), None, True
                )
                continue
            plannable.append(position)
        if plannable:
            subset = [queries[position] for position in plannable]
            per_shard, degraded = self._map_shards(
                "batch",
                lambda collection: collection.query_batch(subset),
                recover=lambda shard: self._recover_batch(subset, shard),
                task=("batch", subset),
                timeout_s=timeout_s,
            )
            for slot, position in enumerate(plannable):
                answers[position] = self._merge_inequality(
                    [
                        shard_results[slot] if shard_results is not None else None
                        for shard_results in per_shard
                    ],
                    degraded,
                )
        return answers  # type: ignore[return-value]

    def query_range(
        self,
        normal: np.ndarray,
        low: float,
        high: float,
    ) -> QueryAnswer:
        """Exact BETWEEN query: ``low <= <normal, phi(x)> <= high``."""
        ctx = _otr.begin("range", shards=self._n_shards)
        if ctx is None:
            return self._query_range_impl(normal, low, high)
        try:
            answer = self._query_range_impl(normal, low, high)
        except BaseException as exc:  # repro: noqa(REP005) — trace-abort boundary; telemetry closes, exception re-raised unchanged
            _otr.abort(ctx, exc)
            raise
        self._finish_trace(
            ctx, stats=answer.stats, degraded=answer.degraded, results=len(answer)
        )
        return answer

    def _query_range_impl(
        self,
        normal: np.ndarray,
        low: float,
        high: float,
    ) -> QueryAnswer:
        """Untraced body of :meth:`query_range`."""
        if not low <= high:
            raise InvalidQueryError(f"empty range ({low}, {high})")
        low_q = ScalarProductQuery(np.asarray(normal, dtype=np.float64), low, ">=")
        high_q = ScalarProductQuery(np.asarray(normal, dtype=np.float64), high, "<=")
        self._check_dim(low_q)
        if _tnr.RECORDING:
            # One sketch per bound (same normal, both operators).
            _tnr.record_query(low_q.normal, low, ">=", "range")
            _tnr.record_query(high_q.normal, high, "<=", "range")
        try:
            wq_low = self._working_or_raise(low_q)
            wq_high = self._working_or_raise(high_q)
        except InvalidQueryError:
            if not self._scan_fallback:
                raise
            obs_on = _ort.active()
            started = time.perf_counter() if obs_on else 0.0
            ids, rows = self._features.get_all()
            values = rows @ low_q.normal  # repro: noqa(REP001) — explicit opt-in scan fallback (guarded above)
            mask = (values >= low) & (values <= high)
            if obs_on:
                _om.queries_total().inc(
                    kind="range", route="octant-fallback", strategy="none"
                )
                _om.verified_points().inc(len(self), kind="range")
                _om.query_latency().observe(
                    time.perf_counter() - started, kind="range", route="octant-fallback"
                )
            return QueryAnswer(np.sort(ids[mask]), None, True)
        results, degraded = self._map_shards(
            "range",
            lambda collection: collection.query_range(wq_low, wq_high),
            recover=lambda shard: self._recover_range(low_q, high_q, shard),
            task=("range", low_q, high_q),
        )
        return self._merge_inequality(results, degraded)

    def topk(
        self,
        normal: np.ndarray,
        offset: float,
        k: int,
        op: Comparison | str = Comparison.LE,
    ) -> TopKResult:
        """Top-k satisfying points nearest the query hyperplane (Problem 2).

        Each shard runs Algorithm 2 over its slice; a shared cutoff
        publishes the best k-th distance seen by *any* shard into every
        shard's LBS termination test, and the per-shard top-k sets merge
        through one :class:`~repro.core.topk.TopKBuffer` — identical ids,
        distances, and tie-breaks as the monolithic scan.
        """
        ctx = _otr.begin("topk", shards=self._n_shards)
        if ctx is None:
            return self._topk_impl(normal, offset, k, op)
        try:
            result = self._topk_impl(normal, offset, k, op)
        except BaseException as exc:  # repro: noqa(REP005) — trace-abort boundary; telemetry closes, exception re-raised unchanged
            _otr.abort(ctx, exc)
            raise
        self._finish_trace(
            ctx,
            stats=result.stats,
            degraded=result.degraded,
            results=int(result.ids.size),
            lbs_checked=int(result.n_checked),
        )
        return result

    def _topk_impl(
        self,
        normal: np.ndarray,
        offset: float,
        k: int,
        op: Comparison | str = Comparison.LE,
    ) -> TopKResult:
        """Untraced body of :meth:`topk`."""
        spq = ScalarProductQuery(np.asarray(normal, dtype=np.float64), offset, op)
        self._check_dim(spq)
        if _tnr.RECORDING:
            _tnr.record_query(spq.normal, spq.offset, spq.op.value, "topk", k)
        try:
            self._working_or_raise(spq)
        except InvalidQueryError:
            if not self._scan_fallback:
                raise
            from ..scan.baseline import SequentialScan

            obs_on = _ort.active()
            started = time.perf_counter() if obs_on else 0.0
            ids, rows = self._features.get_all()
            result = SequentialScan(rows, ids).topk(spq, k)
            if obs_on:
                _om.queries_total().inc(
                    kind="topk", route="octant-fallback", strategy="none"
                )
                _om.query_latency().observe(
                    time.perf_counter() - started, kind="topk", route="octant-fallback"
                )
            return result
        # SharedCutoff publishes cross-shard pruning bounds between threads;
        # the process backend runs per-shard cutoffs instead (the worker
        # passes cutoff=None) — still exact, see repro.parallel.process.
        cutoff = SharedCutoff()
        results, degraded = self._map_shards(
            "topk",
            lambda collection: collection.topk(spq, k, cutoff=cutoff),
            recover=lambda shard: self._recover_topk(spq, k, shard),
            task=("topk", spq, k),
        )
        return self._merge_topk(results, k, degraded)

    def topk_batch(
        self,
        normals: np.ndarray,
        offsets: np.ndarray,
        k: int,
        op: Comparison | str = Comparison.LE,
        *,
        timeout_s: float | None = None,
    ) -> list[TopKResult]:
        """Answer a batch of top-k queries sharing one operator and ``k``.

        The whole plannable batch ships to every shard as *one* task (each
        shard runs :meth:`PlanarIndexCollection.topk_batch`, batching its
        candidate verification per selected index), and each query's
        per-shard top-k sets merge through one
        :class:`~repro.core.topk.TopKBuffer` — identical ids, distances,
        and tie-breaks as per-query :meth:`topk` calls.  Like
        :meth:`query_batch`, validation and the empty-batch short-circuit
        run before the trace opens, and ``timeout_s`` overrides the
        engine's ``query_timeout_s`` for this one call.
        """
        normals = as_2d_float(normals, "normals")
        offsets = np.ascontiguousarray(offsets, dtype=np.float64)
        if offsets.ndim != 1 or offsets.size != normals.shape[0]:
            raise DimensionMismatchError(
                f"{offsets.size} offsets for {normals.shape[0]} normals"
            )
        if k <= 0:
            raise InvalidQueryError(f"k must be positive, got {k}")
        if normals.shape[0] == 0:
            return []
        ctx = _otr.begin("batch_topk", shards=self._n_shards)
        if ctx is None:
            return self._topk_batch_impl(normals, offsets, k, op, timeout_s=timeout_s)
        try:
            results = self._topk_batch_impl(
                normals, offsets, k, op, timeout_s=timeout_s
            )
        except BaseException as exc:  # repro: noqa(REP005) — trace-abort boundary; telemetry closes, exception re-raised unchanged
            _otr.abort(ctx, exc)
            raise
        parts = [result.stats for result in results if result.stats is not None]
        degraded = next(
            (result.degraded for result in results if result.degraded is not None),
            None,
        )
        self._finish_trace(
            ctx,
            stats=_merge_stats(parts) if parts else None,
            degraded=degraded,
            results=sum(int(result.ids.size) for result in results),
            n_queries=len(results),
            lbs_checked=sum(int(result.n_checked) for result in results),
        )
        return results

    def _topk_batch_impl(
        self,
        normals: np.ndarray,
        offsets: np.ndarray,
        k: int,
        op: Comparison | str = Comparison.LE,
        *,
        timeout_s: float | None = None,
    ) -> list[TopKResult]:
        """Untraced body of :meth:`topk_batch` (inputs pre-validated)."""
        queries = [
            ScalarProductQuery(normals[row], float(offsets[row]), op)
            for row in range(normals.shape[0])
        ]
        if _tnr.RECORDING:
            for spq in queries:
                _tnr.record_query(spq.normal, spq.offset, spq.op.value, "topk", k)
        plannable: list[int] = []
        results: list[TopKResult | None] = [None] * len(queries)
        for position, spq in enumerate(queries):
            self._check_dim(spq)
            try:
                self._working_or_raise(spq)
            except InvalidQueryError:
                if not self._scan_fallback:
                    raise
                from ..scan.baseline import SequentialScan

                ids, rows = self._features.get_all()
                results[position] = SequentialScan(rows, ids).topk(spq, k)
                continue
            plannable.append(position)
        if plannable:
            subset = [queries[position] for position in plannable]
            per_shard, degraded = self._map_shards(
                "batch_topk",
                lambda collection: collection.topk_batch(subset, k),
                recover=lambda shard: self._recover_topk_batch(subset, k, shard),
                task=("batch_topk", subset, k),
                timeout_s=timeout_s,
            )
            for slot, position in enumerate(plannable):
                shard_slices = [
                    shard_results[slot] if shard_results is not None else None
                    for shard_results in per_shard
                ]
                results[position] = self._merge_topk(shard_slices, k, degraded)
        return results  # type: ignore[return-value]

    def _merge_topk(
        self,
        results: Sequence[TopKResult | None],
        k: int,
        degraded: DegradedInfo | None,
    ) -> TopKResult:
        """Merge one query's per-shard top-k slices into the global answer."""
        if len(results) == 1 and degraded is None and results[0] is not None:
            return results[0]
        present = [result for result in results if result is not None]
        buffer = TopKBuffer(k)
        for result in present:
            buffer.offer_many(result.distances, result.ids)
        ids, distances = buffer.as_sorted()
        stats_parts = [result.stats for result in present]
        merged_stats = (
            _merge_stats(stats_parts) if all(p is not None for p in stats_parts) else None
        )
        return TopKResult(
            ids=ids,
            distances=distances,
            n_checked=sum(result.n_checked for result in present),
            n_total=len(self._features),
            stats=merged_stats,
            degraded=degraded,
        )

    # ------------------------------------------------------------------ #
    # Dynamic maintenance (fans out to owning shards)
    # ------------------------------------------------------------------ #

    def _maintain(self, action: str, shard: int, fn: Callable[[], _T]) -> _T:
        """Run one shard's slice of a mutation under the failure policy.

        Retries under ``retry_then_degrade`` but never degrades: a shard
        mutation that cannot be applied raises a
        :class:`ShardFailureError` with the shard's identity, because
        silently dropping an update would corrupt the partition.
        Deterministic validation errors (the library's ``ValueError`` /
        ``KeyError`` families) pass through unwrapped — they are caller
        errors every shard would report identically, not shard faults.
        """
        kind = f"maintenance:{action}"
        attempt = 0
        while True:
            try:
                if _flt.ARMED:
                    _flt.check("shard.maintenance", shard=shard, action=action)
                return fn()
            except Exception as exc:  # repro: noqa(REP005) — policy boundary: classify, retry, or wrap
                if not _is_shard_fault(exc):
                    raise
                if (
                    self._failure_policy is FailurePolicy.RETRY_THEN_DEGRADE
                    and attempt < self._max_retries
                ):
                    attempt += 1
                    started = time.perf_counter()
                    self._backoff(attempt)
                    self._record_retry(kind, [shard], attempt, started)
                    continue
                raise self._wrap_failure(kind, shard, exc) from exc

    def insert_points(self, new_points: np.ndarray) -> np.ndarray:
        """Add new data points; returns their assigned (global) ids."""
        self._invalidate_process_pool()
        new_points = as_2d_float(new_points, "new_points")
        require_finite_rows(new_points, "new_points")
        features = self._phi(new_points)
        # Validate before the translator observes the new extremes — a NaN
        # row would otherwise poison every shard's octant translation.
        require_finite_rows(features, "features(new_points)")
        self._translator.observe(features)
        point_ids = self._points.append(new_points)
        feature_ids = self._features.append(features)
        if not np.array_equal(point_ids, feature_ids):  # pragma: no cover
            raise RuntimeError("point/feature stores diverged")
        for shard, mask in enumerate(self._owned(feature_ids)):
            if np.any(mask):
                self._maintain(
                    "insert",
                    shard,
                    lambda s=shard, m=mask: self._collections[s].insert(
                        feature_ids[m], features[m]
                    ),
                )
        self._record_shard_sizes()
        return feature_ids

    def delete_points(self, ids: np.ndarray) -> None:
        """Remove points from the engine."""
        self._invalidate_process_pool()
        ids = np.ascontiguousarray(ids, dtype=np.int64)
        for shard, mask in enumerate(self._owned(ids)):
            if np.any(mask):
                self._maintain(
                    "delete",
                    shard,
                    lambda s=shard, m=mask: self._collections[s].delete(ids[m]),
                )
        self._features.delete(ids)
        self._points.delete(ids)
        self._record_shard_sizes()

    def update_points(self, ids: np.ndarray, new_points: np.ndarray) -> None:
        """Change the raw values of existing points; re-key owning shards."""
        self._invalidate_process_pool()
        ids = np.ascontiguousarray(ids, dtype=np.int64)
        new_points = as_2d_float(new_points, "new_points")
        require_finite_rows(new_points, "new_points")
        features = self._phi(new_points)
        require_finite_rows(features, "features(new_points)")
        self._translator.observe(features)
        self._points.update(ids, new_points)
        self._features.update(ids, features)
        for shard, mask in enumerate(self._owned(ids)):
            if np.any(mask):
                self._maintain(
                    "update",
                    shard,
                    lambda s=shard, m=mask: self._collections[s].rekey(
                        ids[m], features[m]
                    ),
                )

    def add_index(self, normal: np.ndarray) -> bool:
        """Add one Planar index to *every* shard (or none, when redundant).

        All shards share the same normals and the same cosine redundancy
        rule, so their verdicts agree; the common verdict is returned.
        """
        self._invalidate_process_pool()
        verdicts = [
            self._maintain(
                "add_index",
                shard,
                lambda s=shard: self._collections[s].add_index(normal),
            )
            for shard in range(self._n_shards)
        ]
        if len(set(verdicts)) != 1:  # pragma: no cover - shards share normals
            raise RuntimeError("shards diverged on add_index redundancy verdict")
        return verdicts[0]

    def drop_index(self, position: int) -> None:
        """Drop the index at ``position`` from every shard."""
        self._invalidate_process_pool()
        for shard in range(self._n_shards):
            self._maintain(
                "drop_index",
                shard,
                lambda s=shard: self._collections[s].drop_index(position),
            )
