"""Sharded parallel query execution over the Planar index machinery.

:class:`ShardedFunctionIndex` mirrors the
:class:`~repro.core.function_index.FunctionIndex` facade but partitions the
data into ``S`` shards, each owning its own
:class:`~repro.core.collection.PlanarIndexCollection` over a
:class:`~repro.parallel.view.FeatureStoreView` of one shared feature store.
Queries fan out across shards on a thread pool — numpy releases the GIL
inside ``matmul`` and ``searchsorted``, so the per-shard interval splits and
verification products genuinely overlap without process-level parallelism.

Exactness
---------
Results are *bit-identical* to the monolithic path:

* Point ids are global (the shared store assigns them); each shard answers
  over a disjoint id subset, so inequality/range answers merge by one
  ``sort(concatenate(...))`` into exactly the monolithic sorted id array.
* All shards share one translator and the same index normals, so octant
  validation, query canonicalization, and per-point scalar products are
  the same floating-point computations as the monolithic path.
* Top-k runs Algorithm 2 once per shard against a *shared* pruning
  threshold (:class:`~repro.core.topk.SharedCutoff`): each shard's
  buffered k-th distance is an upper bound on the global k-th best (the
  shard exhibits ``k`` real points at or below it), so folding the
  minimum of all published bounds into every shard's LBS cutoff preserves
  Claim 3 while letting one shard's good candidates terminate another
  shard's scan.  The strict cutoff comparison keeps boundary candidates,
  so tie-breaks by id survive the merge through
  :class:`~repro.core.topk.TopKBuffer` unchanged.

The single-shard configuration bypasses both the view and the executor —
shard 0 *is* the monolithic collection — so ``n_shards=1`` costs only the
facade indirection.
"""

from __future__ import annotations

import os
import time
from concurrent.futures import ThreadPoolExecutor
from typing import Callable, Sequence, TypeVar

import numpy as np

from .._util import as_2d_float, as_rng
from ..core.collection import PlanarIndexCollection
from ..core.domains import QueryModel
from ..core.feature_store import FeatureStore
from ..core.function_index import QueryAnswer
from ..core.phi import FeatureMap, identity_map
from ..core.planar import QueryResult, WorkingQuery
from ..core.query import Comparison, ScalarProductQuery
from ..core.selection import SelectionStrategy
from ..core.stats import QueryStats
from ..core.topk import SharedCutoff, TopKBuffer, TopKResult
from ..exceptions import DimensionMismatchError, IndexBuildError, InvalidQueryError
from ..geometry.translation import Translator
from ..obs import metrics as _om
from ..obs import runtime as _ort
from ..obs import spans as _osp
from ..tuning import recorder as _tnr
from .sharding import SHARD_POLICIES, assign_shards
from .view import FeatureStoreView

__all__ = ["ShardedFunctionIndex"]

_T = TypeVar("_T")


def _merge_stats(parts: Sequence[QueryStats]) -> QueryStats:
    """Sum per-shard pruning diagnostics into one global view.

    Every field is additive over a disjoint partition of the points, so
    the merged fractions (pruned/verified) are the point-weighted means of
    the shard fractions.
    """
    return QueryStats(
        n_total=sum(p.n_total for p in parts),
        si_size=sum(p.si_size for p in parts),
        ii_size=sum(p.ii_size for p in parts),
        li_size=sum(p.li_size for p in parts),
        n_verified=sum(p.n_verified for p in parts),
        n_results=sum(p.n_results for p in parts),
    )


class ShardedFunctionIndex:
    """Sharded drop-in for :class:`~repro.core.function_index.FunctionIndex`.

    Parameters follow the monolithic facade, plus:

    n_shards:
        Number of data partitions ``S``.  ``1`` (the default) keeps the
        monolithic layout and executes inline.
    policy:
        Shard-membership policy, ``"round_robin"`` or ``"hash"``
        (:mod:`repro.parallel.sharding`).
    max_workers:
        Thread-pool size for the fan-out; defaults to
        ``min(n_shards, cpu_count)``.

    The engine is also a context manager; :meth:`close` shuts the pool
    down.
    """

    def __init__(
        self,
        points: np.ndarray,
        query_model: QueryModel,
        feature_map: FeatureMap | None = None,
        n_indices: int = 10,
        normals: np.ndarray | None = None,
        strategy: SelectionStrategy | str = SelectionStrategy.MIN_STRETCH,
        scan_fallback: bool = True,
        margin: float = 0.0,
        rng: np.random.Generator | int | None = None,
        n_shards: int = 1,
        policy: str = "round_robin",
        max_workers: int | None = None,
    ) -> None:
        if n_shards <= 0:
            raise ValueError(f"n_shards must be positive, got {n_shards}")
        if policy not in SHARD_POLICIES:
            raise ValueError(
                f"unknown shard policy {policy!r}; choose from {SHARD_POLICIES}"
            )
        pts = as_2d_float(points, "points")
        if feature_map is None:
            feature_map = identity_map(pts.shape[1])
        if feature_map.in_dim != pts.shape[1]:
            raise DimensionMismatchError(
                f"points have dimension {pts.shape[1]}, feature map expects "
                f"{feature_map.in_dim}"
            )
        if query_model.dim != feature_map.out_dim:
            raise DimensionMismatchError(
                f"query model has dimension {query_model.dim}, feature map "
                f"produces {feature_map.out_dim}"
            )
        self._phi = feature_map
        self._model = query_model
        self._scan_fallback = bool(scan_fallback)
        self._rng = as_rng(rng)
        self._n_shards = int(n_shards)
        self._policy = str(policy)
        self._max_workers = (
            min(self._n_shards, os.cpu_count() or 1)
            if max_workers is None
            else int(max_workers)
        )
        self._executor: ThreadPoolExecutor | None = None

        self._points = FeatureStore(pts)
        features = feature_map(pts)
        self._features = FeatureStore(features)
        self._translator = Translator(query_model.octant(), margin=margin)
        self._translator.observe(features)

        if normals is None:
            if n_indices <= 0:
                raise IndexBuildError(
                    f"index budget must be positive, got {n_indices}"
                )
            normals = query_model.sample_normals(n_indices, self._rng)
        normals = np.ascontiguousarray(normals, dtype=np.float64)

        # Every shard indexes the same normals over its own slice of the
        # shared store; the single-shard layout *is* the monolithic one.
        self._stores: list[FeatureStore | FeatureStoreView] = []
        self._collections: list[PlanarIndexCollection] = []
        for shard in range(self._n_shards):
            store: FeatureStore | FeatureStoreView
            if self._n_shards == 1:
                store = self._features
                prefix = ""
            else:
                store = FeatureStoreView(
                    self._features, shard, self._n_shards, self._policy
                )
                prefix = f"s{shard}:"
            self._stores.append(store)
            self._collections.append(
                PlanarIndexCollection(
                    store,
                    self._translator,
                    normals,
                    strategy,
                    self._rng,
                    obs_prefix=prefix,
                )
            )
        self._record_shard_sizes()

    # ------------------------------------------------------------------ #
    # Lifecycle
    # ------------------------------------------------------------------ #

    def close(self) -> None:
        """Shut down the fan-out thread pool (idempotent)."""
        if self._executor is not None:
            self._executor.shutdown(wait=True)
            self._executor = None

    def __enter__(self) -> "ShardedFunctionIndex":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    def _ensure_executor(self) -> ThreadPoolExecutor:
        if self._executor is None:
            self._executor = ThreadPoolExecutor(
                max_workers=self._max_workers,
                thread_name_prefix="repro-shard",
            )
        return self._executor

    # ------------------------------------------------------------------ #
    # Introspection
    # ------------------------------------------------------------------ #

    def __len__(self) -> int:
        """Number of live indexed points (across all shards)."""
        return len(self._features)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"ShardedFunctionIndex(n={len(self)}, shards={self._n_shards}, "
            f"policy={self._policy!r}, r={self.n_indices})"
        )

    @property
    def n_shards(self) -> int:
        """Number of data partitions."""
        return self._n_shards

    @property
    def policy(self) -> str:
        """Shard-membership policy."""
        return self._policy

    @property
    def feature_map(self) -> FeatureMap:
        """The indexed function ``phi``."""
        return self._phi

    @property
    def query_model(self) -> QueryModel:
        """The configured query-parameter domains."""
        return self._model

    @property
    def translator(self) -> Translator:
        """The octant translator shared by every shard."""
        return self._translator

    @property
    def collections(self) -> tuple[PlanarIndexCollection, ...]:
        """Per-shard Planar index collections."""
        return tuple(self._collections)

    @property
    def n_indices(self) -> int:
        """Number of live Planar indices per shard."""
        return len(self._collections[0])

    def shard_sizes(self) -> list[int]:
        """Live point count owned by each shard."""
        return [len(store) for store in self._stores]

    def live_ids(self) -> np.ndarray:
        """All live point ids (global, ascending)."""
        return self._features.live_ids()

    def get_points(self, ids: np.ndarray) -> np.ndarray:
        """Raw data points for the given ids."""
        return self._points.get(ids)

    def get_features(self, ids: np.ndarray) -> np.ndarray:
        """Feature vectors ``phi(x)`` for the given ids."""
        return self._features.get(ids)

    def memory_bytes(self) -> int:
        """Footprint of features, raw points, and all shard key structures."""
        return (
            self._features.memory_bytes()
            + self._points.memory_bytes()
            + sum(collection.memory_bytes() for collection in self._collections)
        )

    def _record_shard_sizes(self) -> None:
        if not _ort.ENABLED:
            return
        gauge = _om.shard_points()
        for shard, store in enumerate(self._stores):
            gauge.set(len(store), shard=str(shard))

    # ------------------------------------------------------------------ #
    # Fan-out machinery
    # ------------------------------------------------------------------ #

    def _run_shard(
        self, kind: str, shard: int, fn: Callable[[PlanarIndexCollection], _T]
    ) -> _T:
        """Execute one shard's slice of a query, with per-shard telemetry.

        Span recording uses thread-local stacks, so emitting from pool
        workers is safe; counters take one lock per increment.
        """
        obs_on = _ort.ENABLED
        started = time.perf_counter() if obs_on else 0.0
        result = fn(self._collections[shard])
        if obs_on:
            _osp.record(f"shard.{kind}", started, shard=shard)
            _om.shard_queries_total().inc(kind=kind, shard=str(shard))
        return result

    def _map_shards(
        self, kind: str, fn: Callable[[PlanarIndexCollection], _T]
    ) -> list[_T]:
        """Run ``fn`` against every shard collection; inline when ``S == 1``."""
        if self._n_shards == 1:
            return [self._run_shard(kind, 0, fn)]
        executor = self._ensure_executor()
        futures = [
            executor.submit(self._run_shard, kind, shard, fn)
            for shard in range(self._n_shards)
        ]
        return [future.result() for future in futures]

    def _owned(self, ids: np.ndarray) -> list[np.ndarray]:
        """Boolean ownership masks of ``ids`` for every shard."""
        assignment = assign_shards(ids, self._n_shards, self._policy)
        return [assignment == shard for shard in range(self._n_shards)]

    def _working_or_raise(self, spq: ScalarProductQuery) -> WorkingQuery:
        """Octant-validate once (the translator is shared by all shards)."""
        return WorkingQuery.build(spq, self._translator)

    def _check_dim(self, spq: ScalarProductQuery) -> None:
        if spq.dim != self._phi.out_dim:
            raise DimensionMismatchError(
                f"query has dimension {spq.dim}, feature space has {self._phi.out_dim}"
            )

    def _fallback_scan(self, spq: ScalarProductQuery, kind: str) -> np.ndarray:
        """Octant-fallback: one scan over the shared store (all shards)."""
        obs_on = _ort.ENABLED
        started = time.perf_counter() if obs_on else 0.0
        ids, rows = self._features.get_all()
        mask = spq.evaluate(rows)
        result = np.sort(ids[mask])
        if obs_on:
            _om.queries_total().inc(kind=kind, route="octant-fallback", strategy="none")
            _om.verified_points().inc(len(self), kind=kind)
            _om.query_latency().observe(
                time.perf_counter() - started, kind=kind, route="octant-fallback"
            )
        return result

    @staticmethod
    def _merge_inequality(results: Sequence[QueryResult]) -> QueryAnswer:
        """Disjoint sorted id sets merge into the monolithic sorted array."""
        if len(results) == 1:
            # Single shard: already the monolithic answer, nothing to merge.
            return QueryAnswer(results[0].ids, results[0].stats, False)
        ids = np.sort(np.concatenate([result.ids for result in results]))
        return QueryAnswer(ids, _merge_stats([result.stats for result in results]), False)

    # ------------------------------------------------------------------ #
    # Queries
    # ------------------------------------------------------------------ #

    def query(
        self,
        normal: np.ndarray,
        offset: float,
        op: Comparison | str = Comparison.LE,
    ) -> QueryAnswer:
        """Answer ``<normal, phi(x)> OP offset`` exactly, fanned across shards."""
        spq = ScalarProductQuery(np.asarray(normal, dtype=np.float64), offset, op)
        self._check_dim(spq)
        if _tnr.RECORDING:
            _tnr.record_query(spq.normal, spq.offset, spq.op.value, "inequality")
        try:
            self._working_or_raise(spq)
        except InvalidQueryError:
            if not self._scan_fallback:
                raise
            return QueryAnswer(self._fallback_scan(spq, "inequality"), None, True)
        results = self._map_shards(
            "inequality", lambda collection: collection.query(spq)
        )
        return self._merge_inequality(results)

    def query_batch(
        self,
        normals: np.ndarray,
        offsets: np.ndarray,
        op: Comparison | str = Comparison.LE,
    ) -> list[QueryAnswer]:
        """Answer a batch of inequality queries sharing one operator.

        The whole plannable batch is shipped to every shard as *one* task
        (each shard batches its own binary searches per selected index),
        so fan-out overhead is per shard, not per query.
        """
        normals = as_2d_float(normals, "normals")
        offsets = np.ascontiguousarray(offsets, dtype=np.float64)
        if offsets.ndim != 1 or offsets.size != normals.shape[0]:
            raise DimensionMismatchError(
                f"{offsets.size} offsets for {normals.shape[0]} normals"
            )
        queries = [
            ScalarProductQuery(normals[row], float(offsets[row]), op)
            for row in range(normals.shape[0])
        ]
        if _tnr.RECORDING:
            for spq in queries:
                _tnr.record_query(spq.normal, spq.offset, spq.op.value, "batch")
        plannable: list[int] = []
        answers: list[QueryAnswer | None] = [None] * len(queries)
        for position, spq in enumerate(queries):
            self._check_dim(spq)
            try:
                self._working_or_raise(spq)
            except InvalidQueryError:
                if not self._scan_fallback:
                    raise
                answers[position] = QueryAnswer(
                    self._fallback_scan(spq, "batch"), None, True
                )
                continue
            plannable.append(position)
        if plannable:
            subset = [queries[position] for position in plannable]
            per_shard = self._map_shards(
                "batch", lambda collection: collection.query_batch(subset)
            )
            for slot, position in enumerate(plannable):
                answers[position] = self._merge_inequality(
                    [shard_results[slot] for shard_results in per_shard]
                )
        return answers  # type: ignore[return-value]

    def query_range(
        self,
        normal: np.ndarray,
        low: float,
        high: float,
    ) -> QueryAnswer:
        """Exact BETWEEN query: ``low <= <normal, phi(x)> <= high``."""
        if not low <= high:
            raise InvalidQueryError(f"empty range ({low}, {high})")
        low_q = ScalarProductQuery(np.asarray(normal, dtype=np.float64), low, ">=")
        high_q = ScalarProductQuery(np.asarray(normal, dtype=np.float64), high, "<=")
        self._check_dim(low_q)
        if _tnr.RECORDING:
            # One sketch per bound (same normal, both operators).
            _tnr.record_query(low_q.normal, low, ">=", "range")
            _tnr.record_query(high_q.normal, high, "<=", "range")
        try:
            wq_low = self._working_or_raise(low_q)
            wq_high = self._working_or_raise(high_q)
        except InvalidQueryError:
            if not self._scan_fallback:
                raise
            obs_on = _ort.ENABLED
            started = time.perf_counter() if obs_on else 0.0
            ids, rows = self._features.get_all()
            values = rows @ low_q.normal  # repro: noqa(REP001) — explicit opt-in scan fallback (guarded above)
            mask = (values >= low) & (values <= high)
            if obs_on:
                _om.queries_total().inc(
                    kind="range", route="octant-fallback", strategy="none"
                )
                _om.verified_points().inc(len(self), kind="range")
                _om.query_latency().observe(
                    time.perf_counter() - started, kind="range", route="octant-fallback"
                )
            return QueryAnswer(np.sort(ids[mask]), None, True)
        results = self._map_shards(
            "range", lambda collection: collection.query_range(wq_low, wq_high)
        )
        return self._merge_inequality(results)

    def topk(
        self,
        normal: np.ndarray,
        offset: float,
        k: int,
        op: Comparison | str = Comparison.LE,
    ) -> TopKResult:
        """Top-k satisfying points nearest the query hyperplane (Problem 2).

        Each shard runs Algorithm 2 over its slice; a shared cutoff
        publishes the best k-th distance seen by *any* shard into every
        shard's LBS termination test, and the per-shard top-k sets merge
        through one :class:`~repro.core.topk.TopKBuffer` — identical ids,
        distances, and tie-breaks as the monolithic scan.
        """
        spq = ScalarProductQuery(np.asarray(normal, dtype=np.float64), offset, op)
        self._check_dim(spq)
        if _tnr.RECORDING:
            _tnr.record_query(spq.normal, spq.offset, spq.op.value, "topk", k)
        try:
            self._working_or_raise(spq)
        except InvalidQueryError:
            if not self._scan_fallback:
                raise
            from ..scan.baseline import SequentialScan

            obs_on = _ort.ENABLED
            started = time.perf_counter() if obs_on else 0.0
            ids, rows = self._features.get_all()
            result = SequentialScan(rows, ids).topk(spq, k)
            if obs_on:
                _om.queries_total().inc(
                    kind="topk", route="octant-fallback", strategy="none"
                )
                _om.query_latency().observe(
                    time.perf_counter() - started, kind="topk", route="octant-fallback"
                )
            return result
        cutoff = SharedCutoff()
        results = self._map_shards(
            "topk", lambda collection: collection.topk(spq, k, cutoff=cutoff)
        )
        if len(results) == 1:
            return results[0]
        buffer = TopKBuffer(k)
        for result in results:
            buffer.offer_many(result.distances, result.ids)
        ids, distances = buffer.as_sorted()
        stats_parts = [result.stats for result in results]
        merged_stats = (
            _merge_stats(stats_parts) if all(p is not None for p in stats_parts) else None
        )
        return TopKResult(
            ids=ids,
            distances=distances,
            n_checked=sum(result.n_checked for result in results),
            n_total=len(self._features),
            stats=merged_stats,
        )

    # ------------------------------------------------------------------ #
    # Dynamic maintenance (fans out to owning shards)
    # ------------------------------------------------------------------ #

    def insert_points(self, new_points: np.ndarray) -> np.ndarray:
        """Add new data points; returns their assigned (global) ids."""
        new_points = as_2d_float(new_points, "new_points")
        features = self._phi(new_points)
        self._translator.observe(features)
        point_ids = self._points.append(new_points)
        feature_ids = self._features.append(features)
        if not np.array_equal(point_ids, feature_ids):  # pragma: no cover
            raise RuntimeError("point/feature stores diverged")
        for shard, mask in enumerate(self._owned(feature_ids)):
            if np.any(mask):
                self._collections[shard].insert(feature_ids[mask], features[mask])
        self._record_shard_sizes()
        return feature_ids

    def delete_points(self, ids: np.ndarray) -> None:
        """Remove points from the engine."""
        ids = np.ascontiguousarray(ids, dtype=np.int64)
        for shard, mask in enumerate(self._owned(ids)):
            if np.any(mask):
                self._collections[shard].delete(ids[mask])
        self._features.delete(ids)
        self._points.delete(ids)
        self._record_shard_sizes()

    def update_points(self, ids: np.ndarray, new_points: np.ndarray) -> None:
        """Change the raw values of existing points; re-key owning shards."""
        ids = np.ascontiguousarray(ids, dtype=np.int64)
        new_points = as_2d_float(new_points, "new_points")
        features = self._phi(new_points)
        self._translator.observe(features)
        self._points.update(ids, new_points)
        self._features.update(ids, features)
        for shard, mask in enumerate(self._owned(ids)):
            if np.any(mask):
                self._collections[shard].rekey(ids[mask], features[mask])

    def add_index(self, normal: np.ndarray) -> bool:
        """Add one Planar index to *every* shard (or none, when redundant).

        All shards share the same normals and the same cosine redundancy
        rule, so their verdicts agree; the common verdict is returned.
        """
        verdicts = [
            collection.add_index(normal) for collection in self._collections
        ]
        if len(set(verdicts)) != 1:  # pragma: no cover - shards share normals
            raise RuntimeError("shards diverged on add_index redundancy verdict")
        return verdicts[0]

    def drop_index(self, position: int) -> None:
        """Drop the index at ``position`` from every shard."""
        for collection in self._collections:
            collection.drop_index(position)
