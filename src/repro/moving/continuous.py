"""Continuous intersection join over a time window.

Zhang et al. [33] — the paper's moving-object comparator — answer the
*continuous* form of the intersection query: report pairs that come within
distance ``S`` at any moment of a window ``[t_lo, t_hi]``, not just at one
instant.  This module answers that query exactly on top of the Planar
machinery with a filter-and-verify scheme:

1. **Candidate generation.**  The window is covered with a grid of
   instants spaced ``step`` apart.  Between grid instants, a pair's
   distance can change by at most ``L * step / 2`` where ``L`` bounds the
   relative speed over the window (computable in closed form per motion
   model).  Planar instant-queries with the *inflated* threshold
   ``S + L * step / 2`` at every grid instant therefore cover every pair
   that could dip below ``S`` anywhere in the window.
2. **Verification.**  Each candidate pair's squared-distance polynomial is
   minimized over the window in closed form (quadratic for linear motion)
   or on a fine local grid bounded by the same Lipschitz argument, and
   kept only if the true minimum is within ``S``.

Both phases are exact-conservative, so the result equals the brute-force
window minimum.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .intersection import LinearIntersectionIndex
from .motion import LinearFleet

__all__ = ["ContinuousLinearJoin", "ContinuousJoinResult"]


@dataclass(frozen=True)
class ContinuousJoinResult:
    """Pairs that come within the distance bound during the window."""

    pairs: np.ndarray
    n_candidates: int
    n_total: int

    def __len__(self) -> int:
        return int(self.pairs.shape[0])


class ContinuousLinearJoin:
    """Exact continuous within-distance join for two linear fleets.

    Parameters
    ----------
    first / second:
        Constant-velocity fleets.
    t_range:
        The anticipated query-window envelope used for index construction
        (individual queries may use any sub-window).
    n_time_slots:
        Per-instant index normals, as in the instant query.
    """

    def __init__(
        self,
        first: LinearFleet,
        second: LinearFleet,
        t_range: tuple[float, float] = (10.0, 15.0),
        n_time_slots: int = 6,
        rng: np.random.Generator | int | None = None,
    ) -> None:
        self._first = first
        self._second = second
        self._index = LinearIntersectionIndex(
            first, second, t_range=t_range, n_time_slots=n_time_slots, rng=rng
        )
        # Global bound on relative speed: |du| <= |u1| + |u2| maxima.  The
        # distance derivative satisfies |d'(t)| <= |du|, so between two
        # instants dt apart the distance moves by at most L * dt.
        speed_a = float(np.linalg.norm(first.velocities, axis=1).max())
        speed_b = float(np.linalg.norm(second.velocities, axis=1).max())
        self._lipschitz = speed_a + speed_b

    @property
    def lipschitz_bound(self) -> float:
        """Upper bound ``L`` on any pair's distance change rate."""
        return self._lipschitz

    @property
    def n_pairs(self) -> int:
        """Number of indexed pairs."""
        return self._index.n_pairs

    # ------------------------------------------------------------------ #

    def _window_min_sq(self, pairs: np.ndarray, t_lo: float, t_hi: float) -> np.ndarray:
        """Exact minimum squared distance over the window per pair.

        For linear motion ``d^2(t) = X1 + X2 t + X3 t^2`` is convex
        (``X3 = |du|^2 >= 0``): the minimum sits at the clamped vertex.
        """
        sub_first = LinearFleet(
            self._first.positions[pairs[:, 0]], self._first.velocities[pairs[:, 0]]
        )
        # Pair features for aligned (i-th vs i-th) rows: build per-pair
        # deltas directly instead of the full cross product.
        dp = sub_first.positions - self._second.positions[pairs[:, 1]]
        du = sub_first.velocities - self._second.velocities[pairs[:, 1]]
        x1 = np.einsum("ij,ij->i", dp, dp)
        x2 = 2.0 * np.einsum("ij,ij->i", dp, du)
        x3 = np.einsum("ij,ij->i", du, du)
        with np.errstate(divide="ignore", invalid="ignore"):
            vertex = np.where(x3 > 0.0, -x2 / (2.0 * np.maximum(x3, 1e-300)), t_lo)
        t_star = np.clip(vertex, t_lo, t_hi)
        return x1 + x2 * t_star + x3 * t_star * t_star

    def query(
        self,
        t_lo: float,
        t_hi: float,
        distance: float,
        step: float = 0.5,
    ) -> ContinuousJoinResult:
        """Pairs within ``distance`` at some instant of ``[t_lo, t_hi]``.

        ``step`` trades candidate-set size against the number of Planar
        instant-queries; any positive value is exact.
        """
        if not t_lo <= t_hi:
            raise ValueError(f"empty window ({t_lo}, {t_hi})")
        if distance < 0:
            raise ValueError(f"distance must be nonnegative, got {distance}")
        if step <= 0:
            raise ValueError(f"step must be positive, got {step}")
        n_steps = max(1, int(np.ceil((t_hi - t_lo) / step)))
        grid = np.linspace(t_lo, t_hi, n_steps + 1)
        spacing = (t_hi - t_lo) / n_steps if n_steps else 0.0
        inflated = distance + self._lipschitz * spacing / 2.0

        candidate_rows: list[np.ndarray] = []
        for t in grid:
            result = self._index.query(float(t), inflated)
            if len(result):
                candidate_rows.append(result.pairs)
        if not candidate_rows:
            return ContinuousJoinResult(
                np.empty((0, 2), dtype=np.int64), 0, self._index.n_pairs
            )
        candidates = np.unique(np.vstack(candidate_rows), axis=0)

        min_sq = self._window_min_sq(candidates, float(t_lo), float(t_hi))
        keep = min_sq <= float(distance) ** 2
        return ContinuousJoinResult(
            pairs=candidates[keep],
            n_candidates=int(candidates.shape[0]),
            n_total=self._index.n_pairs,
        )

    def brute_force(self, t_lo: float, t_hi: float, distance: float) -> np.ndarray:
        """Oracle: closed-form window minimum for every pair."""
        n1, n2 = self._first.n, self._second.n
        grid_i, grid_j = np.meshgrid(np.arange(n1), np.arange(n2), indexing="ij")
        pairs = np.column_stack([grid_i.ravel(), grid_j.ravel()]).astype(np.int64)
        min_sq = self._window_min_sq(pairs, float(t_lo), float(t_hi))
        return pairs[min_sq <= float(distance) ** 2]
