"""Motion models for fleets of moving objects.

Each fleet holds the motion state of ``n`` objects in vectorized form and
can report every object's position at an arbitrary (future) time.  The
three models cover the paper's workloads: constant velocity, constant
angular velocity on concentric circles, and constant acceleration.
"""

from __future__ import annotations

import numpy as np

from .._util import as_1d_float, as_2d_float
from ..exceptions import DimensionMismatchError

__all__ = ["LinearFleet", "CircularFleet", "AcceleratingFleet"]


class LinearFleet:
    """Objects moving in straight lines with constant velocity.

    ``position(t) = p + u * t``
    """

    def __init__(self, positions: np.ndarray, velocities: np.ndarray) -> None:
        self._p = as_2d_float(positions, "positions")
        self._u = as_2d_float(velocities, "velocities")
        if self._p.shape != self._u.shape:
            raise DimensionMismatchError(
                f"positions {self._p.shape} and velocities {self._u.shape} differ"
            )

    @property
    def n(self) -> int:
        """Number of objects."""
        return int(self._p.shape[0])

    @property
    def dims(self) -> int:
        """Spatial dimensionality (2 or 3 in the paper's workloads)."""
        return int(self._p.shape[1])

    @property
    def positions(self) -> np.ndarray:
        """Initial positions (copy)."""
        return self._p.copy()

    @property
    def velocities(self) -> np.ndarray:
        """Velocities (copy)."""
        return self._u.copy()

    def position(self, t: float) -> np.ndarray:
        """All object positions at time ``t``."""
        return self._p + self._u * float(t)

    def __len__(self) -> int:
        return self.n


class CircularFleet:
    """Objects moving on circles with constant angular velocity (2-D only).

    ``position(t) = center + r * (cos(theta0 + omega t), sin(theta0 + omega t))``

    ``omega`` is stored in radians/min; the constructor accepts degrees for
    parity with the paper's "1~5 degree/min" workload description.
    """

    def __init__(
        self,
        centers: np.ndarray,
        radii: np.ndarray,
        omega_degrees: np.ndarray,
        phases: np.ndarray,
    ) -> None:
        self._c = as_2d_float(centers, "centers")
        if self._c.shape[1] != 2:
            raise DimensionMismatchError(
                f"circular motion is 2-D; centers have dimension {self._c.shape[1]}"
            )
        self._r = as_1d_float(radii, "radii")
        self._omega_deg = as_1d_float(omega_degrees, "omega_degrees")
        self._theta0 = as_1d_float(phases, "phases")
        n = self._c.shape[0]
        for name, arr in (
            ("radii", self._r),
            ("omega_degrees", self._omega_deg),
            ("phases", self._theta0),
        ):
            if arr.size != n:
                raise DimensionMismatchError(f"{name} has size {arr.size}, expected {n}")
        if np.any(self._r < 0):
            raise ValueError("radii must be nonnegative")

    @property
    def n(self) -> int:
        """Number of objects."""
        return int(self._c.shape[0])

    @property
    def dims(self) -> int:
        """Spatial dimensionality (always 2)."""
        return 2

    @property
    def centers(self) -> np.ndarray:
        """Circle centers (copy)."""
        return self._c.copy()

    @property
    def radii(self) -> np.ndarray:
        """Circle radii (copy)."""
        return self._r.copy()

    @property
    def omega_degrees(self) -> np.ndarray:
        """Angular velocities in degrees/min (copy)."""
        return self._omega_deg.copy()

    @property
    def omega_radians(self) -> np.ndarray:
        """Angular velocities in radians/min (copy)."""
        return np.deg2rad(self._omega_deg)

    @property
    def phases(self) -> np.ndarray:
        """Initial angles ``theta0`` in radians (copy)."""
        return self._theta0.copy()

    def position(self, t: float) -> np.ndarray:
        """All object positions at time ``t``."""
        angle = self._theta0 + np.deg2rad(self._omega_deg) * float(t)
        return self._c + self._r[:, None] * np.column_stack(
            [np.cos(angle), np.sin(angle)]
        )

    def __len__(self) -> int:
        return self.n


class AcceleratingFleet:
    """Objects moving with constant acceleration.

    ``position(t) = p + u * t + a * t^2 / 2``
    """

    def __init__(
        self,
        positions: np.ndarray,
        velocities: np.ndarray,
        accelerations: np.ndarray,
    ) -> None:
        self._p = as_2d_float(positions, "positions")
        self._u = as_2d_float(velocities, "velocities")
        self._a = as_2d_float(accelerations, "accelerations")
        if not (self._p.shape == self._u.shape == self._a.shape):
            raise DimensionMismatchError(
                f"positions {self._p.shape}, velocities {self._u.shape}, and "
                f"accelerations {self._a.shape} differ"
            )

    @property
    def n(self) -> int:
        """Number of objects."""
        return int(self._p.shape[0])

    @property
    def dims(self) -> int:
        """Spatial dimensionality."""
        return int(self._p.shape[1])

    @property
    def positions(self) -> np.ndarray:
        """Initial positions (copy)."""
        return self._p.copy()

    @property
    def velocities(self) -> np.ndarray:
        """Initial velocities (copy)."""
        return self._u.copy()

    @property
    def accelerations(self) -> np.ndarray:
        """Accelerations (copy)."""
        return self._a.copy()

    def position(self, t: float) -> np.ndarray:
        """All object positions at time ``t``."""
        t = float(t)
        return self._p + self._u * t + 0.5 * self._a * t * t

    def __len__(self) -> int:
        return self.n
