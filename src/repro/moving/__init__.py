"""Moving-object intersection via scalar product queries (Section 7.5.1).

The paper's flagship application: given two fleets of moving objects and a
future time instant ``t``, find every cross-fleet pair that will be within
distance ``S`` of each other at time ``t``.  The squared pairwise distance
decomposes into a scalar product between *pair features* (known at index
time) and *time parameters* (known at query time), so a Planar index over
the pair features answers the query without evaluating all pairs.

Three workloads from the paper are implemented:

* **linear–linear** (uniform velocities; also served by the
  :mod:`~repro.moving.mbrtree` baseline standing in for Zhang et al. [33]),
* **circular–linear** (objects on concentric circles — parameters involve
  ``sin/cos(omega t)``, so indices are bucketed by angular velocity), and
* **accelerating–linear** in 3-D (quartic distance polynomial).
"""

from .continuous import ContinuousJoinResult, ContinuousLinearJoin
from .features import (
    accelerating_pair_features,
    circular_circular_pair_features,
    circular_circular_time_normal,
    circular_pair_features,
    circular_time_normal,
    linear_pair_features,
    polynomial_time_normal,
)
from .intersection import (
    AcceleratingIntersectionIndex,
    CircularCircularIntersectionIndex,
    CircularIntersectionIndex,
    LinearIntersectionIndex,
    PairScan,
)
from .mbrtree import TPRTree, tpr_intersection_join
from .motion import AcceleratingFleet, CircularFleet, LinearFleet
from .simulate import (
    accelerating_workload,
    circular_workload,
    uniform_linear_workload,
)

__all__ = [
    "AcceleratingFleet",
    "AcceleratingIntersectionIndex",
    "CircularCircularIntersectionIndex",
    "CircularFleet",
    "CircularIntersectionIndex",
    "ContinuousJoinResult",
    "ContinuousLinearJoin",
    "LinearFleet",
    "LinearIntersectionIndex",
    "PairScan",
    "TPRTree",
    "accelerating_pair_features",
    "accelerating_workload",
    "circular_circular_pair_features",
    "circular_circular_time_normal",
    "circular_pair_features",
    "circular_time_normal",
    "circular_workload",
    "linear_pair_features",
    "polynomial_time_normal",
    "tpr_intersection_join",
    "uniform_linear_workload",
]
