"""Time-parameterized R-tree baseline for linear motion.

Stand-in for the highly optimized intersection-join index of Zhang et
al. [33] (itself an improvement over the TPR-tree [23]): a bulk-loaded
R-tree whose node rectangles carry both position bounds and velocity
bounds, so the bounding rectangle at any future time ``t`` is::

    mbr(t) = [pos_lo + vel_lo * t,  pos_hi + vel_hi * t]

The within-distance join descends both trees simultaneously and prunes any
node pair whose rectangles at time ``t`` are farther than the query
distance — the standard dual-tree traversal.  As in the original, the
structure is only valid for objects moving linearly with constant
velocity, which is exactly the limitation the Planar index removes.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from .motion import LinearFleet

__all__ = ["TPRNode", "TPRTree", "tpr_intersection_join"]

_DEFAULT_LEAF_CAPACITY = 64


@dataclass
class TPRNode:
    """One node: time-parameterized bounds plus children or object ids."""

    pos_lo: np.ndarray
    pos_hi: np.ndarray
    vel_lo: np.ndarray
    vel_hi: np.ndarray
    children: list["TPRNode"] = field(default_factory=list)
    object_ids: np.ndarray | None = None

    @property
    def is_leaf(self) -> bool:
        """Whether this node stores object ids directly."""
        return self.object_ids is not None

    def bounds_at(self, t: float) -> tuple[np.ndarray, np.ndarray]:
        """Conservative bounding rectangle of all enclosed objects at ``t``."""
        return self.pos_lo + self.vel_lo * t, self.pos_hi + self.vel_hi * t


def _bounds_of(positions: np.ndarray, velocities: np.ndarray) -> tuple[np.ndarray, ...]:
    return (
        positions.min(axis=0),
        positions.max(axis=0),
        velocities.min(axis=0),
        velocities.max(axis=0),
    )


class TPRTree:
    """Bulk-loaded (STR packing) time-parameterized R-tree over a fleet."""

    def __init__(self, fleet: LinearFleet, leaf_capacity: int = _DEFAULT_LEAF_CAPACITY) -> None:
        if leaf_capacity < 2:
            raise ValueError(f"leaf_capacity must be >= 2, got {leaf_capacity}")
        self._fleet = fleet
        self._leaf_capacity = int(leaf_capacity)
        positions = fleet.positions
        velocities = fleet.velocities
        ids = np.arange(fleet.n, dtype=np.int64)
        self._root = self._build(positions, velocities, ids, depth=0)

    @property
    def root(self) -> TPRNode:
        """The tree root."""
        return self._root

    @property
    def fleet(self) -> LinearFleet:
        """The indexed fleet."""
        return self._fleet

    def _build(
        self,
        positions: np.ndarray,
        velocities: np.ndarray,
        ids: np.ndarray,
        depth: int,
    ) -> TPRNode:
        pos_lo, pos_hi, vel_lo, vel_hi = _bounds_of(positions, velocities)
        if ids.size <= self._leaf_capacity:
            return TPRNode(pos_lo, pos_hi, vel_lo, vel_hi, object_ids=ids)
        # Sort-Tile-Recursive packing: split along one axis per level into
        # equal-size runs, cycling axes with depth.
        axis = depth % positions.shape[1]
        order = np.argsort(positions[:, axis], kind="stable")
        n_splits = max(
            2, int(np.ceil(np.sqrt(ids.size / self._leaf_capacity)))
        )
        runs = np.array_split(order, n_splits)
        children = [
            self._build(positions[run], velocities[run], ids[run], depth + 1)
            for run in runs
            if run.size
        ]
        return TPRNode(pos_lo, pos_hi, vel_lo, vel_hi, children=children)

    def height(self) -> int:
        """Levels from root to the deepest leaf."""
        def _depth(node: TPRNode) -> int:
            if node.is_leaf:
                return 1
            return 1 + max(_depth(child) for child in node.children)

        return _depth(self._root)

    def count_objects(self) -> int:
        """Objects reachable from the root (structure check)."""
        def _count(node: TPRNode) -> int:
            if node.is_leaf:
                return int(node.object_ids.size)
            return sum(_count(child) for child in node.children)

        return _count(self._root)


def _box_gap_sq(
    lo_a: np.ndarray, hi_a: np.ndarray, lo_b: np.ndarray, hi_b: np.ndarray
) -> float:
    """Squared minimum distance between two axis-aligned rectangles."""
    gap = np.maximum(0.0, np.maximum(lo_a - hi_b, lo_b - hi_a))
    return float(np.dot(gap, gap))


def tpr_intersection_join(
    tree_a: TPRTree, tree_b: TPRTree, t: float, distance: float
) -> np.ndarray:
    """All cross-tree pairs within ``distance`` of each other at time ``t``.

    Dual-tree traversal: a node pair is pruned when the minimum distance of
    their time-``t`` rectangles already exceeds the threshold; surviving
    leaf pairs are verified exactly.
    """
    if distance < 0:
        raise ValueError(f"distance must be nonnegative, got {distance}")
    t = float(t)
    threshold_sq = float(distance) ** 2
    pos_a = tree_a.fleet.position(t)
    pos_b = tree_b.fleet.position(t)
    results: list[np.ndarray] = []

    stack = [(tree_a.root, tree_b.root)]
    while stack:
        node_a, node_b = stack.pop()
        lo_a, hi_a = node_a.bounds_at(t)
        lo_b, hi_b = node_b.bounds_at(t)
        if _box_gap_sq(lo_a, hi_a, lo_b, hi_b) > threshold_sq:
            continue
        if node_a.is_leaf and node_b.is_leaf:
            ids_a = node_a.object_ids
            ids_b = node_b.object_ids
            diff = pos_a[ids_a][:, None, :] - pos_b[ids_b][None, :, :]
            d2 = np.einsum("ijk,ijk->ij", diff, diff)
            rows, cols = np.nonzero(d2 <= threshold_sq)
            if rows.size:
                results.append(np.column_stack([ids_a[rows], ids_b[cols]]))
            continue
        # Descend the node with more children (or the internal one).
        if node_a.is_leaf:
            stack.extend((node_a, child) for child in node_b.children)
        elif node_b.is_leaf:
            stack.extend((child, node_b) for child in node_a.children)
        else:
            for child_a in node_a.children:
                stack.extend((child_a, child_b) for child_b in node_b.children)

    if not results:
        return np.empty((0, 2), dtype=np.int64)
    pairs = np.vstack(results).astype(np.int64)
    order = np.lexsort((pairs[:, 1], pairs[:, 0]))
    return pairs[order]
