"""Workload generators for the three Section 7.5.1 scenarios.

Defaults mirror the paper: uniform placement in the stated space, speeds
0.1–1 mile/min with random sign per axis, radii 1–100 miles, angular
velocities 1–5 degrees/min, accelerations 0.01–0.05 mile/min^2.
"""

from __future__ import annotations

import numpy as np

from .._util import as_rng
from .motion import AcceleratingFleet, CircularFleet, LinearFleet

__all__ = [
    "uniform_linear_workload",
    "circular_workload",
    "accelerating_workload",
]


def _signed_speeds(
    rng: np.random.Generator, n: int, dims: int, speed_range: tuple[float, float]
) -> np.ndarray:
    """Speeds drawn per axis with a random direction sign (paper setup)."""
    magnitude = rng.uniform(speed_range[0], speed_range[1], size=(n, dims))
    signs = rng.choice([-1.0, 1.0], size=(n, dims))
    return magnitude * signs


def uniform_linear_workload(
    n_per_set: int,
    space: float = 1000.0,
    speed_range: tuple[float, float] = (0.1, 1.0),
    dims: int = 2,
    rng: np.random.Generator | int | None = None,
) -> tuple[LinearFleet, LinearFleet]:
    """Two constant-velocity fleets in a ``space x space`` region."""
    generator = as_rng(rng)
    fleets = []
    for _ in range(2):
        positions = generator.uniform(0.0, space, size=(n_per_set, dims))
        velocities = _signed_speeds(generator, n_per_set, dims, speed_range)
        fleets.append(LinearFleet(positions, velocities))
    return fleets[0], fleets[1]


def circular_workload(
    n_per_set: int,
    space: float = 100.0,
    speed_range: tuple[float, float] = (0.1, 1.0),
    radius_range: tuple[float, float] = (1.0, 100.0),
    omega_values: tuple[float, ...] = (1.0, 2.0, 3.0, 4.0, 5.0),
    rng: np.random.Generator | int | None = None,
) -> tuple[CircularFleet, LinearFleet]:
    """One circular and one linear fleet in a ``space x space`` region.

    Angular velocities are drawn from the discrete ``omega_values`` grid
    (degrees/min) so the intersection index can bucket by omega; the
    paper's "uniformly selected from 1~5 degree/min" is reproduced by the
    default five-value grid.
    """
    generator = as_rng(rng)
    centers = generator.uniform(0.0, space, size=(n_per_set, 2))
    radii = generator.uniform(radius_range[0], radius_range[1], size=n_per_set)
    omegas = generator.choice(np.asarray(omega_values, dtype=np.float64), size=n_per_set)
    phases = generator.uniform(0.0, 2.0 * np.pi, size=n_per_set)
    circular = CircularFleet(centers, radii, omegas, phases)

    positions = generator.uniform(0.0, space, size=(n_per_set, 2))
    velocities = _signed_speeds(generator, n_per_set, 2, speed_range)
    linear = LinearFleet(positions, velocities)
    return circular, linear


def accelerating_workload(
    n_per_set: int,
    space: float = 1000.0,
    speed_range: tuple[float, float] = (0.1, 1.0),
    accel_range: tuple[float, float] = (0.01, 0.05),
    rng: np.random.Generator | int | None = None,
) -> tuple[AcceleratingFleet, LinearFleet]:
    """One accelerating and one linear fleet in a 3-D ``space^3`` region."""
    generator = as_rng(rng)
    positions = generator.uniform(0.0, space, size=(n_per_set, 3))
    velocities = _signed_speeds(generator, n_per_set, 3, speed_range)
    accelerations = _signed_speeds(generator, n_per_set, 3, accel_range)
    accelerating = AcceleratingFleet(positions, velocities, accelerations)

    lin_positions = generator.uniform(0.0, space, size=(n_per_set, 3))
    lin_velocities = _signed_speeds(generator, n_per_set, 3, speed_range)
    linear = LinearFleet(lin_positions, lin_velocities)
    return accelerating, linear
