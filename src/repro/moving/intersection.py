"""Intersection indexes and the all-pairs baseline (Section 7.5.1).

Each index materializes pair features for every cross-fleet pair, derives
the query-parameter domains from the anticipated time window, and builds a
:class:`~repro.core.FunctionIndex` whose index normals are the parameter
vectors at a handful of *time slots* — the paper's MOVIES-style setup of
"6 Planar indices corresponding to future time-instants t = 10..15 min".
A query at any time in the window (including instants with no dedicated
slot) picks the best slot index via the volume heuristic.

Memory note: the pair feature matrix is ``(n1 * n2, d')`` — quadratic in
fleet size by construction, exactly like the paper's 5K x 5K = 25M pair
setup.  Scale fleets accordingly.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .._util import as_rng
from ..core.domains import ParameterDomain, QueryModel
from ..core.function_index import FunctionIndex
from ..core.phi import identity_map
from ..exceptions import InvalidDomainError
from .features import (
    accelerating_pair_features,
    circular_circular_pair_features,
    circular_circular_time_normal,
    circular_pair_features,
    circular_time_normal,
    linear_pair_features,
    pair_rows_to_pairs,
    polynomial_time_normal,
)
from .motion import AcceleratingFleet, CircularFleet, LinearFleet

__all__ = [
    "PairScan",
    "LinearIntersectionIndex",
    "AcceleratingIntersectionIndex",
    "CircularIntersectionIndex",
    "CircularCircularIntersectionIndex",
    "IntersectionResult",
]

# Angular velocities closer than this (degrees/min) are treated as equal
# when bucketing circular-circular pairs.
_OMEGA_PAIR_TOL = 1e-9

# Rows per block in the baseline's blocked all-pairs distance computation;
# bounds peak memory at ~block * n2 floats.
_SCAN_BLOCK = 512

# Time-grid resolution used to bound each query parameter over the window.
_DOMAIN_GRID = 512


@dataclass(frozen=True)
class IntersectionResult:
    """Intersecting pairs plus query diagnostics.

    ``pairs`` holds ``(i, j)`` rows — object ``i`` of the first fleet and
    object ``j`` of the second.  ``n_candidates`` counts pairs whose scalar
    product was actually evaluated; ``used_fallback`` flags queries that
    had to bypass the Planar machinery.
    """

    pairs: np.ndarray
    n_candidates: int
    n_total: int
    used_fallback: bool

    def __len__(self) -> int:
        return int(self.pairs.shape[0])


class PairScan:
    """Baseline: evaluate the distance of every cross-fleet pair at ``t``."""

    def __init__(self, first, second) -> None:
        self._first = first
        self._second = second

    def query(self, t: float, distance: float) -> IntersectionResult:
        """All pairs within ``distance`` at time ``t`` (blocked all-pairs)."""
        if distance < 0:
            raise ValueError(f"distance must be nonnegative, got {distance}")
        pos_a = self._first.position(t)
        pos_b = self._second.position(t)
        threshold = float(distance) ** 2
        found = []
        for start in range(0, pos_a.shape[0], _SCAN_BLOCK):
            block = pos_a[start : start + _SCAN_BLOCK]
            d2 = ((block[:, None, :] - pos_b[None, :, :]) ** 2).sum(axis=2)
            rows, cols = np.nonzero(d2 <= threshold)
            found.append(np.column_stack([rows + start, cols]))
        pairs = np.vstack(found) if found else np.empty((0, 2), dtype=np.int64)
        n_total = self._first.n * self._second.n
        return IntersectionResult(
            pairs=pairs.astype(np.int64),
            n_candidates=n_total,
            n_total=n_total,
            used_fallback=False,
        )


def _domains_from_time_grid(
    normal_of_t, t_range: tuple[float, float]
) -> QueryModel:
    """Bound each query parameter over the time window on a dense grid."""
    t_lo, t_hi = float(t_range[0]), float(t_range[1])
    if not 0 < t_lo <= t_hi:
        raise InvalidDomainError(
            f"time window must satisfy 0 < t_lo <= t_hi, got ({t_lo}, {t_hi})"
        )
    grid = np.linspace(t_lo, t_hi, _DOMAIN_GRID)
    samples = np.vstack([normal_of_t(t) for t in grid])
    lows = samples.min(axis=0)
    highs = samples.max(axis=0)
    domains = []
    for low, high in zip(lows, highs):
        if low < 0.0 < high:
            raise InvalidDomainError(
                "a time parameter changes sign inside the query window; "
                "shrink the window (e.g. keep omega * t below 90 degrees)"
            )
        domains.append(ParameterDomain(low=float(low), high=float(high)))
    return QueryModel(domains)


def _slot_normals(normal_of_t, t_range: tuple[float, float], n_slots: int) -> np.ndarray:
    if n_slots < 1:
        raise ValueError(f"n_time_slots must be >= 1, got {n_slots}")
    slots = np.linspace(t_range[0], t_range[1], n_slots)
    return np.vstack([normal_of_t(t) for t in slots])


class _PolynomialIntersectionIndex:
    """Shared machinery for the two polynomial (linear/accelerating) cases."""

    def __init__(
        self,
        features: np.ndarray,
        n_second: int,
        degree: int,
        t_range: tuple[float, float],
        n_time_slots: int,
        rng: np.random.Generator | int | None,
    ) -> None:
        self._n_second = int(n_second)
        self._degree = int(degree)
        normal_of_t = lambda t: polynomial_time_normal(t, self._degree)  # noqa: E731
        model = _domains_from_time_grid(normal_of_t, t_range)
        normals = _slot_normals(normal_of_t, t_range, n_time_slots)
        self._index = FunctionIndex(
            features,
            model,
            feature_map=identity_map(features.shape[1]),
            normals=normals,
            rng=as_rng(rng),
        )

    @property
    def index(self) -> FunctionIndex:
        """The underlying :class:`FunctionIndex` over pair features."""
        return self._index

    @property
    def n_pairs(self) -> int:
        """Number of indexed pairs."""
        return len(self._index)

    def query(self, t: float, distance: float) -> IntersectionResult:
        """Pairs within ``distance`` at time ``t`` via the Planar index."""
        if distance < 0:
            raise ValueError(f"distance must be nonnegative, got {distance}")
        normal = polynomial_time_normal(float(t), self._degree)
        answer = self._index.query(normal, float(distance) ** 2)
        checked = (
            answer.stats.n_verified if answer.stats is not None else len(self._index)
        )
        return IntersectionResult(
            pairs=pair_rows_to_pairs(answer.ids, self._n_second),
            n_candidates=int(checked),
            n_total=len(self._index),
            used_fallback=answer.used_fallback,
        )

    def update_first_object(self, *args, **kwargs):  # pragma: no cover - abstract
        raise NotImplementedError


class LinearIntersectionIndex(_PolynomialIntersectionIndex):
    """Planar intersection index for two constant-velocity fleets.

    Parameters
    ----------
    first / second:
        The two fleets; pairs are first x second.
    t_range:
        Anticipated query window (paper: ``(10, 15)`` minutes).
    n_time_slots:
        Number of per-time-instant index normals (paper: 6).
    """

    def __init__(
        self,
        first: LinearFleet,
        second: LinearFleet,
        t_range: tuple[float, float] = (10.0, 15.0),
        n_time_slots: int = 6,
        rng: np.random.Generator | int | None = None,
    ) -> None:
        self._first = first
        self._second = second
        features = linear_pair_features(first, second)
        super().__init__(features, second.n, 2, t_range, n_time_slots, rng)

    def update_first_object(
        self, object_index: int, position: np.ndarray, velocity: np.ndarray
    ) -> None:
        """Re-key all pairs of one first-fleet object after a motion change.

        This is the paper's "0.5 ms per moving-object update" path: one
        object touches exactly ``n2`` pair rows.
        """
        sub = LinearFleet(
            np.asarray(position, dtype=np.float64).reshape(1, -1),
            np.asarray(velocity, dtype=np.float64).reshape(1, -1),
        )
        rows = np.arange(
            object_index * self._n_second,
            (object_index + 1) * self._n_second,
            dtype=np.int64,
        )
        self._first._p[object_index] = sub.positions[0]
        self._first._u[object_index] = sub.velocities[0]
        self._index.update_points(rows, linear_pair_features(sub, self._second))


class AcceleratingIntersectionIndex(_PolynomialIntersectionIndex):
    """Planar intersection index for an accelerating vs a linear fleet."""

    def __init__(
        self,
        first: AcceleratingFleet,
        second: LinearFleet,
        t_range: tuple[float, float] = (10.0, 15.0),
        n_time_slots: int = 6,
        rng: np.random.Generator | int | None = None,
    ) -> None:
        self._first = first
        self._second = second
        features = accelerating_pair_features(first, second)
        super().__init__(features, second.n, 4, t_range, n_time_slots, rng)


class CircularIntersectionIndex:
    """Planar intersection index for circular vs linear fleets.

    The angular velocity appears in the query parameters, so circular
    objects are grouped into buckets of equal ``omega`` (after rounding)
    and one :class:`FunctionIndex` is built per bucket; a query fans out
    over the buckets with the matching trigonometric normal.
    """

    def __init__(
        self,
        first: CircularFleet,
        second: LinearFleet,
        t_range: tuple[float, float] = (10.0, 15.0),
        n_time_slots: int = 6,
        omega_decimals: int = 6,
        rng: np.random.Generator | int | None = None,
    ) -> None:
        self._first = first
        self._second = second
        generator = as_rng(rng)
        omegas = np.round(first.omega_degrees, omega_decimals)
        self._buckets: list[tuple[float, np.ndarray, FunctionIndex]] = []
        for omega in np.unique(omegas):
            members = np.nonzero(omegas == omega)[0]
            sub = CircularFleet(
                first.centers[members],
                first.radii[members],
                first.omega_degrees[members],
                first.phases[members],
            )
            features = circular_pair_features(sub, second)
            normal_of_t = lambda t, w=omega: circular_time_normal(t, w)  # noqa: E731
            model = _domains_from_time_grid(normal_of_t, t_range)
            normals = _slot_normals(normal_of_t, t_range, n_time_slots)
            index = FunctionIndex(
                features,
                model,
                feature_map=identity_map(features.shape[1]),
                normals=normals,
                rng=generator,
            )
            self._buckets.append((float(omega), members, index))

    @property
    def n_buckets(self) -> int:
        """Number of angular-velocity buckets."""
        return len(self._buckets)

    @property
    def n_pairs(self) -> int:
        """Total indexed pairs across buckets."""
        return sum(len(index) for _, _, index in self._buckets)

    def query(self, t: float, distance: float) -> IntersectionResult:
        """Pairs within ``distance`` at time ``t``, fanned over buckets."""
        if distance < 0:
            raise ValueError(f"distance must be nonnegative, got {distance}")
        threshold = float(distance) ** 2
        n_second = self._second.n
        all_pairs = []
        checked = 0
        fallback = False
        for omega, members, index in self._buckets:
            normal = circular_time_normal(float(t), omega)
            answer = index.query(normal, threshold)
            fallback = fallback or answer.used_fallback
            checked += (
                answer.stats.n_verified if answer.stats is not None else len(index)
            )
            local = pair_rows_to_pairs(answer.ids, n_second)
            local[:, 0] = members[local[:, 0]]
            all_pairs.append(local)
        pairs = (
            np.vstack(all_pairs) if all_pairs else np.empty((0, 2), dtype=np.int64)
        )
        order = np.lexsort((pairs[:, 1], pairs[:, 0]))
        return IntersectionResult(
            pairs=pairs[order],
            n_candidates=checked,
            n_total=self.n_pairs,
            used_fallback=fallback,
        )


class CircularCircularIntersectionIndex:
    """Planar intersection index for two circular fleets.

    Goes beyond the paper's circular-vs-linear scenario: both objects of a
    pair move on circles.  Pairs are bucketed by their ``(w1, w2)``
    angular-velocity pair; within a bucket the squared distance is a
    scalar product over the trigonometric basis of
    :func:`~repro.moving.features.circular_circular_time_normal`.
    Co-rotating buckets (``w1 == w2``) degenerate: the relative-phase
    terms are constants and the duplicated ``cos/sin`` parameters merge,
    collapsing the feature space from 7 to 3 dimensions.
    """

    def __init__(
        self,
        first: CircularFleet,
        second: CircularFleet,
        t_range: tuple[float, float] = (10.0, 15.0),
        n_time_slots: int = 6,
        omega_decimals: int = 6,
        rng: np.random.Generator | int | None = None,
    ) -> None:
        self._first = first
        self._second = second
        generator = as_rng(rng)
        omegas_a = np.round(first.omega_degrees, omega_decimals)
        omegas_b = np.round(second.omega_degrees, omega_decimals)
        n2 = second.n
        # (bucket key) -> members of each fleet.
        self._buckets: list[tuple[float, float, np.ndarray, np.ndarray, FunctionIndex, bool]] = []
        for omega1 in np.unique(omegas_a):
            members_a = np.nonzero(omegas_a == omega1)[0]
            sub_a = CircularFleet(
                first.centers[members_a],
                first.radii[members_a],
                first.omega_degrees[members_a],
                first.phases[members_a],
            )
            for omega2 in np.unique(omegas_b):
                members_b = np.nonzero(omegas_b == omega2)[0]
                sub_b = CircularFleet(
                    second.centers[members_b],
                    second.radii[members_b],
                    second.omega_degrees[members_b],
                    second.phases[members_b],
                )
                features = circular_circular_pair_features(sub_a, sub_b)
                co_rotating = abs(float(omega1) - float(omega2)) < _OMEGA_PAIR_TOL
                if co_rotating:
                    # cos(dw t) == 1 and sin(dw t) == 0: fold the constant
                    # relative-phase term into the constant feature, and
                    # merge the duplicated cos/sin parameter axes.
                    features = np.column_stack(
                        [
                            features[:, 0] + features[:, 5],
                            features[:, 1] + features[:, 3],
                            features[:, 2] + features[:, 4],
                        ]
                    )
                    normal_of_t = lambda t, w=float(omega1): np.array(  # noqa: E731
                        [
                            1.0,
                            np.cos(np.deg2rad(w) * t),
                            np.sin(np.deg2rad(w) * t),
                        ]
                    )
                else:
                    normal_of_t = lambda t, w1=float(omega1), w2=float(omega2): (  # noqa: E731
                        circular_circular_time_normal(t, w1, w2)
                    )
                model = _domains_from_time_grid(normal_of_t, t_range)
                normals = _slot_normals(normal_of_t, t_range, n_time_slots)
                index = FunctionIndex(
                    features,
                    model,
                    feature_map=identity_map(features.shape[1]),
                    normals=normals,
                    rng=generator,
                )
                self._buckets.append(
                    (float(omega1), float(omega2), members_a, members_b, index, co_rotating)
                )

    @property
    def n_buckets(self) -> int:
        """Number of (w1, w2) buckets."""
        return len(self._buckets)

    @property
    def n_pairs(self) -> int:
        """Total indexed pairs across buckets."""
        return sum(len(index) for *_, index, _flag in self._buckets)

    def query(self, t: float, distance: float) -> IntersectionResult:
        """Pairs within ``distance`` at time ``t``, fanned over buckets."""
        if distance < 0:
            raise ValueError(f"distance must be nonnegative, got {distance}")
        threshold = float(distance) ** 2
        all_pairs = []
        checked = 0
        fallback = False
        for omega1, omega2, members_a, members_b, index, co_rotating in self._buckets:
            if co_rotating:
                angle = np.deg2rad(omega1) * float(t)
                normal = np.array([1.0, np.cos(angle), np.sin(angle)])
            else:
                normal = circular_circular_time_normal(float(t), omega1, omega2)
            answer = index.query(normal, threshold)
            fallback = fallback or answer.used_fallback
            checked += (
                answer.stats.n_verified if answer.stats is not None else len(index)
            )
            local = pair_rows_to_pairs(answer.ids, members_b.size)
            decoded = np.column_stack(
                [members_a[local[:, 0]], members_b[local[:, 1]]]
            )
            all_pairs.append(decoded)
        pairs = (
            np.vstack(all_pairs) if all_pairs else np.empty((0, 2), dtype=np.int64)
        )
        order = np.lexsort((pairs[:, 1], pairs[:, 0]))
        return IntersectionResult(
            pairs=pairs[order],
            n_candidates=checked,
            n_total=self.n_pairs,
            used_fallback=fallback,
        )
