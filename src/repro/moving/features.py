"""Pair feature maps: squared distance as a scalar product (Section 7.5.1).

For a pair of moving objects the squared distance at time ``t`` expands
into ``<params(t), features(pair)>`` where the features depend only on the
objects' motion state (indexable ahead of time) and the parameters depend
only on ``t`` (known at query time):

* linear–linear:     ``d^2(t) = X1 + X2 t + X3 t^2``
* accelerating–linear: quartic polynomial in ``t`` (five features),
* circular–linear:   trigonometric basis
  ``(1, t, t^2, cos wt, sin wt, t cos wt, t sin wt)`` — the angular
  velocity ``w`` enters the *parameters*, so objects must share ``w``
  within one indexed query (the intersection layer buckets by ``w``).

Pair ``(i, j)`` — object ``i`` of the first fleet against object ``j`` of
the second — maps to feature row ``i * n2 + j``.
"""

from __future__ import annotations

import numpy as np

from ..exceptions import DimensionMismatchError
from .motion import AcceleratingFleet, CircularFleet, LinearFleet

__all__ = [
    "linear_pair_features",
    "accelerating_pair_features",
    "circular_pair_features",
    "circular_circular_pair_features",
    "polynomial_time_normal",
    "circular_time_normal",
    "circular_circular_time_normal",
    "pair_rows_to_pairs",
]

# Below this angular-velocity difference (degrees/min) two circular objects
# are treated as co-rotating: the relative-phase basis functions degenerate
# to constants and are folded into the constant feature.
_OMEGA_EQ_TOL = 1e-9


def pair_rows_to_pairs(rows: np.ndarray, n_second: int) -> np.ndarray:
    """Decode feature-row ids back into ``(i, j)`` object index pairs."""
    rows = np.ascontiguousarray(rows, dtype=np.int64)
    return np.column_stack([rows // n_second, rows % n_second])


def _pair_deltas(first: np.ndarray, second: np.ndarray) -> np.ndarray:
    """All pairwise differences, flattened to ``(n1 * n2, dims)``."""
    n1, dims = first.shape
    n2 = second.shape[0]
    return (first[:, None, :] - second[None, :, :]).reshape(n1 * n2, dims)


def linear_pair_features(first: LinearFleet, second: LinearFleet) -> np.ndarray:
    """Features ``(X1, X2, X3)`` for linear–linear pairs.

    ``d^2(t) = |dp|^2 + 2 <dp, du> t + |du|^2 t^2`` — the decomposition the
    paper states for the uniform-velocity workload.
    """
    if first.dims != second.dims:
        raise DimensionMismatchError(
            f"fleet dimensionalities differ: {first.dims} vs {second.dims}"
        )
    dp = _pair_deltas(first.positions, second.positions)
    du = _pair_deltas(first.velocities, second.velocities)
    return np.column_stack(
        [
            np.einsum("ij,ij->i", dp, dp),
            2.0 * np.einsum("ij,ij->i", dp, du),
            np.einsum("ij,ij->i", du, du),
        ]
    )


def accelerating_pair_features(
    first: AcceleratingFleet, second: LinearFleet
) -> np.ndarray:
    """Features ``(X1..X5)`` for accelerating–linear pairs.

    With relative motion ``dp + du t + (a/2) t^2`` (only the first fleet
    accelerates), the squared distance is the quartic::

        |dp|^2 + 2<dp,du> t + (|du|^2 + <dp,a>) t^2 + <du,a> t^3 + |a|^2/4 t^4
    """
    if first.dims != second.dims:
        raise DimensionMismatchError(
            f"fleet dimensionalities differ: {first.dims} vs {second.dims}"
        )
    n2 = second.n
    dp = _pair_deltas(first.positions, second.positions)
    du = _pair_deltas(first.velocities, second.velocities)
    accel = np.repeat(first.accelerations, n2, axis=0)
    return np.column_stack(
        [
            np.einsum("ij,ij->i", dp, dp),
            2.0 * np.einsum("ij,ij->i", dp, du),
            np.einsum("ij,ij->i", du, du) + np.einsum("ij,ij->i", dp, accel),
            np.einsum("ij,ij->i", du, accel),
            0.25 * np.einsum("ij,ij->i", accel, accel),
        ]
    )


def circular_pair_features(first: CircularFleet, second: LinearFleet) -> np.ndarray:
    """Features ``(g1..g7)`` for circular–linear pairs (Example 2 family).

    With ``D = center - q`` and linear velocity ``v``::

        d^2(t) = (|D|^2 + r^2) - 2<D,v> t + |v|^2 t^2
                 + cos(wt) * 2r( Dx cos t0 + Dy sin t0)
                 + sin(wt) * 2r(-Dx sin t0 + Dy cos t0)
                 + t cos(wt) * 2r(-vx cos t0 - vy sin t0)
                 + t sin(wt) * 2r( vx sin t0 - vy cos t0)

    The features are independent of ``w``; ``w`` only appears in the query
    normal (:func:`circular_time_normal`), which is why queries are issued
    per angular-velocity bucket.
    """
    if second.dims != 2:
        raise DimensionMismatchError("circular pairs require 2-D linear objects")
    n2 = second.n
    big_d = _pair_deltas(first.centers, second.positions)
    vel = np.tile(second.velocities, (first.n, 1))
    radius = np.repeat(first.radii, n2)
    cos0 = np.repeat(np.cos(first.phases), n2)
    sin0 = np.repeat(np.sin(first.phases), n2)
    dx, dy = big_d[:, 0], big_d[:, 1]
    vx, vy = vel[:, 0], vel[:, 1]
    return np.column_stack(
        [
            np.einsum("ij,ij->i", big_d, big_d) + radius**2,
            -2.0 * np.einsum("ij,ij->i", big_d, vel),
            np.einsum("ij,ij->i", vel, vel),
            2.0 * radius * (dx * cos0 + dy * sin0),
            2.0 * radius * (-dx * sin0 + dy * cos0),
            2.0 * radius * (-vx * cos0 - vy * sin0),
            2.0 * radius * (vx * sin0 - vy * cos0),
        ]
    )


def circular_circular_pair_features(
    first: CircularFleet, second: CircularFleet
) -> np.ndarray:
    """Features for circular–circular pairs (both fleets on circles).

    With ``D = c1 - c2``, ``e(a) = (cos a, sin a)`` and angles
    ``a_i = theta_i + w_i t``::

        d^2(t) = |D|^2 + r1^2 + r2^2
                 + 2 r1 <D, e(a1)> - 2 r2 <D, e(a2)>
                 - 2 r1 r2 cos(a1 - a2)

    Expanding each trigonometric term yields the seven-component basis of
    :func:`circular_circular_time_normal`:
    ``(1, cos w1 t, sin w1 t, cos w2 t, sin w2 t, cos dw t, sin dw t)``
    with ``dw = w1 - w2``.  As with the circular–linear case the angular
    velocities live in the *parameters*, so queries must be bucketed by
    the ``(w1, w2)`` pair.  When ``w1 == w2`` the relative-phase basis
    degenerates to constants; query-time handling folds that into the
    constant component (see ``circular_circular_time_normal``), so the
    features remain 7-wide and bucket-independent.
    """
    n2 = second.n
    big_d = _pair_deltas(first.centers, second.centers)
    dx, dy = big_d[:, 0], big_d[:, 1]
    r1 = np.repeat(first.radii, n2)
    r2 = np.tile(second.radii, first.n)
    cos1 = np.repeat(np.cos(first.phases), n2)
    sin1 = np.repeat(np.sin(first.phases), n2)
    cos2 = np.tile(np.cos(second.phases), first.n)
    sin2 = np.tile(np.sin(second.phases), first.n)
    # cos(a1 - a2) = cos(dtheta + dw t) with dtheta = theta1 - theta2:
    # expands over (cos dw t, sin dw t) with coefficients cos/sin(dtheta).
    cos_dtheta = cos1 * cos2 + sin1 * sin2
    sin_dtheta = sin1 * cos2 - cos1 * sin2
    return np.column_stack(
        [
            np.einsum("ij,ij->i", big_d, big_d) + r1**2 + r2**2,
            2.0 * r1 * (dx * cos1 + dy * sin1),
            2.0 * r1 * (-dx * sin1 + dy * cos1),
            -2.0 * r2 * (dx * cos2 + dy * sin2),
            -2.0 * r2 * (-dx * sin2 + dy * cos2),
            -2.0 * r1 * r2 * cos_dtheta,
            -2.0 * r1 * r2 * sin_dtheta,
        ]
    )


def circular_circular_time_normal(
    t: float, omega1_degrees: float, omega2_degrees: float
) -> np.ndarray:
    """Query normal for circular–circular pairs at time ``t``.

    Components: ``(1, cos w1 t, sin w1 t, cos w2 t, sin w2 t,
    cos dw t, -sin dw t)`` — the sign on the last component matches the
    ``sin(dtheta)`` coefficient convention of
    :func:`circular_circular_pair_features` (``cos(x + y)`` expansion).
    """
    t = float(t)
    a1 = np.deg2rad(float(omega1_degrees)) * t
    a2 = np.deg2rad(float(omega2_degrees)) * t
    dw = a1 - a2
    return np.array(
        [
            1.0,
            np.cos(a1),
            np.sin(a1),
            np.cos(a2),
            np.sin(a2),
            np.cos(dw),
            -np.sin(dw),
        ]
    )


def polynomial_time_normal(t: float, degree: int) -> np.ndarray:
    """Query normal ``(1, t, t^2, ..., t^degree)`` for polynomial motion."""
    if degree < 1:
        raise ValueError(f"degree must be >= 1, got {degree}")
    return np.power(float(t), np.arange(degree + 1, dtype=np.float64))


def circular_time_normal(t: float, omega_degrees: float) -> np.ndarray:
    """Query normal for circular–linear pairs at time ``t`` with angular
    velocity ``omega_degrees`` (degrees/min)."""
    t = float(t)
    angle = np.deg2rad(float(omega_degrees)) * t
    cos_wt = float(np.cos(angle))
    sin_wt = float(np.sin(angle))
    return np.array([1.0, t, t * t, cos_wt, sin_wt, t * cos_wt, t * sin_wt])
