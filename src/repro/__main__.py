"""``python -m repro`` entry point."""

import sys

from .cli import main

__all__: list[str] = []

if __name__ == "__main__":
    sys.exit(main())
