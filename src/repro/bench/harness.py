"""Timing and reporting utilities for the benchmark suite."""

from __future__ import annotations

import statistics
import time
from dataclasses import dataclass
from typing import Callable, Iterable, Mapping, Sequence

from ..obs import metrics as _om
from ..obs import runtime as _ort

__all__ = ["Timer", "TimingResult", "time_call", "format_table", "print_table"]


class Timer:
    """Context manager measuring wall-clock seconds.

    >>> with Timer() as timer:
    ...     _ = sum(range(1000))
    >>> timer.seconds >= 0.0
    True
    """

    def __init__(self) -> None:
        self.seconds = 0.0
        self._start = 0.0

    def __enter__(self) -> "Timer":
        self._start = time.perf_counter()
        return self

    def __exit__(self, *exc_info) -> None:
        self.seconds = time.perf_counter() - self._start

    @property
    def millis(self) -> float:
        """Elapsed milliseconds."""
        return self.seconds * 1000.0


@dataclass(frozen=True)
class TimingResult:
    """Wall-clock timing distribution from :func:`time_call`.

    ``min`` is the least-noise estimate (what the old best-of-``repeat``
    float return value reported); ``median`` and ``max`` expose run-to-run
    spread so a benchmark can tell a stable measurement from a noisy one.
    ``float(result)`` still yields ``min`` for drop-in arithmetic.
    """

    times: tuple[float, ...]

    def __post_init__(self) -> None:
        if not self.times:
            raise ValueError("TimingResult needs at least one sample")

    @property
    def min(self) -> float:
        """Fastest repetition in seconds."""
        return min(self.times)

    @property
    def median(self) -> float:
        """Median repetition in seconds."""
        return float(statistics.median(self.times))

    @property
    def max(self) -> float:
        """Slowest repetition in seconds."""
        return max(self.times)

    @property
    def repeat(self) -> int:
        """Number of repetitions measured."""
        return len(self.times)

    def __float__(self) -> float:
        return self.min

    def to_dict(self) -> dict[str, float]:
        """``{"min": ..., "median": ..., "max": ..., "repeat": ...}``."""
        return {
            "min": self.min,
            "median": self.median,
            "max": self.max,
            "repeat": float(self.repeat),
        }


def time_call(
    func: Callable[[], object], repeat: int = 3, name: str | None = None
) -> TimingResult:
    """Time ``repeat`` calls of ``func``; report min / median / max.

    When observability is armed (``REPRO_OBS=1`` /
    :func:`repro.obs.enable`), every repetition is also observed into the
    ``repro_bench_seconds`` histogram under the ``bench`` label (``name``,
    defaulting to the callable's qualified name) so benchmark timings land
    in the same registry as query latencies.
    """
    if repeat < 1:
        raise ValueError(f"repeat must be >= 1, got {repeat}")
    times: list[float] = []
    for _ in range(repeat):
        start = time.perf_counter()
        func()
        times.append(time.perf_counter() - start)
    if _ort.ENABLED:
        label = name or getattr(func, "__qualname__", None) or repr(func)
        histogram = _om.bench_seconds()
        for sample in times:
            histogram.observe(sample, bench=label)
    return TimingResult(tuple(times))


def format_table(title: str, rows: Sequence[Mapping[str, object]]) -> str:
    """Render rows as an aligned text table (all rows share the row-0 keys)."""
    if not rows:
        return f"== {title} ==\n(no rows)"
    headers = list(rows[0].keys())
    cells = [[_format_cell(row.get(key, "")) for key in headers] for row in rows]
    widths = [
        max(len(header), *(len(line[pos]) for line in cells))
        for pos, header in enumerate(headers)
    ]
    lines = [f"== {title} =="]
    lines.append("  ".join(header.ljust(width) for header, width in zip(headers, widths)))
    lines.append("  ".join("-" * width for width in widths))
    for line in cells:
        lines.append("  ".join(cell.ljust(width) for cell, width in zip(line, widths)))
    return "\n".join(lines)


def _format_cell(value: object) -> str:
    if isinstance(value, float):
        if value == 0.0:
            return "0"
        if abs(value) >= 1000:
            return f"{value:.0f}"
        if abs(value) >= 1:
            return f"{value:.2f}"
        return f"{value:.4f}"
    return str(value)


def print_table(title: str, rows: Iterable[Mapping[str, object]]) -> None:
    """Print an aligned table for a benchmark report."""
    print("\n" + format_table(title, list(rows)) + "\n")
