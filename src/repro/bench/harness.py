"""Timing and reporting utilities for the benchmark suite."""

from __future__ import annotations

import time
from typing import Callable, Iterable, Mapping, Sequence

__all__ = ["Timer", "time_call", "format_table", "print_table"]


class Timer:
    """Context manager measuring wall-clock seconds.

    >>> with Timer() as timer:
    ...     _ = sum(range(1000))
    >>> timer.seconds >= 0.0
    True
    """

    def __init__(self) -> None:
        self.seconds = 0.0
        self._start = 0.0

    def __enter__(self) -> "Timer":
        self._start = time.perf_counter()
        return self

    def __exit__(self, *exc_info) -> None:
        self.seconds = time.perf_counter() - self._start

    @property
    def millis(self) -> float:
        """Elapsed milliseconds."""
        return self.seconds * 1000.0


def time_call(func: Callable[[], object], repeat: int = 3) -> float:
    """Best-of-``repeat`` wall-clock seconds for calling ``func``."""
    if repeat < 1:
        raise ValueError(f"repeat must be >= 1, got {repeat}")
    best = float("inf")
    for _ in range(repeat):
        start = time.perf_counter()
        func()
        best = min(best, time.perf_counter() - start)
    return best


def format_table(title: str, rows: Sequence[Mapping[str, object]]) -> str:
    """Render rows as an aligned text table (all rows share the row-0 keys)."""
    if not rows:
        return f"== {title} ==\n(no rows)"
    headers = list(rows[0].keys())
    cells = [[_format_cell(row.get(key, "")) for key in headers] for row in rows]
    widths = [
        max(len(header), *(len(line[pos]) for line in cells))
        for pos, header in enumerate(headers)
    ]
    lines = [f"== {title} =="]
    lines.append("  ".join(header.ljust(width) for header, width in zip(headers, widths)))
    lines.append("  ".join("-" * width for width in widths))
    for line in cells:
        lines.append("  ".join(cell.ljust(width) for cell, width in zip(line, widths)))
    return "\n".join(lines)


def _format_cell(value: object) -> str:
    if isinstance(value, float):
        if value == 0.0:
            return "0"
        if abs(value) >= 1000:
            return f"{value:.0f}"
        if abs(value) >= 1:
            return f"{value:.2f}"
        return f"{value:.4f}"
    return str(value)


def print_table(title: str, rows: Iterable[Mapping[str, object]]) -> None:
    """Print an aligned table for a benchmark report."""
    print("\n" + format_table(title, list(rows)) + "\n")
