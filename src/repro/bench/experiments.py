"""Experiment runners: one function per table/figure family of Section 7.

Each runner builds the paper's setup (scaled down from 1M points / 25M
pairs to laptop-friendly sizes — the *shapes* are what we reproduce, not
absolute milliseconds), executes the workload through both the Planar
index and the sequential-scan baseline, and returns printable rows.
"""

from __future__ import annotations

import time
from typing import Sequence

import numpy as np

from .._util import as_rng
from ..core.function_index import FunctionIndex
from ..core.selection import SelectionStrategy
from ..datasets.synthetic import load
from ..datasets.realworld import consumption
from ..datasets.workloads import Workload, consumption_workload
from ..moving.intersection import (
    AcceleratingIntersectionIndex,
    CircularIntersectionIndex,
    LinearIntersectionIndex,
    PairScan,
)
from ..moving.mbrtree import TPRTree, tpr_intersection_join
from ..moving.simulate import (
    accelerating_workload,
    circular_workload,
    uniform_linear_workload,
)
from ..obs import metrics as _om
from ..obs import runtime as _ort
from ..parallel.engine import ShardedFunctionIndex
from ..scan.baseline import SequentialScan

__all__ = [
    "run_query_experiment",
    "run_consumption_experiment",
    "run_selectivity_experiment",
    "run_scalability_experiment",
    "run_index_cost_experiment",
    "run_memory_experiment",
    "run_update_experiment",
    "run_moving_experiment",
    "run_topk_experiment",
]


def _make_index(
    points: np.ndarray,
    model,
    n_indices: int,
    strategy: SelectionStrategy | str,
    rng,
    n_shards: int,
    workers: int | None,
    feature_map=None,
):
    """Monolithic facade for one shard, the sharded engine otherwise.

    Experiment runners accept ``n_shards``/``workers`` so the parallel
    engine can be measured through the exact same workloads as the
    monolithic path (``repro bench --shards 4``).
    """
    if n_shards <= 1:
        return FunctionIndex(
            points,
            model,
            feature_map=feature_map,
            n_indices=n_indices,
            strategy=strategy,
            rng=rng,
        )
    return ShardedFunctionIndex(
        points,
        model,
        feature_map=feature_map,
        n_indices=n_indices,
        strategy=strategy,
        rng=rng,
        n_shards=n_shards,
        max_workers=workers,
    )


def _observe_bench(label: str, mean_ms: float) -> None:
    """Fold a mean per-query timing into the obs bench histogram."""
    if _ort.ENABLED:
        _om.bench_seconds().observe(mean_ms / 1000.0, bench=label)


def _mean_query_ms(run, queries, label: str = "experiment.baseline") -> float:
    start = time.perf_counter()
    for query in queries:
        run(query)
    mean_ms = (time.perf_counter() - start) * 1000.0 / max(1, len(queries))
    _observe_bench(label, mean_ms)
    return mean_ms


def _timed_run(run, queries, label: str = "experiment.planar") -> tuple[float, list]:
    """Mean per-query milliseconds plus the collected answers."""
    answers = []
    start = time.perf_counter()
    for query in queries:
        answers.append(run(query))
    elapsed_ms = (time.perf_counter() - start) * 1000.0 / max(1, len(queries))
    _observe_bench(label, elapsed_ms)
    return elapsed_ms, answers


def run_query_experiment(
    points: np.ndarray,
    rq: int,
    n_indices: int,
    n_queries: int = 25,
    inequality_parameter: float = 0.25,
    strategy: SelectionStrategy | str = SelectionStrategy.MIN_STRETCH,
    rng: np.random.Generator | int | None = None,
    n_shards: int = 1,
    workers: int | None = None,
) -> dict[str, float]:
    """One cell of Figures 6–10: query time and pruning for one config."""
    generator = as_rng(rng)
    workload = Workload.for_points(
        points, rq=rq, inequality_parameter=inequality_parameter
    )
    index = _make_index(
        points, workload.model, n_indices, strategy, generator, n_shards, workers
    )
    try:
        scan = SequentialScan(points)
        queries = workload.sample_queries(n_queries, generator)

        # Warm both paths once so timings exclude first-touch effects.
        index.query(queries[0].normal, queries[0].offset)
        scan.query(queries[0])

        planar_ms, answers = _timed_run(
            lambda q: index.query(q.normal, q.offset), queries
        )
        baseline_ms = _mean_query_ms(scan.query, queries)
        pruned = [answer.stats.pruned_fraction for answer in answers]
        return {
            "planar_ms": planar_ms,
            "baseline_ms": baseline_ms,
            "speedup": baseline_ms / planar_ms if planar_ms > 0 else float("inf"),
            "pruning_pct": 100.0 * float(np.mean(pruned)),
            "n_indices": index.n_indices,
        }
    finally:
        if isinstance(index, ShardedFunctionIndex):
            index.close()


def run_consumption_experiment(
    n_points: int,
    n_indices_list: Sequence[int],
    n_queries: int = 25,
    rng: np.random.Generator | int | None = None,
) -> list[dict[str, object]]:
    """Figure 6(a): the Critical_Consume SQL function vs #indices."""
    generator = as_rng(rng)
    dataset = consumption(n_points, rng=generator)
    workload = consumption_workload()
    features = workload.feature_map(dataset.points)
    scan = SequentialScan(features)
    queries = [workload.sample_query(generator) for _ in range(n_queries)]
    baseline_ms = _mean_query_ms(scan.query, queries)

    rows: list[dict[str, object]] = []
    for n_indices in n_indices_list:
        start = time.perf_counter()
        index = FunctionIndex(
            dataset.points,
            workload.model,
            feature_map=workload.feature_map,
            n_indices=n_indices,
            rng=generator,
        )
        build_s = time.perf_counter() - start
        planar_ms = _mean_query_ms(lambda q: index.query(q.normal, q.offset), queries)
        rows.append(
            {
                "n_indices": n_indices,
                "planar_ms": planar_ms,
                "baseline_ms": baseline_ms,
                "speedup": baseline_ms / planar_ms if planar_ms > 0 else float("inf"),
                "build_s": build_s,
            }
        )
    return rows


def run_selectivity_experiment(
    points: np.ndarray,
    inequality_parameters: Sequence[float],
    rq: int = 4,
    n_indices: int = 100,
    n_queries: int = 15,
    rng: np.random.Generator | int | None = None,
) -> list[dict[str, object]]:
    """Figure 11: selectivity and query time vs the inequality parameter."""
    generator = as_rng(rng)
    base = Workload.for_points(points, rq=rq)
    index = FunctionIndex(points, base.model, n_indices=n_indices, rng=generator)
    scan = SequentialScan(points)
    rows: list[dict[str, object]] = []
    for parameter in inequality_parameters:
        workload = base.with_inequality_parameter(parameter)
        queries = workload.sample_queries(n_queries, generator)
        selectivity = float(
            np.mean([q.evaluate(points).mean() for q in queries])
        )
        planar_ms, answers = _timed_run(
            lambda q: index.query(q.normal, q.offset), queries
        )
        baseline_ms = _mean_query_ms(scan.query, queries)
        pruning = float(np.mean([a.stats.pruned_fraction for a in answers]))
        rows.append(
            {
                "ineq_param": parameter,
                "selectivity_pct": 100.0 * selectivity,
                "planar_ms": planar_ms,
                "baseline_ms": baseline_ms,
                "pruning_pct": 100.0 * pruning,
            }
        )
    return rows


def run_scalability_experiment(
    dataset_name: str,
    sizes: Sequence[int],
    dim: int = 6,
    rq: int = 4,
    n_indices: int = 50,
    n_queries: int = 15,
    rng: np.random.Generator | int | None = None,
    n_shards: int = 1,
    workers: int | None = None,
) -> list[dict[str, object]]:
    """Figure 12: index build time and query time vs dataset cardinality."""
    generator = as_rng(rng)
    rows: list[dict[str, object]] = []
    for size in sizes:
        points = load(dataset_name, size, dim, rng=generator).points
        workload = Workload.for_points(points, rq=rq)
        start = time.perf_counter()
        index = _make_index(
            points,
            workload.model,
            n_indices,
            SelectionStrategy.MIN_STRETCH,
            generator,
            n_shards,
            workers,
        )
        build_s = time.perf_counter() - start
        try:
            scan = SequentialScan(points)
            queries = workload.sample_queries(n_queries, generator)
            planar_ms = _mean_query_ms(
                lambda q: index.query(q.normal, q.offset), queries
            )
            baseline_ms = _mean_query_ms(scan.query, queries)
        finally:
            if isinstance(index, ShardedFunctionIndex):
                index.close()
        rows.append(
            {
                "n_points": size,
                "build_s": build_s,
                "planar_ms": planar_ms,
                "baseline_ms": baseline_ms,
            }
        )
    return rows


def run_index_cost_experiment(
    dims: Sequence[int],
    n_indices_list: Sequence[int],
    n_points: int = 50_000,
    rng: np.random.Generator | int | None = None,
) -> list[dict[str, object]]:
    """Figure 13(a): index construction time vs dimensionality and budget."""
    generator = as_rng(rng)
    rows: list[dict[str, object]] = []
    for dim in dims:
        points = load("indp", n_points, dim, rng=generator).points
        workload = Workload.for_points(points, rq=None)
        for n_indices in n_indices_list:
            start = time.perf_counter()
            FunctionIndex(points, workload.model, n_indices=n_indices, rng=generator)
            rows.append(
                {
                    "dim": dim,
                    "n_indices": n_indices,
                    "build_s": time.perf_counter() - start,
                }
            )
    return rows


def run_memory_experiment(
    dims: Sequence[int],
    n_indices_list: Sequence[int],
    n_points: int = 50_000,
    rng: np.random.Generator | int | None = None,
) -> list[dict[str, object]]:
    """Figure 13(b): memory consumption vs #indices and dimensionality."""
    generator = as_rng(rng)
    rows: list[dict[str, object]] = []
    for dim in dims:
        points = load("indp", n_points, dim, rng=generator).points
        workload = Workload.for_points(points, rq=None)
        for n_indices in n_indices_list:
            index = FunctionIndex(
                points, workload.model, n_indices=n_indices, rng=generator
            )
            rows.append(
                {
                    "dim": dim,
                    "n_indices": n_indices,
                    "memory_mb": index.memory_bytes() / (1024.0 * 1024.0),
                }
            )
    return rows


def run_update_experiment(
    n_points: int,
    dim: int,
    update_fractions: Sequence[float],
    n_indices: int = 10,
    rng: np.random.Generator | int | None = None,
) -> list[dict[str, object]]:
    """Figure 13(c): per-index update time vs fraction of points changed."""
    generator = as_rng(rng)
    points = load("indp", n_points, dim, rng=generator).points
    workload = Workload.for_points(points, rq=None)
    rows: list[dict[str, object]] = []
    for fraction in update_fractions:
        index = FunctionIndex(points, workload.model, n_indices=n_indices, rng=generator)
        count = max(1, int(round(fraction * n_points)))
        ids = generator.choice(n_points, size=count, replace=False).astype(np.int64)
        new_values = generator.uniform(1.0, 100.0, size=(count, dim))
        start = time.perf_counter()
        index.update_points(ids, new_values)
        elapsed = time.perf_counter() - start
        rows.append(
            {
                "update_pct": 100.0 * fraction,
                "per_index_ms": elapsed * 1000.0 / n_indices,
                "per_point_us": elapsed * 1e6 / (count * n_indices),
            }
        )
    return rows


def run_moving_experiment(
    scenario: str,
    n_per_set: int,
    times: Sequence[float],
    distance: float = 10.0,
    rng: np.random.Generator | int | None = None,
) -> list[dict[str, object]]:
    """Figure 14: intersection time per future instant, all methods.

    ``scenario`` is ``linear`` (adds the MBR/TPR-tree column), ``circular``,
    or ``accelerating``.
    """
    generator = as_rng(rng)
    if scenario == "linear":
        first, second = uniform_linear_workload(n_per_set, rng=generator)
        index = LinearIntersectionIndex(first, second, rng=generator)
        trees = (TPRTree(first), TPRTree(second))
    elif scenario == "circular":
        first, second = circular_workload(n_per_set, rng=generator)
        index = CircularIntersectionIndex(first, second, rng=generator)
        trees = None
    elif scenario == "accelerating":
        first, second = accelerating_workload(n_per_set, rng=generator)
        index = AcceleratingIntersectionIndex(first, second, rng=generator)
        trees = None
    else:
        raise ValueError(f"unknown scenario {scenario!r}")
    scan = PairScan(first, second)

    rows: list[dict[str, object]] = []
    for t in times:
        start = time.perf_counter()
        planar = index.query(t, distance)
        planar_ms = (time.perf_counter() - start) * 1000.0

        start = time.perf_counter()
        truth = scan.query(t, distance)
        baseline_ms = (time.perf_counter() - start) * 1000.0
        if not np.array_equal(planar.pairs, truth.pairs):  # pragma: no cover
            raise AssertionError(f"planar/baseline mismatch at t={t}")

        row: dict[str, object] = {
            "t": t,
            "n_matches": len(truth),
            "planar_ms": planar_ms,
            "baseline_ms": baseline_ms,
        }
        if trees is not None:
            start = time.perf_counter()
            mbr_pairs = tpr_intersection_join(trees[0], trees[1], t, distance)
            row["mbr_ms"] = (time.perf_counter() - start) * 1000.0
            if not np.array_equal(mbr_pairs, truth.pairs):  # pragma: no cover
                raise AssertionError(f"mbr/baseline mismatch at t={t}")
        rows.append(row)
    return rows


def run_topk_experiment(
    points: np.ndarray,
    ks: Sequence[int],
    rq: int = 4,
    n_indices: int = 100,
    n_queries: int = 15,
    rng: np.random.Generator | int | None = None,
    n_shards: int = 1,
    workers: int | None = None,
) -> list[dict[str, object]]:
    """Table 3: top-k time and checked-point fraction vs k."""
    generator = as_rng(rng)
    workload = Workload.for_points(points, rq=rq)
    index = _make_index(
        points,
        workload.model,
        n_indices,
        SelectionStrategy.MIN_STRETCH,
        generator,
        n_shards,
        workers,
    )
    try:
        scan = SequentialScan(points)
        queries = workload.sample_queries(n_queries, generator)
        rows: list[dict[str, object]] = []
        for k in ks:
            checked = [
                index.topk(q.normal, q.offset, k).checked_fraction for q in queries
            ]
            planar_ms = _mean_query_ms(
                lambda q: index.topk(q.normal, q.offset, k), queries
            )
            baseline_ms = _mean_query_ms(lambda q: scan.topk(q, k), queries)
            rows.append(
                {
                    "k": k,
                    "checked_pct": 100.0 * float(np.mean(checked)),
                    "planar_ms": planar_ms,
                    "baseline_ms": baseline_ms,
                }
            )
        return rows
    finally:
        if isinstance(index, ShardedFunctionIndex):
            index.close()
