"""Benchmark harness regenerating every table and figure of Section 7.

:mod:`repro.bench.harness` provides timing and table-printing utilities;
:mod:`repro.bench.experiments` implements one runner per experiment
(Figures 6–14, Tables 2–3).  The ``benchmarks/`` directory wraps these
runners in pytest-benchmark targets; EXPERIMENTS.md records paper-vs-
measured values.
"""

from .harness import Timer, TimingResult, format_table, print_table, time_call
from .experiments import (
    run_consumption_experiment,
    run_index_cost_experiment,
    run_memory_experiment,
    run_moving_experiment,
    run_query_experiment,
    run_scalability_experiment,
    run_selectivity_experiment,
    run_topk_experiment,
    run_update_experiment,
)

__all__ = [
    "Timer",
    "TimingResult",
    "format_table",
    "print_table",
    "run_consumption_experiment",
    "run_index_cost_experiment",
    "run_memory_experiment",
    "run_moving_experiment",
    "run_query_experiment",
    "run_scalability_experiment",
    "run_selectivity_experiment",
    "run_topk_experiment",
    "run_update_experiment",
    "time_call",
]
