"""Synthetic dataset generators (Section 7.1, Table 2).

The paper uses the independent / correlated / anti-correlated generator of
the skyline operator paper [4].  All three families draw attribute values in
a configurable range (paper default ``(1, 100)``) with cardinality 1M and
dimensionality 2–14; this module reimplements the constructions:

* **Independent** — every attribute i.i.d. uniform over the range.
* **Correlated** — points cluster around the main diagonal: a point that is
  large in one dimension tends to be large in all of them.
* **Anti-correlated** — points cluster around the anti-diagonal hyperplane
  ``sum_i x_i ≈ const``: a point large in one dimension is small in the
  others.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from .._util import as_rng

__all__ = [
    "Dataset",
    "independent",
    "correlated",
    "anticorrelated",
    "load",
    "table2_characteristics",
]

# Spread of the per-dimension jitter around the diagonal for the correlated
# family, as a fraction of the attribute range.
_CORRELATED_JITTER = 0.12
# Spread of the plane position for the anti-correlated family, as a fraction
# of the attribute range (tight, per the original generator).
_ANTI_PLANE_SPREAD = 0.05


@dataclass(frozen=True)
class Dataset:
    """A named point set plus the metadata reported in Table 2."""

    name: str
    points: np.ndarray
    attribute_names: tuple[str, ...] = field(default=())

    def __post_init__(self) -> None:
        points = np.ascontiguousarray(self.points, dtype=np.float64)
        points.setflags(write=False)
        object.__setattr__(self, "points", points)
        if not self.attribute_names:
            names = tuple(f"attr_{i}" for i in range(points.shape[1]))
            object.__setattr__(self, "attribute_names", names)

    @property
    def n(self) -> int:
        """Number of data points."""
        return int(self.points.shape[0])

    @property
    def dim(self) -> int:
        """Dimensionality of each point."""
        return int(self.points.shape[1])

    @property
    def attribute_range(self) -> tuple[float, float]:
        """Global (min, max) over all attributes — the Table 2 range column."""
        return float(self.points.min()), float(self.points.max())

    def __len__(self) -> int:
        return self.n


def _validate(n: int, dim: int, low: float, high: float) -> None:
    if n <= 0:
        raise ValueError(f"n must be positive, got {n}")
    if dim <= 0:
        raise ValueError(f"dim must be positive, got {dim}")
    if not low < high:
        raise ValueError(f"need low < high, got ({low}, {high})")


def independent(
    n: int,
    dim: int,
    low: float = 1.0,
    high: float = 100.0,
    rng: np.random.Generator | int | None = None,
) -> Dataset:
    """Attributes i.i.d. uniform over ``(low, high)`` — the *Indp* family."""
    _validate(n, dim, low, high)
    generator = as_rng(rng)
    points = generator.uniform(low, high, size=(n, dim))
    return Dataset("indp", points)


def correlated(
    n: int,
    dim: int,
    low: float = 1.0,
    high: float = 100.0,
    rng: np.random.Generator | int | None = None,
) -> Dataset:
    """Diagonal-clustered points — the *Corr* family.

    Each point picks a position ``t`` along the main diagonal and jitters
    every coordinate around it with a normal perturbation, so all
    dimensions rise and fall together.
    """
    _validate(n, dim, low, high)
    generator = as_rng(rng)
    span = high - low
    diag = generator.uniform(0.0, 1.0, size=(n, 1))
    jitter = generator.normal(0.0, _CORRELATED_JITTER, size=(n, dim))
    unit = np.clip(diag + jitter, 0.0, 1.0)
    return Dataset("corr", low + span * unit)


def anticorrelated(
    n: int,
    dim: int,
    low: float = 1.0,
    high: float = 100.0,
    rng: np.random.Generator | int | None = None,
) -> Dataset:
    """Anti-diagonal points — the *Anti* family.

    Each point lives near the hyperplane ``sum_i u_i = dim / 2`` (in unit
    coordinates): its coordinates are a Dirichlet split of a total budget,
    so a large value in one dimension forces small values elsewhere.
    """
    _validate(n, dim, low, high)
    generator = as_rng(rng)
    span = high - low
    totals = generator.normal(0.5, _ANTI_PLANE_SPREAD, size=n).clip(0.05, 0.95) * dim
    shares = generator.dirichlet(np.ones(dim), size=n)
    unit = np.clip(shares * totals[:, None], 0.0, 1.0)
    return Dataset("anti", low + span * unit)


_SYNTHETIC_LOADERS = {
    "indp": independent,
    "corr": correlated,
    "anti": anticorrelated,
}


def load(
    name: str,
    n: int,
    dim: int,
    low: float = 1.0,
    high: float = 100.0,
    rng: np.random.Generator | int | None = None,
) -> Dataset:
    """Load a synthetic family by its paper name (``indp``/``corr``/``anti``)."""
    try:
        factory = _SYNTHETIC_LOADERS[name.lower()]
    except KeyError:
        valid = ", ".join(sorted(_SYNTHETIC_LOADERS))
        raise ValueError(f"unknown synthetic dataset {name!r}; expected one of {valid}") from None
    return factory(n, dim, low=low, high=high, rng=rng)


def table2_characteristics(datasets: list[Dataset]) -> list[dict[str, object]]:
    """Rows of Table 2 (dataset characteristics) for the given datasets."""
    rows = []
    for ds in datasets:
        low, high = ds.attribute_range
        rows.append(
            {
                "dataset": ds.name,
                "n_points": ds.n,
                "dimension": ds.dim,
                "attribute_range": (round(low, 2), round(high, 2)),
            }
        )
    return rows
