"""Dataset import/export.

The evaluation can run entirely on simulated data, but when the *real*
files are available (the UCI "Individual household electric power
consumption" text file, or CSV exports of the Corel feature sets) these
loaders parse them into the same :class:`Dataset` shape, so benches and
examples can switch between simulation and the genuine article without
code changes.
"""

from __future__ import annotations

import csv
from pathlib import Path

import numpy as np

from .synthetic import Dataset

__all__ = [
    "save_csv",
    "load_csv",
    "load_uci_household_power",
]


def save_csv(dataset: Dataset, path: str | Path) -> Path:
    """Write a dataset as a headered CSV file."""
    path = Path(path)
    with open(path, "w", newline="") as handle:
        writer = csv.writer(handle)
        writer.writerow(dataset.attribute_names)
        writer.writerows(dataset.points.tolist())
    return path


def load_csv(path: str | Path, name: str | None = None) -> Dataset:
    """Read a headered numeric CSV file into a :class:`Dataset`.

    Rows containing non-numeric cells (missing markers like ``?``) are
    skipped, mirroring how the UCI consumption data is usually cleaned.
    """
    path = Path(path)
    with open(path, newline="") as handle:
        reader = csv.reader(handle)
        header = next(reader)
        rows: list[list[float]] = []
        for row in reader:
            try:
                rows.append([float(cell) for cell in row])
            except ValueError:
                continue
    if not rows:
        raise ValueError(f"no numeric rows in {path}")
    points = np.asarray(rows, dtype=np.float64)
    return Dataset(name or path.stem, points, tuple(header))


# Column layout of the UCI household_power_consumption.txt file.
_UCI_COLUMNS = (
    "Date",
    "Time",
    "Global_active_power",
    "Global_reactive_power",
    "Voltage",
    "Global_intensity",
    "Sub_metering_1",
    "Sub_metering_2",
    "Sub_metering_3",
)


def load_uci_household_power(path: str | Path, max_rows: int | None = None) -> Dataset:
    """Parse the original UCI household power file into the paper's layout.

    Extracts the four attributes the paper uses — active power (kW),
    reactive power (kW), voltage (V), current (A) — skipping rows with the
    dataset's ``?`` missing markers.  ``max_rows`` caps parsing for quick
    experiments.
    """
    path = Path(path)
    rows: list[list[float]] = []
    with open(path, newline="") as handle:
        reader = csv.reader(handle, delimiter=";")
        header = next(reader)
        if tuple(header) != _UCI_COLUMNS:
            raise ValueError(
                f"{path} does not look like the UCI household power file "
                f"(header {header[:3]}...)"
            )
        for row in reader:
            try:
                active = float(row[2])
                reactive = float(row[3])
                voltage = float(row[4])
                current = float(row[5])
            except (ValueError, IndexError):
                continue
            rows.append([active, reactive, voltage, current])
            if max_rows is not None and len(rows) >= max_rows:
                break
    if not rows:
        raise ValueError(f"no parsable measurement rows in {path}")
    return Dataset(
        "consumption",
        np.asarray(rows, dtype=np.float64),
        ("active_power", "reactive_power", "voltage", "current"),
    )
