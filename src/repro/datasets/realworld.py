"""Simulated stand-ins for the paper's real-world datasets (Section 7.1).

The paper evaluates on two Corel image-feature sets and the UCI household
electric power consumption data.  Those files are not available offline, so
this module synthesizes datasets that match every characteristic the paper
reports (Table 2) — cardinality, dimensionality, attribute ranges — plus the
structural properties that matter to a Planar index: cross-attribute
correlation (image features share latent factors), heavy tails (texture
features), and the physical coupling ``active_power ≈ pf * V * I``
(consumption).  DESIGN.md records the substitution rationale.
"""

from __future__ import annotations

import numpy as np

from .._util import as_rng
from .synthetic import Dataset

__all__ = ["cmoment", "ctexture", "consumption"]

# Published characteristics (Table 2).
CMOMENT_N = 68_040
CMOMENT_DIM = 9
CMOMENT_RANGE = (-4.15, 4.59)

CTEXTURE_N = 68_040
CTEXTURE_DIM = 16
CTEXTURE_RANGE = (-5.25, 50.21)

CONSUMPTION_N = 2_075_259
VOLTAGE_RANGE = (223.0, 254.0)
CURRENT_RANGE = (0.0, 48.0)
ACTIVE_POWER_RANGE = (0.0, 11.0)   # kW
REACTIVE_POWER_RANGE = (0.0, 1.0)  # kW

# Number of shared latent factors behind the image features: color moments
# are three moments of three channels, texture features co-vary by band.
_LATENT_FACTORS = 3


def _rescale(columns: np.ndarray, low: float, high: float) -> np.ndarray:
    """Affinely map the whole matrix into (low, high), preserving shape."""
    cmin = columns.min()
    cmax = columns.max()
    if cmax == cmin:  # pragma: no cover - degenerate constant input
        return np.full_like(columns, (low + high) / 2.0)
    return low + (columns - cmin) * (high - low) / (cmax - cmin)


def _factor_model(
    n: int,
    dim: int,
    rng: np.random.Generator,
    noise_df: float,
    skew: float = 0.0,
) -> np.ndarray:
    """Low-rank factor structure + heavy-tailed noise (image-feature shape).

    ``noise_df`` is the Student-t degrees of freedom (smaller = heavier
    tails); ``skew > 0`` adds a right tail by exponentiating a fraction of
    the signal, the shape of co-occurrence texture energies.
    """
    loadings = rng.normal(0.0, 1.0, size=(_LATENT_FACTORS, dim))
    factors = rng.normal(0.0, 1.0, size=(n, _LATENT_FACTORS))
    noise = rng.standard_t(noise_df, size=(n, dim))
    values = factors @ loadings + 0.6 * noise
    if skew > 0.0:
        values = np.expm1(skew * values) / skew
    return values


def cmoment(
    n: int = CMOMENT_N,
    rng: np.random.Generator | int | None = None,
) -> Dataset:
    """Simulated Corel color-moments features (68,040 x 9 in (-4.15, 4.59)).

    Color moments are mean/stddev/skewness of three color channels —
    standardized, roughly symmetric, and strongly correlated within a
    channel; a rank-3 factor model with mild Student-t noise reproduces
    that shape before rescaling to the published range.
    """
    generator = as_rng(rng)
    values = _factor_model(n, CMOMENT_DIM, generator, noise_df=6.0)
    points = _rescale(values, *CMOMENT_RANGE)
    names = tuple(
        f"{channel}_{moment}"
        for channel in ("h", "s", "v")
        for moment in ("mean", "std", "skew")
    )
    return Dataset("cmoment", points, names)


def ctexture(
    n: int = CTEXTURE_N,
    rng: np.random.Generator | int | None = None,
) -> Dataset:
    """Simulated Corel co-occurrence texture features (68,040 x 16 in
    (-5.25, 50.21)).

    Co-occurrence statistics are nonnegative-leaning with a long right tail
    (energy/contrast explode on textured images); a skewed factor model
    reproduces the asymmetric published range.
    """
    generator = as_rng(rng)
    values = _factor_model(n, CTEXTURE_DIM, generator, noise_df=4.0, skew=0.8)
    points = _rescale(values, *CTEXTURE_RANGE)
    names = tuple(f"cooc_{i}" for i in range(CTEXTURE_DIM))
    return Dataset("ctexture", points, names)


def consumption(
    n: int = CONSUMPTION_N,
    rng: np.random.Generator | int | None = None,
) -> Dataset:
    """Simulated household electric power measurements (2,075,259 x 4).

    Columns: ``active_power`` (kW), ``reactive_power`` (kW), ``voltage``
    (V), ``current`` (A) — published ranges from Section 7.1.  The
    generator enforces the physics the Example 1 query depends on:

    * apparent power ``S = V * I / 1000`` (kW),
    * ``active = pf * S`` with power factor ``pf ~ Beta(6, 1.5)``
      (mass near 0.85, long left tail — resistive loads dominate),
    * ``reactive ~ sqrt(1 - pf^2) * S`` scaled into its published range.

    Consequently ``active / (V * I / 1000)`` — the *power factor* the
    Critical_Consume query thresholds — is Beta-distributed in (0, 1), so
    thresholds in (0.1, 1.0) sweep realistic selectivities.
    """
    generator = as_rng(rng)
    voltage = generator.uniform(*VOLTAGE_RANGE, size=n)
    # Household current: mostly idle (~1-5 A) with occasional heavy loads.
    idle = generator.gamma(2.0, 1.2, size=n)
    heavy = generator.uniform(10.0, CURRENT_RANGE[1], size=n)
    is_heavy = generator.random(n) < 0.08
    current = np.clip(np.where(is_heavy, heavy, idle), *CURRENT_RANGE)
    power_factor = generator.beta(6.0, 1.5, size=n)
    apparent_kw = voltage * current / 1000.0
    active = np.clip(power_factor * apparent_kw, *ACTIVE_POWER_RANGE)
    reactive_raw = np.sqrt(1.0 - power_factor**2) * apparent_kw
    reactive = np.clip(reactive_raw, *REACTIVE_POWER_RANGE)
    points = np.column_stack([active, reactive, voltage, current])
    names = ("active_power", "reactive_power", "voltage", "current")
    return Dataset("consumption", points, names)
