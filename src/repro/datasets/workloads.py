"""Query workloads of the evaluation (Section 7.1).

Two workload shapes drive all of the paper's experiments:

* the **generalized scalar product query** of Eq. 18 over the synthetic and
  image datasets::

      sum_i a_i x_i  <=  s * sum_i a_i max(i)

  where each ``a_i`` is drawn from a size-RQ discrete domain, ``max(i)`` is
  the per-dimension data maximum, and ``s`` is the *inequality parameter*
  (default 0.25, swept in Figure 11), and

* the **Critical_Consume SQL function** of Example 1 over the consumption
  data: ``active_power - threshold * voltage * current <= 0`` with 900
  threshold values in (0.100, 1.000).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .._util import as_2d_float, as_rng
from ..core.domains import ParameterDomain, QueryModel
from ..core.phi import FeatureMap
from ..core.query import Comparison, ScalarProductQuery

__all__ = [
    "Workload",
    "eq18_offset",
    "consumption_workload",
    "skewed_normals",
    "ConsumptionWorkload",
]


def skewed_normals(
    model: QueryModel,
    count: int,
    concentration: float = 0.9,
    rng: np.random.Generator | int | None = None,
) -> np.ndarray:
    """Draw ``count`` query normals concentrated around one anchor direction.

    Real workloads are rarely uniform over the parameter domains — a
    dashboard reissues near-identical thresholds, a report sweeps one axis.
    This generator models that skew: an *anchor* normal is drawn uniformly
    from ``model``, then each workload normal is the anchor plus per-axis
    jitter of magnitude ``(1 - concentration)`` times the domain width,
    clipped back into the domain bounds.  ``concentration=0`` recovers
    (approximately) the uniform Section 7.1 workload; ``concentration=1``
    repeats the anchor exactly.

    This is the workload shape the tuning benchmark
    (``benchmarks/bench_tuning.py``) uses to show the advisor's edge over
    blind domain sampling: the more concentrated the workload, the more a
    single well-placed (near-parallel) index normal is worth.
    """
    if count <= 0:
        raise ValueError(f"count must be positive, got {count}")
    if not 0.0 <= concentration <= 1.0:
        raise ValueError(
            f"concentration must be in [0, 1], got {concentration}"
        )
    generator = as_rng(rng)
    anchor = model.sample_normal(generator)
    lows = model.lows()
    highs = model.highs()
    spread = (1.0 - concentration) * (highs - lows)
    jitter = generator.uniform(-1.0, 1.0, size=(count, model.dim)) * spread
    return np.clip(anchor + jitter, lows, highs)


def eq18_offset(normal: np.ndarray, maxima: np.ndarray, inequality_parameter: float) -> float:
    """Right-hand side of Eq. 18: ``s * sum_i a_i max(i)``."""
    return float(inequality_parameter * np.dot(normal, maxima))


@dataclass(frozen=True)
class Workload:
    """Eq. 18 query generator bound to one dataset's maxima.

    Parameters
    ----------
    model:
        Per-axis domains of the query parameters — typically
        ``QueryModel.uniform(dim, 1, 5, rq=RQ)``, giving ``RQ^d`` possible
        normals as in Section 7.1.
    maxima:
        Per-dimension maxima ``max(i)`` of the target dataset.
    inequality_parameter:
        The selectivity knob ``s`` (paper default 0.25).
    op:
        Comparison direction (paper default ``<=``).
    """

    model: QueryModel
    maxima: np.ndarray
    inequality_parameter: float = 0.25
    op: Comparison | str = Comparison.LE

    def __post_init__(self) -> None:
        maxima = np.ascontiguousarray(self.maxima, dtype=np.float64)
        if maxima.ndim != 1 or maxima.size != self.model.dim:
            raise ValueError(
                f"maxima must have shape ({self.model.dim},), got {maxima.shape}"
            )
        maxima.setflags(write=False)
        object.__setattr__(self, "maxima", maxima)
        object.__setattr__(self, "op", Comparison.parse(self.op))
        if not 0.0 < float(self.inequality_parameter):
            raise ValueError(
                f"inequality parameter must be positive, got {self.inequality_parameter}"
            )

    @classmethod
    def for_points(
        cls,
        points: np.ndarray,
        rq: int | None = 4,
        low: float = 1.0,
        high: float = 5.0,
        inequality_parameter: float = 0.25,
        op: Comparison | str = Comparison.LE,
    ) -> "Workload":
        """Build the standard Section 7.1 workload for a point matrix."""
        pts = as_2d_float(points, "points")
        model = QueryModel.uniform(dim=pts.shape[1], low=low, high=high, rq=rq)
        return cls(model, pts.max(axis=0), inequality_parameter, op)

    def sample_query(self, rng: np.random.Generator | int | None = None) -> ScalarProductQuery:
        """Draw one Eq. 18 query."""
        generator = as_rng(rng)
        normal = self.model.sample_normal(generator)
        offset = eq18_offset(normal, self.maxima, self.inequality_parameter)
        return ScalarProductQuery(normal, offset, self.op)

    def sample_queries(
        self, count: int, rng: np.random.Generator | int | None = None
    ) -> list[ScalarProductQuery]:
        """Draw ``count`` independent Eq. 18 queries."""
        generator = as_rng(rng)
        return [self.sample_query(generator) for _ in range(count)]

    def with_inequality_parameter(self, value: float) -> "Workload":
        """Copy of this workload with a different selectivity knob (Fig. 11)."""
        return Workload(self.model, self.maxima.copy(), value, self.op)


@dataclass(frozen=True)
class ConsumptionWorkload:
    """The Example 1 Critical_Consume workload over the consumption table.

    The SQL function ``active_power - threshold * voltage * current <= 0``
    becomes the scalar product query ``<(1, -threshold), phi(x)> <= 0`` with
    ``phi(x) = (active_power, voltage * current / 1000)``.  The ``/ 1000``
    reconciles units (active power is reported in kW while ``V * I`` is in
    W), making the thresholded ratio the true power factor in (0, 1) so the
    paper's 900 thresholds in (0.100, 1.000) sweep realistic selectivities.
    """

    feature_map: FeatureMap
    model: QueryModel
    thresholds: np.ndarray

    @classmethod
    def build(cls, n_thresholds: int = 900) -> "ConsumptionWorkload":
        """Standard workload: thresholds evenly spaced over (0.100, 1.000)."""
        if n_thresholds < 1:
            raise ValueError(f"n_thresholds must be >= 1, got {n_thresholds}")
        thresholds = np.linspace(0.100, 1.000, n_thresholds)
        feature_map = FeatureMap(
            lambda pts: np.column_stack([pts[:, 0], pts[:, 2] * pts[:, 3] / 1000.0]),
            in_dim=4,
            out_dim=2,
            names=("active_power", "apparent_power_kw"),
        )
        model = QueryModel(
            [
                ParameterDomain(values=[1.0]),
                ParameterDomain(values=-thresholds),
            ]
        )
        return cls(feature_map, model, thresholds)

    def query_for_threshold(self, threshold: float) -> ScalarProductQuery:
        """The Critical_Consume query for one threshold value."""
        return ScalarProductQuery(np.array([1.0, -float(threshold)]), 0.0, Comparison.LE)

    def sample_query(self, rng: np.random.Generator | int | None = None) -> ScalarProductQuery:
        """Draw a query with a uniformly chosen threshold."""
        generator = as_rng(rng)
        threshold = float(generator.choice(self.thresholds))
        return self.query_for_threshold(threshold)


def consumption_workload(n_thresholds: int = 900) -> ConsumptionWorkload:
    """Convenience constructor for :class:`ConsumptionWorkload`."""
    return ConsumptionWorkload.build(n_thresholds)
