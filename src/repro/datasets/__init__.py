"""Datasets and query workloads of the paper's evaluation (Section 7.1).

Three synthetic families follow the skyline-operator generator of
Börzsönyi et al. (*Indp*, *Corr*, *Anti*); three "real-world" datasets are
simulated with the published cardinality, dimensionality, value ranges, and
plausible correlation structure (*CMoment*, *CTexture*, *Consumption*) —
see DESIGN.md for the substitution rationale.  The workload module builds
the Eq. 18 scalar product queries with the randomness-of-query (RQ) knob.
"""

from .realworld import cmoment, consumption, ctexture
from .synthetic import (
    Dataset,
    anticorrelated,
    correlated,
    independent,
    load,
    table2_characteristics,
)
from .workloads import Workload, consumption_workload, eq18_offset

__all__ = [
    "Dataset",
    "Workload",
    "anticorrelated",
    "cmoment",
    "consumption",
    "consumption_workload",
    "correlated",
    "ctexture",
    "eq18_offset",
    "independent",
    "load",
    "table2_characteristics",
]
