"""Internal helpers shared across the repro subpackages.

These utilities centralise argument validation and RNG handling so that the
public modules stay focused on the algorithms from the paper.  Nothing in this
module is part of the public API.
"""

from __future__ import annotations

from typing import Iterable, Sequence

import numpy as np

from .exceptions import DimensionMismatchError

__all__ = [
    "as_rng",
    "as_1d_float",
    "as_2d_float",
    "describe_nonfinite",
    "require_finite_rows",
    "require_positive",
    "require_same_length",
    "pairwise_sq_distance",
]

#: Cap on how many offending positions a non-finite error message names.
_MAX_NAMED_POSITIONS = 8


def describe_nonfinite(array: np.ndarray, *, limit: int = _MAX_NAMED_POSITIONS) -> str:
    """Name the non-finite entries of ``array`` (positions and values).

    Returns e.g. ``"[3]=nan, [7]=inf"`` for a vector or
    ``"[2, 0]=nan"`` for a matrix, truncated to ``limit`` entries so a
    million-NaN batch stays readable.  Empty string when all finite.
    """
    bad = np.argwhere(~np.isfinite(array))
    if bad.size == 0:
        return ""
    parts = []
    for position in bad[:limit]:
        index = tuple(int(i) for i in position)
        label = str(index[0]) if len(index) == 1 else ", ".join(map(str, index))
        parts.append(f"[{label}]={array[index]!r}")
    more = len(bad) - min(len(bad), limit)
    suffix = f", … {more} more" if more > 0 else ""
    return ", ".join(parts) + suffix


def require_finite_rows(array: np.ndarray, name: str) -> np.ndarray:
    """Raise :class:`DimensionMismatchError` naming non-finite positions.

    Eager NaN/inf rejection for inserted/updated points and features:
    letting a NaN reach the sorted key arrays poisons every downstream
    SI/LI/II binary search (NaN comparisons are unordered, so
    ``searchsorted`` windows silently come back wrong), so the facades
    fail fast and name the offending entries instead.
    """
    if not np.all(np.isfinite(array)):
        raise DimensionMismatchError(
            f"{name} must be finite; non-finite entries at "
            f"{describe_nonfinite(array)}"
        )
    return array


def as_rng(seed_or_rng: int | np.random.Generator | None) -> np.random.Generator:
    """Return a :class:`numpy.random.Generator` for ``seed_or_rng``.

    Accepts an existing generator (returned unchanged), an integer seed, or
    ``None`` for nondeterministic entropy.  Library code never touches the
    legacy global numpy RNG.
    """
    if isinstance(seed_or_rng, np.random.Generator):
        return seed_or_rng
    return np.random.default_rng(seed_or_rng)


def as_1d_float(values: Sequence[float] | np.ndarray, name: str = "array") -> np.ndarray:
    """Coerce ``values`` to a contiguous 1-D float64 array, validating shape."""
    arr = np.ascontiguousarray(values, dtype=np.float64)
    if arr.ndim != 1:
        raise DimensionMismatchError(
            f"{name} must be one-dimensional, got shape {arr.shape}"
        )
    return arr


def as_2d_float(values: Sequence[Sequence[float]] | np.ndarray, name: str = "array") -> np.ndarray:
    """Coerce ``values`` to a contiguous 2-D float64 array, validating shape.

    A 1-D input is promoted to a single-row matrix so that callers can pass
    one point where a batch is expected.
    """
    arr = np.ascontiguousarray(values, dtype=np.float64)
    if arr.ndim == 1:
        arr = arr.reshape(1, -1)
    if arr.ndim != 2:
        raise DimensionMismatchError(
            f"{name} must be two-dimensional, got shape {arr.shape}"
        )
    return arr


def require_positive(value: float, name: str) -> float:
    """Validate that ``value`` is strictly positive and return it."""
    if not value > 0:
        raise ValueError(f"{name} must be strictly positive, got {value!r}")
    return value


def require_same_length(name_a: str, a: Iterable, name_b: str, b: Iterable) -> None:
    """Raise :class:`DimensionMismatchError` unless ``len(a) == len(b)``."""
    len_a = len(a)  # type: ignore[arg-type]
    len_b = len(b)  # type: ignore[arg-type]
    if len_a != len_b:
        raise DimensionMismatchError(
            f"{name_a} has length {len_a} but {name_b} has length {len_b}"
        )


def pairwise_sq_distance(points_a: np.ndarray, points_b: np.ndarray) -> np.ndarray:
    """Squared Euclidean distances between every row of ``points_a`` and ``points_b``.

    Returns an ``(len(points_a), len(points_b))`` matrix.  Used by the
    moving-object baseline, where the all-pairs scan is the whole point.
    """
    a = as_2d_float(points_a, "points_a")
    b = as_2d_float(points_b, "points_b")
    if a.shape[1] != b.shape[1]:
        raise DimensionMismatchError(
            f"point dimensionalities differ: {a.shape[1]} vs {b.shape[1]}"
        )
    diff = a[:, None, :] - b[None, :, :]
    return np.einsum("ijk,ijk->ij", diff, diff)
