"""Internal helpers shared across the repro subpackages.

These utilities centralise argument validation and RNG handling so that the
public modules stay focused on the algorithms from the paper.  Nothing in this
module is part of the public API.
"""

from __future__ import annotations

from typing import Iterable, Sequence

import numpy as np

from .exceptions import DimensionMismatchError

__all__ = [
    "as_rng",
    "as_1d_float",
    "as_2d_float",
    "require_positive",
    "require_same_length",
    "pairwise_sq_distance",
]


def as_rng(seed_or_rng: int | np.random.Generator | None) -> np.random.Generator:
    """Return a :class:`numpy.random.Generator` for ``seed_or_rng``.

    Accepts an existing generator (returned unchanged), an integer seed, or
    ``None`` for nondeterministic entropy.  Library code never touches the
    legacy global numpy RNG.
    """
    if isinstance(seed_or_rng, np.random.Generator):
        return seed_or_rng
    return np.random.default_rng(seed_or_rng)


def as_1d_float(values: Sequence[float] | np.ndarray, name: str = "array") -> np.ndarray:
    """Coerce ``values`` to a contiguous 1-D float64 array, validating shape."""
    arr = np.ascontiguousarray(values, dtype=np.float64)
    if arr.ndim != 1:
        raise DimensionMismatchError(
            f"{name} must be one-dimensional, got shape {arr.shape}"
        )
    return arr


def as_2d_float(values: Sequence[Sequence[float]] | np.ndarray, name: str = "array") -> np.ndarray:
    """Coerce ``values`` to a contiguous 2-D float64 array, validating shape.

    A 1-D input is promoted to a single-row matrix so that callers can pass
    one point where a batch is expected.
    """
    arr = np.ascontiguousarray(values, dtype=np.float64)
    if arr.ndim == 1:
        arr = arr.reshape(1, -1)
    if arr.ndim != 2:
        raise DimensionMismatchError(
            f"{name} must be two-dimensional, got shape {arr.shape}"
        )
    return arr


def require_positive(value: float, name: str) -> float:
    """Validate that ``value`` is strictly positive and return it."""
    if not value > 0:
        raise ValueError(f"{name} must be strictly positive, got {value!r}")
    return value


def require_same_length(name_a: str, a: Iterable, name_b: str, b: Iterable) -> None:
    """Raise :class:`DimensionMismatchError` unless ``len(a) == len(b)``."""
    len_a = len(a)  # type: ignore[arg-type]
    len_b = len(b)  # type: ignore[arg-type]
    if len_a != len_b:
        raise DimensionMismatchError(
            f"{name_a} has length {len_a} but {name_b} has length {len_b}"
        )


def pairwise_sq_distance(points_a: np.ndarray, points_b: np.ndarray) -> np.ndarray:
    """Squared Euclidean distances between every row of ``points_a`` and ``points_b``.

    Returns an ``(len(points_a), len(points_b))`` matrix.  Used by the
    moving-object baseline, where the all-pairs scan is the whole point.
    """
    a = as_2d_float(points_a, "points_a")
    b = as_2d_float(points_b, "points_b")
    if a.shape[1] != b.shape[1]:
        raise DimensionMismatchError(
            f"point dimensionalities differ: {a.shape[1]} vs {b.shape[1]}"
        )
    diff = a[:, None, :] - b[None, :, :]
    return np.einsum("ijk,ijk->ij", diff, diff)
