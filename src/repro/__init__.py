"""repro — a reproduction of "Towards Indexing Functions: Answering Scalar
Product Queries" (Khan, Yanki, Dimcheva, Kossmann; SIGMOD 2014).

The package implements the paper's Planar index together with every
substrate its evaluation depends on: synthetic and simulated real-world
datasets, a mini SQL-function layer, moving-object workloads with a
time-parameterized R-tree baseline, and a pool-based active learner.

Quickstart
----------
>>> import numpy as np
>>> from repro import FunctionIndex, QueryModel
>>> rng = np.random.default_rng(0)
>>> points = rng.uniform(1, 100, size=(10_000, 4))
>>> model = QueryModel.uniform(dim=4, low=1.0, high=5.0, rq=4)
>>> index = FunctionIndex(points, model, n_indices=20, rng=0)
>>> normal = model.sample_normal(rng)
>>> answer = index.query(normal, offset=400.0)
>>> bool(np.all(points[answer.ids] @ normal <= 400.0))
True
"""

from .core import (
    Comparison,
    ConjunctiveQuery,
    ConstraintAnswer,
    DisjunctiveQuery,
    FeatureMap,
    FeatureStore,
    FunctionIndex,
    ParameterDomain,
    PlanarIndex,
    PlanarIndexCollection,
    QueryAnswer,
    QueryModel,
    QueryResult,
    QueryStats,
    ScalarProductQuery,
    SelectionStrategy,
    SortedKeyStore,
    TopKBuffer,
    TopKQuery,
    TopKResult,
    WorkingQuery,
    answer_conjunction,
    answer_disjunction,
    identity_map,
    load_index,
    polynomial_map,
    product_map,
    save_index,
)
from .exceptions import (
    DegradedAnswerError,
    DimensionMismatchError,
    ExpressionError,
    ExpressionSyntaxError,
    FaultSpecError,
    IndexBuildError,
    InjectedFaultError,
    InvalidDomainError,
    InvalidQueryError,
    NonScalarProductError,
    PersistenceError,
    QueryTimeoutError,
    ReproError,
    ShardFailureError,
    TuningError,
    UnknownColumnError,
)
from .parallel import ShardedFunctionIndex
from .reliability import DegradedInfo, FailurePolicy, FaultPlan
from .scan import SequentialScan
from .tuning import Advisor, TuningPlan, WorkloadRecorder, apply_plan

__version__ = "1.0.0"

__all__ = [
    "Advisor",
    "Comparison",
    "ConjunctiveQuery",
    "ConstraintAnswer",
    "DegradedAnswerError",
    "DegradedInfo",
    "DisjunctiveQuery",
    "DimensionMismatchError",
    "ExpressionError",
    "ExpressionSyntaxError",
    "FailurePolicy",
    "FaultPlan",
    "FaultSpecError",
    "FeatureMap",
    "FeatureStore",
    "FunctionIndex",
    "IndexBuildError",
    "InjectedFaultError",
    "InvalidDomainError",
    "InvalidQueryError",
    "NonScalarProductError",
    "ParameterDomain",
    "PersistenceError",
    "QueryTimeoutError",
    "PlanarIndex",
    "PlanarIndexCollection",
    "QueryAnswer",
    "QueryModel",
    "QueryResult",
    "QueryStats",
    "ReproError",
    "ScalarProductQuery",
    "SelectionStrategy",
    "SequentialScan",
    "ShardFailureError",
    "ShardedFunctionIndex",
    "SortedKeyStore",
    "TopKBuffer",
    "TopKQuery",
    "TopKResult",
    "TuningError",
    "TuningPlan",
    "UnknownColumnError",
    "WorkingQuery",
    "WorkloadRecorder",
    "answer_conjunction",
    "apply_plan",
    "answer_disjunction",
    "identity_map",
    "load_index",
    "polynomial_map",
    "product_map",
    "save_index",
    "__version__",
]
