"""Hyperplanes in ``R^{d'}`` and the angular / distance primitives of the paper.

A hyperplane is the locus ``<normal, Y> = offset``.  The Planar index uses

* axis *intercepts* ``I(H, i) = offset / normal_i`` (Section 4.3),
* the *angle* between a query hyperplane and an index family
  (Section 5.1.2), and
* the point-to-hyperplane *distance* ``|<normal, p> - offset| / |normal|``
  that defines the top-k nearest neighbor query (Problem 2).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from .._util import as_1d_float, as_2d_float
from ..exceptions import DimensionMismatchError, InvalidQueryError

__all__ = ["Hyperplane", "angle_between", "cosine_similarity"]


def cosine_similarity(u: np.ndarray, v: np.ndarray) -> float:
    """Cosine of the angle between two vectors.

    Raises :class:`InvalidQueryError` for a zero vector, since a hyperplane
    normal must be nonzero.
    """
    u = as_1d_float(u, "u")
    v = as_1d_float(v, "v")
    if u.shape != v.shape:
        raise DimensionMismatchError(f"vector shapes differ: {u.shape} vs {v.shape}")
    norm_u = float(np.linalg.norm(u))
    norm_v = float(np.linalg.norm(v))
    if norm_u == 0.0 or norm_v == 0.0:
        raise InvalidQueryError("cannot take an angle with a zero vector")
    return float(np.dot(u, v) / (norm_u * norm_v))


def angle_between(u: np.ndarray, v: np.ndarray) -> float:
    """Angle in radians between two hyperplane normals, folded into [0, pi/2].

    Hyperplanes are unoriented: normals ``c`` and ``-c`` describe parallel
    planes, so the angle between hyperplanes is the acute angle between the
    normal directions.
    """
    cos = abs(cosine_similarity(u, v))
    return float(np.arccos(np.clip(cos, -1.0, 1.0)))


@dataclass(frozen=True)
class Hyperplane:
    """The hyperplane ``<normal, Y> = offset`` in ``R^{d'}``.

    Parameters
    ----------
    normal:
        Nonzero normal vector ``(a_1, ..., a_{d'})``.
    offset:
        Right-hand side ``b``.
    """

    normal: np.ndarray
    offset: float
    _unit_norm: float = field(init=False, repr=False, compare=False, default=0.0)

    def __post_init__(self) -> None:
        normal = as_1d_float(self.normal, "normal")
        if normal.size == 0:
            raise InvalidQueryError("hyperplane normal must be non-empty")
        norm = float(np.linalg.norm(normal))
        if norm == 0.0:
            raise InvalidQueryError("hyperplane normal must be nonzero")
        normal.setflags(write=False)
        object.__setattr__(self, "normal", normal)
        object.__setattr__(self, "offset", float(self.offset))
        object.__setattr__(self, "_unit_norm", norm)

    @property
    def dim(self) -> int:
        """Dimensionality ``d'`` of the ambient space."""
        return int(self.normal.size)

    def intercept(self, axis: int) -> float:
        """Intersection coordinate ``I(H, axis)`` with the given axis.

        This is the ``axis``-th coordinate of the point where the hyperplane
        crosses the ``Y_axis`` axis: ``offset / normal_axis``.  Infinite when
        the hyperplane is parallel to that axis (``normal_axis == 0``); the
        paper excludes that case for query normals but translation tests
        exercise it, so we return ``inf`` rather than raising.
        """
        component = self.normal[axis]
        if component == 0.0:
            return float(np.inf) if self.offset >= 0 else float(-np.inf)
        return float(self.offset / component)

    def intercepts(self) -> np.ndarray:
        """All ``d'`` axis intercepts as an array (``inf`` where parallel)."""
        with np.errstate(divide="ignore"):
            return np.where(
                self.normal != 0.0,
                self.offset / self.normal,
                np.copysign(np.inf, self.offset if self.offset != 0 else 1.0),
            )

    def evaluate(self, points: np.ndarray) -> np.ndarray:
        """Signed evaluation ``<normal, p> - offset`` for each row of ``points``."""
        pts = as_2d_float(points, "points")
        if pts.shape[1] != self.dim:
            raise DimensionMismatchError(
                f"points have dimension {pts.shape[1]}, hyperplane has {self.dim}"
            )
        return pts @ self.normal - self.offset

    def distance(self, points: np.ndarray) -> np.ndarray:
        """Euclidean distance of each row of ``points`` from the hyperplane.

        This is the ranking criterion of Problem 2:
        ``|<a, phi(x)> - b| / |a|``.
        """
        return np.abs(self.evaluate(points)) / self._unit_norm

    def side(self, points: np.ndarray) -> np.ndarray:
        """Sign (+1 / 0 / -1) of each point relative to the hyperplane."""
        return np.sign(self.evaluate(points)).astype(np.int8)  # repro: noqa(REP002) — compact ±1 side labels

    def angle_to(self, other: "Hyperplane | np.ndarray") -> float:
        """Acute angle (radians) between this hyperplane and ``other``."""
        other_normal = other.normal if isinstance(other, Hyperplane) else other
        return angle_between(self.normal, other_normal)

    def is_parallel_to(self, other: "Hyperplane | np.ndarray", tol: float = 1e-7) -> bool:
        """Whether this hyperplane is parallel to ``other`` within ``tol`` radians."""
        return self.angle_to(other) <= tol

    def translate(self, delta: np.ndarray) -> "Hyperplane":
        """The same hyperplane expressed in coordinates shifted by ``delta``.

        If the coordinate map is ``Y' = Y + delta`` then
        ``<a, Y> = b`` becomes ``<a, Y'> = b + <a, delta>`` (Eq. 12).
        """
        delta = as_1d_float(delta, "delta")
        if delta.size != self.dim:
            raise DimensionMismatchError(
                f"delta has dimension {delta.size}, hyperplane has {self.dim}"
            )
        return Hyperplane(self.normal.copy(), self.offset + float(np.dot(self.normal, delta)))
