"""Coordinate translation into a working hyper-octant (Section 4.5, Claim 1).

The Planar interval arguments (Observations 1 and 2) are only valid when all
feature vectors ``phi(x)`` and all query parameters are positive — i.e. in
the first hyper-octant.  The paper handles general data and queries with a
two-step coordinate change which this module implements:

1. **Reflection.**  Let ``O`` be the octant (axis-sign vector) in which query
   hyperplanes cross the axes — derivable from the parameter domains.
   Reflecting every axis by ``sign(O, i)`` maps octant ``O`` onto the first
   octant and makes every effective query parameter
   ``a''_i = sign(O, i) * a_i`` positive.

2. **Translation.**  Shift each reflected axis by
   ``delta_i = max_x max(0, -sign(O, i) * phi_i(x))`` (Eq. 10) so that every
   reflected-and-shifted coordinate is nonnegative.  By Eq. 12 the query
   offset becomes ``b'' = b + sum_i sign(O, i) * a_i * delta_i >= b >= 0``,
   so the transformed query still crosses the axes inside the first octant
   (Claim 1).

A crucial implementation detail: translating by ``delta`` adds the *same*
constant ``<c, delta>`` to every index key ``<c, phi''(x)>``, so the sorted
key order is translation-invariant.  The :class:`Translator` therefore lets
the index store *reflected but untranslated* keys and apply the scalar key
offset lazily at query time — growing ``delta`` when new extreme points
arrive costs O(1) and never forces a re-sort.
"""

from __future__ import annotations

import numpy as np

from .._util import as_1d_float, as_2d_float
from ..analysis.contracts import array_contract
from ..exceptions import DimensionMismatchError, InvalidQueryError

__all__ = ["Translator"]


class Translator:
    """Reflection + translation into the first octant for one sign pattern.

    Parameters
    ----------
    octant:
        Axis-sign vector of the octant in which query hyperplanes cross the
        axes (entries +1/-1), typically from
        :func:`repro.geometry.octant_from_domains`.
    margin:
        Extra additive slack applied to every ``delta_i``.  A small positive
        margin keeps boundary points strictly inside the working octant,
        which makes the strict-inequality operators cheap; zero reproduces
        the paper exactly.
    """

    def __init__(self, octant: np.ndarray, margin: float = 0.0) -> None:
        signs = np.asarray(octant, dtype=np.float64)
        if signs.ndim != 1 or not np.all(np.isin(signs, (-1.0, 1.0))):
            raise InvalidQueryError(
                "octant must be a 1-D vector of +1/-1 axis signs"
            )
        if margin < 0:
            raise ValueError(f"margin must be nonnegative, got {margin}")
        self._signs = signs
        self._signs.setflags(write=False)
        self._margin = float(margin)
        self._delta = np.zeros(signs.size, dtype=np.float64)

    # ------------------------------------------------------------------ #
    # Introspection
    # ------------------------------------------------------------------ #

    @property
    def dim(self) -> int:
        """Dimensionality ``d'`` of the feature space."""
        return int(self._signs.size)

    @property
    def octant(self) -> np.ndarray:
        """The configured axis-sign vector (read-only view)."""
        return self._signs

    @property
    def delta(self) -> np.ndarray:
        """Current translation vector ``delta`` (copy)."""
        return self._delta.copy()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Translator(octant={self._signs.astype(np.int64).tolist()}, delta={self._delta.tolist()})"

    # ------------------------------------------------------------------ #
    # Fitting / maintenance
    # ------------------------------------------------------------------ #

    @array_contract("points: (m, d) float64 cast promote")
    def observe(self, points: np.ndarray) -> bool:
        """Grow ``delta`` so the given feature vectors fit the working octant.

        Returns ``True`` when ``delta`` changed.  ``delta`` never shrinks:
        a larger-than-necessary translation remains valid (Claim 1 only
        needs all points inside the octant), and monotone growth keeps
        previously issued key offsets consistent.
        """
        pts = as_2d_float(points, "points")
        if pts.shape[1] != self.dim:
            raise DimensionMismatchError(
                f"points have dimension {pts.shape[1]}, translator has {self.dim}"
            )
        if pts.shape[0] == 0:
            return False
        # Required shift per axis: deepest excursion below zero after reflection.
        reflected = pts * self._signs
        deficit = np.maximum(0.0, -reflected.min(axis=0))
        needed = np.where(deficit > 0.0, deficit + self._margin, 0.0)
        grew = needed > self._delta
        if not np.any(grew):
            return False
        self._delta = np.where(grew, needed, self._delta)
        return True

    # ------------------------------------------------------------------ #
    # Coordinate maps
    # ------------------------------------------------------------------ #

    @array_contract("points: (m, d) float64 cast promote", returns="(m, d) float64")
    def reflect(self, points: np.ndarray) -> np.ndarray:
        """Apply only the axis reflection (no shift) to feature vectors."""
        pts = as_2d_float(points, "points")
        if pts.shape[1] != self.dim:
            raise DimensionMismatchError(
                f"points have dimension {pts.shape[1]}, translator has {self.dim}"
            )
        return pts * self._signs

    @array_contract("points: (m, d) float64 cast promote", returns="(m, d) float64")
    def to_working(self, points: np.ndarray) -> np.ndarray:
        """Map feature vectors into the working (first) octant: reflect + shift."""
        return self.reflect(points) + self._delta

    @array_contract("normal: (d,) float64 cast", returns="(d,) float64")
    def reflect_normal(self, normal: np.ndarray) -> np.ndarray:
        """Map a hyperplane normal into working coordinates.

        In working coordinates the normal components must all be positive for
        the interval argument to apply; callers validate via
        :meth:`transform_query`.
        """
        vec = as_1d_float(normal, "normal")
        if vec.size != self.dim:
            raise DimensionMismatchError(
                f"normal has dimension {vec.size}, translator has {self.dim}"
            )
        return vec * self._signs

    @array_contract("normal: (d,) float64 cast")
    def transform_query(self, normal: np.ndarray, offset: float) -> tuple[np.ndarray, float]:
        """Express the query ``<normal, Y> <= offset`` in working coordinates.

        Returns ``(a'', b'')`` with every ``a''_i > 0``, such that
        ``<a'', Y''> <= b''`` holds iff the original inequality holds
        (Eq. 12).  A negative ``b''`` means the query hyperplane misses the
        working octant entirely; the interval split then degenerates
        gracefully (empty SI/II, everything in LI), so it is allowed.

        Raises
        ------
        InvalidQueryError
            If the query's parameter signs do not match the configured
            octant (some ``sign(O, i) * a_i <= 0``).
        """
        working_normal = self.reflect_normal(normal)
        if np.any(working_normal <= 0.0):
            bad = int(np.argmax(working_normal <= 0.0))
            raise InvalidQueryError(
                f"query parameter {bad} has sign incompatible with the "
                f"indexed octant (a_{bad} = {normal[bad]!r}, octant sign = "
                f"{int(self._signs[bad])}); re-derive domains or use the "
                "sequential-scan fallback"
            )
        working_offset = float(offset) + float(np.dot(working_normal, self._delta))
        return working_normal, working_offset

    @array_contract("working_normal_c: (d,) float64 cast")
    def key_offset(self, working_normal_c: np.ndarray) -> float:
        """Constant ``<c, delta>`` separating stored keys from working keys.

        Index keys are stored as ``<c, reflect(phi(x))>``; the key in working
        coordinates is that value plus this offset.
        """
        vec = as_1d_float(working_normal_c, "c")
        if vec.size != self.dim:
            raise DimensionMismatchError(
                f"c has dimension {vec.size}, translator has {self.dim}"
            )
        return float(np.dot(vec, self._delta))
