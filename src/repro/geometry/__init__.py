"""Geometric substrate for the Planar index.

The Planar index reasons entirely about hyperplanes in the feature space
``R^{d'}``: the query hyperplane ``H(q): <a, Y> = b``, one index hyperplane
per data point ``H(x): <c, Y> = <c, phi(x)>``, and the Section 4.5
coordinate translation that moves data and queries into a common working
hyper-octant.  This subpackage implements those primitives from scratch.
"""

from .hyperplane import Hyperplane, angle_between, cosine_similarity
from .octant import (
    first_octant,
    octant_of_point,
    octant_from_domains,
    sign_vector,
)
from .translation import Translator

__all__ = [
    "Hyperplane",
    "angle_between",
    "cosine_similarity",
    "first_octant",
    "octant_of_point",
    "octant_from_domains",
    "sign_vector",
    "Translator",
]
