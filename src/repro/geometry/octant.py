"""Hyper-octants of ``R^{d'}`` (Section 4.5).

A hyper-octant is identified by a vector of axis signs
``sign(O, i) in {+1, -1}``.  The paper assumes the inequality parameter
``b >= 0`` while the query parameters ``a_i`` may have either sign; the
octant in which a query hyperplane crosses the coordinate axes is then
determined by the signs of the ``a_i`` (``I(q, i) = b / a_i`` shares the
sign of ``a_i``).  Because parameter domains are known ahead of time, the
octant can be derived at index-build time.
"""

from __future__ import annotations

import numpy as np

from .._util import as_1d_float
from ..exceptions import InvalidDomainError

__all__ = [
    "sign_vector",
    "first_octant",
    "octant_of_point",
    "octant_from_domains",
]


def sign_vector(values: np.ndarray, name: str = "values") -> np.ndarray:
    """Map each component to +1 / -1, treating zero as +1.

    Zeros are mapped to +1 because the paper drops zero-valued query
    parameters from consideration (Section 4.1, first assumption); a zero
    here only appears for degenerate data coordinates where either sign
    yields a valid enclosing octant.
    """
    arr = as_1d_float(values, name)
    signs = np.where(arr < 0.0, -1, 1).astype(np.int8)  # repro: noqa(REP002) — compact ±1 sign pattern
    return signs


def first_octant(dim: int) -> np.ndarray:
    """The all-positive octant of ``R^dim``."""
    if dim <= 0:
        raise ValueError(f"dim must be positive, got {dim}")
    return np.ones(dim, dtype=np.int8)  # repro: noqa(REP002) — compact ±1 sign pattern


def octant_of_point(point: np.ndarray) -> np.ndarray:
    """The octant containing ``point`` (zeros resolved to +1)."""
    return sign_vector(point, "point")


def octant_from_domains(lows: np.ndarray, highs: np.ndarray) -> np.ndarray:
    """Octant in which query hyperplanes will cross the axes (Section 4.5).

    ``lows``/``highs`` bound each query parameter's domain ``Delta a_i``.
    With ``b >= 0``, the axis crossing ``I(q, i) = b / a_i`` has the sign of
    ``a_i``; for the octant to be well defined, each domain must not straddle
    zero (a domain containing both signs would make the crossing octant
    query-dependent, which the paper excludes).

    Raises
    ------
    InvalidDomainError
        If any domain is empty (low > high), contains only zero, or straddles
        zero.
    """
    lows = as_1d_float(lows, "lows")
    highs = as_1d_float(highs, "highs")
    if lows.shape != highs.shape:
        raise InvalidDomainError(
            f"domain bound shapes differ: {lows.shape} vs {highs.shape}"
        )
    if np.any(lows > highs):
        bad = int(np.argmax(lows > highs))
        raise InvalidDomainError(
            f"domain {bad} is empty: low {lows[bad]} > high {highs[bad]}"
        )
    straddles = (lows < 0.0) & (highs > 0.0)
    if np.any(straddles):
        bad = int(np.argmax(straddles))
        raise InvalidDomainError(
            f"domain {bad} = [{lows[bad]}, {highs[bad]}] straddles zero; "
            "split the workload by parameter sign before indexing"
        )
    only_zero = (lows == 0.0) & (highs == 0.0)
    if np.any(only_zero):
        bad = int(np.argmax(only_zero))
        raise InvalidDomainError(
            f"domain {bad} is identically zero; drop that axis instead "
            "(Section 4.1 assumption a_i != 0)"
        )
    # A domain [0, h] with h > 0 is positive; [l, 0] with l < 0 is negative.
    return np.where(highs > 0.0, 1, -1).astype(np.int8)  # repro: noqa(REP002) — compact ±1 sign pattern
