"""EXPLAIN report structures and text renderer.

This module holds only *data* — the structured report types returned by
``PlanarIndex.explain`` / ``IndexCollection.explain`` and a renderer that
turns them into the fixed-width text block shown by ``repro demo
--explain``.  All computation (selection scores, interval ranks, actual
execution) lives with the index classes in :mod:`repro.core`; keeping the
shapes here avoids a circular import (``core`` imports ``obs``, never the
reverse).

A report answers four questions about one query:

1. **Which index was chosen, and why** — every candidate's stretch and
   angle score, with the winner marked (``candidates``/``chosen``).
2. **What the partition looked like** — SI/II/LI rank boundaries and
   sizes on the chosen index (``si_size``/``ii_size``/``li_size``).
3. **How much work verification did** — points whose scalar product was
   actually computed, and how many passed (``n_verified``/``n_results``).
4. **How good the plan was** — estimated vs. actual pruning fraction,
   i.e. the selection heuristic's promise against the measured outcome.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

__all__ = ["IndexCandidate", "ExplainReport", "render_report"]


@dataclass(frozen=True)
class IndexCandidate:
    """Selection-time score card for one candidate index."""

    position: int
    stretch: float
    angle_cos: float
    expected_ii: int
    chosen: bool = False

    def to_dict(self) -> Dict[str, Any]:
        """JSON-friendly representation."""
        return {
            "position": self.position,
            "stretch": self.stretch,
            "angle_cos": self.angle_cos,
            "expected_ii": self.expected_ii,
            "chosen": self.chosen,
        }


@dataclass(frozen=True)
class ExplainReport:
    """Structured EXPLAIN output for a single query.

    ``route`` is one of ``"intervals"``, ``"scan"``, ``"octant-fallback"``
    or ``"topk"``; fields that do not apply to a route are ``None`` (for
    example ``si_size`` on a pure scan).  ``estimated_pruned`` is the
    selection heuristic's promise (1 - |II|/n), ``actual_pruned`` the
    measured fraction of points never verified.
    """

    kind: str
    route: str
    n_total: int
    strategy: Optional[str] = None
    chosen_index: Optional[int] = None
    index_normal: Optional[Tuple[float, ...]] = None
    candidates: Tuple[IndexCandidate, ...] = ()
    interval: Optional[Tuple[float, float]] = None
    rank_lo: Optional[int] = None
    rank_hi: Optional[int] = None
    si_size: Optional[int] = None
    ii_size: Optional[int] = None
    li_size: Optional[int] = None
    n_verified: int = 0
    n_results: int = 0
    estimated_pruned: Optional[float] = None
    actual_pruned: Optional[float] = None
    notes: Tuple[str, ...] = ()
    extra: Dict[str, Any] = field(default_factory=dict)

    def to_dict(self) -> Dict[str, Any]:
        """JSON-friendly nested representation (drops ``None`` fields)."""
        out: Dict[str, Any] = {
            "kind": self.kind,
            "route": self.route,
            "n_total": self.n_total,
            "n_verified": self.n_verified,
            "n_results": self.n_results,
        }
        for key in (
            "strategy",
            "chosen_index",
            "rank_lo",
            "rank_hi",
            "si_size",
            "ii_size",
            "li_size",
            "estimated_pruned",
            "actual_pruned",
        ):
            value = getattr(self, key)
            if value is not None:
                out[key] = value
        if self.index_normal is not None:
            out["index_normal"] = list(self.index_normal)
        if self.interval is not None:
            out["interval"] = list(self.interval)
        if self.candidates:
            out["candidates"] = [candidate.to_dict() for candidate in self.candidates]
        if self.notes:
            out["notes"] = list(self.notes)
        if self.extra:
            out["extra"] = dict(self.extra)
        return out

    def render(self) -> str:
        """Fixed-width text block (see :func:`render_report`)."""
        return render_report(self)


def _fmt_pct(fraction: Optional[float]) -> str:
    return "-" if fraction is None else f"{fraction * 100.0:6.2f}%"


def _fmt_opt(value: Optional[int]) -> str:
    return "-" if value is None else f"{value:,}"


def render_report(report: ExplainReport) -> str:
    """Render an :class:`ExplainReport` as a human-readable text block."""
    lines: List[str] = []
    title = f"EXPLAIN  kind={report.kind}  route={report.route}"
    lines.append(title)
    lines.append("-" * len(title))
    if report.strategy is not None:
        chosen = "-" if report.chosen_index is None else str(report.chosen_index)
        lines.append(f"selection: strategy={report.strategy}  chosen_index={chosen}")
    if report.index_normal is not None:
        normal = ", ".join(f"{component:g}" for component in report.index_normal)
        lines.append(f"index normal: [{normal}]")
    if report.interval is not None:
        lo, hi = report.interval
        lines.append(f"key interval: [{lo:g}, {hi:g}]")
    if report.candidates:
        lines.append("candidates:")
        lines.append("  pos   stretch      angle_cos   expected_ii   chosen")
        for candidate in report.candidates:
            marker = "  *" if candidate.chosen else ""
            lines.append(
                f"  {candidate.position:<5d} {candidate.stretch:<12.6g} "
                f"{candidate.angle_cos:<11.6g} {candidate.expected_ii:<13,d}{marker}"
            )
    if report.rank_lo is not None and report.rank_hi is not None:
        lines.append(f"rank window: [{report.rank_lo}, {report.rank_hi})")
    lines.append(
        "partition: "
        f"|SI|={_fmt_opt(report.si_size)}  "
        f"|II|={_fmt_opt(report.ii_size)}  "
        f"|LI|={_fmt_opt(report.li_size)}  "
        f"n={report.n_total:,}"
    )
    lines.append(
        f"verification: evaluated={report.n_verified:,}  results={report.n_results:,}"
    )
    lines.append(
        "pruning: "
        f"estimated={_fmt_pct(report.estimated_pruned)}  "
        f"actual={_fmt_pct(report.actual_pruned)}"
    )
    for note in report.notes:
        lines.append(f"note: {note}")
    for key, value in sorted(report.extra.items()):
        lines.append(f"{key}: {value}")
    return "\n".join(lines)
