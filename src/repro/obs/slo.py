"""Service-level objectives evaluated from the metrics registry.

An *objective* declares what "healthy" means for one signal:

* ``latency`` — "the p<quantile> of op ``kind`` stays under
  ``threshold_ms``", estimated from the ``repro_query_latency_seconds``
  histogram (log-scale buckets, linear interpolation within a bucket);
* ``completeness`` — "mean answer completeness stays at or above
  ``floor``", computed exactly from the ``repro_answer_completeness``
  histogram's sum/count (degraded answers record their
  ``DegradedInfo.completeness``; healthy answers record 1.0).

Each evaluation produces an **error-budget burn rate**: the fraction of
the allowed badness actually spent over the evaluated window.  For a
p99 latency objective the budget is the 1% of queries allowed over the
threshold, so ``burn = frac_over / 0.01``; for completeness the budget
is ``1 - floor``, so ``burn = (1 - mean) / (1 - floor)``.  Burn > 1
means the objective is violated; a serving layer sheds load on
sustained burn, CI fails the build (``repro slo check`` exits 1).

Results are published as ``repro_slo_burn_rate`` / ``repro_slo_observed``
/ ``repro_slo_ok`` gauges (labelled by objective name) in the in-process
registry, so a following ``repro obs export --format prometheus``
exposes them next to the raw signals they were derived from.

Objectives come from a JSON spec file (``REPRO_OBS_SLO`` or
``--objectives``)::

    {"objectives": [
      {"name": "p99-query", "type": "latency", "kind": "inequality",
       "quantile": 0.99, "threshold_ms": 50},
      {"name": "completeness", "type": "completeness", "floor": 0.999}
    ]}

``kind`` may be omitted (or ``"*"``) to aggregate across all op kinds.
With no spec at all, a permissive default pair (p99 ≤ 500 ms, mean
completeness ≥ 0.999) keeps ``repro slo check`` and ``repro top``
useful out of the box.
"""

from __future__ import annotations

import argparse
import json
import math
import os
import sys
from dataclasses import dataclass
from pathlib import Path
from typing import List, Mapping, Optional, Sequence, TextIO, Tuple

from . import metrics as _metrics
from .exporters import default_state_path, load_state
from .metrics import Histogram, HistogramSeries, MetricsRegistry
from .metrics import registry as _registry

__all__ = [
    "Objective",
    "ObjectiveStatus",
    "DEFAULT_OBJECTIVES",
    "parse_objectives",
    "load_objectives",
    "default_spec_path",
    "merged_registry",
    "estimate_quantile",
    "merge_series",
    "fraction_over",
    "evaluate",
    "render_table",
    "configure_parser",
    "run_from_args",
]

#: Env var naming the objectives spec file (JSON, schema above).
SPEC_ENV = "REPRO_OBS_SLO"

_LATENCY_METRIC = "repro_query_latency_seconds"
_COMPLETENESS_METRIC = "repro_answer_completeness"


@dataclass(frozen=True)
class Objective:
    """One declared objective; exactly one of the two types."""

    name: str
    type: str  # "latency" | "completeness"
    kind: str = "*"  # op-kind filter; "*" aggregates across kinds
    quantile: float = 0.99  # latency only
    threshold_ms: float = 500.0  # latency only
    floor: float = 0.999  # completeness only

    def describe(self) -> str:
        """Human one-liner of the target."""
        if self.type == "latency":
            scope = "all ops" if self.kind == "*" else self.kind
            return f"p{self.quantile * 100:g}({scope}) <= {self.threshold_ms:g} ms"
        return f"mean completeness >= {self.floor:g}"


@dataclass(frozen=True)
class ObjectiveStatus:
    """Evaluation of one objective over the merged registry."""

    objective: Objective
    observed: float  # quantile seconds / mean completeness (NaN if no data)
    burn_rate: float
    ok: bool
    n_samples: int

    def to_dict(self) -> dict:
        """JSON-friendly rendering (``repro slo check --json``)."""
        return {
            "name": self.objective.name,
            "target": self.objective.describe(),
            "observed": None if math.isnan(self.observed) else self.observed,
            "burn_rate": None if math.isnan(self.burn_rate) else self.burn_rate,
            "ok": self.ok,
            "n_samples": self.n_samples,
        }


#: Permissive defaults used when no spec file is configured.
DEFAULT_OBJECTIVES: Tuple[Objective, ...] = (
    Objective(name="p99-latency", type="latency", quantile=0.99, threshold_ms=500.0),
    Objective(name="completeness", type="completeness", floor=0.999),
)


def parse_objectives(spec: Mapping) -> Tuple[Objective, ...]:
    """Validate a spec mapping into :class:`Objective` tuples.

    Raises ``ValueError`` with a pointed message on malformed entries so
    ``repro slo check`` can exit 2 (usage error) instead of lying.
    """
    entries = spec.get("objectives")
    if not isinstance(entries, list) or not entries:
        raise ValueError("SLO spec must have a non-empty 'objectives' list")
    objectives: List[Objective] = []
    seen: set = set()
    for position, entry in enumerate(entries):
        if not isinstance(entry, Mapping):
            raise ValueError(f"objective #{position} is not an object")
        name = str(entry.get("name", "")).strip()
        if not name:
            raise ValueError(f"objective #{position} is missing 'name'")
        if name in seen:
            raise ValueError(f"duplicate objective name {name!r}")
        seen.add(name)
        otype = str(entry.get("type", "")).strip()
        if otype == "latency":
            quantile = float(entry.get("quantile", 0.99))
            if not 0.0 < quantile < 1.0:
                raise ValueError(f"objective {name!r}: quantile must be in (0, 1)")
            threshold = float(entry.get("threshold_ms", 0.0))
            if threshold <= 0.0:
                raise ValueError(f"objective {name!r}: threshold_ms must be > 0")
            objectives.append(
                Objective(
                    name=name,
                    type="latency",
                    kind=str(entry.get("kind", "*")) or "*",
                    quantile=quantile,
                    threshold_ms=threshold,
                )
            )
        elif otype == "completeness":
            floor = float(entry.get("floor", 0.999))
            if not 0.0 < floor <= 1.0:
                raise ValueError(f"objective {name!r}: floor must be in (0, 1]")
            objectives.append(
                Objective(
                    name=name,
                    type="completeness",
                    kind=str(entry.get("kind", "*")) or "*",
                    floor=floor,
                )
            )
        else:
            raise ValueError(
                f"objective {name!r}: type must be 'latency' or 'completeness'"
            )
    return tuple(objectives)


def default_spec_path() -> Optional[Path]:
    """Spec path from ``$REPRO_OBS_SLO``, if configured."""
    raw = os.environ.get(SPEC_ENV, "").strip()
    return Path(raw) if raw else None


def load_objectives(path: Optional[Path] = None) -> Tuple[Objective, ...]:
    """Objectives from ``path`` / ``$REPRO_OBS_SLO`` / built-in defaults."""
    target = path if path is not None else default_spec_path()
    if target is None:
        return DEFAULT_OBJECTIVES
    spec = json.loads(Path(target).read_text(encoding="utf-8"))
    return parse_objectives(spec)


# --------------------------------------------------------------------- #
# Histogram mathematics
# --------------------------------------------------------------------- #


def merge_series(
    histogram: Histogram, kind: str
) -> Tuple[List[int], float, int]:
    """Cell-wise sum of every series matching the ``kind`` filter.

    Returns (bucket cells incl. overflow, sum, count).  The kind label
    is matched by name against the family's declared labels; families
    without a ``kind`` label match everything.
    """
    try:
        kind_pos: Optional[int] = histogram.labelnames.index("kind")
    except ValueError:
        kind_pos = None
    cells = [0] * (len(histogram.buckets) + 1)
    total = 0.0
    count = 0
    for key, series in histogram.series().items():
        if kind != "*" and kind_pos is not None and key[kind_pos] != kind:
            continue
        for position, cell in enumerate(series.counts):
            cells[position] += cell
        total += series.total
        count += series.count
    return cells, total, count


def _interpolated_cdf(
    bounds: Sequence[float], cells: Sequence[int], value: float
) -> float:
    """Estimated count of observations <= ``value`` (linear within bucket)."""
    running = 0.0
    lower = 0.0
    for bound, cell in zip(bounds, cells):
        if value >= bound:
            running += cell
            lower = bound
            continue
        if bound > lower:
            running += cell * (value - lower) / (bound - lower)
        return running
    # value beyond the last finite bound: overflow cell counts entirely
    # below only at +Inf; treat the whole overflow cell as above.
    return running


def estimate_quantile(
    bounds: Sequence[float], cells: Sequence[int], quantile: float
) -> float:
    """Estimate a quantile from cumulative bucket cells.

    Linear interpolation within the containing bucket; observations in
    the overflow cell report the last finite bound (a deliberate
    *under*-estimate — the ``fraction_over`` check, not the point
    estimate, is what gates).
    """
    count = sum(cells)
    if count == 0:
        return float("nan")
    target = quantile * count
    running = 0.0
    lower = 0.0
    for bound, cell in zip(bounds, cells):
        if running + cell >= target and cell > 0:
            fraction = (target - running) / cell
            return lower + fraction * (bound - lower)
        running += cell
        lower = bound
    return float(bounds[-1])


def fraction_over(
    bounds: Sequence[float], cells: Sequence[int], value: float
) -> float:
    """Estimated fraction of observations strictly above ``value``."""
    count = sum(cells)
    if count == 0:
        return 0.0
    below = _interpolated_cdf(bounds, cells, value)
    return max(0.0, 1.0 - below / count)


# --------------------------------------------------------------------- #
# Evaluation
# --------------------------------------------------------------------- #


def _evaluate_latency(objective: Objective, reg: MetricsRegistry) -> ObjectiveStatus:
    """Latency-quantile objective against ``repro_query_latency_seconds``."""
    family = reg.get(_LATENCY_METRIC)
    if not isinstance(family, Histogram):
        return ObjectiveStatus(objective, float("nan"), 0.0, True, 0)
    cells, _, count = merge_series(family, objective.kind)
    if count == 0:
        return ObjectiveStatus(objective, float("nan"), 0.0, True, 0)
    threshold_s = objective.threshold_ms / 1000.0
    observed = estimate_quantile(family.buckets, cells, objective.quantile)
    over = fraction_over(family.buckets, cells, threshold_s)
    allowed = 1.0 - objective.quantile
    burn = over / allowed if allowed > 0 else (math.inf if over > 0 else 0.0)
    return ObjectiveStatus(objective, observed, burn, burn <= 1.0, count)


def _evaluate_completeness(
    objective: Objective, reg: MetricsRegistry
) -> ObjectiveStatus:
    """Completeness-floor objective against ``repro_answer_completeness``."""
    family = reg.get(_COMPLETENESS_METRIC)
    if not isinstance(family, Histogram):
        return ObjectiveStatus(objective, float("nan"), 0.0, True, 0)
    _, total, count = merge_series(family, objective.kind)
    if count == 0:
        return ObjectiveStatus(objective, float("nan"), 0.0, True, 0)
    mean = total / count
    budget = 1.0 - objective.floor
    shortfall = max(0.0, 1.0 - mean)
    if budget > 0:
        burn = shortfall / budget
    else:
        burn = math.inf if shortfall > 0 else 0.0
    return ObjectiveStatus(objective, mean, burn, mean >= objective.floor, count)


def evaluate(
    reg: Optional[MetricsRegistry] = None,
    objectives: Optional[Sequence[Objective]] = None,
    *,
    publish: bool = True,
) -> List[ObjectiveStatus]:
    """Evaluate every objective; optionally publish ``repro_slo_*`` gauges.

    Objectives with no recorded samples evaluate as *ok* with
    ``n_samples == 0`` — no traffic spends no error budget — and are
    rendered distinctly so a silent pipeline cannot masquerade as a
    healthy one.
    """
    reg = reg if reg is not None else _registry()
    statuses: List[ObjectiveStatus] = []
    for objective in objectives if objectives is not None else DEFAULT_OBJECTIVES:
        if objective.type == "latency":
            status = _evaluate_latency(objective, reg)
        else:
            status = _evaluate_completeness(objective, reg)
        statuses.append(status)
    if publish:
        burn_gauge = _metrics.slo_burn_rate()
        observed_gauge = _metrics.slo_observed()
        ok_gauge = _metrics.slo_ok()
        for status in statuses:
            name = status.objective.name
            if not math.isnan(status.burn_rate):
                burn_gauge.set(status.burn_rate, objective=name)
            if not math.isnan(status.observed):
                observed_gauge.set(status.observed, objective=name)
            ok_gauge.set(1.0 if status.ok else 0.0, objective=name)
    return statuses


def render_table(statuses: Sequence[ObjectiveStatus]) -> str:
    """Fixed-width status table (``repro slo check`` / ``repro top``)."""
    lines = [
        f"{'objective':<18s} {'target':<34s} {'observed':>12s} "
        f"{'burn':>8s} {'n':>8s}  status"
    ]
    for status in statuses:
        objective = status.objective
        if status.n_samples == 0:
            observed = "-"
            burn = "-"
            verdict = "NO DATA"
        else:
            if objective.type == "latency":
                observed = f"{status.observed * 1000.0:.3f} ms"
            else:
                observed = f"{status.observed:.4f}"
            burn = f"{status.burn_rate:.2f}" if math.isfinite(status.burn_rate) else "inf"
            verdict = "OK" if status.ok else "VIOLATED"
        lines.append(
            f"{objective.name:<18s} {objective.describe():<34s} {observed:>12s} "
            f"{burn:>8s} {status.n_samples:>8d}  {verdict}"
        )
    return "\n".join(lines)


# --------------------------------------------------------------------- #
# CLI: ``repro slo check``
# --------------------------------------------------------------------- #


def merged_registry(state: Optional[Path] = None) -> MetricsRegistry:
    """State file merged with the in-process registry (evaluation input)."""
    merged = load_state(state if state is not None else default_state_path())
    merged.restore(_registry().snapshot())
    return merged


def configure_parser(parser: argparse.ArgumentParser) -> None:
    """Attach the ``repro slo`` options (shared with ``repro.cli``)."""
    parser.add_argument(
        "action",
        choices=["check"],
        help="check: evaluate objectives against recorded metrics",
    )
    parser.add_argument(
        "--objectives",
        type=str,
        default=None,
        help="objectives spec file (default: $REPRO_OBS_SLO or built-in defaults)",
    )
    parser.add_argument(
        "--state",
        type=str,
        default=None,
        help="obs state file to evaluate (default: $REPRO_OBS_STATE or ./.repro-obs.json)",
    )
    parser.add_argument(
        "--json",
        action="store_true",
        help="emit machine-readable JSON instead of the table",
    )
    parser.add_argument(
        "--strict",
        action="store_true",
        help="treat objectives with no recorded samples as violations",
    )


def run_from_args(args: argparse.Namespace, stream: TextIO | None = None) -> int:
    """``repro slo`` entry point; CI-friendly exit codes.

    0 = every objective met, 1 = at least one violated (or, with
    ``--strict``, unevaluable), 2 = spec/usage error.
    """
    stream = stream or sys.stdout
    try:
        objectives = load_objectives(Path(args.objectives) if args.objectives else None)
    except (OSError, ValueError, json.JSONDecodeError) as exc:
        print(f"error: bad SLO spec: {exc}", file=stream)
        return 2
    reg = merged_registry(Path(args.state) if args.state else None)
    statuses = evaluate(reg, objectives)
    if args.json:
        payload = {"objectives": [status.to_dict() for status in statuses]}
        print(json.dumps(payload, indent=2, sort_keys=True), file=stream)
    else:
        print(render_table(statuses), file=stream)
    violated = any(not status.ok for status in statuses)
    if args.strict and any(status.n_samples == 0 for status in statuses):
        violated = True
    return 1 if violated else 0
