"""Global on/off switch for the observability layer.

The switch mirrors the sanitizer's design philosophy (PR 1) with one
deliberate difference: where ``REPRO_SANITIZE`` is read once at import
time (so the no-op path can return the undecorated function object), the
observability flag is a *runtime* global so metrics can be armed
programmatically mid-process (``obs.enable()``) — e.g. around a single
benchmark, or from a REPL while diagnosing a live index.

Hot paths read :func:`active` into a local boolean once per query::

    from ..obs import runtime as _rt
    ...
    obs_on = _rt.active()
    if obs_on:
        <record metrics / spans>

:func:`active` combines the process-wide :data:`ENABLED` global with a
per-thread *mute* depth used by head sampling (:mod:`repro.obs.trace`):
when a query's trace id falls outside the sample, the whole query —
including shard work fanned out to executor threads — is muted so the
armed-but-unsampled cost collapses to one extra thread-local read.  The
disarmed path short-circuits on ``ENABLED`` before touching the
thread-local, so its cost is unchanged: one module-attribute read plus a
branch, a few tens of nanoseconds against queries measured in tens of
microseconds.  Both the disarmed (<2%) and armed-at-1%-sampling (≤5%)
gates on ``PlanarIndex.query`` are enforced by
``benchmarks/bench_obs_overhead.py``.

``REPRO_OBS=1`` (or ``true``/``yes``/``on``) in the environment arms the
layer from process start, which is how CI runs the tier-1 suite fully
instrumented.
"""

from __future__ import annotations

import os
import threading

__all__ = ["ENABLED", "enabled", "enable", "disable", "active", "mute", "unmute"]

_TRUTHY = {"1", "true", "yes", "on"}

#: Whether instrumentation records anything.  Mutated only through
#: :func:`enable` / :func:`disable`; hot paths read it directly.
ENABLED: bool = os.environ.get("REPRO_OBS", "").strip().lower() in _TRUTHY


class _MuteState(threading.local):
    """Per-thread sampling-mute depth (0 = recording)."""

    def __init__(self) -> None:  # pragma: no cover - trivial
        self.depth = 0


_MUTED = _MuteState()


def enabled() -> bool:
    """Whether the observability layer is currently recording."""
    return ENABLED


def active() -> bool:
    """Whether instrumentation should record *on this thread, right now*.

    ``ENABLED and not muted``: the process switch short-circuits first so
    the disarmed hot path never pays the thread-local lookup.  Muting is
    how head sampling (:mod:`repro.obs.trace`) silences the per-query
    telemetry of unsampled traces while the layer stays armed.
    """
    if not ENABLED:  # repro: noqa(REP012) — thread-shared flag; a process-pool backend must re-enable obs per worker
        return False
    return not _MUTED.depth  # repro: noqa(REP012) — threading.local by construction; each worker sees its own depth


def mute() -> None:
    """Silence instrumentation on this thread (nestable)."""
    _MUTED.depth += 1


def unmute() -> None:
    """Undo one :func:`mute`; never drops below zero."""
    if _MUTED.depth > 0:
        _MUTED.depth -= 1


def enable() -> None:
    """Arm metrics, spans, and EXPLAIN counters for this process."""
    global ENABLED
    ENABLED = True


def disable() -> None:
    """Return the instrumentation to its zero-cost no-op mode."""
    global ENABLED
    ENABLED = False
