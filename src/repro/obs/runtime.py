"""Global on/off switch for the observability layer.

The switch mirrors the sanitizer's design philosophy (PR 1) with one
deliberate difference: where ``REPRO_SANITIZE`` is read once at import
time (so the no-op path can return the undecorated function object), the
observability flag is a *runtime* global so metrics can be armed
programmatically mid-process (``obs.enable()``) — e.g. around a single
benchmark, or from a REPL while diagnosing a live index.

Hot paths read the module global directly::

    from ..obs import runtime as _rt
    ...
    if _rt.ENABLED:
        <record metrics / spans>

One module-attribute read plus a branch costs a few tens of nanoseconds
against queries measured in tens of microseconds; the acceptance gate for
the disabled path (<2% on ``PlanarIndex.query``) is enforced by
``benchmarks/bench_obs_overhead.py``.

``REPRO_OBS=1`` (or ``true``/``yes``/``on``) in the environment arms the
layer from process start, which is how CI runs the tier-1 suite fully
instrumented.
"""

from __future__ import annotations

import os

__all__ = ["ENABLED", "enabled", "enable", "disable"]

_TRUTHY = {"1", "true", "yes", "on"}

#: Whether instrumentation records anything.  Mutated only through
#: :func:`enable` / :func:`disable`; hot paths read it directly.
ENABLED: bool = os.environ.get("REPRO_OBS", "").strip().lower() in _TRUTHY


def enabled() -> bool:
    """Whether the observability layer is currently recording."""
    return ENABLED


def enable() -> None:
    """Arm metrics, spans, and EXPLAIN counters for this process."""
    global ENABLED
    ENABLED = True


def disable() -> None:
    """Return the instrumentation to its zero-cost no-op mode."""
    global ENABLED
    ENABLED = False
