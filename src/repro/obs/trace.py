"""Trace contexts: deterministic ids, head sampling, cross-thread stitching.

A *trace* wraps one facade query end to end.  Each trace carries:

* a **deterministic 64-bit trace id** — a splitmix64 hash of a process
  counter mixed with ``REPRO_OBS_SEED``, so two runs with the same seed
  assign identical ids to identical query sequences and a log line can
  be replayed to the exact query that produced it;
* a **head-sampling decision** computed purely from the id bits against
  ``REPRO_OBS_SAMPLE`` (default 1.0).  The decision is made once, at the
  root, and inherited by everything the query touches — including shard
  work on executor threads — so a trace is always complete or absent,
  never half-recorded;
* a **root span** that shard spans from worker threads stitch into via
  :func:`attach`, turning what used to be orphan per-thread roots into
  one tree per query.

Unsampled traces mute per-query telemetry on every participating thread
(:func:`repro.obs.runtime.mute`), which is what lets tracing and the
query log stay armed in production at ``REPRO_OBS_SAMPLE=0.01`` —
the armed-but-unsampled cost is bounded by the ≤5% gate in
``benchmarks/bench_obs_overhead.py``.  The always-on
``repro_traces_total{kind,sampled}`` counter records *every* trace so
throughput numbers never need extrapolating by the sample rate.

Facade protocol (see ``FunctionIndex.query`` / ``ShardedFunctionIndex``)::

    ctx = trace.begin("inequality")
    if ctx is None:                  # disarmed, or nested in a trace
        return self._query_impl(...)
    try:
        answer = self._query_impl(...)
    except BaseException as exc:
        trace.abort(ctx, exc)
        raise
    trace.finish(ctx, stats=..., degraded=..., shards=..., retries=...)
    return answer

Executor submission sites capture the issuing thread's context with
:func:`current` and re-enter it on the worker via ``with attach(ctx):``.
"""

from __future__ import annotations

import os
import threading
import time
from contextlib import contextmanager
from typing import Any, Callable, Dict, Iterator, Mapping, Optional, Union

from . import events as _events
from . import metrics as _metrics
from . import runtime as _rt
from . import spans as _spans

__all__ = [
    "TraceContext",
    "begin",
    "finish",
    "abort",
    "current",
    "attach",
    "is_sampled",
    "sample_rate",
    "set_sample_rate",
    "set_seed",
    "reset_ids",
    "find_trace",
]

_MASK64 = (1 << 64) - 1
#: Weyl-sequence increment of splitmix64 (odd, near 2**64 / phi).
_GAMMA = 0x9E3779B97F4A7C15


def _splitmix64(value: int) -> int:
    """One splitmix64 finalization round: uniform 64-bit avalanche."""
    value = (value ^ (value >> 30)) * 0xBF58476D1CE4E5B9 & _MASK64
    value = (value ^ (value >> 27)) * 0x94D049BB133111EB & _MASK64
    return (value ^ (value >> 31)) & _MASK64


def _parse_float(raw: str, default: float) -> float:
    """Parse a float env value, falling back to ``default`` on junk."""
    raw = raw.strip()
    if not raw:
        return default
    try:
        return float(raw)
    except ValueError:
        return default


def _parse_int(raw: str, default: int) -> int:
    """Parse an int env value, falling back to ``default`` on junk."""
    raw = raw.strip()
    if not raw:
        return default
    try:
        return int(raw)
    except ValueError:
        return default


#: Head-sampling rate in [0, 1]; 1.0 keeps every trace (the historical
#: behaviour, and what the instrumented test lanes run with).
SAMPLE_RATE: float = min(
    1.0, max(0.0, _parse_float(os.environ.get("REPRO_OBS_SAMPLE", ""), 1.0))
)

_id_lock = threading.Lock()
_seed: int = _parse_int(os.environ.get("REPRO_OBS_SEED", ""), 0) & _MASK64
_counter: int = 0


def sample_rate() -> float:
    """The current head-sampling rate."""
    return SAMPLE_RATE


def set_sample_rate(rate: float) -> float:
    """Set the head-sampling rate (clamped to [0, 1]); returns the old one."""
    global SAMPLE_RATE
    previous = SAMPLE_RATE
    SAMPLE_RATE = min(1.0, max(0.0, float(rate)))
    return previous


def set_seed(seed: int) -> None:
    """Re-seed the trace-id sequence and restart the counter."""
    global _seed, _counter
    with _id_lock:
        _seed = int(seed) & _MASK64
        _counter = 0


def reset_ids() -> None:
    """Restart the id counter (same seed) — test isolation hook."""
    global _counter
    with _id_lock:
        _counter = 0


def _next_id() -> int:
    """Next deterministic 64-bit trace id (never 0)."""
    global _counter
    with _id_lock:
        _counter += 1
        state = (_seed + _counter * _GAMMA) & _MASK64
    return _splitmix64(state) or 1


def is_sampled(trace_id64: int, rate: Optional[float] = None) -> bool:
    """Head-sampling decision as a pure function of the id bits.

    The top 53 bits of the id are interpreted as a uniform fraction in
    [0, 1); the trace is kept when that fraction falls below ``rate``.
    Deterministic given (seed, query ordinal), so a logged trace id can
    be replayed under the same seed and *will* be sampled again.
    """
    if rate is None:
        rate = SAMPLE_RATE
    if rate >= 1.0:
        return True
    if rate <= 0.0:
        return False
    return (trace_id64 >> 11) / float(1 << 53) < rate


class TraceContext:
    """Mutable per-query trace state threaded through a facade call."""

    __slots__ = ("_hex", "id64", "kind", "sampled", "root", "started", "attrs")

    def __init__(
        self,
        id64: int,
        kind: str,
        sampled: bool,
        root: Optional[_spans.SpanRecord],
        started: float,
    ) -> None:
        self._hex: Optional[str] = None
        self.id64 = id64
        self.kind = kind
        self.sampled = sampled
        self.root = root
        self.started = started
        self.attrs: Dict[str, Any] = {}

    @property
    def trace_id(self) -> str:
        """16-hex-digit trace id, formatted on first use.

        Unsampled traces on the armed fast path never need the string
        form, so the format cost is deferred until a span annotation or
        a query-log record actually asks for it.
        """
        hex_id = self._hex
        if hex_id is None:
            hex_id = self._hex = format(self.id64, "016x")
        return hex_id


class _Current(threading.local):
    """Per-thread active trace context (at most one; traces never nest)."""

    def __init__(self) -> None:  # pragma: no cover - trivial
        self.ctx: Optional[TraceContext] = None


_CURRENT = _Current()


def current() -> Optional[TraceContext]:
    """The trace context active on this thread, if any."""
    return _CURRENT.ctx  # repro: noqa(REP012) — threading.local by construction; workers see their own slot


def begin(kind: str, **attrs: Any) -> Optional[TraceContext]:
    """Open a trace root for a facade query; ``None`` when not tracing.

    Returns ``None`` when the obs layer is disarmed *or* a trace is
    already active on this thread (nested facade calls — e.g. a batch
    fanning into per-query calls — contribute spans to the outer trace
    instead of starting their own).  Callers must balance a non-``None``
    return with exactly one :func:`finish` or :func:`abort`.
    """
    if not _rt.ENABLED:  # repro: noqa(REP012) — thread-shared flag; process-pool backends re-arm per worker
        return None
    if _CURRENT.ctx is not None:
        return None
    id64 = _next_id()
    sampled = is_sampled(id64)
    started = time.perf_counter()
    root: Optional[_spans.SpanRecord] = None
    ctx = TraceContext(id64, kind, sampled, root, started)
    if sampled:
        ctx.root = _spans.open_span(f"query.{kind}", trace_id=ctx.trace_id, **attrs)
    else:
        _rt.mute()
    if attrs:
        ctx.attrs.update(attrs)
    _CURRENT.ctx = ctx
    return ctx


#: Per-query cost counters: either the mapping itself or a zero-argument
#: callable producing it.  Facades pass the callable form (typically a
#: bound ``QueryStats.to_dict``) so the armed-but-unsampled fast path
#: never materializes a dict nobody reads.
StatsArg = Optional[Union[Mapping[str, Any], Callable[[], Mapping[str, Any]]]]

#: ``(registry generation, counter)`` cache for ``repro_traces_total``.
#: The counter is bumped once per facade query, so the per-call registry
#: lookup (a lock acquire plus a dict probe) is worth skipping; the
#: generation key keeps the cache honest across ``metrics.reset()``.
_TRACES_TOTAL: Optional[tuple] = None


def _traces_counter() -> Any:
    """``repro_traces_total`` family, cached against registry resets."""
    global _TRACES_TOTAL
    generation = _metrics.generation()
    cached = _TRACES_TOTAL
    if cached is None or cached[0] != generation:
        cached = (generation, _metrics.traces_total())
        _TRACES_TOTAL = cached  # repro: noqa(REP012) — idempotent cache; racing threads compute the same value
    return cached[1]


def _resolve_stats(stats: StatsArg) -> Optional[Mapping[str, Any]]:
    """Materialize a lazy stats argument (no-op for plain mappings)."""
    if callable(stats):
        return stats()
    return stats


def _close(ctx: TraceContext) -> float:
    """Tear down thread state for ``ctx``; returns the latency in seconds."""
    latency = time.perf_counter() - ctx.started
    _CURRENT.ctx = None
    if ctx.sampled and ctx.root is not None:
        _spans.close_span(ctx.root)
    elif not ctx.sampled:
        _rt.unmute()
    return latency


def finish(
    ctx: TraceContext,
    *,
    stats: StatsArg = None,
    degraded: Optional[Any] = None,
    shards: int = 1,
    retries: int = 0,
    n_queries: int = 1,
    results: Optional[int] = None,
) -> None:
    """Close a trace successfully and emit its telemetry.

    ``stats`` is a flat mapping of per-stage cost counters (candidates
    verified, |II| window sizes, LBS scan counts...) **or a zero-argument
    callable producing one** — the callable is only invoked for sampled
    or slow traces, keeping the unsampled fast path allocation-free;
    ``degraded`` is a ``DegradedInfo``-shaped object exposing
    ``to_dict()`` or ``None``.  Always increments ``repro_traces_total``;
    emits a query-log record when the event log is armed and the trace
    is sampled (or slower than the slow-query threshold, which is
    always logged).
    """
    latency = _close(ctx)
    resolved: Optional[Mapping[str, Any]] = None
    if ctx.root is not None:
        resolved = _resolve_stats(stats)
        if resolved:
            ctx.root.attrs.update(resolved)
    if _rt.ENABLED:  # repro: noqa(REP012) — thread-shared flag; process-pool backends re-arm per worker
        _traces_counter().inc(kind=ctx.kind, sampled="1" if ctx.sampled else "0")
    if _events.armed():
        slow = latency * 1000.0 >= _events.slow_ms()
        if ctx.sampled or slow:
            if resolved is None:
                resolved = _resolve_stats(stats)
            _events.emit(
                _build_record(
                    ctx,
                    latency,
                    stats=resolved,
                    degraded=degraded,
                    shards=shards,
                    retries=retries,
                    n_queries=n_queries,
                    results=results,
                    slow=slow,
                )
            )


def abort(ctx: TraceContext, error: BaseException) -> None:
    """Close a trace whose facade raised; errored traces always log."""
    if ctx.root is not None:
        ctx.root.attrs["error"] = type(error).__name__
    latency = _close(ctx)
    if _rt.ENABLED:  # repro: noqa(REP012) — thread-shared flag; process-pool backends re-arm per worker
        _traces_counter().inc(kind=ctx.kind, sampled="1" if ctx.sampled else "0")
    if _events.armed():
        record = _build_record(ctx, latency, slow=latency * 1000.0 >= _events.slow_ms())
        record["error"] = f"{type(error).__name__}: {error}"
        _events.emit(record)


def _build_record(
    ctx: TraceContext,
    latency: float,
    *,
    stats: Optional[Mapping[str, Any]] = None,
    degraded: Optional[Any] = None,
    shards: int = 1,
    retries: int = 0,
    n_queries: int = 1,
    results: Optional[int] = None,
    slow: bool = False,
) -> Dict[str, Any]:
    """One JSON-ready query-log record (schema: docs/observability.md)."""
    record: Dict[str, Any] = {
        "ts": round(time.time(), 6),
        "trace_id": ctx.trace_id,
        "op": ctx.kind,
        "latency_ms": round(latency * 1000.0, 3),
        "sampled": ctx.sampled,
        "slow": slow,
        "shards": int(shards),
        "retries": int(retries),
        "n_queries": int(n_queries),
    }
    if results is not None:
        record["results"] = int(results)
    if stats:
        record["cost"] = {key: value for key, value in stats.items() if value is not None}
    record["degraded"] = degraded.to_dict() if degraded is not None else None
    if ctx.sampled and ctx.root is not None:
        record["trace"] = ctx.root.to_dict()
    return record


@contextmanager
def attach(ctx: Optional[TraceContext]) -> Iterator[None]:
    """Re-enter a captured trace context on an executor worker thread.

    Inside the block the worker inherits the trace's sampling decision:
    sampled traces get the root span adopted (worker spans stitch into
    the issuing query's tree), unsampled traces mute the worker's
    telemetry for the duration.  ``attach(None)`` is a no-op so callers
    can pass :func:`current`'s result unconditionally.
    """
    if ctx is None:
        yield
        return
    previous = _CURRENT.ctx
    _CURRENT.ctx = ctx
    if ctx.sampled and ctx.root is not None:
        _spans.adopt(ctx.root)
        try:
            yield
        finally:
            _spans.release(ctx.root)
            _CURRENT.ctx = previous
    else:
        _rt.mute()
        try:
            yield
        finally:
            _rt.unmute()
            _CURRENT.ctx = previous


def find_trace(prefix: str) -> Optional[_spans.SpanRecord]:
    """Most recent retained trace whose id starts with ``prefix``.

    Looks through the in-process ring buffer newest-first.  The CLI
    (``repro obs trace <id>``) falls back to the query log for traces
    that already rotated out.
    """
    prefix = prefix.strip().lower()
    if not prefix:
        return None
    for root in reversed(_spans.recent_traces()):
        trace_id = str(root.attrs.get("trace_id", ""))
        if trace_id.startswith(prefix):
            return root
    return None
