"""``repro top`` — a live terminal dashboard over the obs state file.

The dashboard is deliberately boring: no curses, no extra dependencies,
just the cross-process state file (``.repro-obs.json`` /
``$REPRO_OBS_STATE``) re-read every ``--interval`` seconds, rendered as
a fixed-width frame, with the screen cleared between frames via ANSI
escapes.  Because instrumented processes merge their registries into
the state file on exit (and a long-running service can call
``merge_into_file`` periodically), ``repro top`` watches any number of
producers with zero coordination.

Each frame shows:

* per-op query counts and estimated p50/p95/p99 latency, plus the rate
  since the previous frame (counter deltas / elapsed time);
* reliability counters — shard retries, degraded answers, injected
  faults — and mean answer completeness;
* the SLO table from :mod:`repro.obs.slo`, evaluated against the same
  snapshot, so "is the error budget burning" sits next to the signals
  that answer "why".

``--once`` renders a single frame without clearing the screen (CI
smoke; piping into a file).
"""

from __future__ import annotations

import argparse
import math
import sys
import time
from pathlib import Path
from typing import Dict, List, Optional, Sequence, TextIO

from . import slo as _slo
from .exporters import default_state_path, load_state
from .metrics import Counter, Histogram, MetricsRegistry

__all__ = ["render_frame", "configure_parser", "run_from_args"]

_CLEAR = "\x1b[2J\x1b[H"


def _counter_total(reg: MetricsRegistry, name: str) -> float:
    """Sum of every series of a counter family (0.0 when absent)."""
    family = reg.get(name)
    if not isinstance(family, Counter):
        return 0.0
    return sum(family.series().values())


def _kind_counts(reg: MetricsRegistry, name: str, label: str = "kind") -> Dict[str, float]:
    """Counter totals grouped by one label (ignoring the others)."""
    family = reg.get(name)
    out: Dict[str, float] = {}
    if not isinstance(family, Counter):
        return out
    try:
        position = family.labelnames.index(label)
    except ValueError:
        return out
    for key, value in family.series().items():
        out[key[position]] = out.get(key[position], 0.0) + value
    return out


def _latency_row(reg: MetricsRegistry, kind: str) -> str:
    """p50/p95/p99 of one op kind, formatted in milliseconds."""
    family = reg.get("repro_query_latency_seconds")
    if not isinstance(family, Histogram):
        return f"{'-':>10s} {'-':>10s} {'-':>10s}"
    cells, _, count = _slo.merge_series(family, kind)
    if count == 0:
        return f"{'-':>10s} {'-':>10s} {'-':>10s}"
    parts = []
    for quantile in (0.5, 0.95, 0.99):
        value = _slo.estimate_quantile(family.buckets, cells, quantile)
        parts.append(f"{value * 1000.0:>8.3f}ms" if not math.isnan(value) else f"{'-':>10s}")
    return " ".join(parts)


def render_frame(
    reg: MetricsRegistry,
    objectives: Sequence[_slo.Objective],
    *,
    state: Path,
    previous: Optional[Dict[str, float]] = None,
    elapsed: float = 0.0,
) -> tuple[str, Dict[str, float]]:
    """Render one dashboard frame; returns (text, counter totals).

    ``previous``/``elapsed`` feed the rate column: per-kind query-count
    deltas divided by the wall time since the last frame.
    """
    kind_counts = _kind_counts(reg, "repro_queries_total")
    totals: Dict[str, float] = dict(kind_counts)
    lines: List[str] = []
    lines.append(f"repro top — {state}  ({time.strftime('%H:%M:%S')})")
    lines.append("")
    lines.append(
        f"{'op kind':<12s} {'queries':>10s} {'qps':>8s}   "
        f"{'p50':>10s} {'p95':>10s} {'p99':>10s}"
    )
    for kind in sorted(kind_counts):
        count = kind_counts[kind]
        if previous is not None and elapsed > 0:
            rate = max(0.0, count - previous.get(kind, 0.0)) / elapsed
            rate_text = f"{rate:>8.1f}"
        else:
            rate_text = f"{'-':>8s}"
        lines.append(
            f"{kind:<12s} {count:>10.0f} {rate_text}   {_latency_row(reg, kind)}"
        )
    if not kind_counts:
        lines.append("(no query samples in state file yet)")
    lines.append("")
    retries = _counter_total(reg, "repro_reliability_shard_retries_total")
    degraded = _counter_total(reg, "repro_reliability_degraded_queries_total")
    faults = _counter_total(reg, "repro_reliability_faults_injected_total")
    traces = _kind_counts(reg, "repro_traces_total", label="sampled")
    completeness_family = reg.get("repro_answer_completeness")
    if isinstance(completeness_family, Histogram):
        _, total, count = _slo.merge_series(completeness_family, "*")
        completeness = f"{total / count:.4f}" if count else "-"
    else:
        completeness = "-"
    lines.append(
        f"reliability   retries={retries:.0f} degraded={degraded:.0f} "
        f"faults={faults:.0f} mean_completeness={completeness}"
    )
    sampled = traces.get("1", 0.0)
    unsampled = traces.get("0", 0.0)
    lines.append(f"traces        sampled={sampled:.0f} unsampled={unsampled:.0f}")
    lines.append("")
    statuses = _slo.evaluate(reg, objectives, publish=False)
    lines.append(_slo.render_table(statuses))
    return "\n".join(lines) + "\n", totals


def configure_parser(parser: argparse.ArgumentParser) -> None:
    """Attach the ``repro top`` options (shared with ``repro.cli``)."""
    parser.add_argument(
        "--once",
        action="store_true",
        help="render a single frame and exit (no screen clearing)",
    )
    parser.add_argument(
        "--interval",
        type=float,
        default=2.0,
        help="seconds between frames (default: 2)",
    )
    parser.add_argument(
        "--frames",
        type=int,
        default=0,
        help="stop after N frames (0 = run until interrupted)",
    )
    parser.add_argument(
        "--state",
        type=str,
        default=None,
        help="obs state file to watch (default: $REPRO_OBS_STATE or ./.repro-obs.json)",
    )
    parser.add_argument(
        "--objectives",
        type=str,
        default=None,
        help="SLO spec file (default: $REPRO_OBS_SLO or built-in defaults)",
    )


def run_from_args(args: argparse.Namespace, stream: TextIO | None = None) -> int:
    """``repro top`` entry point; 0 on clean exit, 2 on a bad SLO spec."""
    stream = stream or sys.stdout
    state = Path(args.state) if args.state else default_state_path()
    try:
        objectives = _slo.load_objectives(
            Path(args.objectives) if args.objectives else None
        )
    except (OSError, ValueError) as exc:
        print(f"error: bad SLO spec: {exc}", file=stream)
        return 2
    interval = max(0.1, float(args.interval))
    previous: Optional[Dict[str, float]] = None
    last_time = time.monotonic()
    frames_rendered = 0
    while True:
        reg = load_state(state, MetricsRegistry())
        now = time.monotonic()
        frame, totals = render_frame(
            reg,
            objectives,
            state=state,
            previous=previous,
            elapsed=now - last_time if previous is not None else 0.0,
        )
        if args.once:
            stream.write(frame)
            return 0
        stream.write(_CLEAR + frame)
        stream.flush()
        previous = totals
        last_time = now
        frames_rendered += 1
        if args.frames and frames_rendered >= args.frames:
            return 0
        try:
            time.sleep(interval)
        except KeyboardInterrupt:  # pragma: no cover - interactive only
            return 0
