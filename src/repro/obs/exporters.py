"""Exporters: JSON and Prometheus exposition text, plus state files.

Two serialisations of the same :class:`~repro.obs.metrics.MetricsRegistry`
snapshot:

``to_json``
    The registry's native snapshot (families → series → cells), pretty or
    compact.  Lossless — ``MetricsRegistry.restore`` round-trips it.

``to_prometheus``
    The Prometheus text exposition format (version 0.0.4): ``# HELP`` /
    ``# TYPE`` headers, one line per sample, histograms expanded into
    cumulative ``_bucket{le="..."}`` series plus ``_sum`` / ``_count``.
    Label values are escaped per the spec (backslash, double-quote,
    newline).

State files let the CLI aggregate across processes: every instrumented
process merges its registry into ``.repro-obs.json`` (override with
``REPRO_OBS_STATE``) on exit, and ``python -m repro obs export`` reads it
back.  Counters and histogram cells *add* on merge, so repeated runs
accumulate exactly like a scrape target would.
"""

from __future__ import annotations

import json
import os
from pathlib import Path
from typing import Mapping, Optional, Union

from .metrics import Counter, Gauge, Histogram, MetricsRegistry
from .metrics import registry as _default_registry

__all__ = [
    "to_json",
    "to_prometheus",
    "default_state_path",
    "save_state",
    "load_state",
    "merge_into_file",
]

#: Environment variable overriding the default state-file location.
STATE_ENV = "REPRO_OBS_STATE"

#: Default state-file name (in the current working directory).
DEFAULT_STATE_FILE = ".repro-obs.json"


def to_json(registry: Optional[MetricsRegistry] = None, *, indent: Optional[int] = 2) -> str:
    """Serialise the registry snapshot as JSON text."""
    reg = registry if registry is not None else _default_registry()
    return json.dumps(reg.snapshot(), indent=indent, sort_keys=True)


def _escape_label_value(value: str) -> str:
    """Escape a label value per the Prometheus exposition spec."""
    return value.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")


def _format_value(value: float) -> str:
    """Render a sample value: integers without a trailing ``.0``."""
    if value != value:  # NaN
        return "NaN"
    if value in (float("inf"), float("-inf")):
        return "+Inf" if value > 0 else "-Inf"
    if float(value).is_integer() and abs(value) < 1e15:
        return str(int(value))
    return repr(float(value))


def _format_le(bound: float) -> str:
    """Bucket upper bound for the ``le`` label (trim float noise)."""
    text = f"{bound:.12g}"
    return text


def _labels_text(names: tuple[str, ...], values: tuple[str, ...], extra: str = "") -> str:
    """``{a="x",b="y"}`` fragment (empty string when no labels)."""
    parts = [
        f'{name}="{_escape_label_value(value)}"' for name, value in zip(names, values)
    ]
    if extra:
        parts.append(extra)
    return "{" + ",".join(parts) + "}" if parts else ""


def to_prometheus(registry: Optional[MetricsRegistry] = None) -> str:
    """Render the registry in Prometheus text exposition format."""
    reg = registry if registry is not None else _default_registry()
    lines: list[str] = []
    for metric in reg:
        help_text = metric.help.replace("\\", "\\\\").replace("\n", "\\n")
        lines.append(f"# HELP {metric.name} {help_text}")
        lines.append(f"# TYPE {metric.name} {metric.kind}")
        if isinstance(metric, (Counter, Gauge)):
            for key, value in sorted(metric.series().items()):
                labels = _labels_text(metric.labelnames, key)
                lines.append(f"{metric.name}{labels} {_format_value(value)}")
        elif isinstance(metric, Histogram):
            for key, series in sorted(metric.series().items()):
                cumulative = series.cumulative()
                for bound, running in zip(metric.buckets, cumulative):
                    le = f'le="{_format_le(bound)}"'
                    labels = _labels_text(metric.labelnames, key, extra=le)
                    lines.append(f"{metric.name}_bucket{labels} {running}")
                inf_labels = _labels_text(metric.labelnames, key, extra='le="+Inf"')
                lines.append(f"{metric.name}_bucket{inf_labels} {cumulative[-1]}")
                plain = _labels_text(metric.labelnames, key)
                lines.append(f"{metric.name}_sum{plain} {_format_value(series.total)}")
                lines.append(f"{metric.name}_count{plain} {series.count}")
    return "\n".join(lines) + ("\n" if lines else "")


# --------------------------------------------------------------------- #
# State files (cross-process aggregation for the CLI)
# --------------------------------------------------------------------- #


def default_state_path() -> Path:
    """State-file path: ``$REPRO_OBS_STATE`` or ``./.repro-obs.json``."""
    override = os.environ.get(STATE_ENV, "").strip()
    if override:
        return Path(override)
    return Path.cwd() / DEFAULT_STATE_FILE


def save_state(
    path: Union[str, Path, None] = None, registry: Optional[MetricsRegistry] = None
) -> Path:
    """Write the registry snapshot to ``path`` (crash-safe atomic replace).

    Routed through :func:`repro.reliability.atomic.atomic_write_text` —
    the shared temp-file + fsync + ``os.replace`` writer every persisted
    artifact uses, including its ``persistence.write`` fault-injection
    site (see ``docs/reliability.md``).
    """
    from ..reliability.atomic import atomic_write_text

    reg = registry if registry is not None else _default_registry()
    target = Path(path) if path is not None else default_state_path()
    payload = json.dumps(reg.snapshot(), sort_keys=True)
    return atomic_write_text(target, payload, artifact="obs-state")


def load_state(
    path: Union[str, Path, None] = None,
    registry: Optional[MetricsRegistry] = None,
) -> MetricsRegistry:
    """Load a state file into ``registry`` (a fresh one by default).

    Missing files yield the registry unchanged, so callers can treat
    "no state yet" and "empty state" identically.
    """
    target = Path(path) if path is not None else default_state_path()
    reg = registry if registry is not None else MetricsRegistry()
    if not target.exists():
        return reg
    snapshot: Mapping = json.loads(target.read_text(encoding="utf-8"))
    reg.restore(snapshot)
    return reg


def merge_into_file(
    path: Union[str, Path, None] = None, registry: Optional[MetricsRegistry] = None
) -> Path:
    """Fold the registry into the state file (add counters/histograms).

    This is the per-process exit hook: load whatever previous runs wrote,
    merge this process's samples on top, and atomically rewrite.
    """
    reg = registry if registry is not None else _default_registry()
    target = Path(path) if path is not None else default_state_path()
    merged = MetricsRegistry()
    if target.exists():
        merged.restore(json.loads(target.read_text(encoding="utf-8")))
    merged.restore(reg.snapshot())
    return save_state(target, merged)
