"""CLI for the observability layer: ``python -m repro obs <action>``.

Actions
-------
``dump``
    Pretty-print the current metric state: the in-process registry merged
    with the state file written by previous instrumented runs.
``export``
    Emit the merged state in a machine format (``--format json`` or
    ``--format prometheus``).
``reset``
    Clear the in-process registry and delete the state file.
``tail``
    Print the last records of the structured query log
    (``$REPRO_OBS_LOG`` or ``--log``), one line per query.
``trace <id>``
    Render the stitched span tree of one trace, looked up by id prefix —
    first in the in-process ring buffer, then in the query log (sampled
    records embed their full trace tree, so lookup works across
    processes).

Because a fresh CLI process has an empty registry, ``dump`` and ``export``
primarily read the state file (``.repro-obs.json`` or ``$REPRO_OBS_STATE``)
that instrumented commands (``repro demo``, ``repro bench`` …) merge into
on exit when ``REPRO_OBS=1``.  ``--demo`` runs a tiny built-in workload
first so the commands produce output even with no prior state.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path
from typing import Any, Dict, List, Sequence, TextIO

from . import events as _events
from . import runtime as _runtime
from . import trace as _trace
from .exporters import default_state_path, load_state, to_json, to_prometheus
from .metrics import MetricsRegistry
from .metrics import registry as _registry

__all__ = ["configure_parser", "build_parser", "run_from_args", "main"]


def configure_parser(parser: argparse.ArgumentParser) -> None:
    """Attach the obs options to ``parser`` (shared with ``repro.cli``)."""
    parser.add_argument(
        "action",
        choices=["dump", "export", "reset", "tail", "trace"],
        help=(
            "dump (human summary), export (machine format), reset (clear "
            "state), tail (query log), trace (render one trace by id prefix)"
        ),
    )
    parser.add_argument(
        "target",
        nargs="?",
        default=None,
        help="trace-id prefix (trace action only)",
    )
    parser.add_argument(
        "--format",
        choices=["json", "prometheus"],
        default="prometheus",
        help="export format (export action only)",
    )
    parser.add_argument(
        "--state",
        type=str,
        default=None,
        help="state file to read/clear (default: $REPRO_OBS_STATE or ./.repro-obs.json)",
    )
    parser.add_argument(
        "--log",
        type=str,
        default=None,
        help="query-log path for tail/trace (default: $REPRO_OBS_LOG)",
    )
    parser.add_argument(
        "-n",
        "--lines",
        type=int,
        default=10,
        help="records to show for tail (default: 10)",
    )
    parser.add_argument(
        "--json",
        action="store_true",
        help="emit raw JSON records (tail/trace actions)",
    )
    parser.add_argument(
        "--demo",
        action="store_true",
        help="run a tiny instrumented workload first (so output is never empty)",
    )


def build_parser() -> argparse.ArgumentParser:
    """Standalone ``repro obs`` parser (the main CLI nests the same flags)."""
    parser = argparse.ArgumentParser(
        prog="repro obs",
        description="inspect / export / reset the repro metrics registry",
    )
    configure_parser(parser)
    return parser


def _run_demo_workload() -> None:
    """A tiny instrumented query workload populating the live registry."""
    import numpy as np

    from ..core.domains import QueryModel
    from ..core.function_index import FunctionIndex

    was_enabled = _runtime.ENABLED
    _runtime.enable()
    try:
        rng = np.random.default_rng(0)
        points = rng.uniform(0.0, 10.0, size=(2_000, 4))
        model = QueryModel.uniform(dim=4, low=1.0, high=5.0, rq=4)
        index = FunctionIndex(points, model, n_indices=8, rng=0)
        for seed in range(16):
            normal = model.sample_normal(seed)
            offset = 0.4 * float(normal @ points.max(axis=0))
            index.query(normal, offset)
        index.topk(model.sample_normal(99), 40.0, k=10)
        index.explain_report(model.sample_normal(7), 35.0)
    finally:
        if not was_enabled:
            _runtime.disable()


def _merged_registry(state: Path) -> MetricsRegistry:
    """State file + in-process samples folded into one registry."""
    merged = load_state(state, MetricsRegistry())
    merged.restore(_registry().snapshot())
    return merged


def _dump(merged: MetricsRegistry, stream: TextIO) -> None:
    """Human-oriented one-line-per-series summary."""
    if len(merged) == 0 or merged.n_samples() == 0:
        print("no metric samples recorded (is REPRO_OBS=1 set?)", file=stream)
        return
    for metric in merged:
        series = metric.series()
        if not series:
            continue
        print(f"{metric.name} ({metric.kind}) — {metric.help}", file=stream)
        for key, value in sorted(series.items()):
            labels = (
                "{" + ", ".join(
                    f"{n}={v}" for n, v in zip(metric.labelnames, key)
                ) + "}"
                if key
                else ""
            )
            if metric.kind == "histogram":
                text = f"count={value.count} sum={value.total:.6g}"
            else:
                text = f"{value:.6g}"
            print(f"  {labels or '(no labels)'}: {text}", file=stream)


def _render_trace_dict(node: Dict[str, Any], indent: int = 0, width: int = 44) -> List[str]:
    """Render a ``SpanRecord.to_dict`` tree (query-log form) as text lines."""
    attrs = node.get("attrs") or {}
    attr_text = (
        "  " + " ".join(f"{k}={v}" for k, v in sorted(attrs.items())) if attrs else ""
    )
    label = "  " * indent + str(node.get("name", "?"))
    lines = [f"{label:<{width}s}{float(node.get('duration_us', 0.0)):>12.1f} us{attr_text}"]
    for child in node.get("children", ()):
        lines.extend(_render_trace_dict(child, indent + 1, width))
    return lines


def _run_tail(args: argparse.Namespace, stream: TextIO) -> int:
    """``repro obs tail``: print the last query-log records."""
    path = args.log or _events.log_path()
    if path is None:
        print("no query log configured (set REPRO_OBS_LOG or pass --log)", file=stream)
        return 1
    records = _events.tail(args.lines, path)
    if not records:
        print(f"query log {path} has no records yet", file=stream)
        return 0
    for record in records:
        if args.json:
            print(json.dumps(record, sort_keys=True), file=stream)
        else:
            print(_events.render_line(record), file=stream)
    return 0


def _run_trace(args: argparse.Namespace, stream: TextIO) -> int:
    """``repro obs trace <id>``: render one stitched trace tree."""
    if not args.target:
        print("usage: repro obs trace <trace-id-prefix>", file=stream)
        return 2
    root = _trace.find_trace(args.target)
    if root is not None:
        if args.json:
            print(json.dumps(root.to_dict(), sort_keys=True), file=stream)
        else:
            print(root.render(), file=stream)
        return 0
    path = args.log or _events.log_path()
    record = _events.find(args.target, path) if path else None
    if record is None:
        print(f"no trace matching {args.target!r} in ring buffer or query log", file=stream)
        return 1
    if args.json:
        print(json.dumps(record, sort_keys=True), file=stream)
        return 0
    print(_events.render_line(record), file=stream)
    tree = record.get("trace")
    if tree:
        print("\n".join(_render_trace_dict(tree)), file=stream)
    else:
        print("(record has no embedded trace tree — unsampled slow/error log)", file=stream)
    return 0


def run_from_args(args: argparse.Namespace, stream: TextIO | None = None) -> int:
    """Execute an obs invocation from a parsed namespace; returns exit code."""
    stream = stream or sys.stdout
    state = Path(args.state) if args.state else default_state_path()
    if args.action == "tail":
        return _run_tail(args, stream)
    if args.action == "trace":
        return _run_trace(args, stream)
    if args.action == "reset":
        _registry().reset()
        if state.exists():
            state.unlink()
            print(f"cleared registry and removed {state}", file=stream)
        else:
            print("cleared registry (no state file)", file=stream)
        return 0
    if args.demo:
        _run_demo_workload()
    merged = _merged_registry(state)
    if args.action == "dump":
        _dump(merged, stream)
        return 0
    # export
    if args.format == "json":
        print(to_json(merged), file=stream)
    else:
        stream.write(to_prometheus(merged))
    return 0


def main(argv: Sequence[str] | None = None, stream: TextIO | None = None) -> int:
    """Standalone entry point (``python -m repro.obs.cli``)."""
    try:
        args = build_parser().parse_args(argv)
    except SystemExit as exc:  # argparse uses 2 for usage errors already
        return int(exc.code or 0)
    return run_from_args(args, stream)


if __name__ == "__main__":  # pragma: no cover - exercised via repro.cli tests
    sys.exit(main())
