"""repro.obs — observability for the Planar index.

Three cooperating pieces (see ``docs/observability.md``):

* :mod:`~repro.obs.metrics` — a process-local registry of counters,
  gauges, and log-bucket histograms covering pruning splits
  (|SI|/|II|/|LI|), selection outcomes, verification counts, and
  latencies.
* :mod:`~repro.obs.spans` — tracing spans recording wall-time trees per
  query (``collection.query`` → ``select`` → ``binary_search`` →
  ``verify_II`` → ``materialize``) into a ring buffer of recent traces.
* :mod:`~repro.obs.explain` — structured EXPLAIN reports produced by
  ``PlanarIndex.explain`` / ``IndexCollection.explain``.

Everything is **off by default**: the instrumented hot paths check one
module global (:data:`runtime.ENABLED`) and skip all bookkeeping, with a
measured cost under 2% on ``PlanarIndex.query``
(``benchmarks/bench_obs_overhead.py``).  Arm with ``REPRO_OBS=1`` in the
environment or :func:`enable` at runtime.

This package never imports :mod:`repro.core` — the cores import *us*.
"""

from __future__ import annotations

from .exporters import (
    default_state_path,
    load_state,
    merge_into_file,
    save_state,
    to_json,
    to_prometheus,
)
from .explain import ExplainReport, IndexCandidate, render_report
from .metrics import (
    LATENCY_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    registry,
)
from .metrics import reset as reset_metrics
from .runtime import disable, enable, enabled
from .spans import (
    SpanRecord,
    clear_traces,
    current_span,
    recent_traces,
    record,
    set_trace_capacity,
    span,
    traced,
)

__all__ = [
    # runtime switch
    "enable",
    "disable",
    "enabled",
    # metrics
    "LATENCY_BUCKETS",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "registry",
    "reset_metrics",
    # spans
    "SpanRecord",
    "span",
    "record",
    "traced",
    "current_span",
    "recent_traces",
    "clear_traces",
    "set_trace_capacity",
    # explain
    "ExplainReport",
    "IndexCandidate",
    "render_report",
    # exporters
    "to_json",
    "to_prometheus",
    "default_state_path",
    "save_state",
    "load_state",
    "merge_into_file",
]
