"""repro.obs — observability for the Planar index.

Three cooperating pieces (see ``docs/observability.md``):

* :mod:`~repro.obs.metrics` — a process-local registry of counters,
  gauges, and log-bucket histograms covering pruning splits
  (|SI|/|II|/|LI|), selection outcomes, verification counts, and
  latencies.
* :mod:`~repro.obs.spans` — tracing spans recording wall-time trees per
  query (``collection.query`` → ``select`` → ``binary_search`` →
  ``verify_II`` → ``materialize``) into a ring buffer of recent traces.
* :mod:`~repro.obs.explain` — structured EXPLAIN reports produced by
  ``PlanarIndex.explain`` / ``IndexCollection.explain``.

Production telemetry on top (this is what the serving layer consumes):

* :mod:`~repro.obs.trace` — deterministic per-query trace ids, head
  sampling (``REPRO_OBS_SAMPLE``), and cross-thread trace stitching so
  a sharded query is one tree, not a pile of orphan roots.
* :mod:`~repro.obs.events` — a rotating JSONL query log
  (``REPRO_OBS_LOG``): one record per sampled query with latency, cost
  counters, shard fan-out, retries, and ``DegradedInfo``.
* :mod:`~repro.obs.slo` — declarative latency/completeness objectives
  evaluated into error-budget burn rates (``repro slo check``), plus
  :mod:`~repro.obs.dashboard` (``repro top``).

Everything is **off by default**: the instrumented hot paths check one
call (:func:`runtime.active`) and skip all bookkeeping, with a measured
cost under 2% on ``PlanarIndex.query`` — and under 5% when armed at 1%
head sampling (``benchmarks/bench_obs_overhead.py``).  Arm with
``REPRO_OBS=1`` in the environment or :func:`enable` at runtime.

This package never imports :mod:`repro.core` — the cores import *us*.
"""

from __future__ import annotations

from .events import configure as configure_query_log
from .events import tail as tail_query_log
from .exporters import (
    default_state_path,
    load_state,
    merge_into_file,
    save_state,
    to_json,
    to_prometheus,
)
from .explain import ExplainReport, IndexCandidate, render_report
from .metrics import (
    LATENCY_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    registry,
)
from .metrics import reset as reset_metrics
from .runtime import active, disable, enable, enabled
from .slo import Objective, ObjectiveStatus, evaluate as evaluate_slos
from .spans import (
    SpanRecord,
    clear_traces,
    current_span,
    recent_traces,
    record,
    set_trace_capacity,
    span,
    traced,
)
from .trace import (
    TraceContext,
    attach,
    begin,
    current,
    find_trace,
    finish,
    sample_rate,
    set_sample_rate,
)

__all__ = [
    # runtime switch
    "enable",
    "disable",
    "enabled",
    "active",
    # traces
    "TraceContext",
    "begin",
    "finish",
    "current",
    "attach",
    "find_trace",
    "sample_rate",
    "set_sample_rate",
    # query log
    "configure_query_log",
    "tail_query_log",
    # SLOs
    "Objective",
    "ObjectiveStatus",
    "evaluate_slos",
    # metrics
    "LATENCY_BUCKETS",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "registry",
    "reset_metrics",
    # spans
    "SpanRecord",
    "span",
    "record",
    "traced",
    "current_span",
    "recent_traces",
    "clear_traces",
    "set_trace_capacity",
    # explain
    "ExplainReport",
    "IndexCandidate",
    "render_report",
    # exporters
    "to_json",
    "to_prometheus",
    "default_state_path",
    "save_state",
    "load_state",
    "merge_into_file",
]
