"""Process-local metrics registry: counters, gauges, histograms.

The registry is the single sink for every quantitative signal the Planar
index emits — pruning splits (|SI|/|LI|/|II|), best-index selection
choices, verification counts, and query/span/bench latencies.  It is
deliberately dependency-free (stdlib only) and Prometheus-shaped so the
exporters in :mod:`repro.obs.exporters` can emit standard exposition text
without translation.

Design constraints, in order:

1. **O(1) per query.**  Every recording call is a dict update keyed by a
   label tuple; sizes are added as scalars, never per point.  This is the
   REP006 discipline applied to bookkeeping.
2. **Labels are declared up front.**  A metric family fixes its label
   names at creation; every sample must bind exactly those names.  This
   catches label drift at the recording site instead of producing a
   corrupt exposition later.
3. **Histograms use fixed log-scale latency buckets** (three per decade
   from 1 µs to 10 s by default) so latency distributions from different
   runs and hosts are directly comparable and mergeable.

Thread safety: every mutation holds the family's lock.  The layer is
armed explicitly (``REPRO_OBS=1`` / ``obs.enable()``), so the lock cost
is never paid on the default path.
"""

from __future__ import annotations

import bisect
import re
import threading
from typing import Iterator, Mapping, Sequence

__all__ = [
    "LATENCY_BUCKETS",
    "Counter",
    "Gauge",
    "Histogram",
    "HistogramSeries",
    "MetricsRegistry",
    "registry",
    "reset",
    "generation",
    "queries_total",
    "query_latency",
    "interval_points",
    "verified_points",
    "selection_total",
    "rows_gathered",
    "store_scans",
    "indexed_points",
    "shard_queries_total",
    "shard_points",
    "span_seconds",
    "bench_seconds",
    "explain_total",
    "tuning_recorded_total",
    "tuning_workload_size",
    "tuning_plans_total",
    "tuning_predicted_ii_mean",
    "faults_injected_total",
    "shard_retries_total",
    "degraded_queries_total",
    "checksum_failures_total",
    "atomic_writes_total",
    "traces_total",
    "answer_completeness",
    "slo_burn_rate",
    "slo_observed",
    "slo_ok",
    "serve_requests_total",
    "serve_request_seconds",
    "serve_batch_size",
    "serve_shed_total",
    "serve_queue_depth",
    "serve_deadline_expired_total",
    "breaker_state",
    "breaker_transitions_total",
    "serve_health_state",
]

#: Fixed log-scale latency buckets (seconds): three per decade, 1 µs – 10 s.
LATENCY_BUCKETS: tuple[float, ...] = tuple(
    round(10.0 ** (exponent / 3.0), 12) for exponent in range(-18, 4)
)

_NAME_RE = re.compile(r"^[a-zA-Z_:][a-zA-Z0-9_:]*$")
_LABEL_RE = re.compile(r"^[a-zA-Z_][a-zA-Z0-9_]*$")


class _MetricBase:
    """Shared plumbing: name/help/label validation and the series map."""

    kind = "untyped"

    def __init__(self, name: str, help: str = "", labelnames: Sequence[str] = ()) -> None:
        if not _NAME_RE.match(name):
            raise ValueError(f"invalid metric name {name!r}")
        labelnames = tuple(labelnames)
        for label in labelnames:
            if not _LABEL_RE.match(label):
                raise ValueError(f"invalid label name {label!r} on metric {name!r}")
        self.name = name
        self.help = help
        self.labelnames = labelnames
        self._lock = threading.Lock()

    def _key(self, labels: Mapping[str, object]) -> tuple[str, ...]:
        """Label values as a tuple in declared order; strict name check."""
        if len(labels) != len(self.labelnames) or any(
            name not in labels for name in self.labelnames
        ):
            raise ValueError(
                f"metric {self.name!r} requires labels {list(self.labelnames)}, "
                f"got {sorted(labels)}"
            )
        return tuple(str(labels[name]) for name in self.labelnames)


class Counter(_MetricBase):
    """Monotonically increasing sum, one series per label combination."""

    kind = "counter"

    def __init__(self, name: str, help: str = "", labelnames: Sequence[str] = ()) -> None:
        super().__init__(name, help, labelnames)
        self._series: dict[tuple[str, ...], float] = {}

    def inc(self, amount: float = 1.0, **labels: object) -> None:
        """Add ``amount`` (must be >= 0) to the labelled series."""
        amount = float(amount)
        if amount < 0.0:
            raise ValueError(f"counter {self.name!r} cannot decrease (got {amount})")
        key = self._key(labels)
        with self._lock:
            self._series[key] = self._series.get(key, 0.0) + amount

    def value(self, **labels: object) -> float:
        """Current value of the labelled series (0.0 if never incremented)."""
        return self._series.get(self._key(labels), 0.0)

    def series(self) -> dict[tuple[str, ...], float]:
        """Copy of all series, keyed by label-value tuple."""
        with self._lock:
            return dict(self._series)

    def snapshot(self) -> dict:
        """JSON-serialisable dump of every series (merge/export format)."""
        return {
            "name": self.name,
            "type": self.kind,
            "help": self.help,
            "labelnames": list(self.labelnames),
            "series": [
                {"labels": dict(zip(self.labelnames, key)), "value": value}
                for key, value in sorted(self.series().items())
            ],
        }


class Gauge(_MetricBase):
    """Point-in-time value (index sizes, ring-buffer occupancy, ...)."""

    kind = "gauge"

    def __init__(self, name: str, help: str = "", labelnames: Sequence[str] = ()) -> None:
        super().__init__(name, help, labelnames)
        self._series: dict[tuple[str, ...], float] = {}

    def set(self, value: float, **labels: object) -> None:
        """Set the labelled series to ``value``."""
        key = self._key(labels)
        with self._lock:
            self._series[key] = float(value)

    def inc(self, amount: float = 1.0, **labels: object) -> None:
        """Add ``amount`` (may be negative) to the labelled series."""
        key = self._key(labels)
        with self._lock:
            self._series[key] = self._series.get(key, 0.0) + float(amount)

    def remove(self, **labels: object) -> None:
        """Drop the labelled series entirely (no-op when absent).

        Gauges describe *current* state, so when the entity behind a label
        disappears (an index is dropped, a shard is retired) the series
        must go with it — otherwise a relabelled survivor aliases the
        stale value.  Counters deliberately have no ``remove``: their
        history stays valid under relabelling.
        """
        key = self._key(labels)
        with self._lock:
            self._series.pop(key, None)

    def value(self, **labels: object) -> float:
        """Current value of the labelled series (0.0 if never set)."""
        return self._series.get(self._key(labels), 0.0)

    def series(self) -> dict[tuple[str, ...], float]:
        """Copy of all series, keyed by label-value tuple."""
        with self._lock:
            return dict(self._series)

    def snapshot(self) -> dict:
        """JSON-serialisable dump of every series (merge/export format)."""
        return {
            "name": self.name,
            "type": self.kind,
            "help": self.help,
            "labelnames": list(self.labelnames),
            "series": [
                {"labels": dict(zip(self.labelnames, key)), "value": value}
                for key, value in sorted(self.series().items())
            ],
        }


class HistogramSeries:
    """One labelled histogram series: per-bucket counts plus sum/count."""

    __slots__ = ("counts", "total", "count")

    def __init__(self, n_buckets: int) -> None:
        # counts[i] holds observations in (bucket[i-1], bucket[i]];
        # counts[n_buckets] is the +Inf overflow cell.
        self.counts = [0] * (n_buckets + 1)
        self.total = 0.0
        self.count = 0

    def cumulative(self) -> list[int]:
        """Cumulative bucket counts in Prometheus ``le`` semantics."""
        running = 0
        out = []
        for cell in self.counts:
            running += cell
            out.append(running)
        return out


class Histogram(_MetricBase):
    """Fixed-bucket histogram (log-scale latency buckets by default)."""

    kind = "histogram"

    def __init__(
        self,
        name: str,
        help: str = "",
        labelnames: Sequence[str] = (),
        buckets: Sequence[float] = LATENCY_BUCKETS,
    ) -> None:
        super().__init__(name, help, labelnames)
        bounds = tuple(float(bound) for bound in buckets)
        if not bounds or any(b2 <= b1 for b1, b2 in zip(bounds, bounds[1:])):
            raise ValueError(
                f"histogram {name!r} buckets must be non-empty and strictly increasing"
            )
        self.buckets = bounds
        self._series: dict[tuple[str, ...], HistogramSeries] = {}

    def observe(self, value: float, **labels: object) -> None:
        """Record one observation into the labelled series."""
        value = float(value)
        key = self._key(labels)
        position = bisect.bisect_left(self.buckets, value)
        with self._lock:
            series = self._series.get(key)
            if series is None:
                series = self._series[key] = HistogramSeries(len(self.buckets))
            series.counts[position] += 1
            series.total += value
            series.count += 1

    def series(self) -> dict[tuple[str, ...], HistogramSeries]:
        """Live series map (read-only by convention)."""
        with self._lock:
            return dict(self._series)

    def count(self, **labels: object) -> int:
        """Number of observations in the labelled series."""
        series = self._series.get(self._key(labels))
        return series.count if series is not None else 0

    def sum(self, **labels: object) -> float:
        """Sum of observations in the labelled series."""
        series = self._series.get(self._key(labels))
        return series.total if series is not None else 0.0

    def snapshot(self) -> dict:
        """JSON-serialisable dump of every series, including bucket counts."""
        return {
            "name": self.name,
            "type": self.kind,
            "help": self.help,
            "labelnames": list(self.labelnames),
            "buckets": list(self.buckets),
            "series": [
                {
                    "labels": dict(zip(self.labelnames, key)),
                    "counts": list(series.counts),
                    "sum": series.total,
                    "count": series.count,
                }
                for key, series in sorted(self.series().items())
            ],
        }


_KINDS = {"counter": Counter, "gauge": Gauge, "histogram": Histogram}


class MetricsRegistry:
    """Get-or-create registry of metric families, snapshot/restore-able."""

    def __init__(self) -> None:
        self._metrics: dict[str, _MetricBase] = {}
        self._lock = threading.Lock()
        self._generation = 0

    # ------------------------------------------------------------------ #
    # Family management
    # ------------------------------------------------------------------ #

    def _get_or_create(
        self, cls: type, name: str, help: str, labelnames: Sequence[str], **kwargs
    ) -> _MetricBase:
        with self._lock:
            existing = self._metrics.get(name)
            if existing is not None:
                if not isinstance(existing, cls) or existing.labelnames != tuple(labelnames):
                    raise ValueError(
                        f"metric {name!r} already registered as {existing.kind} "
                        f"with labels {list(existing.labelnames)}"
                    )
                return existing
            metric = cls(name, help, labelnames, **kwargs)
            self._metrics[name] = metric
            return metric

    def counter(self, name: str, help: str = "", labelnames: Sequence[str] = ()) -> Counter:
        """Get or create a counter family."""
        return self._get_or_create(Counter, name, help, labelnames)  # type: ignore[return-value]

    def gauge(self, name: str, help: str = "", labelnames: Sequence[str] = ()) -> Gauge:
        """Get or create a gauge family."""
        return self._get_or_create(Gauge, name, help, labelnames)  # type: ignore[return-value]

    def histogram(
        self,
        name: str,
        help: str = "",
        labelnames: Sequence[str] = (),
        buckets: Sequence[float] | None = None,
    ) -> Histogram:
        """Get or create a histogram family (latency buckets by default)."""
        return self._get_or_create(  # type: ignore[return-value]
            Histogram, name, help, labelnames, buckets=buckets or LATENCY_BUCKETS
        )

    def get(self, name: str) -> _MetricBase | None:
        """The registered family called ``name``, or None."""
        return self._metrics.get(name)

    def __iter__(self) -> Iterator[_MetricBase]:
        with self._lock:
            families = sorted(self._metrics.items())
        return iter([metric for _, metric in families])

    def __len__(self) -> int:
        return len(self._metrics)

    def reset(self) -> None:
        """Drop every family and all recorded samples."""
        with self._lock:
            self._metrics.clear()
            self._generation += 1

    def generation(self) -> int:
        """Monotonic count of :meth:`reset` calls.

        Hot paths that cache a family object (to skip the registry lock
        per increment) key their cache on this value so a reset can't
        leave them writing into a family the registry no longer holds.
        """
        return self._generation

    def n_samples(self) -> int:
        """Total recorded samples across all families (0 means pristine)."""
        total = 0
        for metric in self:
            if isinstance(metric, Histogram):
                total += sum(series.count for series in metric.series().values())
            else:
                total += len(metric.series())  # type: ignore[union-attr]
        return total

    # ------------------------------------------------------------------ #
    # Snapshot / restore
    # ------------------------------------------------------------------ #

    def snapshot(self) -> dict:
        """JSON-able dump of every family and series."""
        return {"metrics": [metric.snapshot() for metric in self]}

    def restore(self, snapshot: Mapping) -> None:
        """Merge a :meth:`snapshot` dump into this registry.

        Counters and histogram cells are *added* (so restore composes
        across runs); gauges are overwritten with the stored value.
        """
        for entry in snapshot.get("metrics", []):
            kind = entry.get("type")
            if kind not in _KINDS:
                raise ValueError(f"unknown metric type {kind!r} in snapshot")
            name = entry["name"]
            labelnames = tuple(entry.get("labelnames", ()))
            help_text = entry.get("help", "")
            if kind == "counter":
                counter = self.counter(name, help_text, labelnames)
                for row in entry.get("series", []):
                    counter.inc(float(row["value"]), **row.get("labels", {}))
            elif kind == "gauge":
                gauge = self.gauge(name, help_text, labelnames)
                for row in entry.get("series", []):
                    gauge.set(float(row["value"]), **row.get("labels", {}))
            else:
                buckets = tuple(entry.get("buckets", LATENCY_BUCKETS))
                histogram = self.histogram(name, help_text, labelnames, buckets)
                if histogram.buckets != buckets:
                    raise ValueError(
                        f"histogram {name!r} bucket layout differs from snapshot"
                    )
                for row in entry.get("series", []):
                    key = histogram._key(row.get("labels", {}))
                    counts = [int(cell) for cell in row["counts"]]
                    if len(counts) != len(histogram.buckets) + 1:
                        raise ValueError(
                            f"histogram {name!r} series has {len(counts)} cells, "
                            f"expected {len(histogram.buckets) + 1}"
                        )
                    with histogram._lock:
                        series = histogram._series.get(key)
                        if series is None:
                            series = histogram._series[key] = HistogramSeries(
                                len(histogram.buckets)
                            )
                        for position, cell in enumerate(counts):
                            series.counts[position] += cell
                        series.total += float(row.get("sum", 0.0))
                        series.count += int(row.get("count", 0))


_DEFAULT = MetricsRegistry()


def registry() -> MetricsRegistry:
    """The process-wide default registry every instrument records into."""
    return _DEFAULT


def reset() -> None:
    """Clear the default registry (CLI ``repro obs reset`` and tests)."""
    _DEFAULT.reset()


def generation() -> int:
    """Reset generation of the default registry (family-cache key)."""
    return _DEFAULT.generation()


# --------------------------------------------------------------------- #
# Standard instrument catalogue (see docs/observability.md)
# --------------------------------------------------------------------- #


def queries_total() -> Counter:
    """Queries answered, by kind / route / selection strategy."""
    return _DEFAULT.counter(
        "repro_queries_total",
        "Queries answered, by kind (inequality/topk/range/batch/scan/scan_topk), "
        "route (intervals/scan/octant-fallback/baseline), and selection strategy.",
        ("kind", "route", "strategy"),
    )


def query_latency() -> Histogram:
    """End-to-end query wall time in seconds, by kind and route."""
    return _DEFAULT.histogram(
        "repro_query_latency_seconds",
        "End-to-end query wall time (seconds).",
        ("kind", "route"),
    )


def interval_points() -> Counter:
    """SI/II/LI cardinalities accumulated per index position."""
    return _DEFAULT.counter(
        "repro_interval_points_total",
        "Points classified into each interval (si/ii/li) per index position.",
        ("interval", "index"),
    )


def verified_points() -> Counter:
    """Points whose scalar product was actually evaluated."""
    return _DEFAULT.counter(
        "repro_verified_points_total",
        "Points whose scalar product was evaluated, by query kind.",
        ("kind",),
    )


def selection_total() -> Counter:
    """Best-index selection outcomes per strategy and chosen position."""
    return _DEFAULT.counter(
        "repro_selection_total",
        "Best-index selections, by strategy and chosen index position.",
        ("strategy", "index"),
    )


def rows_gathered() -> Counter:
    """Feature rows gathered for verification (FeatureStore.take_rows)."""
    return _DEFAULT.counter(
        "repro_store_rows_gathered_total",
        "Feature rows gathered for verification via FeatureStore.take_rows.",
    )


def store_scans() -> Counter:
    """Full feature-matrix scans issued by the cost-based router."""
    return _DEFAULT.counter(
        "repro_store_scans_total",
        "Full feature-matrix scans issued (FeatureStore.scan_values).",
    )


def indexed_points() -> Gauge:
    """Live key count per Planar index."""
    return _DEFAULT.gauge(
        "repro_indexed_points",
        "Live keys per Planar index position.",
        ("index",),
    )


def shard_queries_total() -> Counter:
    """Per-shard query executions of the sharded engine."""
    return _DEFAULT.counter(
        "repro_shard_queries_total",
        "Shard-local query executions of the sharded engine, by query kind "
        "(inequality/range/topk/batch) and shard.",
        ("kind", "shard"),
    )


def shard_points() -> Gauge:
    """Live points owned by each shard of a sharded engine."""
    return _DEFAULT.gauge(
        "repro_shard_points",
        "Live points owned per shard of the sharded execution engine.",
        ("shard",),
    )


def span_seconds() -> Histogram:
    """Span durations by span name (populated by repro.obs.spans)."""
    return _DEFAULT.histogram(
        "repro_span_seconds",
        "Tracing span durations (seconds), by span name.",
        ("name",),
    )


def bench_seconds() -> Histogram:
    """Benchmark harness timings (repro.bench.harness.time_call)."""
    return _DEFAULT.histogram(
        "repro_bench_seconds",
        "Benchmark harness call timings (seconds), by bench label.",
        ("bench",),
    )


def explain_total() -> Counter:
    """EXPLAIN reports produced, by planned route."""
    return _DEFAULT.counter(
        "repro_explain_total",
        "EXPLAIN reports produced, by planned route.",
        ("route",),
    )


def tuning_recorded_total() -> Counter:
    """Workload sketches recorded, by query kind."""
    return _DEFAULT.counter(
        "repro_tuning_recorded_total",
        "Query sketches recorded into the workload ring buffer, by kind "
        "(inequality/range/topk/batch).",
        ("kind",),
    )


def tuning_workload_size() -> Gauge:
    """Sketches currently retained by the global workload recorder."""
    return _DEFAULT.gauge(
        "repro_tuning_workload_size",
        "Query sketches currently retained in the workload ring buffer.",
    )


def tuning_plans_total() -> Counter:
    """Tuning-plan lifecycle events, by action (advise/dry_run/apply)."""
    return _DEFAULT.counter(
        "repro_tuning_plans_total",
        "Tuning plan lifecycle events, by action (advise/dry_run/apply).",
        ("action",),
    )


def tuning_predicted_ii_mean() -> Gauge:
    """Advisor-predicted mean |II| before/after the proposed portfolio."""
    return _DEFAULT.gauge(
        "repro_tuning_predicted_ii_mean",
        "Advisor-predicted mean intermediate-interval size over the recorded "
        "workload, by stage (baseline/proposed).",
        ("stage",),
    )


def faults_injected_total() -> Counter:
    """Injected faults fired, by site and kind (chaos testing only)."""
    return _DEFAULT.counter(
        "repro_reliability_faults_injected_total",
        "Deliberately injected faults fired, by site and kind "
        "(error/stall/torn); only nonzero while a fault plan is armed.",
        ("site", "kind"),
    )


def shard_retries_total() -> Counter:
    """Shard retry attempts spent recovering fan-out failures, by kind."""
    return _DEFAULT.counter(
        "repro_reliability_shard_retries_total",
        "Shard retry attempts under failure policy retry_then_degrade, "
        "by fan-out kind.",
        ("kind",),
    )


def degraded_queries_total() -> Counter:
    """Answers returned with a DegradedInfo annotation, by kind."""
    return _DEFAULT.counter(
        "repro_reliability_degraded_queries_total",
        "Query answers annotated with DegradedInfo (shard failures "
        "recovered or degraded), by fan-out kind.",
        ("kind",),
    )


def checksum_failures_total() -> Counter:
    """Persistence checksum/manifest verification failures, by artifact."""
    return _DEFAULT.counter(
        "repro_reliability_checksum_failures_total",
        "Persisted-artifact integrity failures detected at load time "
        "(checksum mismatch, truncation, manifest damage), by artifact.",
        ("artifact",),
    )


def atomic_writes_total() -> Counter:
    """Atomic artifact writes committed via temp-file + os.replace."""
    return _DEFAULT.counter(
        "repro_reliability_atomic_writes_total",
        "Crash-safe artifact writes committed (temp file fsynced and "
        "renamed over the destination), by artifact.",
        ("artifact",),
    )


def traces_total() -> Counter:
    """Facade traces begun, by op kind and sampling decision.

    Incremented for *every* trace — sampled or not — so exact query
    counts survive head sampling (``count / rate`` extrapolation is
    never needed for throughput).
    """
    return _DEFAULT.counter(
        "repro_traces_total",
        "Facade query traces begun, by op kind "
        "(inequality/range/topk/batch) and head-sampling decision.",
        ("kind", "sampled"),
    )


#: Completeness histogram buckets: fractions of the full answer set.
COMPLETENESS_BUCKETS: tuple[float, ...] = (0.25, 0.5, 0.75, 0.9, 0.95, 0.99, 1.0)


def answer_completeness() -> Histogram:
    """Per-answer completeness fraction (1.0 unless degraded), by kind."""
    return _DEFAULT.histogram(
        "repro_answer_completeness",
        "Fraction of the data each answer covered (1.0 unless shards "
        "were lost and the answer degraded), by op kind.",
        ("kind",),
        buckets=COMPLETENESS_BUCKETS,
    )


def slo_burn_rate() -> Gauge:
    """Error-budget burn rate per declared objective (1.0 = at budget)."""
    return _DEFAULT.gauge(
        "repro_slo_burn_rate",
        "Error-budget burn rate per declared objective; > 1.0 means the "
        "objective is violated over the evaluated window.",
        ("objective",),
    )


def slo_observed() -> Gauge:
    """Observed value per objective (quantile seconds / completeness)."""
    return _DEFAULT.gauge(
        "repro_slo_observed",
        "Observed value per declared objective (estimated latency "
        "quantile in seconds, or mean completeness fraction).",
        ("objective",),
    )


def slo_ok() -> Gauge:
    """1 when the objective is met over the evaluated window, else 0."""
    return _DEFAULT.gauge(
        "repro_slo_ok",
        "Whether each declared objective is currently met (1) or "
        "violated (0) over the evaluated window.",
        ("objective",),
    )


def serve_requests_total() -> Counter:
    """Serving-layer requests, by tenant, op, and terminal status."""
    return _DEFAULT.counter(
        "repro_serve_requests_total",
        "HTTP query-service requests, by tenant, op (query/topk), and "
        "terminal status (ok/shed/error).",
        ("tenant", "op", "status"),
    )


def serve_request_seconds() -> Histogram:
    """End-to-end served request latency (admission to response), by op."""
    return _DEFAULT.histogram(
        "repro_serve_request_seconds",
        "End-to-end served request latency in seconds, admission through "
        "response, by op (query/topk).",
        ("op",),
    )


#: Micro-batch size buckets: powers of two up to the default size cap.
BATCH_SIZE_BUCKETS: tuple[float, ...] = (1.0, 2.0, 4.0, 8.0, 16.0, 32.0, 64.0, 128.0)


def serve_batch_size() -> Histogram:
    """Requests coalesced per engine batch call, by op."""
    return _DEFAULT.histogram(
        "repro_serve_batch_size",
        "Requests the micro-batcher coalesced into each engine batch "
        "call, by op (query/topk); mean = amortization factor.",
        ("op",),
        buckets=BATCH_SIZE_BUCKETS,
    )


def serve_shed_total() -> Counter:
    """Requests shed before the engine, by tenant and reason."""
    return _DEFAULT.counter(
        "repro_serve_shed_total",
        "Requests rejected before reaching the engine (429 or 503), by "
        "tenant and reason (quota/queue_full/brownout/breaker/draining/"
        "fault).",
        ("tenant", "reason"),
    )


def serve_queue_depth() -> Gauge:
    """Admitted requests currently queued ahead of the batcher."""
    return _DEFAULT.gauge(
        "repro_serve_queue_depth",
        "Admitted requests currently waiting in the serving queue.",
    )


def serve_deadline_expired_total() -> Counter:
    """Requests whose end-to-end deadline budget ran out, by stage."""
    return _DEFAULT.counter(
        "repro_serve_deadline_expired_total",
        "Requests answered 504 because the end-to-end deadline budget ran "
        "out, by the pipeline stage that noticed (accept/await/dispatch).",
        ("stage",),
    )


def breaker_state() -> Gauge:
    """Circuit-breaker state per (tenant, op): 0 closed, 1 open, 2 half-open."""
    return _DEFAULT.gauge(
        "repro_breaker_state",
        "Per-(tenant, op) circuit-breaker state: 0=closed, 1=open, "
        "2=half_open.",
        ("tenant", "op"),
    )


def breaker_transitions_total() -> Counter:
    """Circuit-breaker transitions, by (tenant, op) and entered state."""
    return _DEFAULT.counter(
        "repro_breaker_transitions_total",
        "Circuit-breaker state transitions, by tenant, op, and the state "
        "entered (open/half_open/closed).",
        ("tenant", "op", "state"),
    )


def serve_health_state() -> Gauge:
    """Service health lifecycle: 0 healthy, 1 degraded, 2 browned_out, 3 draining."""
    return _DEFAULT.gauge(
        "repro_serve_health_state",
        "Service health-state machine: 0=healthy, 1=degraded, "
        "2=browned_out, 3=draining.",
    )
