"""Structured query log: rotating JSONL, one record per sampled query.

The event log is the third leg of the telemetry stool (metrics are
aggregates, spans are bounded in-memory trees): an append-only JSONL
file where each line is one facade query with its trace id, op kind,
latency, per-stage cost counters, shard fan-out, retry count, and full
``DegradedInfo`` — everything a serving layer needs to answer "what did
query X actually do" hours later, across process restarts.

Arming: set ``REPRO_OBS_LOG=/path/to/query-log.jsonl`` (the obs layer
itself must be armed too — no events are emitted while ``REPRO_OBS`` is
off, because facades never open traces).  Which queries get a record is
the head-sampler's decision (:mod:`repro.obs.trace`), with two
overrides: queries slower than ``REPRO_OBS_SLOW_MS`` (default 100 ms)
and queries that raised are logged even when unsampled — the tail you
most want is never sampled away.

Rotation is size-based: when the active file would exceed
``max_bytes`` (default 16 MiB) it is shifted to ``<path>.1`` (existing
backups shift up, the oldest is dropped), so a long-running process
holds at most ``backups + 1`` files.  Writes append a single
``json.dumps`` line under a process-wide lock; nothing here is on the
hot path of an unsampled query.
"""

from __future__ import annotations

import io
import json
import os
import threading
from typing import Any, Dict, Iterator, List, Optional

__all__ = [
    "armed",
    "configure",
    "configure_from_env",
    "emit",
    "slow_ms",
    "set_slow_ms",
    "log_path",
    "iter_records",
    "tail",
    "find",
    "render_line",
]

#: Rotation threshold for the active log file, in bytes.
DEFAULT_MAX_BYTES = 16 * 1024 * 1024
#: Rotated files kept around (``<path>.1`` ... ``<path>.N``).
DEFAULT_BACKUPS = 2
#: Default always-log latency threshold, in milliseconds.
DEFAULT_SLOW_MS = 100.0

_lock = threading.Lock()
_path: Optional[str] = None
_max_bytes: int = DEFAULT_MAX_BYTES
_backups: int = DEFAULT_BACKUPS
_slow_ms: float = DEFAULT_SLOW_MS


def configure(
    path: Optional[str],
    *,
    max_bytes: int = DEFAULT_MAX_BYTES,
    backups: int = DEFAULT_BACKUPS,
) -> Optional[str]:
    """Point the query log at ``path`` (``None`` disarms); returns the old path."""
    global _path, _max_bytes, _backups
    with _lock:
        previous = _path
        _path = path or None
        _max_bytes = max(4096, int(max_bytes))
        _backups = max(0, int(backups))
    return previous


def configure_from_env() -> Optional[str]:
    """(Re-)read ``REPRO_OBS_LOG`` / ``REPRO_OBS_SLOW_MS``; returns the path."""
    path = os.environ.get("REPRO_OBS_LOG", "").strip() or None
    configure(path)
    raw = os.environ.get("REPRO_OBS_SLOW_MS", "").strip()
    if raw:
        try:
            set_slow_ms(float(raw))
        except ValueError:
            pass
    return path


def armed() -> bool:
    """Whether emitted records have somewhere to go."""
    return _path is not None  # repro: noqa(REP012) — thread-shared config; workers share one log by design


def log_path() -> Optional[str]:
    """The active query-log path, if armed."""
    return _path


def slow_ms() -> float:
    """Latency threshold (ms) above which queries log even unsampled."""
    return _slow_ms  # repro: noqa(REP012) — thread-shared config; workers share one threshold by design


def set_slow_ms(threshold: float) -> float:
    """Set the slow-query threshold in milliseconds; returns the old one."""
    global _slow_ms
    previous = _slow_ms
    _slow_ms = max(0.0, float(threshold))
    return previous


def _rotate_locked(path: str) -> None:
    """Shift ``path`` into the numbered backup chain (lock already held)."""
    oldest = f"{path}.{_backups}" if _backups else None
    if oldest and os.path.exists(oldest):
        os.remove(oldest)
    for position in range(_backups - 1, 0, -1):
        source = f"{path}.{position}"
        if os.path.exists(source):
            os.replace(source, f"{path}.{position + 1}")
    if _backups:
        os.replace(path, f"{path}.1")
    else:
        os.remove(path)


def emit(record: Dict[str, Any]) -> None:
    """Append one record as a JSON line, rotating first if needed.

    Silently drops the record when the log is disarmed (the emit site
    in :mod:`repro.obs.trace` checks :func:`armed` first, but the check
    is repeated under the lock so disarming mid-flight is safe).
    """
    line = json.dumps(record, separators=(",", ":"), default=str)
    with _lock:
        path = _path
        if path is None:
            return
        try:
            if (
                os.path.exists(path)
                and os.path.getsize(path) + len(line) + 1 > _max_bytes
            ):
                _rotate_locked(path)
            with open(path, "a", encoding="utf-8") as handle:
                handle.write(line + "\n")
        except OSError:
            # Telemetry must never take a query down with it: a full
            # disk or yanked directory loses the record, not the answer.
            return


def iter_records(path: Optional[str] = None) -> Iterator[Dict[str, Any]]:
    """Yield parsed records oldest-first (backups first, then active).

    Unparseable lines (a torn write at a crash boundary) are skipped —
    the log is an observability artifact, not a ledger.
    """
    base = path or _path
    if base is None:
        return
    candidates = [f"{base}.{position}" for position in range(_backups, 0, -1)]
    candidates.append(base)
    for candidate in candidates:
        try:
            handle: io.TextIOWrapper = open(candidate, "r", encoding="utf-8")
        except OSError:
            continue
        with handle:
            for line in handle:
                line = line.strip()
                if not line:
                    continue
                try:
                    yield json.loads(line)
                except json.JSONDecodeError:
                    continue


def tail(count: int = 10, path: Optional[str] = None) -> List[Dict[str, Any]]:
    """The last ``count`` records, oldest-first within the returned slice."""
    window: List[Dict[str, Any]] = []
    for record in iter_records(path):
        window.append(record)
        if len(window) > max(1, count) * 4:
            window = window[-max(1, count) :]
    return window[-max(1, count) :] if count > 0 else []


def find(trace_prefix: str, path: Optional[str] = None) -> Optional[Dict[str, Any]]:
    """Most recent record whose trace id starts with ``trace_prefix``."""
    prefix = trace_prefix.strip().lower()
    if not prefix:
        return None
    match: Optional[Dict[str, Any]] = None
    for record in iter_records(path):
        if str(record.get("trace_id", "")).startswith(prefix):
            match = record
    return match


def render_line(record: Dict[str, Any]) -> str:
    """One-line human rendering of a query-log record (``repro obs tail``)."""
    trace_id = str(record.get("trace_id", "?"))[:16]
    op = record.get("op", "?")
    latency = record.get("latency_ms", 0.0)
    shards = record.get("shards", 1)
    retries = record.get("retries", 0)
    flags = []
    if record.get("slow"):
        flags.append("SLOW")
    if not record.get("sampled", True):
        flags.append("unsampled")
    if record.get("error"):
        flags.append(f"ERROR({record['error'].split(':', 1)[0]})")
    degraded = record.get("degraded")
    if degraded:
        flags.append(f"degraded(completeness={degraded.get('completeness', '?')})")
    suffix = f"  [{' '.join(flags)}]" if flags else ""
    return (
        f"{trace_id}  {op:<10s} {latency:>9.3f} ms  "
        f"shards={shards} retries={retries}{suffix}"
    )


# Arm from the environment at import time so processes started with
# REPRO_OBS_LOG set (CI lanes, production services) log from the first
# query without any explicit setup call.
configure_from_env()
