"""Tracing spans: wall-time trees for the query pipeline.

A *span* is a named, timed section of work.  Spans nest — entering a
span while another is open makes it a child — so one ``collection.query``
call produces a small tree::

    collection.query                       412.3 us
      select                                18.1 us
      binary_search                          6.4 us
      verify_II                            131.0 us
      materialize                           22.7 us

Completed **root** spans (those with no parent) are pushed onto a
process-local ring buffer of recent traces so a REPL or the ``repro obs
dump`` CLI can inspect the last few queries without any collector
infrastructure.  Every completed span also feeds the
``repro_span_seconds`` histogram, labeled by span name.

Two APIs, two cost profiles:

``span(name, **attrs)``
    Context manager.  When the layer is disabled it returns a shared
    no-op singleton whose ``__enter__``/``__exit__`` do nothing — cheap,
    but still a call.  Use it at *per-query* granularity.

``record(name, started, **attrs)``
    Manual O(1) recording for hot inner sections: callers snapshot
    ``time.perf_counter()`` themselves, guarded by a local boolean, so
    the disabled path costs a single branch and no function call::

        obs_on = _rt.active()
        t0 = time.perf_counter() if obs_on else 0.0
        ... work ...
        if obs_on:
            record("binary_search", t0)

Spans are thread-local by default, but a trace can be *stitched* across
threads: :mod:`repro.obs.trace` captures the root span on the issuing
thread and :func:`adopt`/:func:`release` re-parent a worker thread's
span stack under it, so sharded queries produce one tree instead of a
pile of orphan roots.  Child-append is the only cross-thread mutation
(``list.append``, atomic under the GIL) and the root closes only after
all workers have been joined.

Everything here is O(1) per span — no per-point work ever happens in
this module (REP006 stays structurally impossible).
"""

from __future__ import annotations

import functools
import threading
import time
from collections import deque
from dataclasses import dataclass, field
from typing import Any, Callable, Deque, Dict, Iterator, List, Optional, TypeVar

from . import metrics as _metrics
from . import runtime as _rt

__all__ = [
    "SpanRecord",
    "span",
    "record",
    "traced",
    "current_span",
    "open_span",
    "close_span",
    "adopt",
    "release",
    "recent_traces",
    "clear_traces",
    "set_trace_capacity",
    "trace_capacity",
]

_F = TypeVar("_F", bound=Callable[..., Any])

#: Default number of recent root traces retained in the ring buffer.
DEFAULT_TRACE_CAPACITY = 64


@dataclass
class SpanRecord:
    """One completed (or in-flight) timed section.

    ``duration`` is in seconds and is ``0.0`` until the span closes.
    ``attrs`` holds small scalar annotations (sizes, labels) — never
    arrays.  ``children`` are sub-spans in completion order.
    """

    name: str
    start: float
    duration: float = 0.0
    attrs: Dict[str, Any] = field(default_factory=dict)
    children: List["SpanRecord"] = field(default_factory=list)

    def to_dict(self) -> Dict[str, Any]:
        """JSON-friendly nested representation."""
        out: Dict[str, Any] = {
            "name": self.name,
            "duration_us": round(self.duration * 1e6, 3),
        }
        if self.attrs:
            out["attrs"] = dict(self.attrs)
        if self.children:
            out["children"] = [child.to_dict() for child in self.children]
        return out

    def render(self, indent: int = 0, width: int = 44) -> str:
        """Human-readable tree, one span per line."""
        lines: List[str] = []
        self._render_into(lines, indent, width)
        return "\n".join(lines)

    def _render_into(self, lines: List[str], indent: int, width: int) -> None:
        label = "  " * indent + self.name
        attrs = ""
        if self.attrs:
            attrs = "  " + " ".join(f"{k}={v}" for k, v in sorted(self.attrs.items()))
        lines.append(f"{label:<{width}s}{self.duration * 1e6:>12.1f} us{attrs}")
        for child in self.children:
            child._render_into(lines, indent + 1, width)

    def walk(self) -> Iterator["SpanRecord"]:
        """Yield this span then all descendants, depth-first."""
        yield self
        for child in self.children:
            yield from child.walk()


class _TraceState(threading.local):
    """Per-thread span stack (traces never cross threads)."""

    def __init__(self) -> None:  # pragma: no cover - trivial
        self.stack: List[SpanRecord] = []


_state = _TraceState()
_traces: Deque[SpanRecord] = deque(maxlen=DEFAULT_TRACE_CAPACITY)
_traces_lock = threading.Lock()


class _NullSpan:
    """Shared do-nothing span returned while the layer is disabled."""

    __slots__ = ()

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, *exc: object) -> None:
        return None

    def annotate(self, **attrs: Any) -> None:
        return None


_NULL_SPAN = _NullSpan()


class _ActiveSpan:
    """Context manager that opens a :class:`SpanRecord` on the stack."""

    __slots__ = ("_record",)

    def __init__(self, name: str, attrs: Dict[str, Any]) -> None:
        self._record = SpanRecord(name=name, start=0.0, attrs=attrs)

    def annotate(self, **attrs: Any) -> None:
        """Attach scalar attributes to the open span."""
        self._record.attrs.update(attrs)

    def __enter__(self) -> "_ActiveSpan":
        _state.stack.append(self._record)
        self._record.start = time.perf_counter()
        return self

    def __exit__(self, *exc: object) -> None:
        rec = self._record
        rec.duration = time.perf_counter() - rec.start
        stack = _state.stack
        # The record may not be stack[-1] if user code mismatched exits;
        # recover by popping through it rather than corrupting the tree.
        while stack:
            top = stack.pop()
            if top is rec:
                break
        _finish(rec, stack)


def _finish(rec: SpanRecord, stack: List[SpanRecord]) -> None:
    """Attach a completed span to its parent or publish it as a trace."""
    if stack:
        stack[-1].children.append(rec)
    else:
        with _traces_lock:
            _traces.append(rec)  # repro: noqa(REP012) — trace ring is thread-shared; a process-pool backend would need a collector
    if _rt.ENABLED:  # repro: noqa(REP012) — thread-shared flag; a process-pool backend must re-enable obs per worker
        _metrics.span_seconds().observe(rec.duration, name=rec.name)


def span(name: str, **attrs: Any):
    """Open a timed section; nests under any currently-open span.

    Returns a no-op singleton when the observability layer is disabled
    (or this thread is sampling-muted), so the call is safe (and cheap)
    on hot paths — though the hottest inner sections should prefer
    :func:`record`.
    """
    if not _rt.active():
        return _NULL_SPAN
    return _ActiveSpan(name, attrs)


def open_span(name: str, **attrs: Any) -> SpanRecord:
    """Unconditionally open a span and return its in-flight record.

    Building block for :mod:`repro.obs.trace`, which manages root spans
    whose lifetime does not fit a ``with`` block (opened at a facade's
    entry, closed after the answer is merged).  Pair every call with
    :func:`close_span` on the *same thread*.
    """
    rec = SpanRecord(name=name, start=0.0, attrs=attrs)
    _state.stack.append(rec)
    rec.start = time.perf_counter()
    return rec


def close_span(rec: SpanRecord) -> None:
    """Close a span opened by :func:`open_span`.

    Mismatched closes recover the same way :func:`span` exits do: the
    stack is popped through the record rather than corrupting the tree.
    """
    rec.duration = time.perf_counter() - rec.start
    stack = _state.stack
    while stack:
        top = stack.pop()
        if top is rec:
            break
    _finish(rec, stack)


def adopt(parent: SpanRecord) -> None:
    """Re-parent this thread's span stack under ``parent``.

    Used by :func:`repro.obs.trace.attach` on executor worker threads:
    spans opened afterwards become children of ``parent`` (a root span
    owned by the issuing thread) instead of orphan roots.  The append
    into ``parent.children`` happens in :func:`_finish` via
    ``list.append`` — atomic under the GIL — and the owner closes the
    parent only after joining every worker.  Pair with :func:`release`.
    """
    _state.stack.append(parent)


def release(parent: SpanRecord) -> None:
    """Undo :func:`adopt` without closing ``parent``."""
    stack = _state.stack
    while stack:
        if stack.pop() is parent:
            break


def record(name: str, started: float, **attrs: Any) -> None:
    """O(1) manual span recording for hot inner sections.

    ``started`` is a ``time.perf_counter()`` snapshot taken by the
    caller *before* the work; the span closes now.  The caller is
    responsible for guarding the call with ``runtime.ENABLED`` — this
    function records unconditionally so a locally-captured flag stays
    consistent even if the layer is toggled mid-query.
    """
    now = time.perf_counter()
    rec = SpanRecord(name=name, start=started, duration=now - started, attrs=attrs)
    _finish(rec, _state.stack)


def traced(name: Optional[str] = None) -> Callable[[_F], _F]:
    """Decorator form of :func:`span`.

    The wrapper checks ``runtime.active()`` first and calls the function
    directly when disabled (or sampling-muted), so the overhead off-mode
    is one attribute read and a branch.
    """

    def decorate(func: _F) -> _F:
        span_name = name or func.__qualname__

        @functools.wraps(func)
        def wrapper(*args: Any, **kwargs: Any) -> Any:
            if not _rt.active():
                return func(*args, **kwargs)
            with _ActiveSpan(span_name, {}):
                return func(*args, **kwargs)

        return wrapper  # type: ignore[return-value]

    return decorate


def current_span() -> Optional[SpanRecord]:
    """The innermost open span on this thread, if any."""
    stack = _state.stack
    return stack[-1] if stack else None


def recent_traces(limit: Optional[int] = None) -> List[SpanRecord]:
    """Most recent completed root traces, oldest first."""
    with _traces_lock:
        traces = list(_traces)
    if limit is not None and limit >= 0:
        traces = traces[-limit:]
    return traces


def clear_traces() -> None:
    """Drop all retained traces (capacity is preserved)."""
    with _traces_lock:
        _traces.clear()


def set_trace_capacity(capacity: int) -> None:
    """Resize the ring buffer, keeping the newest ``capacity`` traces."""
    if capacity < 1:
        raise ValueError("trace capacity must be >= 1")
    global _traces
    with _traces_lock:
        _traces = deque(_traces, maxlen=capacity)


def trace_capacity() -> int:
    """Current ring-buffer capacity."""
    with _traces_lock:
        return _traces.maxlen or DEFAULT_TRACE_CAPACITY
