"""Half-space range searching: the identity-function special case.

Remark 3 of the paper: when ``phi`` is the identity, the inequality query
*is* classical half-space range searching (Agarwal et al., Matousek, Arya
et al.) and the top-k query is the hyperplane-to-nearest-point problem of
active learning.  This module packages that case behind a minimal API with
no query model to configure: it rides on the query-adaptive octant index,
so hyperplanes of any orientation work out of the box.
"""

from __future__ import annotations

import numpy as np

from ._util import as_2d_float
from .core.query import Comparison
from .core.topk import TopKResult
from .extensions.adaptive import AdaptiveOctantIndex
from .geometry.hyperplane import Hyperplane

__all__ = ["HalfspaceIndex"]


class HalfspaceIndex:
    """Exact half-space reporting and hyperplane k-NN over a fixed point set.

    >>> import numpy as np
    >>> points = np.random.default_rng(0).normal(size=(1000, 3))
    >>> index = HalfspaceIndex(points, rng=0)
    >>> below = index.below(np.array([1.0, -2.0, 0.5]), 0.3)
    >>> nearest = index.nearest(np.array([1.0, -2.0, 0.5]), 0.3, k=5)
    """

    def __init__(
        self,
        points: np.ndarray,
        max_indices_per_octant: int = 10,
        rng: np.random.Generator | int | None = None,
    ) -> None:
        self._points = as_2d_float(points, "points").copy()
        self._adaptive = AdaptiveOctantIndex(
            self._points, max_indices_per_octant=max_indices_per_octant, rng=rng
        )

    # ------------------------------------------------------------------ #

    @property
    def dim(self) -> int:
        """Point dimensionality."""
        return int(self._points.shape[1])

    def __len__(self) -> int:
        return len(self._adaptive)

    # ------------------------------------------------------------------ #

    def below(self, normal: np.ndarray, offset: float, strict: bool = False) -> np.ndarray:
        """Ids of points with ``<normal, x> <= offset`` (``<`` when strict)."""
        op = Comparison.LT if strict else Comparison.LE
        return self._adaptive.query(normal, offset, op).ids

    def above(self, normal: np.ndarray, offset: float, strict: bool = False) -> np.ndarray:
        """Ids of points with ``<normal, x> >= offset`` (``>`` when strict)."""
        op = Comparison.GT if strict else Comparison.GE
        return self._adaptive.query(normal, offset, op).ids

    def side(self, hyperplane: Hyperplane, positive: bool = True) -> np.ndarray:
        """Ids on the chosen side of a :class:`Hyperplane`."""
        if positive:
            return self.above(hyperplane.normal, hyperplane.offset)
        return self.below(hyperplane.normal, hyperplane.offset)

    def nearest(
        self,
        normal: np.ndarray,
        offset: float,
        k: int,
        side: str = "below",
    ) -> TopKResult:
        """The ``k`` points on one side closest to the hyperplane.

        ``side`` is ``"below"`` (``<=``), ``"above"`` (``>``), or
        ``"both"`` — the latter merges both sides by distance, the
        active-learning acquisition of Section 7.5.2.
        """
        if side == "below":
            return self._adaptive.topk(normal, offset, k, Comparison.LE)
        if side == "above":
            return self._adaptive.topk(normal, offset, k, Comparison.GT)
        if side != "both":
            raise ValueError(f"side must be 'below', 'above', or 'both', got {side!r}")
        below = self._adaptive.topk(normal, offset, k, Comparison.LE)
        above = self._adaptive.topk(normal, offset, k, Comparison.GT)
        ids = np.concatenate([below.ids, above.ids])
        distances = np.concatenate([below.distances, above.distances])
        order = np.lexsort((ids, distances))[:k]
        return TopKResult(
            ids=ids[order],
            distances=distances[order],
            n_checked=below.n_checked + above.n_checked,
            n_total=below.n_total,
        )

    # ------------------------------------------------------------------ #

    def insert(self, points: np.ndarray) -> np.ndarray:
        """Add points; returns their ids."""
        points = as_2d_float(points, "points")
        self._points = np.vstack([self._points, points])
        return self._adaptive.insert_points(points)

    def delete(self, ids: np.ndarray) -> None:
        """Remove points by id."""
        self._adaptive.delete_points(ids)
