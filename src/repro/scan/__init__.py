"""Sequential-scan baseline (the paper's competing method, Section 7.1)."""

from .baseline import SequentialScan

__all__ = ["SequentialScan"]
