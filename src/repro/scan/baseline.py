"""Naive sequential scan over all feature vectors.

This is both the correctness oracle for every test in this repository and
the baseline the paper compares against: ``O(n d')`` per inequality query
and ``O(n d' + n log k)`` per top-k query, independent of any index.
"""

from __future__ import annotations

import time

import numpy as np

from .._util import as_2d_float
from ..analysis.contracts import array_contract
from ..core.query import ScalarProductQuery
from ..core.stats import QueryStats
from ..core.topk import TopKResult
from ..exceptions import DimensionMismatchError, InvalidQueryError
from ..obs import metrics as _om
from ..obs import runtime as _ort
from ..obs import spans as _osp

__all__ = ["SequentialScan"]


class SequentialScan:
    """Answer scalar product queries by evaluating every point.

    Parameters
    ----------
    features:
        ``(n, d')`` matrix of ``phi(x)`` values.
    ids:
        Optional point ids (defaults to row numbers) so results are
        comparable with indexed answers.
    """

    @array_contract("features: (n, d) float64 cast promote", "ids: ?(n,) int64 cast")
    def __init__(self, features: np.ndarray, ids: np.ndarray | None = None) -> None:
        self._features = as_2d_float(features, "features")
        if ids is None:
            ids = np.arange(self._features.shape[0], dtype=np.int64)
        else:
            ids = np.ascontiguousarray(ids, dtype=np.int64)
            if ids.size != self._features.shape[0]:
                raise DimensionMismatchError(
                    f"{ids.size} ids for {self._features.shape[0]} feature rows"
                )
        self._ids = ids

    def __len__(self) -> int:
        return int(self._features.shape[0])

    @property
    def dim(self) -> int:
        """Feature dimensionality ``d'``."""
        return int(self._features.shape[1])

    def _check(self, query: ScalarProductQuery) -> None:
        if query.dim != self.dim:
            raise InvalidQueryError(
                f"query has dimension {query.dim}, data has {self.dim}"
            )

    @array_contract(returns="(k,) int64")
    def query(self, query: ScalarProductQuery) -> np.ndarray:
        """All point ids satisfying the inequality, ascending."""
        self._check(query)
        obs_on = _ort.active()
        started = time.perf_counter() if obs_on else 0.0
        mask = query.evaluate(self._features)
        result = np.sort(self._ids[mask])
        if obs_on:
            _osp.record("baseline.query", started, n=len(self))
            _om.queries_total().inc(kind="scan", route="baseline", strategy="none")
            _om.verified_points().inc(len(self), kind="scan")
            _om.query_latency().observe(
                time.perf_counter() - started, kind="scan", route="baseline"
            )
        return result

    def topk(self, query: ScalarProductQuery, k: int) -> TopKResult:
        """Exact top-k satisfying points by hyperplane distance."""
        self._check(query)
        if k <= 0:
            raise InvalidQueryError(f"k must be positive, got {k}")
        obs_on = _ort.active()
        started = time.perf_counter() if obs_on else 0.0
        values = self._features @ query.normal
        mask = query.op.evaluate(values, query.offset)
        ids = self._ids[mask]
        distances = np.abs(values[mask] - query.offset) / np.linalg.norm(query.normal)
        if ids.size > k:
            # argpartition gets the k smallest in O(n); ties broken by id via
            # a stable lexicographic sort of the selected slice.
            part = np.argpartition(distances, k - 1)[:k]
            order = np.lexsort((ids[part], distances[part]))
            chosen = part[order]
        else:
            chosen = np.lexsort((ids, distances))
        if obs_on:
            _osp.record("baseline.topk", started, n=len(self), k=k)
            _om.queries_total().inc(kind="scan_topk", route="baseline", strategy="none")
            _om.verified_points().inc(len(self), kind="scan_topk")
            _om.query_latency().observe(
                time.perf_counter() - started, kind="scan_topk", route="baseline"
            )
        # The scan has no intervals: everything is "intermediate" and every
        # point's scalar product is evaluated.
        stats = QueryStats(
            n_total=len(self),
            si_size=0,
            ii_size=len(self),
            li_size=0,
            n_verified=len(self),
            n_results=int(chosen.size),
        )
        return TopKResult(
            ids=ids[chosen],
            distances=distances[chosen],
            n_checked=len(self),
            n_total=len(self),
            stats=stats,
        )
