"""Naive sequential scan over all feature vectors.

This is both the correctness oracle for every test in this repository and
the baseline the paper compares against: ``O(n d')`` per inequality query
and ``O(n d' + n log k)`` per top-k query, independent of any index.
"""

from __future__ import annotations

import numpy as np

from .._util import as_2d_float
from ..analysis.contracts import array_contract
from ..core.query import ScalarProductQuery
from ..core.topk import TopKResult
from ..exceptions import DimensionMismatchError, InvalidQueryError

__all__ = ["SequentialScan"]


class SequentialScan:
    """Answer scalar product queries by evaluating every point.

    Parameters
    ----------
    features:
        ``(n, d')`` matrix of ``phi(x)`` values.
    ids:
        Optional point ids (defaults to row numbers) so results are
        comparable with indexed answers.
    """

    @array_contract("features: (n, d) float64 cast promote", "ids: ?(n,) int64 cast")
    def __init__(self, features: np.ndarray, ids: np.ndarray | None = None) -> None:
        self._features = as_2d_float(features, "features")
        if ids is None:
            ids = np.arange(self._features.shape[0], dtype=np.int64)
        else:
            ids = np.ascontiguousarray(ids, dtype=np.int64)
            if ids.size != self._features.shape[0]:
                raise DimensionMismatchError(
                    f"{ids.size} ids for {self._features.shape[0]} feature rows"
                )
        self._ids = ids

    def __len__(self) -> int:
        return int(self._features.shape[0])

    @property
    def dim(self) -> int:
        """Feature dimensionality ``d'``."""
        return int(self._features.shape[1])

    def _check(self, query: ScalarProductQuery) -> None:
        if query.dim != self.dim:
            raise InvalidQueryError(
                f"query has dimension {query.dim}, data has {self.dim}"
            )

    @array_contract(returns="(k,) int64")
    def query(self, query: ScalarProductQuery) -> np.ndarray:
        """All point ids satisfying the inequality, ascending."""
        self._check(query)
        mask = query.evaluate(self._features)
        return np.sort(self._ids[mask])

    def topk(self, query: ScalarProductQuery, k: int) -> TopKResult:
        """Exact top-k satisfying points by hyperplane distance."""
        self._check(query)
        if k <= 0:
            raise InvalidQueryError(f"k must be positive, got {k}")
        values = self._features @ query.normal
        mask = query.op.evaluate(values, query.offset)
        ids = self._ids[mask]
        distances = np.abs(values[mask] - query.offset) / np.linalg.norm(query.normal)
        if ids.size > k:
            # argpartition gets the k smallest in O(n); ties broken by id via
            # a stable lexicographic sort of the selected slice.
            part = np.argpartition(distances, k - 1)[:k]
            order = np.lexsort((ids[part], distances[part]))
            chosen = part[order]
        else:
            chosen = np.lexsort((ids, distances))
        return TopKResult(
            ids=ids[chosen],
            distances=distances[chosen],
            n_checked=len(self),
            n_total=len(self),
        )
