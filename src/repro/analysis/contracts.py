"""Runtime array contracts for the Planar index's numeric invariants.

The Planar index is numerically correct only under invariants the Python
type system cannot see: hot-path arrays must be (or coerce to) contiguous
``float64``/``int64``, shapes must agree across arguments (``m`` ids for
``m`` rows), and feature values must be finite — NaN/inf silently corrupt
the sorted key order and turn interval pruning into a wrong-answer bug
rather than a crash.  :func:`array_contract` makes those invariants
machine-checkable at the public entry points:

>>> @array_contract("features: (n, d) float64 C", returns="(n,) float64")
... def keys(features, normal):
...     return features @ normal

By default the decorator is a **zero-overhead no-op**: it attaches the
parsed contract to the function as ``__array_contract__`` (for tooling and
the REP008 lint cross-check) and returns the *original* function object —
no wrapper, no per-call cost.  When the environment variable
``REPRO_SANITIZE`` is truthy at import time, every decorated entry point is
wrapped with full shape/dtype/contiguity/finiteness checking and raises
:class:`~repro.exceptions.ContractViolationError` on the first violation.

Contract-string mini-grammar
----------------------------
One string per parameter (plus an optional ``returns=`` spec without the
leading name)::

    spec    := name ":" ["?"] "(" dims ")" dtype {flag}
    dims    := dim { "," dim } [","]          — e.g. "(n, d)", "(m,)"
    dim     := symbol | integer               — symbols bind per call
    dtype   := "float64" | "int64" | "bool" | "any"
    flag    := "C" | "cast" | "promote" | "opt" | "nonfinite"

Semantics under ``REPRO_SANITIZE=1``:

``symbolic dims``
    The first occurrence of a symbol binds its size; later occurrences in
    the same call (across parameters and the return value) must match, so
    ``"ids: (m,) int64", "rows: (m, d) float64"`` enforces one id per row.
``C``
    The value must be a C-contiguous ``numpy.ndarray`` (checked only for
    ndarray inputs; list inputs are coerced contiguous downstream anyway).
``cast``
    Lenient dtype check: the input dtype only needs to be same-kind
    castable to the declared dtype.  Used on coercion points whose
    documented behavior is to accept any array-like.
``promote``
    Allow one missing leading axis (a single point where a batch is
    expected), mirroring :func:`repro._util.as_2d_float` promotion.
``opt`` / leading ``?``
    ``None`` is accepted and skipped.
``nonfinite``
    Skip the NaN/inf check (default: float arrays must be finite).

Violations raise :class:`ContractViolationError`, a
:class:`~repro.exceptions.DimensionMismatchError` (and ``ValueError``)
subclass, so sanitized runs keep the library's error contract.
"""

from __future__ import annotations

import functools
import inspect
import os
import re
from dataclasses import dataclass
from typing import Any, Callable

import numpy as np

from ..exceptions import ContractSpecError, ContractViolationError

__all__ = [
    "array_contract",
    "Contract",
    "ArraySpec",
    "parse_param_spec",
    "parse_return_spec",
    "sanitize_enabled",
    "checked",
]

_TRUTHY = {"1", "true", "yes", "on"}

_DTYPES: dict[str, np.dtype | None] = {
    "float64": np.dtype(np.float64),
    "int64": np.dtype(np.int64),
    "bool": np.dtype(np.bool_),
    "any": None,
}

_FLAGS = {"C", "cast", "promote", "opt", "nonfinite"}

_SPEC_RE = re.compile(
    r"""^\s*
        (?:(?P<name>[A-Za-z_][A-Za-z0-9_]*)\s*:\s*)?   # parameter name
        (?P<opt>\?)?\s*
        \(\s*(?P<dims>[^)]*)\)\s*
        (?P<dtype>[A-Za-z_][A-Za-z0-9_]*)
        (?P<flags>(?:\s+[A-Za-z]+)*)\s*$""",
    re.VERBOSE,
)


def sanitize_enabled() -> bool:
    """Whether ``REPRO_SANITIZE`` requests full contract checking.

    Read at decoration (import) time: the default mode must stay a true
    no-op, so enabling the sanitizer requires setting the variable before
    importing :mod:`repro`.
    """
    return os.environ.get("REPRO_SANITIZE", "").strip().lower() in _TRUTHY


@dataclass(frozen=True)
class ArraySpec:
    """One parsed parameter (or return-value) contract."""

    name: str
    dims: tuple[str | int, ...]
    dtype: np.dtype | None
    contiguous: bool = False
    cast: bool = False
    promote: bool = False
    optional: bool = False
    check_finite: bool = True

    def check(self, value: Any, env: dict[str, int], where: str) -> None:
        """Validate ``value``, binding symbolic dims into ``env``."""
        if value is None:
            if self.optional:
                return
            raise ContractViolationError(f"{where}: got None for a required array")
        is_array = isinstance(value, np.ndarray)
        try:
            arr = value if is_array else np.asarray(value)
        except Exception as exc:  # repro: noqa(REP005) — any asarray failure is a violation
            raise ContractViolationError(f"{where}: not array-like ({exc})") from exc
        if self.dtype is not None:
            if is_array and not self.cast:
                if arr.dtype != self.dtype:
                    raise ContractViolationError(
                        f"{where}: dtype {arr.dtype} != required {self.dtype}"
                    )
            elif not np.can_cast(arr.dtype, self.dtype, casting="same_kind"):
                raise ContractViolationError(
                    f"{where}: dtype {arr.dtype} is not same-kind castable "
                    f"to {self.dtype}"
                )
        if self.contiguous and is_array and not arr.flags["C_CONTIGUOUS"]:
            raise ContractViolationError(f"{where}: array is not C-contiguous")
        shape: tuple[int, ...] = arr.shape
        if len(shape) != len(self.dims):
            if self.promote and len(shape) == len(self.dims) - 1:
                shape = (1, *shape)
            else:
                raise ContractViolationError(
                    f"{where}: shape {arr.shape} does not match pattern "
                    f"({', '.join(map(str, self.dims))})"
                )
        for sym, size in zip(self.dims, shape):
            if isinstance(sym, int):
                if size != sym:
                    raise ContractViolationError(
                        f"{where}: axis of size {size} where {sym} required"
                    )
            else:
                bound = env.setdefault(sym, int(size))
                if bound != size:
                    raise ContractViolationError(
                        f"{where}: dim {sym!r} = {size} conflicts with "
                        f"{sym!r} = {bound} bound earlier in this call"
                    )
        if (
            self.check_finite
            and arr.dtype.kind == "f"
            and arr.size
            and not bool(np.all(np.isfinite(arr)))
        ):
            # Name the offending positions, mirroring the library's own
            # eager validation (`repro._util.require_finite_rows`), so
            # the documented "names the position" error contract holds
            # whether the sanitizer or the inner check fires first.
            bad = np.argwhere(~np.isfinite(arr))
            first = bad[0]
            pos = ", ".join(str(int(i)) for i in first)
            extra = f" (+{len(bad) - 1} more)" if len(bad) > 1 else ""
            raise ContractViolationError(
                f"{where}: array must be finite; [{pos}] is "
                f"{arr[tuple(first)]!r}{extra}"
            )


def _parse(text: str, *, need_name: bool) -> ArraySpec:
    match = _SPEC_RE.match(text)
    if match is None:
        raise ContractSpecError(f"unparsable contract spec {text!r}")
    name = match.group("name")
    if need_name and name is None:
        raise ContractSpecError(f"contract spec {text!r} is missing 'name:'")
    if not need_name and name is not None:
        raise ContractSpecError(f"returns spec {text!r} must not carry a name")
    dims_text = match.group("dims").strip()
    dims: list[str | int] = []
    if dims_text:
        for part in dims_text.split(","):
            part = part.strip()
            if not part:
                continue  # trailing comma, e.g. "(n,)"
            dims.append(int(part) if part.lstrip("-").isdigit() else part)
            if isinstance(dims[-1], str) and not dims[-1].isidentifier():
                raise ContractSpecError(
                    f"bad dimension {part!r} in contract spec {text!r}"
                )
    dtype_name = match.group("dtype")
    if dtype_name not in _DTYPES:
        raise ContractSpecError(
            f"unknown dtype {dtype_name!r} in contract spec {text!r} "
            f"(allowed: {sorted(_DTYPES)})"
        )
    flags = set(match.group("flags").split())
    unknown = flags - _FLAGS
    if unknown:
        raise ContractSpecError(
            f"unknown flags {sorted(unknown)} in contract spec {text!r}"
        )
    return ArraySpec(
        name=name or "<return>",
        dims=tuple(dims),
        dtype=_DTYPES[dtype_name],
        contiguous="C" in flags,
        cast="cast" in flags,
        promote="promote" in flags,
        optional=bool(match.group("opt")) or "opt" in flags,
        check_finite="nonfinite" not in flags,
    )


def parse_param_spec(text: str) -> ArraySpec:
    """Parse one named parameter contract string (``"rows: (m, d) float64 C"``)."""
    return _parse(text, need_name=True)


def parse_return_spec(text: str) -> ArraySpec:
    """Parse a return-value contract string (``"(n,) float64"``)."""
    return _parse(text, need_name=False)


@dataclass(frozen=True)
class Contract:
    """A full function contract: parameter specs plus an optional return spec."""

    params: tuple[ArraySpec, ...]
    returns: ArraySpec | None

    @classmethod
    def parse(cls, param_specs: tuple[str, ...], returns: str | None) -> "Contract":
        """Parse decorator arguments, rejecting duplicate parameter specs."""
        params = tuple(parse_param_spec(text) for text in param_specs)
        seen: set[str] = set()
        for spec in params:
            if spec.name in seen:
                raise ContractSpecError(f"duplicate contract for parameter {spec.name!r}")
            seen.add(spec.name)
        return cls(params, parse_return_spec(returns) if returns is not None else None)

    def validate_signature(self, fn: Callable) -> None:
        """Fail fast (at decoration time) when a spec names a missing parameter."""
        parameters = inspect.signature(fn).parameters
        for spec in self.params:
            if spec.name not in parameters:
                raise ContractSpecError(
                    f"@array_contract on {fn.__qualname__} names parameter "
                    f"{spec.name!r} which is not in its signature "
                    f"({', '.join(parameters)})"
                )


def _make_checked(fn: Callable, contract: Contract) -> Callable:
    signature = inspect.signature(fn)

    @functools.wraps(fn)
    def wrapper(*args: Any, **kwargs: Any) -> Any:
        bound = signature.bind(*args, **kwargs)
        bound.apply_defaults()
        env: dict[str, int] = {}
        for spec in contract.params:
            if spec.name in bound.arguments:
                spec.check(
                    bound.arguments[spec.name],
                    env,
                    f"{fn.__qualname__}({spec.name})",
                )
        result = fn(*args, **kwargs)
        if contract.returns is not None:
            contract.returns.check(result, env, f"{fn.__qualname__} -> return")
        return result

    wrapper.__array_contract__ = contract  # type: ignore[attr-defined]
    wrapper.__array_contract_checked__ = True  # type: ignore[attr-defined]
    return wrapper


def array_contract(*param_specs: str, returns: str | None = None) -> Callable:
    """Attach (and, under ``REPRO_SANITIZE=1``, enforce) an array contract.

    Parameters
    ----------
    param_specs:
        One contract string per checked parameter (see the module docstring
        for the mini-grammar).  Parameters not named are not checked.
    returns:
        Optional contract for the return value, without the leading name.

    The parsed :class:`Contract` is always attached as
    ``fn.__array_contract__``; the checking wrapper is only installed when
    the sanitizer is enabled, so the default configuration returns the
    original function object unchanged (zero overhead).
    """
    contract = Contract.parse(param_specs, returns)

    def decorate(fn: Callable) -> Callable:
        contract.validate_signature(fn)
        if not sanitize_enabled():
            fn.__array_contract__ = contract  # type: ignore[attr-defined]
            return fn
        return _make_checked(fn, contract)

    return decorate


def checked(fn: Callable) -> Callable:
    """Force-build the checking wrapper for ``fn`` regardless of environment.

    Intended for tests: lets the enforcement logic be exercised in a
    process where ``REPRO_SANITIZE`` was unset at import time.  ``fn`` must
    have been decorated with :func:`array_contract`.
    """
    contract = getattr(fn, "__array_contract__", None)
    if contract is None:
        raise ContractSpecError(f"{fn!r} carries no __array_contract__")
    if getattr(fn, "__array_contract_checked__", False):
        return fn
    return _make_checked(fn, contract)
