"""Lint driver: file discovery, noqa filtering, reporters, exit codes.

Exposed through the CLI as ``python -m repro lint [paths]``:

* exit code 0 — no findings,
* exit code 1 — at least one finding (or an unparsable file, reported as
  the pseudo-rule ``REP000``),
* exit code 2 — usage error (nonexistent path, unknown rule in
  ``--select``).

Suppression: append ``# repro: noqa`` (all rules) or
``# repro: noqa(REP001)`` / ``# repro: noqa(REP001, REP004)`` to the
offending line.  Suppressions are line-scoped and should carry a rationale
comment — see ``docs/analysis.md``.  A noqa naming an id no rule owns is
itself reported as REP000, so a typo cannot silently mask findings.

``--graph`` additionally builds the whole-program graph
(:mod:`repro.analysis.graph`) for every package the scanned files belong
to and runs the cross-module rules REP010–REP014
(:mod:`repro.analysis.graph_rules`); graph findings honor the same
line-scoped noqa mechanism.  ``--changed`` restricts the per-file scan —
and which graph findings are *reported* — to files touched per
``git diff``/untracked, while the graph itself is still built
whole-program, keeping the pre-commit path fast without losing
cross-module context.

``--format json`` emits machine-readable findings; ``--stats`` emits
per-rule finding counts and wall-time as JSON so benchmark harnesses can
track lint runtime as the codebase grows (``BENCH_*.json`` entries).
"""

from __future__ import annotations

import argparse
import ast
import json
import re
import sys
import time
from dataclasses import dataclass
from pathlib import Path
from typing import Sequence, TextIO

from .graph import build_graph, package_root_for
from .graph_rules import GRAPH_REGISTRY, check_graph, graph_rule_ids
from .rules import REGISTRY, Diagnostic, check_module, rule_ids

__all__ = [
    "LintReport",
    "lint_paths",
    "lint_file",
    "module_name_for",
    "configure_parser",
    "build_parser",
    "run_from_args",
    "main",
]

_NOQA_RE = re.compile(r"#\s*repro:\s*noqa(?:\s*\(\s*([A-Za-z0-9_,\s]*)\s*\))?", re.I)

# Directories never worth descending into.
_SKIP_DIRS = {".git", "__pycache__", ".hypothesis", ".pytest_cache", "build", "dist"}


def _known_rule_ids() -> set[str]:
    """Every id a noqa may legitimately name (file rules, graph rules,
    and the REP000 pseudo-rule)."""
    return {"REP000", *rule_ids(), *graph_rule_ids()}


@dataclass(frozen=True)
class LintReport:
    """Outcome of one lint run."""

    diagnostics: tuple[Diagnostic, ...]
    files_scanned: int
    elapsed_s: float
    suppressed: int
    graph: bool = False

    @property
    def counts(self) -> dict[str, int]:
        """Findings per rule id, including zero entries for silent rules."""
        counts = {rule_id: 0 for rule_id in rule_ids()}
        if self.graph:
            counts.update({rule_id: 0 for rule_id in graph_rule_ids()})
        for diagnostic in self.diagnostics:
            counts[diagnostic.rule] = counts.get(diagnostic.rule, 0) + 1
        return counts

    @property
    def exit_code(self) -> int:
        """``1`` when any finding (or REP000 parse failure) survived, else ``0``."""
        return 1 if self.diagnostics else 0


def module_name_for(path: Path) -> str | None:
    """Dotted module name of ``path`` by walking up ``__init__.py`` parents.

    Returns ``None`` for files outside any package — rule scoping then
    treats them as hot-path (all rules apply), which is what makes the
    linter usable on scratch files and downstream code.
    """
    path = path.resolve()
    parts = [path.stem] if path.name != "__init__.py" else []
    parent = path.parent
    package_found = path.name == "__init__.py"
    while (parent / "__init__.py").exists():
        parts.insert(0, parent.name)
        parent = parent.parent
        package_found = True
    if not package_found or not parts:
        return None
    return ".".join(parts)


def _noqa_rules(line: str) -> set[str] | None:
    """Rules suppressed on ``line``: empty set = none, None = all rules."""
    match = _NOQA_RE.search(line)
    if match is None:
        return set()
    spec = match.group(1)
    if spec is None or not spec.strip():
        return None
    return {rule.strip().upper() for rule in spec.split(",") if rule.strip()}


def lint_file(path: Path, select: set[str] | None = None) -> list[Diagnostic]:
    """Lint one file, applying noqa suppression. Returns remaining findings."""
    findings, _ = _lint_file_counting(path, select)
    return findings


def _lint_file_counting(
    path: Path, select: set[str] | None
) -> tuple[list[Diagnostic], int]:
    source = path.read_text(encoding="utf-8")
    try:
        tree = ast.parse(source, filename=str(path))
    except SyntaxError as exc:
        return (
            [
                Diagnostic(
                    path=str(path),
                    line=exc.lineno or 1,
                    col=(exc.offset or 0) + 1,
                    rule="REP000",
                    message=f"syntax error: {exc.msg}",
                )
            ],
            0,
        )
    raw = check_module(str(path), module_name_for(path), tree, select)
    lines = source.splitlines()
    kept: list[Diagnostic] = []
    suppressed = 0
    for diagnostic in raw:
        line_text = lines[diagnostic.line - 1] if diagnostic.line - 1 < len(lines) else ""
        rules = _noqa_rules(line_text)
        if rules is None or diagnostic.rule in rules:
            suppressed += 1
            continue
        kept.append(diagnostic)
    kept.extend(_unknown_noqa_ids(path, lines))
    return kept, suppressed


def _unknown_noqa_ids(path: Path, lines: list[str]) -> list[Diagnostic]:
    """REP000 findings for noqa comments naming ids no rule owns.

    A mistyped id (``REP0O7`` where ``REP007`` was meant) used to be
    silently ignored — the suppression did nothing *and* nothing said
    so.  These findings are not themselves suppressible, like REP000
    parse failures.
    """
    known = _known_rule_ids()
    findings: list[Diagnostic] = []
    for lineno, line_text in enumerate(lines, start=1):
        match = _NOQA_RE.search(line_text)
        if match is None:
            continue
        spec = match.group(1)
        if spec is None or not spec.strip():
            continue
        for rule_id in sorted(
            {rule.strip().upper() for rule in spec.split(",") if rule.strip()}
        ):
            if rule_id in known:
                continue
            findings.append(
                Diagnostic(
                    path=str(path),
                    line=lineno,
                    col=match.start() + 1,
                    rule="REP000",
                    message=f"unknown rule id '{rule_id}' in noqa suppression "
                    f"— the suppression has no effect",
                )
            )
    return findings


def _discover(paths: Sequence[Path]) -> list[Path]:
    files: list[Path] = []
    for path in paths:
        if path.is_dir():
            files.extend(
                candidate
                for candidate in sorted(path.rglob("*.py"))
                if not any(part in _SKIP_DIRS for part in candidate.parts)
            )
        else:
            files.append(path)
    # De-duplicate while preserving order.
    unique: dict[Path, None] = {}
    for file in files:
        unique.setdefault(file.resolve(), None)
    return list(unique)


def lint_paths(
    paths: Sequence[Path | str],
    select: set[str] | None = None,
    *,
    graph: bool = False,
) -> LintReport:
    """Lint files/directories and return a :class:`LintReport`.

    With ``graph=True``, every package the scanned files belong to is
    additionally parsed whole-program and the cross-module rules
    (REP010–REP014) run over it; graph findings are reported only for
    scanned files and honor line-scoped noqa suppressions.
    """
    start = time.perf_counter()
    resolved = [Path(p) for p in paths]
    diagnostics: list[Diagnostic] = []
    suppressed = 0
    files = _discover(resolved)
    for file in files:
        kept, hidden = _lint_file_counting(file, select)
        diagnostics.extend(kept)
        suppressed += hidden
    if graph:
        kept, hidden = _graph_findings(files, select)
        diagnostics.extend(kept)
        suppressed += hidden
    diagnostics.sort()
    return LintReport(
        diagnostics=tuple(diagnostics),
        files_scanned=len(files),
        elapsed_s=time.perf_counter() - start,
        suppressed=suppressed,
        graph=graph,
    )


def _graph_findings(
    files: Sequence[Path], select: set[str] | None
) -> tuple[list[Diagnostic], int]:
    """Run the graph rules for every package root among ``files``.

    The graph is always built over the *whole* package (cross-module
    rules are meaningless on a file subset); findings are then filtered
    to the scanned files and to lines without a matching noqa.
    """
    roots: dict[Path, None] = {}
    for file in files:
        root = package_root_for(file)
        if root is not None:
            roots.setdefault(root, None)
    scanned = {str(file) for file in files}
    kept: list[Diagnostic] = []
    suppressed = 0
    for root in roots:
        program = build_graph(root)
        lines_by_path = {
            module.path: module.lines for module in program.modules.values()
        }
        for diagnostic in check_graph(program, select):
            if diagnostic.path not in scanned:
                continue
            lines = lines_by_path.get(diagnostic.path, ())
            line_text = (
                lines[diagnostic.line - 1] if diagnostic.line - 1 < len(lines) else ""
            )
            rules = _noqa_rules(line_text)
            if rules is None or diagnostic.rule in rules:
                suppressed += 1
                continue
            kept.append(diagnostic)
    return kept, suppressed


# --------------------------------------------------------------------- #
# Reporters
# --------------------------------------------------------------------- #


def _report_text(report: LintReport, stream: TextIO) -> None:
    for diagnostic in report.diagnostics:
        print(diagnostic.render(), file=stream)
    noun = "finding" if len(report.diagnostics) == 1 else "findings"
    print(
        f"{len(report.diagnostics)} {noun} in {report.files_scanned} files "
        f"({report.suppressed} suppressed, {report.elapsed_s * 1e3:.1f} ms)",
        file=stream,
    )


def _report_json(report: LintReport, stream: TextIO) -> None:
    payload = {
        "version": 1,
        "findings": [
            {
                "path": diagnostic.path,
                "line": diagnostic.line,
                "col": diagnostic.col,
                "rule": diagnostic.rule,
                "message": diagnostic.message,
            }
            for diagnostic in report.diagnostics
        ],
        "counts": report.counts,
        "files_scanned": report.files_scanned,
        "suppressed": report.suppressed,
        "elapsed_s": report.elapsed_s,
    }
    json.dump(payload, stream, indent=2)
    stream.write("\n")


def _report_stats(report: LintReport, stream: TextIO) -> None:
    """Per-rule counts + wall time, shaped for BENCH_*.json consumption."""
    payload = {
        "lint_counts": report.counts,
        "lint_files_scanned": report.files_scanned,
        "lint_suppressed": report.suppressed,
        "lint_wall_time_s": report.elapsed_s,
    }
    json.dump(payload, stream, indent=2)
    stream.write("\n")


# --------------------------------------------------------------------- #
# CLI entry point (wired into repro.cli)
# --------------------------------------------------------------------- #


def configure_parser(parser: argparse.ArgumentParser) -> None:
    """Attach the lint options to ``parser`` (shared with ``repro.cli``)."""
    parser.add_argument("paths", nargs="*", default=["src"], help="files or directories")
    parser.add_argument(
        "--format",
        choices=["text", "json"],
        default="text",
        help="findings output format",
    )
    parser.add_argument(
        "--select",
        default=None,
        help="comma-separated rule ids to run (default: all)",
    )
    parser.add_argument(
        "--stats",
        action="store_true",
        help="emit per-rule finding counts and wall-time as JSON",
    )
    parser.add_argument(
        "--list-rules",
        action="store_true",
        help="print the rule registry and exit",
    )
    parser.add_argument(
        "--graph",
        action="store_true",
        help="also build the whole-program graph and run the cross-module "
        "rules REP010-REP014 (implied when --select names one)",
    )
    parser.add_argument(
        "--changed",
        action="store_true",
        help="scan only files changed per git (diff against HEAD plus "
        "untracked); with --graph the graph is still built whole-program",
    )


def build_parser() -> argparse.ArgumentParser:
    """Standalone ``repro lint`` parser (the main CLI nests the same flags)."""
    parser = argparse.ArgumentParser(
        prog="repro lint",
        description="repo-specific AST linter for the Planar index invariants",
    )
    configure_parser(parser)
    return parser


def _git_changed_files(scopes: Sequence[Path]) -> list[Path] | None:
    """Python files changed vs HEAD (or untracked) under ``scopes``.

    Returns ``None`` when git is unavailable or the working directory is
    not a repository — the caller treats that as a usage error.
    """
    import subprocess

    def _run(*argv: str) -> str:
        return subprocess.run(
            argv, capture_output=True, text=True, check=True
        ).stdout

    try:
        top = Path(_run("git", "rev-parse", "--show-toplevel").strip())
        changed = _run("git", "diff", "--name-only", "HEAD", "--")
        untracked = _run("git", "ls-files", "--others", "--exclude-standard")
    except (OSError, subprocess.CalledProcessError):
        return None
    roots = [scope.resolve() for scope in scopes]
    files: list[Path] = []
    for name in sorted(set(changed.splitlines()) | set(untracked.splitlines())):
        if not name.endswith(".py"):
            continue
        path = (top / name).resolve()
        if not path.is_file():
            continue
        if any(path == root or root in path.parents for root in roots):
            files.append(path)
    return files


def run_from_args(args: argparse.Namespace, stream: TextIO | None = None) -> int:
    """Execute a lint invocation from a parsed namespace; returns exit code."""
    stream = stream or sys.stdout
    if args.list_rules:
        for rule_id in rule_ids():
            rule = REGISTRY[rule_id]
            print(f"{rule.id}  {rule.name:<28} {rule.summary}", file=stream)
        for rule_id in graph_rule_ids():
            graph_rule = GRAPH_REGISTRY[rule_id]
            print(
                f"{graph_rule.id}  {graph_rule.name:<28} [graph] "
                f"{graph_rule.summary}",
                file=stream,
            )
        return 0
    select: set[str] | None = None
    if args.select:
        select = {rule.strip().upper() for rule in args.select.split(",") if rule.strip()}
        unknown = select - _known_rule_ids()
        if unknown:
            print(f"unknown rule ids: {sorted(unknown)}", file=sys.stderr)
            return 2
    graph = getattr(args, "graph", False) or bool(
        select and select & set(graph_rule_ids())
    )
    paths = [Path(p) for p in args.paths]
    missing = [str(p) for p in paths if not p.exists()]
    if missing:
        print(f"no such path: {', '.join(missing)}", file=sys.stderr)
        return 2
    if getattr(args, "changed", False):
        changed = _git_changed_files(paths)
        if changed is None:
            print("--changed requires a git checkout", file=sys.stderr)
            return 2
        paths = changed
    report = lint_paths(paths, select, graph=graph)
    if args.stats:
        _report_stats(report, stream)
    elif args.format == "json":
        _report_json(report, stream)
    else:
        _report_text(report, stream)
    return report.exit_code


def main(argv: Sequence[str] | None = None, stream: TextIO | None = None) -> int:
    """Standalone entry point (``python -m repro.analysis.lint``);
    returns the process exit code (0 clean / 1 findings / 2 usage error)."""
    try:
        args = build_parser().parse_args(argv)
    except SystemExit as exc:  # argparse uses 2 for usage errors already
        return int(exc.code or 0)
    return run_from_args(args, stream)


if __name__ == "__main__":  # pragma: no cover - exercised via the CLI tests
    sys.exit(main())
