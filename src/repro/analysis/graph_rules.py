"""Cross-module lint rules (REP010–REP014) over the program graph.

These rules consume the whole-program view built by
:mod:`repro.analysis.graph` and guard the properties the per-file rules
(REP001–REP009) cannot see: package layering, lock discipline across a
class's methods, fork-safety of code that runs on executor threads,
resource lifecycles, and the environment-variable registry.  They run
through ``python -m repro lint --graph`` and are suppressed line-by-line
with the same ``# repro: noqa(REP010)``-style mechanism as the file rules —
see ``docs/analysis.md`` for the catalogue and suppression policy.

The **ARCHITECTURE** table below is the enforced layering contract; it is
mirrored verbatim into ``docs/architecture.md`` (a doc test keeps the two
in sync through the graph-clean gate).  Keys are second-level packages of
``repro`` (``""`` is the top-level ``repro/__init__``); values are the
packages each one may import at module level.  Function-scoped (lazy)
imports are exempt — they are the sanctioned mechanism for the CLI and
for breaking potential cycles — and the two deliberate narrow interfaces
(``core``/``parallel`` → ``tuning.recorder`` for workload capture) are
listed in :data:`NARROW_INTERFACES` module-by-module rather than opening
the whole ``tuning`` package to the hot path.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass
from typing import Callable, Dict, Iterable, Iterator, List, Optional, Set, Tuple

from .graph import (
    AttrWrite,
    CallRef,
    ClassInfo,
    FunctionInfo,
    ImportEdge,
    ModuleInfo,
    ProgramGraph,
)
from .rules import Diagnostic

__all__ = [
    "ARCHITECTURE",
    "NARROW_INTERFACES",
    "GRAPH_REGISTRY",
    "GraphRule",
    "check_graph",
    "graph_rule_ids",
]


#: Allowed module-level import targets per second-level package of the
#: ``repro`` tree.  ``""`` is the top-level package module itself
#: (``repro/__init__.py``); same-package imports are always allowed.
ARCHITECTURE: Dict[str, frozenset] = {
    "": frozenset({"core", "exceptions", "parallel", "reliability", "scan", "tuning"}),
    "__main__": frozenset({"cli"}),
    "_util": frozenset({"exceptions"}),
    "analysis": frozenset({"exceptions"}),
    "bench": frozenset(
        {"_util", "core", "datasets", "moving", "obs", "parallel", "scan"}
    ),
    "cli": frozenset(),
    "core": frozenset(
        {"_util", "analysis", "exceptions", "geometry", "obs", "reliability"}
    ),
    "datasets": frozenset({"_util", "core"}),
    "env": frozenset(),
    "exceptions": frozenset(),
    "extensions": frozenset({"_util", "core", "exceptions"}),
    "geometry": frozenset({"_util", "analysis", "exceptions"}),
    "halfspace": frozenset({"_util", "core", "extensions", "geometry"}),
    "learning": frozenset({"_util", "core", "exceptions", "extensions", "scan"}),
    "moving": frozenset({"_util", "core", "exceptions"}),
    "obs": frozenset(),
    "parallel": frozenset(
        {"_util", "core", "exceptions", "geometry", "obs", "reliability"}
    ),
    "reliability": frozenset({"exceptions"}),
    "scan": frozenset({"_util", "analysis", "core", "exceptions", "obs"}),
    "serve": frozenset({"exceptions", "obs", "parallel", "reliability"}),
    "sqlfunc": frozenset({"_util", "core", "exceptions"}),
    "tuning": frozenset({"core", "exceptions", "obs", "reliability"}),
}

#: Sanctioned single-module exceptions to the package allow-lists:
#: ``(importing package, exact target module)``.  The hot path may feed
#: the workload recorder without the whole ``tuning`` package becoming a
#: dependency of ``core``/``parallel``.
NARROW_INTERFACES: Set[Tuple[str, str]] = {
    ("core", "repro.tuning.recorder"),
    ("parallel", "repro.tuning.recorder"),
}


@dataclass(frozen=True)
class GraphRule:
    """A registered whole-program rule."""

    id: str
    name: str
    summary: str
    check: Callable[[ProgramGraph], Iterable[Diagnostic]]


def _package_of(graph: ProgramGraph, module_name: str) -> str:
    """Second-level package of ``module_name`` (``""`` for the bare root)."""
    if module_name == graph.package:
        return ""
    rest = module_name[len(graph.package) + 1 :]
    return rest.split(".", 1)[0]


def _diag(
    graph: ProgramGraph, module_name: str, line: int, col: int, rule: str, message: str
) -> Diagnostic:
    module = graph.modules.get(module_name)
    path = module.path if module is not None else module_name
    return Diagnostic(path=path, line=line, col=col, rule=rule, message=message)


# --------------------------------------------------------------------- #
# REP010 — layering contract
# --------------------------------------------------------------------- #


def _find_cycles(adjacency: Dict[str, Set[str]]) -> List[List[str]]:
    """Cycles among modules (each reported once, as a closed path)."""
    WHITE, GRAY, BLACK = 0, 1, 2
    color = {node: WHITE for node in adjacency}
    path: List[str] = []
    cycles: List[List[str]] = []
    seen: Set[frozenset] = set()

    def visit(node: str) -> None:
        color[node] = GRAY
        path.append(node)
        for succ in sorted(adjacency.get(node, ())):
            if succ not in color:
                continue
            if color[succ] == GRAY:
                start = path.index(succ)
                cycle = path[start:] + [succ]
                key = frozenset(cycle)
                if key not in seen:
                    seen.add(key)
                    cycles.append(cycle)
            elif color[succ] == WHITE:
                visit(succ)
        path.pop()
        color[node] = BLACK

    for node in sorted(adjacency):
        if color[node] == WHITE:
            visit(node)
    return cycles


def _check_layering(graph: ProgramGraph) -> Iterator[Diagnostic]:
    seen_edges: Set[Tuple[str, str, int]] = set()
    adjacency: Dict[str, Set[str]] = {name: set() for name in graph.modules}
    edge_index: Dict[Tuple[str, str], ImportEdge] = {}
    for edge in graph.module_edges():
        if edge.target in graph.modules:
            adjacency[edge.src].add(edge.target)
            edge_index.setdefault((edge.src, edge.target), edge)
        key = (edge.src, edge.target, edge.line)
        if key in seen_edges:
            continue
        seen_edges.add(key)
        src_pkg = _package_of(graph, edge.src)
        tgt_pkg = _package_of(graph, edge.target)
        if src_pkg == tgt_pkg:
            continue
        allowed = ARCHITECTURE.get(src_pkg)
        if allowed is None:
            yield _diag(
                graph,
                edge.src,
                edge.line,
                edge.col,
                "REP010",
                f"package '{src_pkg}' is not declared in the ARCHITECTURE "
                f"table (module-level edge {edge.src} -> {edge.target})",
            )
            continue
        if tgt_pkg in allowed or (src_pkg, edge.target) in NARROW_INTERFACES:
            continue
        yield _diag(
            graph,
            edge.src,
            edge.line,
            edge.col,
            "REP010",
            f"layering violation: {edge.src} (package '{src_pkg or 'repro'}') "
            f"imports {edge.target} (package '{tgt_pkg}') at module level; "
            f"ARCHITECTURE allows only "
            f"{{{', '.join(sorted(allowed)) or 'nothing'}}} — use a "
            f"function-scoped import or change the contract",
        )
    for cycle in _find_cycles(adjacency):
        first_edge = edge_index.get((cycle[0], cycle[1]))
        line = first_edge.line if first_edge is not None else 1
        col = first_edge.col if first_edge is not None else 1
        yield _diag(
            graph,
            cycle[0],
            line,
            col,
            "REP010",
            f"import cycle at module level: {' -> '.join(cycle)}",
        )


# --------------------------------------------------------------------- #
# REP011 — lock discipline
# --------------------------------------------------------------------- #


def _check_lock_discipline(graph: ProgramGraph) -> Iterator[Diagnostic]:
    reachable = graph.reachable_from_submissions()
    for cls in graph.classes():
        if not cls.lock_attrs:
            continue
        by_attr: Dict[str, List[AttrWrite]] = {}
        for write in cls.attr_writes:
            if write.attr in cls.lock_attrs or write.in_init:
                continue
            by_attr.setdefault(write.attr, []).append(write)
        for attr, writes in sorted(by_attr.items()):
            guarded = [w for w in writes if w.guard_attrs & cls.lock_attrs]
            unguarded = [w for w in writes if not (w.guard_attrs & cls.lock_attrs)]
            if not unguarded:
                continue
            lock = sorted(cls.lock_attrs)[0]
            for write in unguarded:
                if guarded:
                    message = (
                        f"attribute 'self.{attr}' of {cls.qualname} is written "
                        f"both under 'with self.{lock}' and, here in "
                        f"{write.method}(), without it — every post-__init__ "
                        f"mutation must hold the lock"
                    )
                elif f"{cls.qualname}.{write.method}" in reachable:
                    site = reachable[f"{cls.qualname}.{write.method}"]
                    message = (
                        f"attribute 'self.{attr}' of lock-owning class "
                        f"{cls.qualname} is written in {write.method}() without "
                        f"'with self.{lock}', and {write.method}() runs on "
                        f"executor threads (submitted at {site.module}:{site.line})"
                    )
                else:
                    continue
                yield _diag(
                    graph, cls.module, write.line, write.col, "REP011", message
                )


# --------------------------------------------------------------------- #
# REP012 — fork-unsafe global state on executor paths
# --------------------------------------------------------------------- #


def _check_fork_safety(graph: ProgramGraph) -> Iterator[Diagnostic]:
    reachable = graph.reachable_from_submissions()
    seen: Set[Tuple[str, str, str]] = set()
    for func in sorted(graph.functions(), key=lambda f: f.qualname):
        site = reachable.get(func.qualname)
        if site is None:
            continue
        for use in func.global_uses:
            key = (func.qualname, use.owner, use.name)
            if key in seen:
                continue
            seen.add(key)
            verb = "writes" if use.is_write else "reads"
            yield _diag(
                graph,
                func.module,
                use.line,
                use.col,
                "REP012",
                f"'{func.qualname}' is reachable from the executor submission "
                f"at {site.module}:{site.line} and {verb} module-global "
                f"mutable state '{use.owner}.{use.name}' — per-process copies "
                f"would diverge under a ProcessPoolExecutor backend",
            )


# --------------------------------------------------------------------- #
# REP013 — resource lifecycle
# --------------------------------------------------------------------- #

_EXECUTOR_NAMES = {"ThreadPoolExecutor", "ProcessPoolExecutor"}
_CLOSE_METHODS = {"close", "shutdown"}


def _ref_of(func_expr: ast.expr, module: ModuleInfo) -> Optional[CallRef]:
    if isinstance(func_expr, ast.Name):
        return CallRef(kind="name", name=func_expr.id)
    if isinstance(func_expr, ast.Attribute) and isinstance(func_expr.value, ast.Name):
        owner = func_expr.value.id
        if owner == "self":
            return CallRef(kind="self", name=func_expr.attr)
        target = module.module_aliases.get(owner)
        if target is not None:
            return CallRef(kind="mod", name=func_expr.attr, module=target)
    return None


def _direct_resource_kind(
    call: ast.Call, module: ModuleInfo, graph: ProgramGraph, closeable: Set[str]
) -> Optional[str]:
    """Resource kind created by ``call`` itself (no factory indirection)."""
    func = call.func
    if isinstance(func, ast.Name):
        if func.id == "open":
            return "file handle"
        if func.id in module.executor_names:
            return "executor"
    if isinstance(func, ast.Attribute) and func.attr in _EXECUTOR_NAMES:
        return "executor"
    ref = _ref_of(func, module)
    if ref is not None:
        cls = graph.resolve_class(module, ref)
        if cls is not None and cls.qualname in closeable:
            return f"{cls.name} instance"
    return None


def _resource_factories(graph: ProgramGraph, closeable: Set[str]) -> Dict[str, str]:
    """Functions that directly return a resource: ``{qualname: kind}``."""
    factories: Dict[str, str] = {}
    for func in graph.functions():
        module = graph.modules[func.module]
        bound: Dict[str, str] = {}
        for node in ast.walk(func.node):
            if isinstance(node, ast.Assign) and isinstance(node.value, ast.Call):
                kind = _direct_resource_kind(node.value, module, graph, closeable)
                if kind is not None:
                    for target in node.targets:
                        if isinstance(target, ast.Name):
                            bound[target.id] = kind
        for node in ast.walk(func.node):
            if not isinstance(node, ast.Return) or node.value is None:
                continue
            value = node.value
            if isinstance(value, ast.Call):
                kind = _direct_resource_kind(value, module, graph, closeable)
                if kind is not None:
                    factories[func.qualname] = kind
                    break
            elif isinstance(value, ast.Name) and value.id in bound:
                factories[func.qualname] = bound[value.id]
                break
    return factories


def _resource_kind(
    call: ast.Call,
    module: ModuleInfo,
    graph: ProgramGraph,
    closeable: Set[str],
    factories: Dict[str, str],
) -> Optional[str]:
    kind = _direct_resource_kind(call, module, graph, closeable)
    if kind is not None:
        return kind
    ref = _ref_of(call.func, module)
    if ref is not None:
        target = graph.resolve_callable(module, ref)
        if target is not None and target.qualname in factories:
            return factories[target.qualname]
    return None


def _parent_map(root: ast.AST) -> Dict[ast.AST, ast.AST]:
    parents: Dict[ast.AST, ast.AST] = {}
    for parent in ast.walk(root):
        for child in ast.iter_child_nodes(parent):
            parents[child] = parent
    return parents


def _finally_nodes(root: ast.AST) -> Set[ast.AST]:
    nodes: Set[ast.AST] = set()
    for node in ast.walk(root):
        if isinstance(node, ast.Try):
            for stmt in node.finalbody:
                nodes.update(ast.walk(stmt))
    return nodes


def _name_in(needle: str, node: ast.AST) -> bool:
    return any(
        isinstance(sub, ast.Name) and sub.id == needle for sub in ast.walk(node)
    )


def _is_bare_name(needle: str, node: ast.AST) -> bool:
    """``node`` is exactly ``Name(needle)``, or a tuple/list/dict whose
    direct element (or value) is — the only shapes treated as handing the
    resource itself onward.  Nested reads (``len(x)``, ``x.attr`` inside
    an f-string or comprehension) are not ownership transfer."""
    candidates: List[ast.expr] = [node]  # type: ignore[list-item]
    if isinstance(node, (ast.Tuple, ast.List)):
        candidates = list(node.elts)
    elif isinstance(node, ast.Dict):
        candidates = [value for value in node.values if value is not None]
    return any(
        isinstance(candidate, ast.Name) and candidate.id == needle
        for candidate in candidates
    )


#: Builtins that read a value without assuming responsibility for it.
_NON_OWNING_CALLS = frozenset(
    {
        "all", "any", "bool", "dict", "enumerate", "filter", "format",
        "frozenset", "getattr", "hasattr", "hash", "id", "isinstance",
        "issubclass", "iter", "len", "list", "map", "max", "min", "next",
        "print", "repr", "reversed", "set", "sorted", "str", "sum",
        "tuple", "type", "vars", "zip",
    }
)


def _local_name_disposition(name: str, func: FunctionInfo, kind: str) -> Optional[str]:
    """Violation message for resource bound to local ``name``, or None."""
    in_finally = _finally_nodes(func.node)
    closed = False
    closed_in_finally = False
    for node in ast.walk(func.node):
        if isinstance(node, (ast.With, ast.AsyncWith)):
            for item in node.items:
                if _name_in(name, item.context_expr):
                    return None  # with-managed (directly or via closing(...))
        elif isinstance(node, ast.Return) and node.value is not None:
            if _is_bare_name(name, node.value):
                return None  # ownership escapes to the caller
        elif isinstance(node, ast.Call):
            call_func = node.func
            if (
                isinstance(call_func, ast.Attribute)
                and call_func.attr in _CLOSE_METHODS
                and _name_in(name, call_func.value)
            ):
                closed = True
                if node in in_finally:
                    closed_in_finally = True
            elif isinstance(call_func, ast.Name) and call_func.id in _NON_OWNING_CALLS:
                continue
            elif any(_is_bare_name(name, arg) for arg in node.args) or any(
                _is_bare_name(name, kw.value) for kw in node.keywords
            ):
                return None  # handed to another owner — escapes
        elif isinstance(node, (ast.Assign, ast.AnnAssign)):
            value = node.value
            if value is not None and _is_bare_name(name, value):
                return None  # re-bound/stored elsewhere — ownership escapes
    if closed_in_finally:
        return None
    if closed:
        return (
            f"{kind} '{name}' is closed only on the straight-line path — "
            f"move the close()/shutdown() into a finally block or use 'with'"
        )
    return f"{kind} '{name}' is never closed or shut down on any path"


def _creation_disposition(
    call: ast.Call,
    kind: str,
    func: FunctionInfo,
    graph: ProgramGraph,
    parents: Dict[ast.AST, ast.AST],
) -> Optional[str]:
    """Violation message for one resource creation, or None when managed."""
    node: ast.AST = call
    while True:
        parent = parents.get(node)
        if parent is None:
            return None
        if isinstance(parent, ast.withitem):
            return None
        if isinstance(parent, ast.Return):
            return None
        if isinstance(parent, ast.Call) and node is not parent.func:
            return None  # passed straight into another call — escapes
        if isinstance(parent, (ast.Assign, ast.AnnAssign)):
            targets = (
                parent.targets if isinstance(parent, ast.Assign) else [parent.target]
            )
            if len(targets) == 1 and isinstance(targets[0], ast.Name):
                return _local_name_disposition(targets[0].id, func, kind)
            if (
                len(targets) == 1
                and isinstance(targets[0], ast.Attribute)
                and isinstance(targets[0].value, ast.Name)
                and targets[0].value.id == "self"
            ):
                attr = targets[0].attr
                owner = graph.class_by_qualname(func.cls) if func.cls else None
                if owner is not None and attr not in owner.teardown_attrs:
                    return (
                        f"{kind} stored in self.{attr}, but no close()/"
                        f"shutdown()/__exit__/__del__ of {owner.name} "
                        f"releases it"
                    )
                return None
            return None  # tuple/complex targets: assume ownership escapes
        if isinstance(parent, ast.Expr):
            return f"{kind} created and immediately discarded — never closed"
        if isinstance(parent, ast.stmt):
            return None  # other statement contexts: assume managed
        node = parent


def _check_resource_lifecycle(graph: ProgramGraph) -> Iterator[Diagnostic]:
    closeable = graph.closeable_classes()
    factories = _resource_factories(graph, closeable)
    for func in sorted(graph.functions(), key=lambda f: f.qualname):
        module = graph.modules[func.module]
        parents = _parent_map(func.node)
        for node in ast.walk(func.node):
            if not isinstance(node, ast.Call):
                continue
            kind = _resource_kind(node, module, graph, closeable, factories)
            if kind is None:
                continue
            message = _creation_disposition(node, kind, func, graph, parents)
            if message is not None:
                yield _diag(
                    graph,
                    func.module,
                    node.lineno,
                    node.col_offset + 1,
                    "REP013",
                    f"in {func.qualname}(): {message}",
                )


# --------------------------------------------------------------------- #
# REP014 — environment-variable registry
# --------------------------------------------------------------------- #


def _parse_registry(module: ModuleInfo) -> Dict[str, Tuple[int, str]]:
    """``{var name: (line, scope)}`` from ``EnvVar(...)`` calls."""
    registered: Dict[str, Tuple[int, str]] = {}
    for node in ast.walk(module.tree):
        if not (
            isinstance(node, ast.Call)
            and isinstance(node.func, ast.Name)
            and node.func.id == "EnvVar"
        ):
            continue
        name: Optional[str] = None
        scope = "runtime"
        if (
            node.args
            and isinstance(node.args[0], ast.Constant)
            and isinstance(node.args[0].value, str)
        ):
            name = node.args[0].value
        for keyword in node.keywords:
            if not isinstance(keyword.value, ast.Constant):
                continue
            if keyword.arg == "name" and isinstance(keyword.value.value, str):
                name = keyword.value.value
            elif keyword.arg == "scope" and isinstance(keyword.value.value, str):
                scope = keyword.value.value
        if name is not None:
            registered[name] = (node.lineno, scope)
    return registered


def _check_env_registry(graph: ProgramGraph) -> Iterator[Diagnostic]:
    registry_name = f"{graph.package}.env"
    registry = graph.modules.get(registry_name)
    registered = _parse_registry(registry) if registry is not None else {}
    prefix = f"{graph.package.upper()}_"
    reads: Dict[str, List[Tuple[str, int, int]]] = {}
    for module in graph.modules.values():
        for read in module.env_reads:
            if read.name.startswith(prefix):
                reads.setdefault(read.name, []).append(
                    (module.name, read.line, read.col)
                )
    for name in sorted(reads):
        if name in registered:
            continue
        hint = (
            f"declare it in {registry_name} (ENV_VARS) and in the "
            f"EXPERIMENTS.md env matrix"
            if registry is not None
            else f"create the {registry_name} registry module and declare it"
        )
        for module_name, line, col in reads[name]:
            yield _diag(
                graph,
                module_name,
                line,
                col,
                "REP014",
                f"environment variable '{name}' is read here but not "
                f"registered — {hint}",
            )
    for name, (line, scope) in sorted(registered.items()):
        if scope == "runtime" and name not in reads:
            yield _diag(
                graph,
                registry_name,
                line,
                1,
                "REP014",
                f"'{name}' is declared in {registry_name} but never read "
                f"anywhere in the package — dead flag, or its scope= is wrong",
            )


# --------------------------------------------------------------------- #
# Registry
# --------------------------------------------------------------------- #


GRAPH_REGISTRY: Dict[str, GraphRule] = {
    rule.id: rule
    for rule in (
        GraphRule(
            id="REP010",
            name="layering-contract",
            summary="module-level imports must follow the ARCHITECTURE "
            "table; no import cycles",
            check=_check_layering,
        ),
        GraphRule(
            id="REP011",
            name="lock-discipline",
            summary="attributes of lock-owning classes must be mutated "
            "under the lock on every post-__init__ path",
            check=_check_lock_discipline,
        ),
        GraphRule(
            id="REP012",
            name="fork-safety",
            summary="code reachable from executor submissions must not "
            "touch module-global mutable state",
            check=_check_fork_safety,
        ),
        GraphRule(
            id="REP013",
            name="resource-lifecycle",
            summary="executors/file handles/closeable objects must be "
            "released on all paths (with / finally / owner teardown)",
            check=_check_resource_lifecycle,
        ),
        GraphRule(
            id="REP014",
            name="env-registry",
            summary="every REPRO_* environment read must be declared in "
            "the repro.env registry (and the EXPERIMENTS.md matrix)",
            check=_check_env_registry,
        ),
    )
}


def graph_rule_ids() -> List[str]:
    """Sorted ids of the registered whole-program rules."""
    return sorted(GRAPH_REGISTRY)


def check_graph(
    graph: ProgramGraph, select: Optional[Set[str]] = None
) -> List[Diagnostic]:
    """Run (selected) graph rules over ``graph``; returns sorted findings."""
    diagnostics: List[Diagnostic] = []
    for rule_id in graph_rule_ids():
        if select is not None and rule_id not in select:
            continue
        diagnostics.extend(GRAPH_REGISTRY[rule_id].check(graph))
    diagnostics.sort()
    return diagnostics
