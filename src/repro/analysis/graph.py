"""Whole-program graph over a ``repro``-style package.

Where :mod:`repro.analysis.rules` checks one file at a time, this module
parses an entire package once and exposes the cross-module structure the
graph rules (REP010–REP014, :mod:`repro.analysis.graph_rules`) reason
about:

* the **module import graph** — every ``import``/``from … import`` edge,
  resolved to a dotted module inside the package, tagged with its source
  location and whether it is *lazy* (function-scoped, and therefore exempt
  from layering and cycle checks);
* the **class attribute index** — which ``self.X`` attributes each class
  writes, where, whether the write is lexically inside a
  ``with self._lock:``-style guard, and which attributes *are* locks
  (``self._lock = threading.Lock()``);
* the **call graph seeds** — every ``<executor>.submit(fn, …)`` site with
  ``fn`` resolved when it is a plain name, a ``self.method``, or a
  ``module_alias.function``, plus per-function call references so
  reachability from submission sites can be computed;
* **module-global mutable state** — names rebound through a ``global``
  statement anywhere in their module (the repo's arming-guard idiom:
  ``obs.runtime.ENABLED``, ``reliability.faults.ARMED``, …), and every
  read/write of them, including cross-module ``alias.NAME`` accesses;
* **environment reads** — ``os.environ[...]``/``os.environ.get``/
  ``os.getenv`` calls whose key is a ``REPRO_*`` literal or a module-level
  string constant.

The analysis is deliberately heuristic and name-based: no type inference,
no dataflow across assignments.  Calls through local variables
(``plan.check(...)``) and callables passed as parameters are not resolved;
the graph rules document this as an accepted under-approximation.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterable, Iterator, Optional, Tuple

__all__ = [
    "AttrWrite",
    "CallRef",
    "ClassInfo",
    "EnvRead",
    "FunctionInfo",
    "GlobalUse",
    "ImportEdge",
    "ModuleInfo",
    "ProgramGraph",
    "SubmissionSite",
    "build_graph",
    "package_root_for",
]

# Directories never worth descending into (mirrors the lint driver).
_SKIP_DIRS = {".git", "__pycache__", ".hypothesis", ".pytest_cache", "build", "dist"}

# Method names treated as in-place mutations of ``self.X`` collections.
_MUTATOR_METHODS = {
    "append",
    "appendleft",
    "add",
    "clear",
    "discard",
    "extend",
    "insert",
    "pop",
    "popleft",
    "popitem",
    "remove",
    "setdefault",
    "sort",
    "reverse",
    "update",
}

_EXECUTOR_NAMES = {"ThreadPoolExecutor", "ProcessPoolExecutor"}


@dataclass(frozen=True)
class ImportEdge:
    """One import of an in-package module."""

    src: str  #: dotted name of the importing module
    target: str  #: resolved dotted name of the imported module
    line: int
    col: int
    lazy: bool  #: function-scoped import (exempt from layering/cycles)


@dataclass(frozen=True)
class EnvRead:
    """One ``os.environ``/``getenv`` read of an environment variable."""

    module: str
    name: str
    line: int
    col: int


@dataclass(frozen=True)
class GlobalUse:
    """One read/write of a module-global mutable name inside a function."""

    name: str  #: the global's name
    owner: str  #: dotted module that owns (``global``-declares) the name
    line: int
    col: int
    is_write: bool


@dataclass(frozen=True)
class CallRef:
    """An unresolved call reference recorded inside a function body.

    ``kind`` is ``"name"`` (``f(...)``), ``"self"`` (``self.m(...)``) or
    ``"mod"`` (``alias.f(...)`` with ``alias`` bound to an in-package
    module, already resolved to ``module``).
    """

    kind: str
    name: str
    module: Optional[str] = None


@dataclass(frozen=True)
class AttrWrite:
    """One mutation of ``self.<attr>`` inside a class method."""

    attr: str
    method: str  #: name of the enclosing method
    line: int
    col: int
    guard_attrs: frozenset  #: ``with self.<X>`` attrs lexically enclosing
    in_init: bool


@dataclass
class FunctionInfo:
    """A module-level function or a method, with its call/global uses."""

    qualname: str  #: ``module.func`` or ``module.Class.func``
    module: str
    name: str
    cls: Optional[str]  #: owning class qualname, or None
    node: ast.AST
    calls: list = field(default_factory=list)  #: list[CallRef]
    global_uses: list = field(default_factory=list)  #: list[GlobalUse]


@dataclass
class ClassInfo:
    """A class definition with its lock-attribute and write index."""

    qualname: str  #: ``module.Class``
    module: str
    name: str
    node: ast.ClassDef
    bases: list = field(default_factory=list)  #: list[CallRef]-style refs
    lock_attrs: set = field(default_factory=set)
    attr_writes: list = field(default_factory=list)  #: list[AttrWrite]
    methods: dict = field(default_factory=dict)  #: name -> FunctionInfo
    teardown_attrs: set = field(default_factory=set)
    #: ``self.X`` attrs referenced inside close/shutdown/__exit__/__del__

    def defines_teardown(self) -> bool:
        """Whether the class itself declares ``close`` or ``shutdown``."""
        return "close" in self.methods or "shutdown" in self.methods


@dataclass(frozen=True)
class SubmissionSite:
    """One ``<executor>.submit(fn, ...)`` call."""

    module: str
    line: int
    col: int
    callee: Optional[CallRef]  #: resolved submitted callable, if any
    in_class: Optional[str]  #: class qualname when inside a method


@dataclass
class ModuleInfo:
    """Everything the graph rules need to know about one module."""

    name: str
    path: str
    is_package: bool
    tree: ast.Module
    lines: Tuple[str, ...]
    import_edges: list = field(default_factory=list)
    module_aliases: dict = field(default_factory=dict)  #: local -> module
    imported_names: dict = field(default_factory=dict)  #: local -> (mod, attr)
    mutable_globals: set = field(default_factory=set)
    constants: dict = field(default_factory=dict)  #: NAME -> str value
    env_reads: list = field(default_factory=list)
    functions: dict = field(default_factory=dict)  #: name -> FunctionInfo
    classes: dict = field(default_factory=dict)  #: name -> ClassInfo
    executor_names: set = field(default_factory=set)
    submissions: list = field(default_factory=list)


def package_root_for(path: Path) -> Optional[Path]:
    """Topmost package directory containing ``path``, or ``None``.

    Walks up from a ``.py`` file (or a package directory) while the parent
    holds an ``__init__.py``; the last such directory is the package root
    the whole-program graph is built from.
    """
    path = path.resolve()
    current = path.parent if path.is_file() else path
    if not (current / "__init__.py").exists():
        return None
    while (current.parent / "__init__.py").exists():
        current = current.parent
    return current


# --------------------------------------------------------------------- #
# Per-module scanning
# --------------------------------------------------------------------- #


class _ModuleScanner(ast.NodeVisitor):
    """Single pass over one module collecting the :class:`ModuleInfo`."""

    def __init__(self, info: ModuleInfo, package: str) -> None:
        self.info = info
        self.package = package
        self._depth = 0  #: function nesting depth (>0 = lazy imports)
        self._cls: Optional[ClassInfo] = None
        self._func: Optional[FunctionInfo] = None
        self._guards: list[str] = []  #: active ``with self.X`` attr names
        self._threading_aliases: set[str] = set()
        self._lock_ctor_names: set[str] = set()  #: from threading import Lock
        self._os_aliases: set[str] = set()
        self._environ_aliases: set[str] = set()
        self._getenv_aliases: set[str] = set()

    # -- imports -------------------------------------------------------- #

    def _in_package(self, dotted: str) -> bool:
        return dotted == self.package or dotted.startswith(self.package + ".")

    def _add_edge(self, target: str, node: ast.AST) -> None:
        if not self._in_package(target) or target == self.info.name:
            return
        self.info.import_edges.append(
            ImportEdge(
                src=self.info.name,
                target=target,
                line=node.lineno,
                col=node.col_offset + 1,
                lazy=self._depth > 0,
            )
        )

    def visit_Import(self, node: ast.Import) -> None:
        for alias in node.names:
            if alias.name == "threading":
                self._threading_aliases.add(alias.asname or "threading")
            elif alias.name == "os":
                self._os_aliases.add(alias.asname or "os")
            if self._in_package(alias.name):
                self._add_edge(alias.name, node)
                self.info.module_aliases[alias.asname or alias.name] = alias.name

    def _resolve_from(self, node: ast.ImportFrom) -> Optional[str]:
        """Dotted module an ``ImportFrom`` resolves to, or ``None``."""
        if node.level == 0:
            return node.module
        anchor = self.info.name if self.info.is_package else self.info.name.rsplit(".", 1)[0]
        parts = anchor.split(".")
        drop = node.level - 1
        if drop >= len(parts):
            return None
        if drop:
            parts = parts[:-drop]
        if node.module:
            parts.append(node.module)
        return ".".join(parts)

    def visit_ImportFrom(self, node: ast.ImportFrom) -> None:
        base = self._resolve_from(node)
        if base is None:
            return
        if base == "threading":
            for alias in node.names:
                if alias.name in ("Lock", "RLock"):
                    self._lock_ctor_names.add(alias.asname or alias.name)
        elif base == "os":
            for alias in node.names:
                if alias.name == "environ":
                    self._environ_aliases.add(alias.asname or alias.name)
                elif alias.name == "getenv":
                    self._getenv_aliases.add(alias.asname or alias.name)
        elif base == "concurrent.futures":
            for alias in node.names:
                if alias.name in _EXECUTOR_NAMES:
                    self.info.executor_names.add(alias.asname or alias.name)
        if not self._in_package(base):
            return
        for alias in node.names:
            candidate = f"{base}.{alias.name}"
            local = alias.asname or alias.name
            if candidate in self._known_modules:
                self._add_edge(candidate, node)
                self.info.module_aliases[local] = candidate
            else:
                self._add_edge(base, node)
                self.info.imported_names[local] = (base, alias.name)

    # -- scopes --------------------------------------------------------- #

    _known_modules: frozenset = frozenset()  # injected by build_graph

    def visit_ClassDef(self, node: ast.ClassDef) -> None:
        if self._cls is not None or self._depth > 0:
            # Nested/local classes: scan bodies in the enclosing context.
            self.generic_visit(node)
            return
        info = ClassInfo(
            qualname=f"{self.info.name}.{node.name}",
            module=self.info.name,
            name=node.name,
            node=node,
        )
        for base in node.bases:
            ref = self._call_ref(base)
            if ref is not None:
                info.bases.append(ref)
        self.info.classes[node.name] = info
        self._cls = info
        self.generic_visit(node)
        self._cls = None

    def _enter_function(self, node) -> None:
        if self._depth == 0:
            qual = (
                f"{self._cls.qualname}.{node.name}"
                if self._cls is not None
                else f"{self.info.name}.{node.name}"
            )
            info = FunctionInfo(
                qualname=qual,
                module=self.info.name,
                name=node.name,
                cls=self._cls.qualname if self._cls is not None else None,
                node=node,
            )
            if self._cls is not None:
                self._cls.methods[node.name] = info
            else:
                self.info.functions[node.name] = info
            self._func = info
        self._depth += 1
        self.generic_visit(node)
        self._depth -= 1
        if self._depth == 0:
            self._func = None

    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        self._enter_function(node)

    def visit_AsyncFunctionDef(self, node: ast.AsyncFunctionDef) -> None:
        self._enter_function(node)

    def visit_Global(self, node: ast.Global) -> None:
        self.info.mutable_globals.update(node.names)

    # -- guards and attribute writes ------------------------------------ #

    def _with_guard_attrs(self, node) -> list[str]:
        attrs = []
        for item in node.items:
            expr = item.context_expr
            if (
                isinstance(expr, ast.Attribute)
                and isinstance(expr.value, ast.Name)
                and expr.value.id == "self"
            ):
                attrs.append(expr.attr)
        return attrs

    def visit_With(self, node: ast.With) -> None:
        self._visit_with(node)

    def visit_AsyncWith(self, node: ast.AsyncWith) -> None:
        self._visit_with(node)

    def _visit_with(self, node) -> None:
        attrs = self._with_guard_attrs(node)
        self._guards.extend(attrs)
        self.generic_visit(node)
        if attrs:
            del self._guards[-len(attrs):]

    def _self_attr(self, node: ast.expr) -> Optional[str]:
        """``X`` when ``node`` is ``self.X`` or ``self.X[...]``."""
        if isinstance(node, ast.Subscript):
            node = node.value
        if (
            isinstance(node, ast.Attribute)
            and isinstance(node.value, ast.Name)
            and node.value.id == "self"
        ):
            return node.attr
        return None

    def _record_write(self, attr: str, node: ast.AST) -> None:
        if self._cls is None or self._func is None or self._func.cls is None:
            return
        self._cls.attr_writes.append(
            AttrWrite(
                attr=attr,
                method=self._func.name,
                line=node.lineno,
                col=node.col_offset + 1,
                guard_attrs=frozenset(self._guards),
                in_init=self._func.name == "__init__",
            )
        )

    def _is_lock_ctor(self, value: ast.expr) -> bool:
        if not isinstance(value, ast.Call):
            return False
        func = value.func
        if isinstance(func, ast.Name):
            return func.id in self._lock_ctor_names
        return (
            isinstance(func, ast.Attribute)
            and func.attr in ("Lock", "RLock")
            and isinstance(func.value, ast.Name)
            and func.value.id in self._threading_aliases
        )

    def _scan_assign_target(self, target: ast.expr, node: ast.AST, value) -> None:
        if isinstance(target, (ast.Tuple, ast.List)):
            for element in target.elts:
                self._scan_assign_target(element, node, None)
            return
        attr = self._self_attr(target)
        if attr is None:
            return
        if (
            value is not None
            and not isinstance(target, ast.Subscript)
            and self._is_lock_ctor(value)
            and self._cls is not None
        ):
            self._cls.lock_attrs.add(attr)
            return
        self._record_write(attr, node)

    def visit_Assign(self, node: ast.Assign) -> None:
        for target in node.targets:
            self._scan_assign_target(target, node, node.value)
        self._scan_module_constant(node)
        self.generic_visit(node)

    def visit_AnnAssign(self, node: ast.AnnAssign) -> None:
        if node.value is not None:
            self._scan_assign_target(node.target, node, node.value)
        self.generic_visit(node)

    def visit_AugAssign(self, node: ast.AugAssign) -> None:
        attr = self._self_attr(node.target)
        if attr is not None:
            self._record_write(attr, node)
        self.generic_visit(node)

    def _scan_module_constant(self, node: ast.Assign) -> None:
        if self._depth > 0 or self._cls is not None:
            return
        if (
            len(node.targets) == 1
            and isinstance(node.targets[0], ast.Name)
            and isinstance(node.value, ast.Constant)
            and isinstance(node.value.value, str)
        ):
            self.info.constants[node.targets[0].id] = node.value.value

    # -- calls, globals, env reads, submissions -------------------------- #

    def _call_ref(self, func: ast.expr) -> Optional[CallRef]:
        if isinstance(func, ast.Name):
            return CallRef(kind="name", name=func.id)
        if isinstance(func, ast.Attribute) and isinstance(func.value, ast.Name):
            owner = func.value.id
            if owner == "self":
                return CallRef(kind="self", name=func.attr)
            target = self.info.module_aliases.get(owner)
            if target is not None:
                return CallRef(kind="mod", name=func.attr, module=target)
        return None

    def _env_key(self, node: ast.expr) -> Optional[str]:
        if isinstance(node, ast.Constant) and isinstance(node.value, str):
            return node.value
        if isinstance(node, ast.Name):
            return self.info.constants.get(node.id)
        return None

    def _is_environ(self, node: ast.expr) -> bool:
        if isinstance(node, ast.Name):
            return node.id in self._environ_aliases
        return (
            isinstance(node, ast.Attribute)
            and node.attr == "environ"
            and isinstance(node.value, ast.Name)
            and node.value.id in self._os_aliases
        )

    def _record_env_read(self, key: Optional[ast.expr], node: ast.AST) -> None:
        if key is None:
            return
        name = self._env_key(key)
        if name is not None:
            self.info.env_reads.append(
                EnvRead(
                    module=self.info.name,
                    name=name,
                    line=node.lineno,
                    col=node.col_offset + 1,
                )
            )

    def visit_Subscript(self, node: ast.Subscript) -> None:
        if self._is_environ(node.value):
            self._record_env_read(node.slice, node)
        self.generic_visit(node)

    def visit_Call(self, node: ast.Call) -> None:
        func = node.func
        # Environment reads.
        if isinstance(func, ast.Attribute):
            if func.attr == "get" and self._is_environ(func.value):
                self._record_env_read(node.args[0] if node.args else None, node)
            elif (
                func.attr == "getenv"
                and isinstance(func.value, ast.Name)
                and func.value.id in self._os_aliases
            ):
                self._record_env_read(node.args[0] if node.args else None, node)
            elif func.attr == "submit":
                callee = self._call_ref(node.args[0]) if node.args else None
                self.info.submissions.append(
                    SubmissionSite(
                        module=self.info.name,
                        line=node.lineno,
                        col=node.col_offset + 1,
                        callee=callee,
                        in_class=self._cls.qualname if self._cls else None,
                    )
                )
            # ``self.X.append(...)``-style in-place mutation.
            if func.attr in _MUTATOR_METHODS:
                attr = self._self_attr(func.value)
                if attr is not None:
                    self._record_write(attr, node)
        elif isinstance(func, ast.Name) and func.id in self._getenv_aliases:
            self._record_env_read(node.args[0] if node.args else None, node)
        if self._func is not None:
            ref = self._call_ref(func)
            if ref is not None:
                self._func.calls.append(ref)
        self.generic_visit(node)

    def visit_Name(self, node: ast.Name) -> None:
        if self._func is not None and node.id in self.info.mutable_globals:
            self._func.global_uses.append(
                GlobalUse(
                    name=node.id,
                    owner=self.info.name,
                    line=node.lineno,
                    col=node.col_offset + 1,
                    is_write=isinstance(node.ctx, (ast.Store, ast.Del)),
                )
            )
        self.generic_visit(node)

    def visit_Attribute(self, node: ast.Attribute) -> None:
        # Cross-module global access: ``alias.NAME`` with NAME a mutable
        # global of the aliased module (resolved in a second pass, since
        # the owning module may not be scanned yet).
        if (
            self._func is not None
            and isinstance(node.value, ast.Name)
            and node.value.id in self.info.module_aliases
        ):
            target = self.info.module_aliases[node.value.id]
            self._func.global_uses.append(
                GlobalUse(
                    name=node.attr,
                    owner=target,
                    line=node.lineno,
                    col=node.col_offset + 1,
                    is_write=isinstance(node.ctx, (ast.Store, ast.Del)),
                )
            )
        self.generic_visit(node)


# --------------------------------------------------------------------- #
# Whole-program assembly
# --------------------------------------------------------------------- #


class ProgramGraph:
    """The parsed package: modules, imports, classes, and call seeds."""

    def __init__(self, root: Path, package: str, modules: dict) -> None:
        self.root = root
        self.package = package
        self.modules: dict[str, ModuleInfo] = modules
        self._reachable: Optional[set] = None
        self._finalize()

    def _finalize(self) -> None:
        """Resolve deferred cross-module facts after every module parsed."""
        for module in self.modules.values():
            for cls in module.classes.values():
                self._collect_teardown_attrs(cls)
            # Keep only cross-module uses that name a real mutable global
            # of the owning module (the scanner over-records attributes).
            for func in self._module_functions(module):
                func.global_uses = [
                    use
                    for use in func.global_uses
                    if use.owner == module.name
                    or use.name in self.modules.get(use.owner, _EMPTY).mutable_globals
                ]

    def _module_functions(self, module: ModuleInfo) -> Iterator[FunctionInfo]:
        yield from module.functions.values()
        for cls in module.classes.values():
            yield from cls.methods.values()

    def _collect_teardown_attrs(self, cls: ClassInfo) -> None:
        for name in ("close", "shutdown", "__exit__", "__del__"):
            method = cls.methods.get(name)
            if method is None:
                continue
            for node in ast.walk(method.node):
                if (
                    isinstance(node, ast.Attribute)
                    and isinstance(node.value, ast.Name)
                    and node.value.id == "self"
                ):
                    cls.teardown_attrs.add(node.attr)

    # -- iteration ------------------------------------------------------ #

    def functions(self) -> Iterator[FunctionInfo]:
        """All module-level functions and methods in the program."""
        for module in self.modules.values():
            yield from self._module_functions(module)

    def classes(self) -> Iterator[ClassInfo]:
        """All top-level classes in the program."""
        for module in self.modules.values():
            yield from module.classes.values()

    def submission_sites(self) -> Iterator[SubmissionSite]:
        """All ``<executor>.submit(...)`` call sites."""
        for module in self.modules.values():
            yield from module.submissions

    def module_edges(self, include_lazy: bool = False) -> Iterator[ImportEdge]:
        """All import edges, module-level only unless ``include_lazy``."""
        for module in self.modules.values():
            for edge in module.import_edges:
                if include_lazy or not edge.lazy:
                    yield edge

    # -- resolution ----------------------------------------------------- #

    def _lookup_in_module(
        self, module_name: str, attr: str, index: str, hops: int = 3
    ) -> object:
        """``attr`` from ``module_name``'s ``index`` ("classes"/"functions"),
        chasing up to ``hops`` levels of ``from x import y`` re-exports
        (package ``__init__`` facades)."""
        for _ in range(hops):
            module = self.modules.get(module_name)
            if module is None:
                return None
            found = getattr(module, index).get(attr)
            if found is not None:
                return found
            imported = module.imported_names.get(attr)
            if imported is None:
                return None
            module_name, attr = imported
        return None

    def resolve_class(self, module: ModuleInfo, ref: CallRef) -> Optional[ClassInfo]:
        """Class a constructor-call reference points at, if in-program."""
        if ref.kind == "name":
            cls = module.classes.get(ref.name)
            if cls is not None:
                return cls
            imported = module.imported_names.get(ref.name)
            if imported is not None:
                return self._lookup_in_module(imported[0], imported[1], "classes")
            return None
        if ref.kind == "mod" and ref.module in self.modules:
            return self._lookup_in_module(ref.module, ref.name, "classes")
        return None

    def _method_in_hierarchy(
        self, cls: ClassInfo, name: str, seen: Optional[set] = None
    ) -> Optional[FunctionInfo]:
        seen = seen or set()
        if cls.qualname in seen:
            return None
        seen.add(cls.qualname)
        method = cls.methods.get(name)
        if method is not None:
            return method
        module = self.modules.get(cls.module)
        if module is None:
            return None
        for base_ref in cls.bases:
            base = self.resolve_class(module, base_ref)
            if base is not None:
                found = self._method_in_hierarchy(base, name, seen)
                if found is not None:
                    return found
        return None

    def class_by_qualname(self, qualname: str) -> Optional[ClassInfo]:
        """Look up a class by its ``module.Class`` qualname."""
        module_name, _, cls_name = qualname.rpartition(".")
        module = self.modules.get(module_name)
        return module.classes.get(cls_name) if module else None

    def resolve_callable(
        self, module: ModuleInfo, ref: Optional[CallRef], cls: Optional[str] = None
    ) -> Optional[FunctionInfo]:
        """The in-program function a :class:`CallRef` points at, if any."""
        if ref is None:
            return None
        if ref.kind == "name":
            func = module.functions.get(ref.name)
            if func is not None:
                return func
            imported = module.imported_names.get(ref.name)
            if imported is not None:
                target = self.modules.get(imported[0])
                if target is not None:
                    return target.functions.get(imported[1])
            return None
        if ref.kind == "mod":
            target = self.modules.get(ref.module or "")
            return target.functions.get(ref.name) if target else None
        if ref.kind == "self" and cls is not None:
            owner = self.class_by_qualname(cls)
            if owner is not None:
                return self._method_in_hierarchy(owner, ref.name)
        return None

    # -- reachability from executor submissions -------------------------- #

    def reachable_from_submissions(self) -> dict:
        """``{function qualname: seed SubmissionSite}`` for every function
        statically reachable from an executor submission, via name-based
        call-graph BFS (calls through variables/parameters not resolved)."""
        if self._reachable is not None:
            return self._reachable
        reachable: dict[str, SubmissionSite] = {}
        queue: list[tuple[FunctionInfo, SubmissionSite]] = []
        for site in self.submission_sites():
            module = self.modules[site.module]
            func = self.resolve_callable(module, site.callee, site.in_class)
            if func is not None and func.qualname not in reachable:
                reachable[func.qualname] = site
                queue.append((func, site))
        while queue:
            func, seed = queue.pop()
            module = self.modules.get(func.module)
            if module is None:
                continue
            for ref in func.calls:
                callee = self.resolve_callable(module, ref, func.cls)
                if callee is not None and callee.qualname not in reachable:
                    reachable[callee.qualname] = seed
                    queue.append((callee, seed))
        self._reachable = reachable
        return reachable

    # -- resource helpers ------------------------------------------------ #

    def closeable_classes(self) -> set:
        """Qualnames of classes that define (or inherit, in-program) a
        ``close``/``shutdown`` method.  ``__exit__`` alone does not count:
        pure context managers (spans, timers) manage no long-lived handle."""
        closeable: set[str] = set()
        for cls in self.classes():
            if self._method_in_hierarchy(cls, "close") is not None:
                closeable.add(cls.qualname)
            elif self._method_in_hierarchy(cls, "shutdown") is not None:
                closeable.add(cls.qualname)
        return closeable


_EMPTY = ModuleInfo(
    name="", path="", is_package=False, tree=ast.Module(body=[], type_ignores=[]),
    lines=(),
)


def _iter_package_files(root: Path) -> Iterable[Path]:
    for candidate in sorted(root.rglob("*.py")):
        if any(part in _SKIP_DIRS for part in candidate.parts):
            continue
        yield candidate


def _module_name(root: Path, package: str, path: Path) -> str:
    relative = path.relative_to(root)
    parts = [package] + list(relative.parts[:-1])
    if relative.name != "__init__.py":
        parts.append(relative.stem)
    return ".".join(parts)


def build_graph(root: Path) -> ProgramGraph:
    """Parse every module under the package directory ``root``.

    ``root`` must be the package directory itself (it contains
    ``__init__.py``); use :func:`package_root_for` to find it from any
    file inside the package.  Unparsable files are skipped — the per-file
    linter already reports them as REP000.
    """
    root = root.resolve()
    package = root.name
    modules: dict[str, ModuleInfo] = {}
    scanners: list[_ModuleScanner] = []
    files = list(_iter_package_files(root))
    known = frozenset(_module_name(root, package, path) for path in files)
    for path in files:
        source = path.read_text(encoding="utf-8")
        try:
            tree = ast.parse(source, filename=str(path))
        except SyntaxError:
            continue
        info = ModuleInfo(
            name=_module_name(root, package, path),
            path=str(path),
            is_package=path.name == "__init__.py",
            tree=tree,
            lines=tuple(source.splitlines()),
        )
        modules[info.name] = info
        scanner = _ModuleScanner(info, package)
        scanner._known_modules = known
        scanners.append(scanner)
    # Two passes: ``global`` declarations and constants must be known
    # module-wide before function bodies record uses of them.
    for scanner in scanners:
        for node in ast.walk(scanner.info.tree):
            if isinstance(node, ast.Global):
                scanner.info.mutable_globals.update(node.names)
    for scanner in scanners:
        scanner.visit(scanner.info.tree)
    return ProgramGraph(root=root, package=package, modules=modules)
