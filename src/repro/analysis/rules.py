"""Repo-specific AST lint rules enforcing the Planar index's invariants.

Each rule guards an invariant the paper's correctness argument (or this
reproduction's performance envelope) depends on but that the type system
cannot express.  Rules are registered in :data:`REGISTRY`; the driver in
:mod:`repro.analysis.lint` runs every applicable rule over each file and
filters ``# repro: noqa(REP001)``-style suppressions.

Rules are deliberately heuristic: they resolve numpy import aliases and do
light local dataflow (names bound from ``np.*`` calls or ``store.get_all()``)
but no cross-module inference.  False positives are expected to be rare and
are silenced inline with a rationale comment — see ``docs/analysis.md``.

Scoping: rules that only matter on the hot path (REP001/REP002/REP006)
exempt ``repro`` modules outside their hot-path packages.  Files that are
*not* part of the ``repro`` package (scratch files, downstream code) get
every rule, so the linter is usable as a standalone checker.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass
from typing import Callable, Iterable

from ..exceptions import ContractSpecError
from .contracts import parse_param_spec, parse_return_spec

__all__ = [
    "Diagnostic",
    "Rule",
    "ModuleContext",
    "REGISTRY",
    "check_module",
    "rule_ids",
]


@dataclass(frozen=True, order=True)
class Diagnostic:
    """One lint finding at a source location."""

    path: str
    line: int
    col: int
    rule: str
    message: str

    def render(self) -> str:
        """Format as the conventional ``path:line:col: RULE message`` line."""
        return f"{self.path}:{self.line}:{self.col}: {self.rule} {self.message}"


@dataclass(frozen=True)
class Rule:
    """A registered lint rule.

    ``applies`` receives the dotted module name (``None`` when the file is
    not inside a package) and decides whether the rule runs at all;
    ``check`` receives the module context and yields diagnostics.
    """

    id: str
    name: str
    summary: str
    applies: Callable[[str | None], bool]
    check: Callable[["ModuleContext"], Iterable[Diagnostic]]


class ModuleContext:
    """Parsed module plus the alias information shared by all rules."""

    def __init__(self, path: str, module_name: str | None, tree: ast.Module) -> None:
        self.path = path
        self.module_name = module_name
        self.tree = tree
        # Names referring to the numpy module / the numpy.random module.
        self.numpy_aliases: set[str] = set()
        self.numpy_random_aliases: set[str] = set()
        for node in ast.walk(tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    if alias.name == "numpy":
                        self.numpy_aliases.add(alias.asname or "numpy")
                    elif alias.name == "numpy.random":
                        if alias.asname:
                            self.numpy_random_aliases.add(alias.asname)
                        else:
                            self.numpy_aliases.add("numpy")
            elif isinstance(node, ast.ImportFrom) and node.module == "numpy":
                for alias in node.names:
                    if alias.name == "random":
                        self.numpy_random_aliases.add(alias.asname or "random")

    # ------------------------------------------------------------------ #

    def is_numpy(self, node: ast.expr) -> bool:
        """True when ``node`` names the numpy module (under any alias)."""
        return isinstance(node, ast.Name) and node.id in self.numpy_aliases

    def is_numpy_random(self, node: ast.expr) -> bool:
        """True when ``node`` names ``numpy.random`` (directly or aliased)."""
        if isinstance(node, ast.Name) and node.id in self.numpy_random_aliases:
            return True
        return (
            isinstance(node, ast.Attribute)
            and node.attr == "random"
            and self.is_numpy(node.value)
        )

    def diag(self, rule_id: str, node: ast.AST, message: str) -> Diagnostic:
        """Build a :class:`Diagnostic` located at ``node`` (1-based column)."""
        return Diagnostic(
            path=self.path,
            line=getattr(node, "lineno", 1),
            col=getattr(node, "col_offset", 0) + 1,
            rule=rule_id,
            message=message,
        )


# --------------------------------------------------------------------- #
# Scoping predicates
# --------------------------------------------------------------------- #


def _package_of(module_name: str | None) -> str | None:
    """Second-level package of a ``repro`` module (``repro.core.x`` -> ``core``)."""
    if module_name is None or not (
        module_name == "repro" or module_name.startswith("repro.")
    ):
        return None
    parts = module_name.split(".")
    return parts[1] if len(parts) > 1 else ""


def _everywhere(module_name: str | None) -> bool:
    return True


def _scope_packages(*packages: str, exempt_modules: tuple[str, ...] = ()) -> Callable:
    """Hot-path scoping: inside ``repro``, only the named packages; outside
    the ``repro`` package every file is treated as hot path."""

    def applies(module_name: str | None) -> bool:
        package = _package_of(module_name)
        if package is None:
            return True  # not a repro module: treat as hot path
        if module_name in exempt_modules:
            return False
        return package in packages

    return applies


# --------------------------------------------------------------------- #
# Helpers shared by the dataflow-ish rules
# --------------------------------------------------------------------- #


def _assigned_names(target: ast.expr) -> list[ast.Name]:
    """Plain names bound by an assignment target (recursing into tuples)."""
    if isinstance(target, ast.Name):
        return [target]
    if isinstance(target, (ast.Tuple, ast.List)):
        names: list[ast.Name] = []
        for element in target.elts:
            names.extend(_assigned_names(element))
        return names
    return []


def _function_scopes(tree: ast.Module) -> list[ast.AST]:
    """Module plus every (async) function definition, as analysis scopes."""
    scopes: list[ast.AST] = [tree]
    for node in ast.walk(tree):
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            scopes.append(node)
    return scopes


def _scope_statements(scope: ast.AST) -> Iterable[ast.AST]:
    """Walk a scope without descending into nested function definitions."""
    stack = list(ast.iter_child_nodes(scope))
    while stack:
        node = stack.pop()
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)):
            continue
        yield node
        stack.extend(ast.iter_child_nodes(node))


# --------------------------------------------------------------------- #
# REP001 — unguarded full-matrix scalar-product scan
# --------------------------------------------------------------------- #

# Variable names that conventionally hold the full feature matrix.
_FULL_MATRIX_NAMES = {"features", "feature_matrix", "all_features", "full_features"}
# Instance attributes that hold the full matrix in this codebase.
_FULL_MATRIX_ATTRS = {"_features", "_data"}
_MATMUL_FUNCS = {"dot", "matmul"}


def _check_rep001(ctx: ModuleContext) -> Iterable[Diagnostic]:
    """Unguarded full-matrix scalar product (``features @ a``) on the hot path.

    The query path must never silently fall back to an O(n d') scan of the
    whole feature matrix: exact scans are only allowed inside
    :class:`~repro.core.feature_store.FeatureStore` (``scan_values``, which
    the cost-based router calls deliberately) and the ``scan.baseline``
    oracle.  Flags ``@`` / ``np.dot`` / ``np.matmul`` / ``X.dot(y)`` where
    an operand is named like the full matrix (``features``, ``self._data``,
    ...) or was bound from ``store.get_all()`` in the same scope.
    Deliberate build-time or guarded scans carry ``# repro: noqa(REP001)``
    with a rationale.
    """
    for scope in _function_scopes(ctx.tree):
        tracked: set[str] = set()
        for node in _scope_statements(scope):
            if isinstance(node, ast.Assign) and isinstance(node.value, ast.Call):
                func = node.value.func
                if isinstance(func, ast.Attribute) and func.attr == "get_all":
                    for target in node.targets:
                        tracked.update(name.id for name in _assigned_names(target))

        def suspicious(node: ast.expr) -> bool:
            if isinstance(node, ast.Name):
                return node.id in _FULL_MATRIX_NAMES or node.id in tracked
            if isinstance(node, ast.Attribute):
                return node.attr in _FULL_MATRIX_ATTRS
            return False

        for node in _scope_statements(scope):
            if (
                isinstance(node, ast.BinOp)
                and isinstance(node.op, ast.MatMult)
                and (suspicious(node.left) or suspicious(node.right))
            ):
                yield ctx.diag(
                    "REP001",
                    node,
                    "full feature-matrix scalar product outside "
                    "FeatureStore/baseline; route through the cost-based "
                    "scan path or suppress with a rationale",
                )
            elif isinstance(node, ast.Call) and isinstance(node.func, ast.Attribute):
                func = node.func
                if (
                    func.attr in _MATMUL_FUNCS
                    and ctx.is_numpy(func.value)
                    and any(suspicious(arg) for arg in node.args[:2])
                ) or (func.attr == "dot" and suspicious(func.value)):
                    yield ctx.diag(
                        "REP001",
                        node,
                        "full feature-matrix np.dot/np.matmul outside "
                        "FeatureStore/baseline",
                    )


# --------------------------------------------------------------------- #
# REP002 — dtype-literal drift on the hot path
# --------------------------------------------------------------------- #

_BAD_DTYPE_ATTRS = {
    "float16", "float32", "half", "single", "longdouble", "float128", "float_",
    "int8", "int16", "int32", "intc", "int_", "short", "byte", "longlong",
    "uint8", "uint16", "uint32", "uint64", "uintc", "uint", "ubyte", "ushort",
    "ulonglong", "complex64", "complex128", "csingle", "cdouble", "complex_",
}
_BAD_DTYPE_STRINGS = _BAD_DTYPE_ATTRS | {
    prefix + code
    for prefix in ("", "<", ">", "=")
    for code in ("f2", "f4", "i1", "i2", "i4", "u1", "u2", "u4", "u8", "c8", "c16")
}
_PLATFORM_DTYPE_NAMES = {"int", "float"}


def _dtype_argument_nodes(call: ast.Call) -> list[ast.expr]:
    """Expressions used in a dtype position of ``call``."""
    nodes = [kw.value for kw in call.keywords if kw.arg == "dtype"]
    func = call.func
    if isinstance(func, ast.Attribute) and func.attr in {"astype", "dtype", "view"}:
        nodes.extend(call.args[:1])
    return nodes


def _check_rep002(ctx: ModuleContext) -> Iterable[Diagnostic]:
    """Numeric dtypes other than ``float64``/``int64`` in hot-path packages.

    The interval thresholds cancel catastrophically (see
    ``PlanarIndex._thresholds``); anything below float64 turns the guard
    band into wrong answers, and 32-bit integer ids overflow silently at
    production scale.  ``bool`` masks are allowed.  Also flags the builtin
    ``int``/``float`` used as a dtype (platform-dependent width).
    Deliberate compact dtypes (e.g. int8 octant sign patterns) carry a
    ``noqa`` with a rationale.
    """
    flagged: set[int] = set()
    for node in ast.walk(ctx.tree):
        if (
            isinstance(node, ast.Attribute)
            and node.attr in _BAD_DTYPE_ATTRS
            and ctx.is_numpy(node.value)
            and id(node) not in flagged
        ):
            flagged.add(id(node))
            yield ctx.diag(
                "REP002",
                node,
                f"numpy dtype np.{node.attr} drifts from the float64/int64 "
                "hot-path invariant",
            )
        elif isinstance(node, ast.Call):
            for arg in _dtype_argument_nodes(node):
                if (
                    isinstance(arg, ast.Constant)
                    and isinstance(arg.value, str)
                    and arg.value in _BAD_DTYPE_STRINGS
                ):
                    yield ctx.diag(
                        "REP002",
                        arg,
                        f"dtype string {arg.value!r} drifts from the "
                        "float64/int64 hot-path invariant",
                    )
                elif isinstance(arg, ast.Name) and arg.id in _PLATFORM_DTYPE_NAMES:
                    yield ctx.diag(
                        "REP002",
                        arg,
                        f"builtin {arg.id!r} as a dtype is platform-dependent; "
                        "use np.float64/np.int64",
                    )


# --------------------------------------------------------------------- #
# REP003 — mutable default arguments
# --------------------------------------------------------------------- #

_MUTABLE_LITERALS = (ast.List, ast.Dict, ast.Set, ast.ListComp, ast.DictComp, ast.SetComp)
_MUTABLE_CALLS = {"list", "dict", "set", "bytearray"}


def _check_rep003(ctx: ModuleContext) -> Iterable[Diagnostic]:
    """Mutable default arguments (shared across calls, a classic aliasing bug)."""
    for node in ast.walk(ctx.tree):
        if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)):
            continue
        defaults = list(node.args.defaults) + [
            default for default in node.args.kw_defaults if default is not None
        ]
        for default in defaults:
            if isinstance(default, _MUTABLE_LITERALS) or (
                isinstance(default, ast.Call)
                and isinstance(default.func, ast.Name)
                and default.func.id in _MUTABLE_CALLS
            ):
                yield ctx.diag(
                    "REP003",
                    default,
                    "mutable default argument is shared across calls; "
                    "default to None and build inside the function",
                )


# --------------------------------------------------------------------- #
# REP004 — missing or inconsistent __all__
# --------------------------------------------------------------------- #


def _module_all(tree: ast.Module) -> tuple[ast.AST | None, list[str] | None]:
    """The ``__all__`` assignment node and its literal names (None if dynamic)."""
    for node in tree.body:
        targets: list[ast.expr] = []
        value: ast.expr | None = None
        if isinstance(node, ast.Assign):
            targets, value = node.targets, node.value
        elif isinstance(node, ast.AnnAssign) and node.value is not None:
            targets, value = [node.target], node.value
        elif isinstance(node, ast.AnnAssign):
            targets, value = [node.target], None
        for target in targets:
            if isinstance(target, ast.Name) and target.id == "__all__":
                if isinstance(value, (ast.List, ast.Tuple)) and all(
                    isinstance(e, ast.Constant) and isinstance(e.value, str)
                    for e in value.elts
                ):
                    return node, [e.value for e in value.elts]
                return node, None  # dynamic or annotated-only: presence counts
    return None, None


def _check_rep004(ctx: ModuleContext) -> Iterable[Diagnostic]:
    """Missing/inconsistent ``__all__``: every module declares its exports,
    every declared name exists, every public top-level def/class is exported.

    Keeping ``__all__`` authoritative is what lets downstream tooling (and
    the contracts subsystem) reason about the public surface; drifting
    export lists were a real seed-repo defect this rule now gates.
    """
    node, names = _module_all(ctx.tree)
    if node is None:
        yield ctx.diag(
            "REP004",
            ctx.tree.body[0] if ctx.tree.body else ctx.tree,
            "module does not declare __all__",
        )
        return
    if names is None:
        return  # dynamic __all__: presence satisfied, consistency unknown
    defined: set[str] = set()
    has_star_import = False
    for stmt in ctx.tree.body:
        if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
            defined.add(stmt.name)
        elif isinstance(stmt, ast.Assign):
            for target in stmt.targets:
                defined.update(name.id for name in _assigned_names(target))
        elif isinstance(stmt, ast.AnnAssign) and isinstance(stmt.target, ast.Name):
            defined.add(stmt.target.id)
        elif isinstance(stmt, ast.Import):
            for alias in stmt.names:
                defined.add(alias.asname or alias.name.split(".")[0])
        elif isinstance(stmt, ast.ImportFrom):
            for alias in stmt.names:
                if alias.name == "*":
                    has_star_import = True
                else:
                    defined.add(alias.asname or alias.name)
        elif isinstance(stmt, (ast.If, ast.Try)):
            # Conditional definitions (TYPE_CHECKING, fallbacks): best effort.
            for sub in ast.walk(stmt):
                if isinstance(sub, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
                    defined.add(sub.name)
                elif isinstance(sub, ast.ImportFrom):
                    defined.update(a.asname or a.name for a in sub.names)
    if not has_star_import:
        for missing in [name for name in names if name not in defined]:
            yield ctx.diag(
                "REP004",
                node,
                f"__all__ exports {missing!r} which is not defined in the module",
            )
    seen = set(names)
    for stmt in ctx.tree.body:
        if (
            isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef))
            and not stmt.name.startswith("_")
            and stmt.name not in seen
        ):
            yield ctx.diag(
                "REP004",
                stmt,
                f"public {'class' if isinstance(stmt, ast.ClassDef) else 'function'} "
                f"{stmt.name!r} is missing from __all__",
            )


# --------------------------------------------------------------------- #
# REP005 — bare / over-broad except
# --------------------------------------------------------------------- #

_BROAD_EXCEPTIONS = {"Exception", "BaseException"}


def _check_rep005(ctx: ModuleContext) -> Iterable[Diagnostic]:
    """Bare or over-broad ``except``: swallowing everything hides the silent
    wrong-answer failures this subsystem exists to prevent."""
    for node in ast.walk(ctx.tree):
        if not isinstance(node, ast.ExceptHandler):
            continue
        if node.type is None:
            yield ctx.diag("REP005", node, "bare except: catches everything")
            continue
        candidates = node.type.elts if isinstance(node.type, ast.Tuple) else [node.type]
        for candidate in candidates:
            name = None
            if isinstance(candidate, ast.Name):
                name = candidate.id
            elif isinstance(candidate, ast.Attribute):
                name = candidate.attr
            if name in _BROAD_EXCEPTIONS:
                yield ctx.diag(
                    "REP005",
                    node,
                    f"over-broad except {name}: catch the specific repro "
                    "exception instead",
                )


# --------------------------------------------------------------------- #
# REP006 — Python-level loops over numpy arrays
# --------------------------------------------------------------------- #

_ITER_WRAPPERS = {"zip", "enumerate", "reversed", "sorted"}


def _is_ndarray_annotation(annotation: ast.expr | None, ctx: ModuleContext) -> bool:
    if annotation is None:
        return False
    if isinstance(annotation, ast.Attribute) and annotation.attr == "ndarray":
        return ctx.is_numpy(annotation.value)
    if isinstance(annotation, ast.Constant) and isinstance(annotation.value, str):
        return annotation.value.endswith("ndarray")
    if isinstance(annotation, ast.BinOp) and isinstance(annotation.op, ast.BitOr):
        return _is_ndarray_annotation(annotation.left, ctx) or _is_ndarray_annotation(
            annotation.right, ctx
        )
    return False


def _check_rep006(ctx: ModuleContext) -> Iterable[Diagnostic]:
    """Python ``for`` loops iterating numpy arrays in ``core``/``scan``.

    A Python-level loop over array elements is 100-1000x slower than the
    vectorized equivalent and is exactly how hot paths regress quietly.
    Tracks names bound from ``np.*`` calls (and slices of them) plus
    parameters annotated ``np.ndarray``, then flags ``for`` statements and
    comprehensions whose iterable is tracked (directly or through
    ``zip``/``enumerate``/``reversed``/``sorted``).
    """
    for scope in _function_scopes(ctx.tree):
        tracked: set[str] = set()
        if isinstance(scope, (ast.FunctionDef, ast.AsyncFunctionDef)):
            args = scope.args
            for arg in [*args.posonlyargs, *args.args, *args.kwonlyargs]:
                if _is_ndarray_annotation(arg.annotation, ctx):
                    tracked.add(arg.arg)
        changed = True
        while changed:  # tiny fixpoint for chains like a = np.sort(x); b = a[1:]
            changed = False
            for node in _scope_statements(scope):
                if not isinstance(node, ast.Assign):
                    continue
                value = node.value
                derived = (
                    (
                        isinstance(value, ast.Call)
                        and isinstance(value.func, ast.Attribute)
                        and ctx.is_numpy(value.func.value)
                    )
                    or (
                        isinstance(value, ast.Subscript)
                        and isinstance(value.value, ast.Name)
                        and value.value.id in tracked
                    )
                    or (isinstance(value, ast.Name) and value.id in tracked)
                )
                if derived:
                    for target in node.targets:
                        for name in _assigned_names(target):
                            if name.id not in tracked:
                                tracked.add(name.id)
                                changed = True

        def tracked_iterable(node: ast.expr) -> bool:
            if isinstance(node, ast.Name):
                return node.id in tracked
            if (
                isinstance(node, ast.Call)
                and isinstance(node.func, ast.Name)
                and node.func.id in _ITER_WRAPPERS
            ):
                return any(tracked_iterable(arg) for arg in node.args)
            if isinstance(node, ast.Subscript):
                # Slicing an array yields an array; x[i] may be a scalar row
                # — only flag slice expressions.
                return (
                    isinstance(node.slice, ast.Slice)
                    and isinstance(node.value, ast.Name)
                    and node.value.id in tracked
                )
            return False

        for node in _scope_statements(scope):
            if isinstance(node, (ast.For, ast.AsyncFor)) and tracked_iterable(node.iter):
                yield ctx.diag(
                    "REP006",
                    node,
                    "Python-level for loop over a numpy array on the hot "
                    "path; vectorize or suppress with a rationale",
                )
            elif isinstance(
                node, (ast.ListComp, ast.SetComp, ast.DictComp, ast.GeneratorExp)
            ):
                for generator in node.generators:
                    if tracked_iterable(generator.iter):
                        yield ctx.diag(
                            "REP006",
                            node,
                            "comprehension over a numpy array on the hot path; "
                            "vectorize or suppress with a rationale",
                        )
                        break


# --------------------------------------------------------------------- #
# REP007 — legacy global-RNG usage
# --------------------------------------------------------------------- #

_ALLOWED_RANDOM_ATTRS = {
    "default_rng", "Generator", "SeedSequence", "BitGenerator",
    "MT19937", "PCG64", "PCG64DXSM", "Philox", "SFC64",
}


def _check_rep007(ctx: ModuleContext) -> Iterable[Diagnostic]:
    """Legacy global numpy RNG (``np.random.seed``/``rand``/...).

    The repo's convention is explicit generators via
    :func:`repro._util.as_rng`; global-RNG calls make experiments
    irreproducible across module import order and break parallel runs.
    """
    for node in ast.walk(ctx.tree):
        if (
            isinstance(node, ast.Attribute)
            and ctx.is_numpy_random(node.value)
            and node.attr not in _ALLOWED_RANDOM_ATTRS
        ):
            yield ctx.diag(
                "REP007",
                node,
                f"legacy global RNG np.random.{node.attr}; use as_rng / "
                "np.random.default_rng",
            )
        elif isinstance(node, ast.ImportFrom) and node.module == "numpy.random":
            for alias in node.names:
                if alias.name not in _ALLOWED_RANDOM_ATTRS and alias.name != "*":
                    yield ctx.diag(
                        "REP007",
                        node,
                        f"legacy numpy.random.{alias.name} import; use "
                        "np.random.default_rng",
                    )


# --------------------------------------------------------------------- #
# REP008 — array-contract / signature agreement
# --------------------------------------------------------------------- #


def _check_rep008(ctx: ModuleContext) -> Iterable[Diagnostic]:
    """``@array_contract`` strings must parse and name real parameters.

    The runtime half validates this at import time; the linter repeats the
    check statically so contract drift is caught even in code paths no test
    imports.
    """
    for node in ast.walk(ctx.tree):
        if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            continue
        for decorator in node.decorator_list:
            if not (
                isinstance(decorator, ast.Call)
                and (
                    (isinstance(decorator.func, ast.Name) and decorator.func.id == "array_contract")
                    or (
                        isinstance(decorator.func, ast.Attribute)
                        and decorator.func.attr == "array_contract"
                    )
                )
            ):
                continue
            arg_names = {
                arg.arg
                for arg in [
                    *node.args.posonlyargs,
                    *node.args.args,
                    *node.args.kwonlyargs,
                ]
            }
            for positional in decorator.args:
                if not (
                    isinstance(positional, ast.Constant)
                    and isinstance(positional.value, str)
                ):
                    continue  # dynamic spec: runtime check covers it
                try:
                    spec = parse_param_spec(positional.value)
                except ContractSpecError as exc:
                    yield ctx.diag("REP008", positional, str(exc))
                    continue
                if spec.name not in arg_names:
                    yield ctx.diag(
                        "REP008",
                        positional,
                        f"contract names parameter {spec.name!r} missing from "
                        f"the signature of {node.name}()",
                    )
            for keyword in decorator.keywords:
                if (
                    keyword.arg == "returns"
                    and isinstance(keyword.value, ast.Constant)
                    and isinstance(keyword.value.value, str)
                ):
                    try:
                        parse_return_spec(keyword.value.value)
                    except ContractSpecError as exc:
                        yield ctx.diag("REP008", keyword.value, str(exc))


# --------------------------------------------------------------------- #
# REP009 — public API without docstrings
# --------------------------------------------------------------------- #


def _is_property_companion(node: ast.FunctionDef | ast.AsyncFunctionDef) -> bool:
    """``@x.setter`` / ``@x.deleter``: the docstring lives on the getter."""
    for decorator in node.decorator_list:
        if isinstance(decorator, ast.Attribute) and decorator.attr in {
            "setter",
            "deleter",
        }:
            return True
    return False


def _check_rep009(ctx: ModuleContext) -> Iterable[Diagnostic]:
    """Public functions, classes, and methods must carry a docstring.

    The reproduction's API is its documentation contract: ``__all__`` (REP004)
    says *what* is public, the docstring says what the public thing *does* —
    in particular which invariants of ``docs/algorithms.md`` it relies on.
    Names with a leading underscore (including dunders) are exempt, as are
    ``@x.setter``/``@x.deleter`` companions whose docstring belongs on the
    getter.
    """

    def public(name: str) -> bool:
        return not name.startswith("_")

    for stmt in ctx.tree.body:
        if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
            if (
                public(stmt.name)
                and not _is_property_companion(stmt)
                and ast.get_docstring(stmt) is None
            ):
                yield ctx.diag(
                    "REP009",
                    stmt,
                    f"public function {stmt.name!r} has no docstring",
                )
        elif isinstance(stmt, ast.ClassDef) and public(stmt.name):
            if ast.get_docstring(stmt) is None:
                yield ctx.diag(
                    "REP009",
                    stmt,
                    f"public class {stmt.name!r} has no docstring",
                )
            for sub in stmt.body:
                if (
                    isinstance(sub, (ast.FunctionDef, ast.AsyncFunctionDef))
                    and public(sub.name)
                    and not _is_property_companion(sub)
                    and ast.get_docstring(sub) is None
                ):
                    yield ctx.diag(
                        "REP009",
                        sub,
                        f"public method {stmt.name}.{sub.name}() has no docstring",
                    )


# --------------------------------------------------------------------- #
# Registry
# --------------------------------------------------------------------- #

REGISTRY: dict[str, Rule] = {
    rule.id: rule
    for rule in (
        Rule(
            id="REP001",
            name="unguarded-full-scan",
            summary="full feature-matrix scalar product outside FeatureStore/baseline",
            applies=_scope_packages(
                "core",
                "scan",
                "moving",
                "obs",
                "parallel",
                exempt_modules=("repro.core.feature_store", "repro.scan.baseline"),
            ),
            check=_check_rep001,
        ),
        Rule(
            id="REP002",
            name="dtype-drift",
            summary="numeric dtype other than float64/int64 on the hot path",
            applies=_scope_packages(
                "core", "scan", "geometry", "moving", "obs", "parallel"
            ),
            check=_check_rep002,
        ),
        Rule(
            id="REP003",
            name="mutable-default",
            summary="mutable default argument",
            applies=_everywhere,
            check=_check_rep003,
        ),
        Rule(
            id="REP004",
            name="all-consistency",
            summary="missing or inconsistent __all__",
            applies=_everywhere,
            check=_check_rep004,
        ),
        Rule(
            id="REP005",
            name="broad-except",
            summary="bare or over-broad except clause",
            applies=_everywhere,
            check=_check_rep005,
        ),
        Rule(
            id="REP006",
            name="python-loop-over-array",
            summary="Python-level loop over a numpy array in core/scan",
            applies=_scope_packages("core", "scan", "obs", "parallel"),
            check=_check_rep006,
        ),
        Rule(
            id="REP007",
            name="legacy-global-rng",
            summary="legacy global numpy RNG instead of as_rng/default_rng",
            applies=_everywhere,
            check=_check_rep007,
        ),
        Rule(
            id="REP008",
            name="contract-signature-drift",
            summary="@array_contract string disagrees with the function signature",
            applies=_everywhere,
            check=_check_rep008,
        ),
        Rule(
            id="REP009",
            name="public-missing-docstring",
            summary="public function/class/method without a docstring",
            applies=_everywhere,
            check=_check_rep009,
        ),
    )
}


def rule_ids() -> list[str]:
    """All registered rule ids, sorted."""
    return sorted(REGISTRY)


def check_module(
    path: str,
    module_name: str | None,
    tree: ast.Module,
    select: set[str] | None = None,
) -> list[Diagnostic]:
    """Run every applicable rule over one parsed module."""
    ctx = ModuleContext(path, module_name, tree)
    diagnostics: list[Diagnostic] = []
    for rule in REGISTRY.values():
        if select is not None and rule.id not in select:
            continue
        if not rule.applies(module_name):
            continue
        diagnostics.extend(rule.check(ctx))
    diagnostics.sort()
    return diagnostics
