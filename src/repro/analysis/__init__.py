"""Static analysis and runtime sanitization for the Planar index invariants.

Two halves (see ``docs/analysis.md``):

* :mod:`repro.analysis.lint` — an AST-based linter with repo-specific rules
  (REP001–REP008) run as ``python -m repro lint [paths]``; the test suite
  gates ``src/`` at zero findings.
* :mod:`repro.analysis.contracts` — the :func:`array_contract` decorator, a
  zero-overhead no-op by default and a full shape/dtype/contiguity/NaN-inf
  checker when ``REPRO_SANITIZE=1``.
"""

from __future__ import annotations

from .contracts import (
    ArraySpec,
    Contract,
    array_contract,
    checked,
    parse_param_spec,
    parse_return_spec,
    sanitize_enabled,
)
from .lint import LintReport, lint_file, lint_paths
from .rules import REGISTRY, Diagnostic, Rule, check_module, rule_ids

__all__ = [
    "ArraySpec",
    "Contract",
    "Diagnostic",
    "LintReport",
    "REGISTRY",
    "Rule",
    "array_contract",
    "check_module",
    "checked",
    "lint_file",
    "lint_paths",
    "parse_param_spec",
    "parse_return_spec",
    "rule_ids",
    "sanitize_enabled",
]
