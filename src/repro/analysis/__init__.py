"""Static analysis and runtime sanitization for the Planar index invariants.

Two halves (see ``docs/analysis.md``):

* :mod:`repro.analysis.lint` — an AST-based linter with repo-specific
  per-file rules (REP001–REP009) run as ``python -m repro lint [paths]``;
  the test suite gates ``src/`` at zero findings.
* :mod:`repro.analysis.graph` / :mod:`repro.analysis.graph_rules` — a
  whole-program graph (imports, class attribute accesses, executor call
  seeds) and the cross-module rules REP010–REP014 run as
  ``python -m repro lint --graph``.
* :mod:`repro.analysis.contracts` — the :func:`array_contract` decorator, a
  zero-overhead no-op by default and a full shape/dtype/contiguity/NaN-inf
  checker when ``REPRO_SANITIZE=1``.
"""

from __future__ import annotations

from .contracts import (
    ArraySpec,
    Contract,
    array_contract,
    checked,
    parse_param_spec,
    parse_return_spec,
    sanitize_enabled,
)
from .graph import ProgramGraph, build_graph, package_root_for
from .graph_rules import (
    ARCHITECTURE,
    GRAPH_REGISTRY,
    GraphRule,
    NARROW_INTERFACES,
    check_graph,
    graph_rule_ids,
)
from .lint import LintReport, lint_file, lint_paths
from .rules import REGISTRY, Diagnostic, Rule, check_module, rule_ids

__all__ = [
    "ARCHITECTURE",
    "ArraySpec",
    "Contract",
    "Diagnostic",
    "GRAPH_REGISTRY",
    "GraphRule",
    "LintReport",
    "NARROW_INTERFACES",
    "ProgramGraph",
    "REGISTRY",
    "Rule",
    "array_contract",
    "build_graph",
    "check_graph",
    "check_module",
    "checked",
    "graph_rule_ids",
    "lint_file",
    "lint_paths",
    "package_root_for",
    "parse_param_spec",
    "parse_return_spec",
    "rule_ids",
    "sanitize_enabled",
]
