"""Exception hierarchy for the :mod:`repro` library.

All library-raised errors derive from :class:`ReproError` so that callers can
catch everything coming out of this package with a single ``except`` clause
while still being able to distinguish configuration problems from runtime
query problems.
"""

from __future__ import annotations

__all__ = [
    "ReproError",
    "DimensionMismatchError",
    "ContractSpecError",
    "ContractViolationError",
    "InvalidQueryError",
    "InvalidDomainError",
    "IndexBuildError",
    "TuningError",
    "PersistenceError",
    "ShardFailureError",
    "QueryTimeoutError",
    "DeadlineExceededError",
    "DrainTimeoutError",
    "DegradedAnswerError",
    "InjectedFaultError",
    "FaultSpecError",
    "ExpressionError",
    "ExpressionSyntaxError",
    "NonScalarProductError",
    "UnknownColumnError",
]


class ReproError(Exception):
    """Base class for every error raised by the repro library."""


class DimensionMismatchError(ReproError, ValueError):
    """An array has the wrong dimensionality for the operation requested."""


class ContractSpecError(ReproError, TypeError):
    """An ``@array_contract`` specification is malformed or names a parameter
    that does not exist in the decorated function's signature.

    Raised at decoration (import) time so that contract drift fails fast;
    the static linter reports the same condition as rule REP008.
    """


class ContractViolationError(DimensionMismatchError):
    """A runtime array-contract check failed under ``REPRO_SANITIZE=1``.

    Subclasses :class:`DimensionMismatchError` (and therefore ``ValueError``)
    so sanitized runs preserve the library's documented error contract: code
    that catches the library's validation errors keeps working when the
    sanitizer fires first.
    """


class InvalidQueryError(ReproError, ValueError):
    """A scalar product query is malformed (bad operator, zero normal, ...)."""


class InvalidDomainError(ReproError, ValueError):
    """A query-parameter domain is empty, unordered, or otherwise unusable."""


class IndexBuildError(ReproError, RuntimeError):
    """A Planar index (or a collection of them) could not be constructed."""


class TuningError(ReproError, RuntimeError):
    """A tuning artifact is unusable: empty/malformed recorded workload,
    corrupted plan file, or a plan applied against an index whose normals
    no longer match the plan's recorded baseline."""


class PersistenceError(ReproError):
    """A persisted artifact is unusable: the archive is malformed, truncated,
    torn mid-write, fails its checksum manifest, targets an unsupported
    format version, or was built with a custom feature map that was not
    re-supplied at load time.

    Historically defined in :mod:`repro.core.persistence` (which still
    re-exports it); it lives here so the crash-safe writers in
    :mod:`repro.reliability.atomic` can raise it without importing the core
    package.
    """


class ShardFailureError(ReproError, RuntimeError):
    """A shard of the parallel engine failed to produce its slice of an
    answer.

    Carries the identity of the failed shard (``shard``) and the fan-out
    kind (``kind``: ``inequality`` / ``range`` / ``topk`` / ``batch`` /
    ``maintenance:*``) so operators can tell *which* partition died — the
    original cause is chained via ``__cause__``.  Raised under
    ``FailurePolicy.RAISE``; the degrading policies convert it into a
    :class:`~repro.reliability.degraded.DegradedInfo` instead.
    """

    def __init__(
        self,
        message: str,
        *,
        shard: int | None = None,
        kind: str | None = None,
    ) -> None:
        super().__init__(message)
        self.shard = shard
        self.kind = kind


class QueryTimeoutError(ShardFailureError, TimeoutError):
    """A shard missed its per-query deadline (``query_timeout_s``).

    Subclasses :class:`ShardFailureError` so policy code treats deadline
    misses like any other shard failure, and :class:`TimeoutError` so
    generic timeout handling keeps working.
    """


class DeadlineExceededError(ReproError, TimeoutError):
    """A request's end-to-end deadline budget ran out before an answer.

    Distinct from :class:`QueryTimeoutError` (one shard missing its wave
    deadline, recoverable by policy): this is the *whole request* out of
    time — admission wait, batch linger, and engine call together
    consumed the budget the client granted (``X-Repro-Deadline-Ms`` at
    the serving layer).  The HTTP front-end maps it to ``504`` with an
    elapsed/budget breakdown; it never carries a partial answer.
    """


class DrainTimeoutError(ReproError, TimeoutError):
    """Graceful shutdown ran out of drain budget with requests unanswered.

    Raised into the futures of admitted requests the micro-batcher could
    not flush before the drain deadline — fail-fast instead of a hang,
    so clients see an explicit ``503`` during shutdown rather than a
    dead connection.
    """


class DegradedAnswerError(ReproError, RuntimeError):
    """No shard survived a fan-out, so even a degraded answer is impossible,
    or a caller demanded a complete answer (``require_complete``) from a
    degraded one."""


class InjectedFaultError(ReproError, RuntimeError):
    """A deliberately injected fault fired (see :mod:`repro.reliability.faults`).

    Only ever raised while a :class:`~repro.reliability.faults.FaultPlan`
    is armed (``REPRO_FAULTS`` or ``faults.arm``); production code paths
    never construct it themselves.
    """

    def __init__(self, message: str, *, site: str | None = None) -> None:
        super().__init__(message)
        self.site = site


class FaultSpecError(ReproError, ValueError):
    """A ``REPRO_FAULTS`` fault-plan specification could not be parsed
    (unknown site/kind/option, malformed value — see ``docs/reliability.md``
    for the grammar)."""


class ExpressionError(ReproError):
    """Base class for errors in the mini SQL-function expression language."""


class ExpressionSyntaxError(ExpressionError, SyntaxError):
    """The expression text could not be tokenized or parsed."""


class NonScalarProductError(ExpressionError, ValueError):
    """The expression is not linear in its parameters.

    Only expressions of the form ``sum_i  param_i * f_i(columns) + f_0``
    can be compiled into a scalar product query; anything with a nonlinear
    parameter occurrence (``? * ?``, ``abs(?)``, parameter in a divisor, ...)
    raises this error.
    """


class UnknownColumnError(ExpressionError, KeyError):
    """An expression referenced a column that does not exist in the table."""
