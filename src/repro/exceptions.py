"""Exception hierarchy for the :mod:`repro` library.

All library-raised errors derive from :class:`ReproError` so that callers can
catch everything coming out of this package with a single ``except`` clause
while still being able to distinguish configuration problems from runtime
query problems.
"""

from __future__ import annotations

__all__ = [
    "ReproError",
    "DimensionMismatchError",
    "ContractSpecError",
    "ContractViolationError",
    "InvalidQueryError",
    "InvalidDomainError",
    "IndexBuildError",
    "TuningError",
    "ExpressionError",
    "ExpressionSyntaxError",
    "NonScalarProductError",
    "UnknownColumnError",
]


class ReproError(Exception):
    """Base class for every error raised by the repro library."""


class DimensionMismatchError(ReproError, ValueError):
    """An array has the wrong dimensionality for the operation requested."""


class ContractSpecError(ReproError, TypeError):
    """An ``@array_contract`` specification is malformed or names a parameter
    that does not exist in the decorated function's signature.

    Raised at decoration (import) time so that contract drift fails fast;
    the static linter reports the same condition as rule REP008.
    """


class ContractViolationError(DimensionMismatchError):
    """A runtime array-contract check failed under ``REPRO_SANITIZE=1``.

    Subclasses :class:`DimensionMismatchError` (and therefore ``ValueError``)
    so sanitized runs preserve the library's documented error contract: code
    that catches the library's validation errors keeps working when the
    sanitizer fires first.
    """


class InvalidQueryError(ReproError, ValueError):
    """A scalar product query is malformed (bad operator, zero normal, ...)."""


class InvalidDomainError(ReproError, ValueError):
    """A query-parameter domain is empty, unordered, or otherwise unusable."""


class IndexBuildError(ReproError, RuntimeError):
    """A Planar index (or a collection of them) could not be constructed."""


class TuningError(ReproError, RuntimeError):
    """A tuning artifact is unusable: empty/malformed recorded workload,
    corrupted plan file, or a plan applied against an index whose normals
    no longer match the plan's recorded baseline."""


class ExpressionError(ReproError):
    """Base class for errors in the mini SQL-function expression language."""


class ExpressionSyntaxError(ExpressionError, SyntaxError):
    """The expression text could not be tokenized or parsed."""


class NonScalarProductError(ExpressionError, ValueError):
    """The expression is not linear in its parameters.

    Only expressions of the form ``sum_i  param_i * f_i(columns) + f_0``
    can be compiled into a scalar product query; anything with a nonlinear
    parameter occurrence (``? * ?``, ``abs(?)``, parameter in a divisor, ...)
    raises this error.
    """


class UnknownColumnError(ExpressionError, KeyError):
    """An expression referenced a column that does not exist in the table."""
